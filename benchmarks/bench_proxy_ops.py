"""Micro-benchmark of proxy create/resolve/ownership overhead.

Measures the per-operation cost of the ownership and lifetime layer against
plain proxies on a local (in-memory) store, where the store round trip is
cheap enough for any bookkeeping overhead to show:

* ``create``: ``Store.proxy`` vs ``Store.owned_proxy`` (put + factory +
  ownership record + finalizer).
* ``resolve``: first use of a plain vs owned proxy (the owned path adds a
  validity check in front of every resolution).
* ``lifetime-create``: ``Store.proxy(lifetime=...)`` vs plain (one
  ``add_key`` per proxy, batch-evicted at close).
* ``borrow``: taking and dropping a shared borrow (pure bookkeeping, no
  store traffic).

The acceptance target for the ownership layer is **< 5% overhead** on the
create and resolve paths; the report records the measured overhead so the
perf trajectory is visible across commits.

Run directly (also used as a CI step)::

    PYTHONPATH=src python benchmarks/bench_proxy_ops.py --out BENCH_proxy.json

``--smoke`` shrinks the op counts for CI.
"""
from __future__ import annotations

import argparse
import gc
import json
import platform
import statistics
import sys
import time

from repro.proxy import OwnedProxy
from repro.proxy import borrow
from repro.proxy import drop
from repro.proxy import extract
from repro.store import ContextLifetime
from repro.store import Store

PAYLOAD = {'weights': list(range(256)), 'tag': 'bench'}


def _time_per_op(fn, ops: int, repeats: int) -> float:
    """Best-of-``repeats`` seconds per call of ``fn`` over ``ops`` calls.

    The cyclic GC is paused inside the timed region (as ``timeit`` does):
    allocation-triggered generation-0 sweeps otherwise dominate the
    microsecond-scale deltas being measured.
    """
    best = float('inf')
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for _ in range(ops):
                fn()
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        best = min(best, elapsed / ops)
    return best


def bench_create(store: Store, ops: int, repeats: int) -> dict:
    """Create cost only: eviction/cleanup happens outside the timed region."""
    from repro.proxy import get_factory

    def timed_round(make) -> float:
        # Preallocate the holding list so the timed region contains
        # creation only — no list growth and no deallocation of earlier
        # proxies (dropping an owner evicts, which belongs to the drop
        # cost, not create).
        made: list = [None] * ops
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for i in range(ops):
                made[i] = make()
            elapsed = (time.perf_counter() - start) / ops
        finally:
            gc.enable()
        for proxy in made:  # untimed cleanup, symmetric for both paths
            # type() not isinstance(): the latter consults the transparent
            # __class__ property, resolving every plain proxy from the store.
            if type(proxy) is OwnedProxy:
                drop(proxy)
            else:
                store.evict(get_factory(proxy).key)
        return elapsed

    make_plain = lambda: store.proxy(PAYLOAD, cache_local=False)  # noqa: E731
    make_owned = lambda: store.owned_proxy(PAYLOAD, cache_local=False)  # noqa: E731
    plains, ratios = [], []
    for i in range(repeats):
        # ABBA pairing: compare within back-to-back pairs (drift cancels in
        # the ratio) and alternate which variant runs first (the second
        # runner in a pair sees a slightly worse allocator state).
        if i % 2 == 0:
            plain_s = timed_round(make_plain)
            owned_s = timed_round(make_owned)
        else:
            owned_s = timed_round(make_owned)
            plain_s = timed_round(make_plain)
        plains.append(plain_s)
        ratios.append(owned_s / plain_s)
    overhead = (statistics.median(ratios) - 1.0) * 100.0
    plain_best = min(plains)
    return {
        'case': 'create',
        'plain_us': plain_best * 1e6,
        'owned_us': plain_best * statistics.median(ratios) * 1e6,
        'overhead_pct': overhead,
    }


def bench_resolve(store: Store, ops: int, repeats: int) -> dict:
    from repro.proxy import get_factory

    def resolve_batch(proxies: list) -> float:
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for p in proxies:
                extract(p)
            return (time.perf_counter() - start) / len(proxies)
        finally:
            gc.enable()

    # First-use resolution can only be timed once per proxy, so each repeat
    # builds fresh proxies (untimed) and times one cold pass per variant,
    # paired to cancel drift.
    plains, ratios = [], []
    for i in range(repeats):
        plain = [store.proxy(PAYLOAD, cache_local=False) for _ in range(ops)]
        owned = [store.owned_proxy(PAYLOAD, cache_local=False) for _ in range(ops)]
        if i % 2 == 0:
            plain_s = resolve_batch(plain)
            owned_s = resolve_batch(owned)
        else:
            owned_s = resolve_batch(owned)
            plain_s = resolve_batch(plain)
        plains.append(plain_s)
        ratios.append(owned_s / plain_s)
        for p in owned:
            drop(p)
        for p in plain:
            store.evict(get_factory(p).key)
    plain_best = min(plains)
    return {
        'case': 'resolve',
        'plain_us': plain_best * 1e6,
        'owned_us': plain_best * statistics.median(ratios) * 1e6,
        'overhead_pct': (statistics.median(ratios) - 1.0) * 100.0,
    }


def bench_lifetime_create(store: Store, ops: int, repeats: int) -> dict:
    lifetime = ContextLifetime()
    make_plain = lambda: store.proxy(PAYLOAD, cache_local=False)  # noqa: E731
    make_bound = lambda: store.proxy(  # noqa: E731
        PAYLOAD, cache_local=False, lifetime=lifetime,
    )
    plains, ratios = [], []
    for i in range(repeats):
        if i % 2 == 0:
            plain_s = _time_per_op(make_plain, ops, 1)
            bound_s = _time_per_op(make_bound, ops, 1)
        else:
            bound_s = _time_per_op(make_bound, ops, 1)
            plain_s = _time_per_op(make_plain, ops, 1)
        plains.append(plain_s)
        ratios.append(bound_s / plain_s)
    start = time.perf_counter()
    lifetime.close()
    close_s = time.perf_counter() - start
    plain_best = min(plains)
    return {
        'case': 'lifetime-create',
        'plain_us': plain_best * 1e6,
        'bound_us': plain_best * statistics.median(ratios) * 1e6,
        'overhead_pct': (statistics.median(ratios) - 1.0) * 100.0,
        'close_us_per_key': close_s / max(1, lifetime.keys_evicted) * 1e6,
        'keys_evicted': lifetime.keys_evicted,
    }


def bench_borrow(store: Store, ops: int, repeats: int) -> dict:
    owner = store.owned_proxy(PAYLOAD, cache_local=False)
    extract(owner)  # resolve once so borrows measure bookkeeping only

    def take_and_drop() -> None:
        view = borrow(owner)
        del view

    borrow_s = _time_per_op(take_and_drop, ops, repeats)
    drop(owner)
    return {'case': 'borrow', 'borrow_us': borrow_s * 1e6}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--out', default='BENCH_proxy.json')
    parser.add_argument(
        '--smoke',
        action='store_true',
        help='shrink op counts for CI',
    )
    args = parser.parse_args(argv)

    # Many short interleaved rounds: the plain/owned pairs sit closer
    # together in time, so bursty machine noise cancels in the per-pair
    # ratios instead of polluting one variant's whole measurement.
    ops = 100 if args.smoke else 500
    repeats = 10 if args.smoke else 16

    store = Store.from_url('local:///bench-proxy-ops?cache_size=0', register=True)
    try:
        results = [
            bench_create(store, ops, repeats),
            bench_resolve(store, ops, repeats),
            bench_lifetime_create(store, ops, repeats),
            bench_borrow(store, ops, repeats),
        ]
    finally:
        store.close(clear=True)

    for entry in results:
        overhead = entry.get('overhead_pct')
        suffix = f'   overhead {overhead:+6.2f}%' if overhead is not None else ''
        timing = '  '.join(
            f'{k} {v:9.2f}'
            for k, v in entry.items()
            if k.endswith('_us') or k.endswith('_us_per_key')
        )
        print(f'{entry["case"]:<16} {timing}{suffix}')

    create = next(e for e in results if e['case'] == 'create')
    resolve = next(e for e in results if e['case'] == 'resolve')
    target_met = create['overhead_pct'] < 5.0 and resolve['overhead_pct'] < 5.0
    print(f'ownership overhead target (<5% create/resolve): met={target_met}')

    report = {
        'benchmark': 'proxy_ops',
        'python': sys.version.split()[0],
        'platform': platform.platform(),
        'smoke': args.smoke,
        'ops': ops,
        'overhead_target_pct': 5.0,
        'overhead_target_met': target_met,
        'results': results,
    }
    with open(args.out, 'w') as f:
        json.dump(report, f, indent=2)
    print(f'wrote {args.out}')
    return 0


if __name__ == '__main__':
    raise SystemExit(main())
