"""Figure 9: PS-endpoint peering versus Redis over an SSH tunnel."""
from __future__ import annotations

from benchmarks.conftest import full_sweeps
from benchmarks.conftest import print_table
from repro.harness.fig9 import run_figure9


def test_fig9_endpoint_peering(benchmark):
    sizes = (1_000, 10_000, 100_000, 1_000_000, 10_000_000)
    requests = 10 if full_sweeps() else 3
    table = benchmark.pedantic(
        lambda: run_figure9(payload_sizes=sizes, requests=requests), rounds=1, iterations=1,
    )
    print_table(table)
    # Redis over SSH is generally faster than PS-endpoints (extra hop plus the
    # throttled data channel), and the gap widens at larger payload sizes —
    # but PS-endpoints stay within an order of magnitude for WAN transfers
    # while requiring no tunnels or open ports (Section 5.3.2).
    for pair in ('Midway2 -> Theta', 'Frontera -> Theta'):
        endpoint_large = table.value('avg_time_ms', site_pair=pair, system='ps-endpoints',
                                     operation='get', payload_bytes=max(sizes))
        redis_large = table.value('avg_time_ms', site_pair=pair, system='redis+ssh',
                                  operation='get', payload_bytes=max(sizes))
        assert redis_large < endpoint_large
        endpoint_small = table.value('avg_time_ms', site_pair=pair, system='ps-endpoints',
                                     operation='get', payload_bytes=min(sizes))
        redis_small = table.value('avg_time_ms', site_pair=pair, system='redis+ssh',
                                  operation='get', payload_bytes=min(sizes))
        gap_small = endpoint_small / redis_small
        gap_large = endpoint_large / redis_large
        assert gap_large > gap_small
