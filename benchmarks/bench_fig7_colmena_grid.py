"""Figure 7: Colmena/Parsl round-trip improvement grids for FileStore and RedisStore."""
from __future__ import annotations

from benchmarks.conftest import full_sweeps
from benchmarks.conftest import print_table
from repro.harness.fig7 import run_figure7


def _sizes() -> tuple[int, ...]:
    if full_sweeps():
        return (10, 1_000, 100_000, 10_000_000, 100_000_000)
    return (100, 10_000, 1_000_000, 10_000_000)


def test_fig7_colmena_improvement_grid(benchmark):
    table = benchmark.pedantic(
        lambda: run_figure7(input_sizes=_sizes(), output_sizes=_sizes(), repeats=5),
        rounds=1, iterations=1,
    )
    print_table(table)
    sizes = _sizes()
    for store in ('file-store', 'redis-store'):
        small = table.value('improvement_pct', store=store,
                            input_bytes=sizes[0], output_bytes=sizes[0])
        large = table.value('improvement_pct', store=store,
                            input_bytes=sizes[-1], output_bytes=sizes[-1])
        # Improvements grow with data size: negligible (possibly negative) for
        # small payloads, large for the biggest payloads (Figure 7).
        assert large > 30.0
        assert large > small
