"""Figure 11: molecular design node utilization with and without ProxyStore."""
from __future__ import annotations

from benchmarks.conftest import print_table
from repro.harness.fig11 import run_figure11


def test_fig11_molecular_design_utilization(benchmark):
    node_counts = (128, 256, 512, 1024)
    table = benchmark.pedantic(lambda: run_figure11(node_counts=node_counts), rounds=1, iterations=1)
    print_table(table)
    # Baseline utilization degrades as CPU nodes are added because the
    # workflow system's serial result handling cannot keep up; ProxyStore
    # restores near-ideal scaling (Figure 11).
    base_512 = table.value('cpu_utilization', cpu_nodes=512, configuration='baseline')
    base_1024 = table.value('cpu_utilization', cpu_nodes=1024, configuration='baseline')
    proxy_512 = table.value('cpu_utilization', cpu_nodes=512, configuration='proxystore')
    proxy_1024 = table.value('cpu_utilization', cpu_nodes=1024, configuration='proxystore')
    assert base_1024 < base_512 < 1.0
    assert proxy_512 > 0.95 and proxy_1024 > 0.95
    assert proxy_512 - base_512 > 0.15      # paper: +29 % at 512 nodes
    assert proxy_1024 - base_1024 > 0.35    # paper: +43 % at 1024 nodes
    # GPU utilization also improves with ProxyStore.
    assert (table.value('gpu_utilization', cpu_nodes=1024, configuration='proxystore')
            > table.value('gpu_utilization', cpu_nodes=1024, configuration='baseline'))
