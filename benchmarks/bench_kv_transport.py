"""Benchmark of the concurrent SimKV transport (Fig. 6's transport axis).

Two scenarios, run against KV node servers in *separate processes* behind a
small in-benchmark network emulator (constant per-connection latency and a
leaky-bucket per-node bandwidth cap), because on a bare in-process loopback
there is no network to win back — every transport is equally CPU-bound:

1. **Pipelining** — 16 threads share one client issuing 1 KiB set/get pairs
   over a 0.5 ms one-way wire.  The baseline is the pre-concurrency client
   (one connection, one lock, one round trip at a time — kept inline below);
   the pipelined client keeps many requests in flight on the same
   connection.  Acceptance: >= 3x ops/sec.

2. **Sharding** — a 256 MiB object is put/get against a 4-node DIM store
   whose nodes are each paced to 1 Gbps, the commodity-NIC regime where
   striping pays (one Python client process can drive ~400 MB/s through
   the emulator, so a faster per-node fabric would let the client core
   mask the effect).  The single-node transfer uses one node's bandwidth;
   the striped transfer uses all four in parallel.  Acceptance: sharded
   beats single-node for both put and get.

3. **Chaos (kill one node)** — a replicated (``replicas=2``) cluster over
   3 node processes serves a read workload; one node process is killed
   with SIGKILL mid-run.  Recorded: replication overhead at put/get time
   (``replicas=2`` vs ``replicas=1`` over the same ring — the honest
   cost), degraded-mode throughput while failing over, lost keys (must be
   zero), and recovery time until the background rebalancer restored full
   replication on the survivors.

Run directly (also used as a CI step)::

    PYTHONPATH=src python benchmarks/bench_kv_transport.py --out BENCH_kv.json
    PYTHONPATH=src python benchmarks/bench_kv_transport.py --smoke

``--smoke`` shrinks the sweep (fewer ops, 32 MiB payload) for CI.
"""
from __future__ import annotations

import argparse
import json
import multiprocessing
import platform
import queue
import socket

import sys
import threading
import time
from typing import Any

from repro.dim.client import DIMClient
from repro.dim.node import reset_nodes
from repro.kvserver.client import KVClient
from repro.kvserver.protocol import recv_message
from repro.kvserver.protocol import send_message
from repro.kvserver.server import KVServer

ONE_WAY_LATENCY_S = 0.0005          # 0.5 ms: an intra-site hop
NODE_BANDWIDTH_BPS = 125_000_000    # 1 Gbps per DIM node
N_NODES = 4


# --------------------------------------------------------------------------- #
# Network emulator: constant latency + leaky-bucket bandwidth per node
# --------------------------------------------------------------------------- #
class EmulatedLink:
    """TCP proxy adding one-way latency and an aggregate bandwidth cap."""

    CHUNK = 256 * 1024

    def __init__(
        self,
        upstream: tuple[str, int],
        *,
        latency_s: float = 0.0,
        bandwidth_bps: float | None = None,
    ) -> None:
        self.upstream = upstream
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self._pace_lock = threading.Lock()
        self._next_free = 0.0
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(('127.0.0.1', 0))
        self.listener.listen(128)
        self.address = self.listener.getsockname()
        threading.Thread(target=self._accept_loop, daemon=True).start()

    def _accept_loop(self) -> None:
        while True:
            try:
                downstream, _addr = self.listener.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.upstream)
            except OSError:
                downstream.close()
                continue
            for a, b in ((downstream, upstream), (upstream, downstream)):
                a.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                pipe: queue.Queue = queue.Queue()
                threading.Thread(
                    target=self._pump_in, args=(a, pipe), daemon=True,
                ).start()
                threading.Thread(
                    target=self._pump_out, args=(b, pipe), daemon=True,
                ).start()

    def _due_time(self, nbytes: int) -> float:
        """Leaky-bucket pacing shared by every connection through this link."""
        now = time.perf_counter()
        if self.bandwidth_bps is None:
            return now + self.latency_s
        with self._pace_lock:
            self._next_free = max(now, self._next_free) + nbytes / self.bandwidth_bps
            return self._next_free + self.latency_s

    def _pump_in(self, sock: socket.socket, pipe: queue.Queue) -> None:
        while True:
            try:
                chunk = sock.recv(self.CHUNK)
            except OSError:
                chunk = b''
            pipe.put((self._due_time(len(chunk)), chunk))
            if not chunk:
                return

    def _pump_out(self, sock: socket.socket, pipe: queue.Queue) -> None:
        while True:
            due, chunk = pipe.get()
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            if not chunk:
                try:
                    sock.close()
                except OSError:
                    pass
                return
            try:
                sock.sendall(chunk)
            except OSError:
                return


def _node_main(report: Any, latency_s: float, bandwidth_bps: float | None) -> None:
    """Subprocess body: one KV node server behind an emulated link."""
    server = KVServer()
    server.start()
    assert server.port is not None
    link = EmulatedLink(
        (server.host, server.port),
        latency_s=latency_s,
        bandwidth_bps=bandwidth_bps,
    )
    report.put(link.address)
    while True:  # killed by the parent
        time.sleep(3600)


def _spawn_nodes(
    count: int, *, latency_s: float, bandwidth_bps: float | None,
) -> tuple[list, list[tuple[str, int]]]:
    context = multiprocessing.get_context('fork')
    report = context.Queue()
    procs = [
        context.Process(
            target=_node_main, args=(report, latency_s, bandwidth_bps), daemon=True,
        )
        for _ in range(count)
    ]
    for proc in procs:
        proc.start()
    addresses = [report.get(timeout=30) for _ in procs]
    return procs, addresses


# --------------------------------------------------------------------------- #
# The serialized baseline: the pre-concurrency KVClient, kept verbatim
# --------------------------------------------------------------------------- #
class SerializedBaselineClient:
    """One connection, one lock, one round trip at a time."""

    def __init__(self, host: str, port: int) -> None:
        self.sock = socket.create_connection((host, port))
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()
        self._next_id = 0

    def request(self, command: str, key: str | None = None, value: Any = None) -> Any:
        with self._lock:
            self._next_id += 1
            send_message(self.sock, (self._next_id, command, key, value))
            response = recv_message(self.sock)
            assert response is not None and response[1] == 'ok', response
            return response[2]

    def close(self) -> None:
        self.sock.close()


# --------------------------------------------------------------------------- #
# Scenario 1: pipelined small operations
# --------------------------------------------------------------------------- #
def bench_pipelining(*, threads: int, ops_per_thread: int, payload: bytes) -> dict:
    procs, addresses = _spawn_nodes(
        1, latency_s=ONE_WAY_LATENCY_S, bandwidth_bps=None,
    )
    host, port = addresses[0]
    try:
        def run(request) -> float:
            import pickle

            def worker(n: int) -> None:
                for i in range(ops_per_thread):
                    request('SET', f'{n}:{i}', [pickle.PickleBuffer(payload)])
                    request('GET', f'{n}:{i}')

            pool = [
                threading.Thread(target=worker, args=(i,)) for i in range(threads)
            ]
            start = time.perf_counter()
            for t in pool:
                t.start()
            for t in pool:
                t.join()
            elapsed = time.perf_counter() - start
            return threads * ops_per_thread * 2 / elapsed

        baseline = SerializedBaselineClient(host, port)
        serialized_ops = run(baseline.request)
        baseline.close()

        pipelined = KVClient(host, port)
        pipelined_ops = run(
            lambda command, key=None, value=None: pipelined._request(
                command, key, value,
            ),
        )
        pipelined.close()
    finally:
        for proc in procs:
            proc.terminate()

    speedup = pipelined_ops / serialized_ops
    return {
        'threads': threads,
        'ops_per_thread': ops_per_thread,
        'payload_bytes': len(payload),
        'one_way_latency_s': ONE_WAY_LATENCY_S,
        'serialized_ops_per_s': round(serialized_ops, 1),
        'pipelined_ops_per_s': round(pipelined_ops, 1),
        'speedup': round(speedup, 2),
        'passes_3x': speedup >= 3.0,
    }


# --------------------------------------------------------------------------- #
# Scenario 2: sharded large transfers across a 4-node DIM store
# --------------------------------------------------------------------------- #
def bench_sharding(*, payload_bytes: int, repetitions: int) -> dict:
    payload = bytes(bytearray(range(256)) * (payload_bytes // 256))
    procs, addresses = _spawn_nodes(
        N_NODES, latency_s=0.0001, bandwidth_bps=NODE_BANDWIDTH_BPS,
    )
    peers = [
        (f'node-{i}', host, port) for i, (host, port) in enumerate(addresses)
    ]
    try:
        def measure(peer_list: list) -> dict:
            client = DIMClient(
                'bench-client',
                transport='tcp',
                peers=peer_list,
                shard_threshold=1024 * 1024,
                pool_size=2,
            )
            put_times, get_times = [], []
            try:
                for _ in range(repetitions):
                    start = time.perf_counter()
                    key = client.put(payload)
                    put_times.append(time.perf_counter() - start)
                    start = time.perf_counter()
                    got = client.get(key)
                    materialized = bytes(got)
                    get_times.append(time.perf_counter() - start)
                    assert materialized == payload, 'shard integrity violated'
                    client.evict(key)
            finally:
                client.close()
            # Best-of: scheduling interference on small machines (the
            # emulator, node processes and client share the cores) only
            # ever adds time, so the fastest repetition is the cleanest
            # estimate of each configuration's capability.
            put_s = min(put_times)
            get_s = min(get_times)
            return {
                'shards': len(peer_list),
                'put_s': round(put_s, 4),
                'get_s': round(get_s, 4),
                'put_MBps': round(payload_bytes / put_s / 1e6, 1),
                'get_MBps': round(payload_bytes / get_s / 1e6, 1),
            }

        single = measure(peers[:1])
        sharded = measure(peers)
    finally:
        for proc in procs:
            proc.terminate()
        reset_nodes()

    put_speedup = single['put_s'] / sharded['put_s']
    get_speedup = single['get_s'] / sharded['get_s']
    return {
        'nodes': N_NODES,
        'payload_bytes': payload_bytes,
        'node_bandwidth_Gbps': round(NODE_BANDWIDTH_BPS * 8 / 1e9, 2),
        'single_node': single,
        'sharded': sharded,
        'put_speedup': round(put_speedup, 2),
        'get_speedup': round(get_speedup, 2),
        'passes_sharded_beats_single': put_speedup > 1.0 and get_speedup > 1.0,
    }


# --------------------------------------------------------------------------- #
# Scenario 3: chaos — kill one replicated node mid-workload
# --------------------------------------------------------------------------- #
def bench_chaos(*, n_keys: int, ops: int) -> dict:
    payload = b'x' * 4096
    procs, addresses = _spawn_nodes(3, latency_s=0.0001, bandwidth_bps=None)
    peers = [
        (f'node-{i}', host, port) for i, (host, port) in enumerate(addresses)
    ]
    try:
        # Replication overhead: same ring, same remote nodes, one copy vs
        # two.  replicas=1 with ring placement (not the legacy local-node
        # path) so both configurations pay a remote round trip — the delta
        # is the honest cost of the second copy.
        overhead = {}
        for replicas in (1, 2):
            client = DIMClient(
                'bench-overhead',
                transport='tcp',
                peers=peers,
                replicas=replicas,
                ring_vnodes=64,
                rebalance=False,
            )
            try:
                start = time.perf_counter()
                keys = [client.put(payload) for _ in range(ops)]
                put_ops = ops / (time.perf_counter() - start)
                start = time.perf_counter()
                for key in keys:
                    assert client.get(key) is not None
                get_ops = ops / (time.perf_counter() - start)
                client.evict_batch(keys)
            finally:
                client.close()
            overhead[f'replicas_{replicas}'] = {
                'put_ops_per_s': round(put_ops, 1),
                'get_ops_per_s': round(get_ops, 1),
            }
        put_cost = (
            overhead['replicas_1']['put_ops_per_s']
            / overhead['replicas_2']['put_ops_per_s']
        )

        # Chaos run: read workload over a replicated key set, then SIGKILL
        # the node holding the most primaries with no warning.
        client = DIMClient(
            'bench-chaos',
            transport='tcp',
            peers=peers,
            replicas=2,
            hedge_threshold=0.02,
        )
        try:
            keys = client.put_batch([payload] * n_keys)

            def read_all() -> tuple[float, int]:
                lost = 0
                start = time.perf_counter()
                for key in keys:
                    value = client.get(key)
                    if value is None or bytes(value) != payload:
                        lost += 1
                return n_keys / (time.perf_counter() - start), lost

            healthy_ops, _ = read_all()

            primaries = [key.replicas[0].node_id for key in keys]
            victim = max(set(primaries), key=primaries.count)
            victim_index = next(
                i for i, (node_id, _, _) in enumerate(peers)
                if node_id == victim
            )
            kill_time = time.perf_counter()
            procs[victim_index].kill()
            procs[victim_index].join()

            degraded_ops, lost = read_all()

            # Recovery: the crash discovered by the reads above triggered
            # the rebalancer; wait for it and verify full re-replication.
            recovered = client.rebalancer.wait_idle(120)
            survivors = [node_id for node_id, _, _ in peers if node_id != victim]
            under_replicated = sum(
                1 for key in keys
                if sum(
                    1 for node_id in survivors
                    if client.cluster.backend(node_id).exists(key.object_id)
                ) < 2
            )
            recovery_s = time.perf_counter() - kill_time
            stats = client.cluster.stats.as_dict()
            rebalance = client.rebalancer.stats.as_dict()
        finally:
            client.close()
    finally:
        for proc in procs:
            proc.terminate()
        reset_nodes()

    return {
        'nodes': 3,
        'replicas': 2,
        'n_keys': n_keys,
        'payload_bytes': len(payload),
        'overhead': overhead,
        'put_overhead_factor': round(put_cost, 2),
        'healthy_ops_per_s': round(healthy_ops, 1),
        'degraded_ops_per_s': round(degraded_ops, 1),
        'lost_keys': lost,
        'recovery_s': round(recovery_s, 3),
        'under_replicated_after_recovery': under_replicated,
        'cluster_stats': stats,
        'rebalance_stats': rebalance,
        'passes_zero_lost': lost == 0
        and under_replicated == 0
        and recovered,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--out', default='BENCH_kv.json')
    parser.add_argument(
        '--smoke',
        action='store_true',
        help='quick CI run: fewer ops and a 32 MiB sharded payload',
    )
    args = parser.parse_args(argv)

    ops = 40 if args.smoke else 150
    sharded_bytes = 32 * 1024 * 1024 if args.smoke else 256 * 1024 * 1024
    repetitions = 3 if args.smoke else 4

    pipelining = bench_pipelining(
        threads=16, ops_per_thread=ops, payload=b'x' * 1024,
    )
    print(
        f'pipelining: serialized {pipelining["serialized_ops_per_s"]:.0f} ops/s   '
        f'pipelined {pipelining["pipelined_ops_per_s"]:.0f} ops/s   '
        f'speedup {pipelining["speedup"]:.2f}x (>=3x: {pipelining["passes_3x"]})',
    )

    sharding = bench_sharding(payload_bytes=sharded_bytes, repetitions=repetitions)
    print(
        f'sharding ({sharding["payload_bytes"] >> 20} MiB, '
        f'{sharding["nodes"]} nodes @ {sharding["node_bandwidth_Gbps"]} Gbps): '
        f'put {sharding["single_node"]["put_MBps"]:.0f} -> '
        f'{sharding["sharded"]["put_MBps"]:.0f} MB/s ({sharding["put_speedup"]:.2f}x)   '
        f'get {sharding["single_node"]["get_MBps"]:.0f} -> '
        f'{sharding["sharded"]["get_MBps"]:.0f} MB/s ({sharding["get_speedup"]:.2f}x)',
    )

    chaos = bench_chaos(n_keys=40 if args.smoke else 150, ops=ops)
    print(
        f'chaos (kill 1 of {chaos["nodes"]}, replicas={chaos["replicas"]}): '
        f'healthy {chaos["healthy_ops_per_s"]:.0f} ops/s   '
        f'degraded {chaos["degraded_ops_per_s"]:.0f} ops/s   '
        f'lost {chaos["lost_keys"]}   '
        f'recovered in {chaos["recovery_s"]:.2f}s   '
        f'replication put cost {chaos["put_overhead_factor"]:.2f}x '
        f'(zero-lost: {chaos["passes_zero_lost"]})',
    )

    report = {
        'benchmark': 'kv_transport',
        'python': sys.version.split()[0],
        'platform': platform.platform(),
        'smoke': args.smoke,
        'pipelining': pipelining,
        'sharding': sharding,
        'chaos': chaos,
    }
    with open(args.out, 'w') as f:
        json.dump(report, f, indent=2)
    print(f'wrote {args.out}')
    return 0


if __name__ == '__main__':
    raise SystemExit(main())
