"""Figure 8: get/set latency to one PS-endpoint vs concurrent clients and payload size."""
from __future__ import annotations

from benchmarks.conftest import full_sweeps
from benchmarks.conftest import print_table
from repro.harness.fig8 import run_figure8


def test_fig8_endpoint_client_scaling(benchmark):
    clients = (1, 2, 4, 8, 16, 32) if full_sweeps() else (1, 2, 4, 8)
    sizes = (1_000, 10_000, 100_000, 1_000_000, 10_000_000) if full_sweeps() else (1_000, 100_000, 1_000_000)
    table = benchmark.pedantic(
        lambda: run_figure8(client_counts=clients, payload_sizes=sizes, requests_per_client=25),
        rounds=1, iterations=1,
    )
    print_table(table)
    # The single-worker endpoint serializes requests, so per-request latency
    # grows with the number of concurrent clients (Figure 8).
    for operation in ('get', 'set'):
        one = table.value('avg_time_ms', operation=operation,
                          payload_bytes=max(sizes), clients=min(clients))
        many = table.value('avg_time_ms', operation=operation,
                           payload_bytes=max(sizes), clients=max(clients))
        assert many > one
