"""Benchmark of streaming proxy channels versus inline-payload events.

Compares two ways to stream items from a producer to a consumer:

* **proxy** — each item's bulk data goes through the data-plane store (a
  4-node sharded DIM store) and only a tiny key+metadata event rides the
  broker; the consumer resolves proxies with a small prefetch window.
* **inline** — the serialized item is embedded in the event itself, so
  every payload byte crosses the event broker twice (publish + push), the
  classic "data rides the message bus" design.

Both run against servers in *separate processes* behind the same network
emulator as ``bench_kv_transport`` (constant latency, leaky-bucket
bandwidth per link), because on a bare in-process loopback every design is
equally memcpy-bound.  Links are paced to 0.5 Gbps so the Python client's
own per-item overhead (~100 MB/s at 1 MB items) does not mask the
architecture effect; the broker gets one link, each DIM node its own —
the deployment shape where decoupling data flow from the event stream
pays.  The inline baseline runs in its best configuration per size
(batched publishes for small items, per-item for large).

Acceptance (recorded in the JSON):

* proxy streaming sustains **>= 2x MB/s** over inline events at >= 1 MB
  items, and
* a slow consumer cannot grow broker memory without bound — the per-topic
  ring retention is enforced while the consumer stalls, and the consumer
  still converges afterwards (events beyond retention counted as lost).

Run directly (also used as a CI step)::

    PYTHONPATH=src python benchmarks/bench_stream.py --out BENCH_stream.json
    PYTHONPATH=src python benchmarks/bench_stream.py --smoke
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from typing import Any

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_kv_transport import _spawn_nodes  # noqa: E402

from repro.connectors.zmq import ZMQConnector  # noqa: E402
from repro.dim.node import reset_nodes  # noqa: E402
from repro.kvserver.server import KVServer  # noqa: E402
from repro.store import Store  # noqa: E402
from repro.stream import KVEventBus  # noqa: E402
from repro.stream import StreamConsumer  # noqa: E402
from repro.stream import StreamProducer  # noqa: E402

ONE_WAY_LATENCY_S = 0.0002
LINK_BANDWIDTH_BPS = 62_500_000  # 0.5 Gbps per emulated link
N_DATA_NODES = 4
SHARD_THRESHOLD = 512 * 1024
PREFETCH = 6

#: (label, nbytes, item count, proxy batch, inline batch) per sweep point.
#: ``None`` batch = per-item sends (the inline baseline's best mode for
#: large items; batching is its best mode for small ones).
SWEEP = [
    ('1KB', 1024, 500, 64, 64),
    ('1MB', 1 << 20, 32, 8, None),
    ('8MB', 1 << 23, 8, 4, None),
    ('64MB', 1 << 26, 3, None, None),
]
SMOKE_SWEEP = [
    ('1KB', 1024, 200, 64, 64),
    ('1MB', 1 << 20, 20, 4, None),
]

#: Runs per (mode, size); the fastest is kept.  As in bench_kv_transport,
#: scheduling interference (emulator pumps, node processes, and the
#: client share the cores) only ever adds time, so best-of is the
#: cleanest estimate of each design's capability.
REPETITIONS = 2


def _run_stream(
    mode: str,
    nbytes: int,
    count: int,
    batch: int | None,
    broker_addr: tuple[str, int],
    peers: list,
    tag: str,
) -> dict[str, Any]:
    """One producer->consumer run; returns wall time and delivered bytes."""
    connector = ZMQConnector(
        f'bench-client-{tag}',
        peers=peers,
        shard_threshold=SHARD_THRESHOLD,
        pool_size=2,
    )
    store = Store(f'stream-bench-{tag}', connector, cache_size=0)
    bus = KVEventBus(
        *broker_addr, retention=max(8, count), poll_interval=0.05,
    )
    topic = f'bench-{tag}'
    consumer = StreamConsumer(
        store, bus, topic,
        from_seq=0,
        timeout=300.0,
        prefetch=0 if mode == 'inline' else PREFETCH,
    )
    consumer._ensure_subscribed()
    producer = StreamProducer(store, bus, topic, inline=(mode == 'inline'))
    payload = b'\xab' * nbytes

    def produce() -> None:
        if batch:
            items = [payload] * count
            for i in range(0, count, batch):
                producer.send_batch(items[i:i + batch])
        else:
            for _ in range(count):
                producer.send(payload)
        producer.close()

    start = time.perf_counter()
    feeder = threading.Thread(target=produce)
    feeder.start()
    delivered_bytes = 0
    delivered = 0
    for item in consumer:
        data = item if isinstance(item, (bytes, bytearray)) else bytes(item)
        delivered_bytes += len(data)
        delivered += 1
    feeder.join()
    elapsed = time.perf_counter() - start
    assert delivered == count, f'{mode}: delivered {delivered}/{count}'
    assert delivered_bytes == count * nbytes
    store.close(clear=True)
    bus.close()
    return {
        'elapsed_s': round(elapsed, 4),
        'MBps': round(delivered_bytes / elapsed / 1e6, 1),
        'events_per_s': round(count / elapsed, 1),
    }


def bench_throughput(sweep: list) -> list[dict[str, Any]]:
    """Proxy vs inline events/s and MB/s across payload sizes."""
    procs, addresses = _spawn_nodes(
        1 + N_DATA_NODES,
        latency_s=ONE_WAY_LATENCY_S,
        bandwidth_bps=LINK_BANDWIDTH_BPS,
    )
    broker_addr, node_addrs = addresses[0], addresses[1:]
    peers = [
        (f'bench-node-{i}', host, port)
        for i, (host, port) in enumerate(node_addrs)
    ]
    results = []
    try:
        for label, nbytes, count, proxy_batch, inline_batch in sweep:
            entry: dict[str, Any] = {
                'size': label,
                'payload_bytes': nbytes,
                'items': count,
            }
            entry['proxy'] = min(
                (
                    _run_stream(
                        'proxy', nbytes, count, proxy_batch,
                        broker_addr, peers, f'proxy-{label}-{rep}',
                    )
                    for rep in range(REPETITIONS)
                ),
                key=lambda run: run['elapsed_s'],
            )
            entry['inline'] = min(
                (
                    _run_stream(
                        'inline', nbytes, count, inline_batch,
                        broker_addr, peers, f'inline-{label}-{rep}',
                    )
                    for rep in range(REPETITIONS)
                ),
                key=lambda run: run['elapsed_s'],
            )
            entry['speedup_MBps'] = round(
                entry['proxy']['MBps'] / entry['inline']['MBps'], 2,
            )
            entry['passes_2x'] = (
                nbytes < (1 << 20) or entry['speedup_MBps'] >= 2.0
            )
            results.append(entry)
            print(
                f'{label:>5}: proxy {entry["proxy"]["MBps"]:>7.1f} MB/s '
                f'({entry["proxy"]["events_per_s"]:>8.1f} ev/s)   '
                f'inline {entry["inline"]["MBps"]:>7.1f} MB/s '
                f'({entry["inline"]["events_per_s"]:>8.1f} ev/s)   '
                f'speedup {entry["speedup_MBps"]:>5.2f}x',
            )
    finally:
        for proc in procs:
            proc.terminate()
        reset_nodes()
    return results


def bench_backpressure(*, retention: int = 8, events: int = 64) -> dict[str, Any]:
    """A stalled consumer must not grow broker memory beyond retention.

    1 MB inline events against a tiny ring: while the consumer sleeps, the
    broker drops pushes at the highwater mark and ages events out of the
    ring — broker memory stays bounded.  When the consumer resumes it
    converges on the stream head, with everything beyond retention counted
    as lost rather than silently skipped.
    """
    nbytes = 1 << 20
    server = KVServer(stream_retention=retention)
    host, port = server.start()
    assert server.port is not None
    # A tiny local queue makes the consumer genuinely stall its TCP stream,
    # engaging the server's highwater push-dropping as well as the ring.
    bus = KVEventBus(host, port, poll_interval=0.05, max_queued_batches=2)
    bus.configure_topic('backpressure', retention=retention)
    subscription = bus.subscribe('backpressure')
    payload = b'\xcd' * nbytes
    peak_ring_bytes = 0
    for _ in range(events):
        bus.publish('backpressure', payload)
        stats = bus.topic_stats('backpressure')
        assert stats is not None
        peak_ring_bytes = max(peak_ring_bytes, stats['ring_bytes'])
    time.sleep(0.3)  # consumer is stalled the whole time
    stats = bus.topic_stats('backpressure')
    assert stats is not None
    bound_bytes = retention * nbytes
    # Consumer resumes: it must converge on the head via ring catch-up.
    seen: list[int] = []
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        seen.extend(seq for seq, _ in subscription.next_batch(timeout=1.0))
        if seen and seen[-1] == events - 1:
            break
    delivered = len(seen)
    lost = subscription.lost
    subscription.close()
    bus.close()
    server.stop()
    result = {
        'event_bytes': nbytes,
        'events': events,
        'retention': retention,
        'retention_bound_bytes': bound_bytes,
        'peak_ring_bytes': peak_ring_bytes,
        'final_ring_bytes': stats['ring_bytes'],
        'dropped_pushes': stats['dropped_pushes'],
        'consumer_delivered': delivered,
        'consumer_lost': lost,
        'retention_bound_enforced': (
            peak_ring_bytes <= bound_bytes and delivered + lost == events
        ),
    }
    print(
        f'backpressure: ring peaked at {peak_ring_bytes >> 20} MiB '
        f'(bound {bound_bytes >> 20} MiB), {stats["dropped_pushes"]} pushes '
        f'dropped, consumer recovered {delivered} + lost {lost} of {events} '
        f'-> bound enforced: {result["retention_bound_enforced"]}',
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--out', default='BENCH_stream.json')
    parser.add_argument(
        '--smoke',
        action='store_true',
        help='quick CI run: 1KB and 1MB points only, fewer items',
    )
    args = parser.parse_args(argv)

    throughput = bench_throughput(SMOKE_SWEEP if args.smoke else SWEEP)
    backpressure = bench_backpressure()

    passes_2x = all(entry['passes_2x'] for entry in throughput)
    report = {
        'benchmark': 'stream_channels',
        'python': sys.version.split()[0],
        'platform': platform.platform(),
        'smoke': args.smoke,
        'emulation': {
            'one_way_latency_s': ONE_WAY_LATENCY_S,
            'link_bandwidth_Gbps': round(LINK_BANDWIDTH_BPS * 8 / 1e9, 2),
            'data_nodes': N_DATA_NODES,
            'shard_threshold': SHARD_THRESHOLD,
            'prefetch': PREFETCH,
        },
        'throughput': throughput,
        'passes_2x_at_1MB_plus': passes_2x,
        'backpressure': backpressure,
    }
    with open(args.out, 'w') as f:
        json.dump(report, f, indent=2)
    print(
        f'wrote {args.out} (>=2x at >=1MB: {passes_2x}, retention bound '
        f'enforced: {backpressure["retention_bound_enforced"]})',
    )
    return 0


if __name__ == '__main__':
    raise SystemExit(main())
