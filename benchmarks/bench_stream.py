"""Benchmark of streaming proxy channels versus inline-payload events.

Compares two ways to stream items from a producer to a consumer:

* **proxy** — each item's bulk data goes through the data-plane store (a
  4-node sharded DIM store) and only a tiny key+metadata event rides the
  broker; the consumer resolves proxies with a small prefetch window.
* **inline** — the serialized item is embedded in the event itself, so
  every payload byte crosses the event broker twice (publish + push), the
  classic "data rides the message bus" design.

Both run against servers in *separate processes* behind the same network
emulator as ``bench_kv_transport`` (constant latency, leaky-bucket
bandwidth per link), because on a bare in-process loopback every design is
equally memcpy-bound.  Links are paced to 0.5 Gbps so the Python client's
own per-item overhead (~100 MB/s at 1 MB items) does not mask the
architecture effect; the broker gets one link, each DIM node its own —
the deployment shape where decoupling data flow from the event stream
pays.  The inline baseline runs in its best configuration per size
(batched publishes for small items, per-item for large).

A third scenario exercises the **consumer-group** layer over the same
emulator: a partitioned topic is drained by 1 then 4 single-process group
members (separate Python processes — one consumer's throughput is bound by
its own sequential per-item round trips, which is exactly what a group
parallelizes), and a 3-member group has one member SIGKILLed mid-workload
to measure at-least-once redelivery.

Acceptance (recorded in the JSON):

* proxy streaming sustains **>= 2x MB/s** over inline events at >= 1 MB
  items,
* a slow consumer cannot grow broker memory without bound — the per-topic
  ring retention is enforced while the consumer stalls, and the consumer
  still converges afterwards (events beyond retention counted as lost),
* a 4-member consumer group sustains **>= 3x delivered-MB/s** over a
  single member on the same partitioned topic, and
* killing 1 of 3 group members mid-run loses zero events: survivors
  redeliver the victim's un-acked window and coverage stays complete.

Run directly (also used as a CI step)::

    PYTHONPATH=src python benchmarks/bench_stream.py --out BENCH_stream.json
    PYTHONPATH=src python benchmarks/bench_stream.py --smoke
"""
from __future__ import annotations

import argparse
import gc
import json
import multiprocessing
import os
import platform
import queue
import sys
import threading
import time
from typing import Any

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_kv_transport import _spawn_nodes  # noqa: E402

from repro.connectors.zmq import ZMQConnector  # noqa: E402
from repro.dim.node import reset_nodes  # noqa: E402
from repro.kvserver.server import KVServer  # noqa: E402
from repro.store import Store  # noqa: E402
from repro.stream import KVEventBus  # noqa: E402
from repro.stream import StreamConsumer  # noqa: E402
from repro.stream import StreamProducer  # noqa: E402

ONE_WAY_LATENCY_S = 0.0002
LINK_BANDWIDTH_BPS = 62_500_000  # 0.5 Gbps per emulated link
N_DATA_NODES = 4
SHARD_THRESHOLD = 512 * 1024
PREFETCH = 6

#: (label, nbytes, item count, proxy batch, inline batch) per sweep point.
#: ``None`` batch = per-item sends (the inline baseline's best mode for
#: large items; batching is its best mode for small ones).
SWEEP = [
    ('1KB', 1024, 500, 64, 64),
    ('1MB', 1 << 20, 32, 8, None),
    ('8MB', 1 << 23, 8, 4, None),
    ('64MB', 1 << 26, 3, None, None),
]
SMOKE_SWEEP = [
    ('1KB', 1024, 200, 64, 64),
    ('1MB', 1 << 20, 20, 4, None),
]

#: Sweep points at or below this size also run ``policy='auto'`` — the
#: adaptive route must match the inline baseline in the small regime.
AUTO_POINT_MAX_BYTES = 1024
#: ``--gate`` bound: auto must reach this fraction of inline MB/s at 1 KB.
#: The committed full-run JSON shows >= 1.0x; the margin absorbs runner
#: noise only.
AUTO_GATE_MIN_RATIO = 0.9

#: Runs per (mode, size); the fastest is kept.  As in bench_kv_transport,
#: scheduling interference (emulator pumps, node processes, and the
#: client share the cores) only ever adds time, so best-of is the
#: cleanest estimate of each design's capability.
REPETITIONS = 3

# Consumer-group scenario parameters.  The group fleet uses a *longer*
# wire (5 ms one-way: a metro-area hop) and sub-shard items: each member
# resolves its items one round trip at a time (prefetch 0, one get per
# item on one node), so a single member is latency-bound — the regime
# where splitting the partitions across member processes parallelizes the
# per-item round trips and delivered-MB/s scales with the member count.
GROUP_ONE_WAY_LATENCY_S = 0.005
GROUP_PARTITIONS = 4
GROUP_ITEM_BYTES = 128 * 1024
GROUP_ITEMS = 192
GROUP_SMOKE_ITEMS = 96
GROUP_SESSION_TIMEOUT = 10.0
GROUP_NAME = 'bench-group'
#: Ring placement over the peer nodes (sub-shard items would otherwise be
#: pinned to the producer's *local* in-process node, which forked member
#: processes inherit — resolving would be a memcpy, not a network fetch).
GROUP_RING_VNODES = 64
#: Commit/evict every N items — amortizes the ack round trips the same
#: way for every fleet size, so the scaling ratio measures the data path.
GROUP_ACK_EVERY = 8
KILL_ITEMS = 32
KILL_SESSION_TIMEOUT = 1.5


def _run_stream(
    mode: str,
    nbytes: int,
    count: int,
    batch: int | None,
    broker_addr: tuple[str, int],
    peers: list,
    tag: str,
) -> dict[str, Any]:
    """One producer->consumer run; returns wall time and delivered bytes."""
    gc.collect()  # level the field: no run pays for a prior run's garbage
    connector = ZMQConnector(
        f'bench-client-{tag}',
        peers=peers,
        shard_threshold=SHARD_THRESHOLD,
        pool_size=2,
    )
    store = Store(f'stream-bench-{tag}', connector, cache_size=0)
    bus = KVEventBus(
        *broker_addr, retention=max(8, count), poll_interval=0.05,
    )
    topic = f'bench-{tag}'
    consumer = StreamConsumer(
        store, bus, topic,
        from_seq=0,
        timeout=300.0,
        prefetch=PREFETCH if mode == 'proxy' else 0,
    )
    consumer._ensure_subscribed()
    policy = {'proxy': 'proxy', 'inline': 'inline', 'auto': 'auto'}[mode]
    producer = StreamProducer(store, bus, topic, policy=policy)
    payload = b'\xab' * nbytes

    def produce() -> None:
        if batch:
            items = [payload] * count
            for i in range(0, count, batch):
                producer.send_batch(items[i:i + batch])
        else:
            for _ in range(count):
                producer.send(payload)
        producer.close()

    start = time.perf_counter()
    feeder = threading.Thread(target=produce)
    feeder.start()
    delivered_bytes = 0
    delivered = 0
    for item in consumer:
        data = item if isinstance(item, (bytes, bytearray)) else bytes(item)
        delivered_bytes += len(data)
        delivered += 1
    feeder.join()
    elapsed = time.perf_counter() - start
    assert delivered == count, f'{mode}: delivered {delivered}/{count}'
    assert delivered_bytes == count * nbytes
    store.close(clear=True)
    bus.close()
    return {
        'elapsed_s': round(elapsed, 4),
        'MBps': round(delivered_bytes / elapsed / 1e6, 1),
        'events_per_s': round(count / elapsed, 1),
    }


def bench_throughput(sweep: list) -> list[dict[str, Any]]:
    """Proxy vs inline events/s and MB/s across payload sizes."""
    procs, addresses = _spawn_nodes(
        1 + N_DATA_NODES,
        latency_s=ONE_WAY_LATENCY_S,
        bandwidth_bps=LINK_BANDWIDTH_BPS,
    )
    broker_addr, node_addrs = addresses[0], addresses[1:]
    peers = [
        (f'bench-node-{i}', host, port)
        for i, (host, port) in enumerate(node_addrs)
    ]
    results = []
    try:
        for label, nbytes, count, proxy_batch, inline_batch in sweep:
            entry: dict[str, Any] = {
                'size': label,
                'payload_bytes': nbytes,
                'items': count,
            }
            entry['proxy'] = min(
                (
                    _run_stream(
                        'proxy', nbytes, count, proxy_batch,
                        broker_addr, peers, f'proxy-{label}-{rep}',
                    )
                    for rep in range(REPETITIONS)
                ),
                key=lambda run: run['elapsed_s'],
            )
            # Interleave inline and auto repetitions so both modes see the
            # same broker state (topics and rings accumulate over a sweep;
            # running one mode strictly after the other would bias the
            # later one).  Small sweep points compare policy='auto' against
            # the inline baseline: the adaptive policy must route these
            # items inline and match its throughput (the sub-threshold
            # fast path), while still being the same producer that proxies
            # large items.
            run_auto = nbytes <= AUTO_POINT_MAX_BYTES
            inline_runs: list[dict[str, Any]] = []
            auto_runs: list[dict[str, Any]] = []
            for rep in range(REPETITIONS):
                modes = ['inline'] + (['auto'] if run_auto else [])
                if rep % 2:  # alternate order to cancel ordering bias
                    modes.reverse()
                for mode in modes:
                    runs = inline_runs if mode == 'inline' else auto_runs
                    runs.append(_run_stream(
                        mode, nbytes, count, inline_batch,
                        broker_addr, peers, f'{mode}-{label}-{rep}',
                    ))
            entry['inline'] = min(
                inline_runs, key=lambda run: run['elapsed_s'],
            )
            entry['speedup_MBps'] = round(
                entry['proxy']['MBps'] / entry['inline']['MBps'], 2,
            )
            entry['passes_2x'] = (
                nbytes < (1 << 20) or entry['speedup_MBps'] >= 2.0
            )
            if run_auto:
                entry['auto'] = min(
                    auto_runs, key=lambda run: run['elapsed_s'],
                )
                entry['auto_vs_inline_MBps'] = round(
                    entry['auto']['MBps'] / entry['inline']['MBps'], 2,
                )
                entry['passes_auto'] = (
                    entry['auto_vs_inline_MBps'] >= AUTO_GATE_MIN_RATIO
                )
            results.append(entry)
            auto_note = (
                f'   auto {entry["auto"]["MBps"]:>7.1f} MB/s '
                f'({entry["auto_vs_inline_MBps"]:.2f}x inline)'
                if 'auto' in entry else ''
            )
            print(
                f'{label:>5}: proxy {entry["proxy"]["MBps"]:>7.1f} MB/s '
                f'({entry["proxy"]["events_per_s"]:>8.1f} ev/s)   '
                f'inline {entry["inline"]["MBps"]:>7.1f} MB/s '
                f'({entry["inline"]["events_per_s"]:>8.1f} ev/s)   '
                f'speedup {entry["speedup_MBps"]:>5.2f}x{auto_note}',
            )
    finally:
        for proc in procs:
            proc.terminate()
        reset_nodes()
    return results


def bench_backpressure(*, retention: int = 8, events: int = 64) -> dict[str, Any]:
    """A stalled consumer must not grow broker memory beyond retention.

    1 MB inline events against a tiny ring: while the consumer sleeps, the
    broker drops pushes at the highwater mark and ages events out of the
    ring — broker memory stays bounded.  When the consumer resumes it
    converges on the stream head, with everything beyond retention counted
    as lost rather than silently skipped.
    """
    nbytes = 1 << 20
    server = KVServer(stream_retention=retention)
    host, port = server.start()
    assert server.port is not None
    # A tiny local queue makes the consumer genuinely stall its TCP stream,
    # engaging the server's highwater push-dropping as well as the ring.
    bus = KVEventBus(host, port, poll_interval=0.05, max_queued_batches=2)
    bus.configure_topic('backpressure', retention=retention)
    subscription = bus.subscribe('backpressure')
    payload = b'\xcd' * nbytes
    peak_ring_bytes = 0
    for _ in range(events):
        bus.publish('backpressure', payload)
        stats = bus.topic_stats('backpressure')
        assert stats is not None
        peak_ring_bytes = max(peak_ring_bytes, stats['ring_bytes'])
    time.sleep(0.3)  # consumer is stalled the whole time
    stats = bus.topic_stats('backpressure')
    assert stats is not None
    bound_bytes = retention * nbytes
    # Consumer resumes: it must converge on the head via ring catch-up.
    seen: list[int] = []
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        seen.extend(seq for seq, _ in subscription.next_batch(timeout=1.0))
        if seen and seen[-1] == events - 1:
            break
    delivered = len(seen)
    lost = subscription.lost
    subscription.close()
    bus.close()
    server.stop()
    result = {
        'event_bytes': nbytes,
        'events': events,
        'retention': retention,
        'retention_bound_bytes': bound_bytes,
        'peak_ring_bytes': peak_ring_bytes,
        'final_ring_bytes': stats['ring_bytes'],
        'dropped_pushes': stats['dropped_pushes'],
        'consumer_delivered': delivered,
        'consumer_lost': lost,
        'retention_bound_enforced': (
            peak_ring_bytes <= bound_bytes and delivered + lost == events
        ),
    }
    print(
        f'backpressure: ring peaked at {peak_ring_bytes >> 20} MiB '
        f'(bound {bound_bytes >> 20} MiB), {stats["dropped_pushes"]} pushes '
        f'dropped, consumer recovered {delivered} + lost {lost} of {events} '
        f'-> bound enforced: {result["retention_bound_enforced"]}',
    )
    return result


# --------------------------------------------------------------------------- #
# Consumer-group scenarios
# --------------------------------------------------------------------------- #
def _group_member_main(
    report: Any,
    gate: Any,
    member: str,
    broker_addr: tuple[str, int],
    peers: list,
    topic: str,
    pace: float,
    ack_every: int | None,
    session_timeout: float,
) -> None:
    """Subprocess body: one group member draining its partitions.

    Joins the group at construction, reports ``('joined', ...)``, then
    waits for the parent's gate so every fleet size starts from a
    converged membership.  Emits ``('val', member, i)`` per item (the
    parent's coverage ledger) and a final ``('done', member, stats)``.
    """
    connector = ZMQConnector(
        f'bench-group-{member}',
        peers=peers,
        shard_threshold=SHARD_THRESHOLD,
        ring_vnodes=GROUP_RING_VNODES,
        pool_size=2,
    )
    store = Store('stream-group-bench', connector, cache_size=0)
    bus = KVEventBus(*broker_addr, poll_interval=0.05)
    consumer = StreamConsumer(
        store, bus, topic,
        group=GROUP_NAME,
        partitions=GROUP_PARTITIONS,
        member=member,
        session_timeout=session_timeout,
        timeout=120.0,
    )
    report.put(('joined', member, None))
    gate.wait()
    consumer.refresh()
    started = time.time()
    ended = started
    delivered_bytes = 0
    since_ack = 0
    for item in consumer:
        report.put(('val', member, int(item['i'])))
        delivered_bytes += len(item['data'])
        since_ack += 1
        if ack_every and since_ack >= ack_every:
            consumer.ack()
            since_ack = 0
        # Timestamp the last *processed* item: iteration only returns once
        # the whole group converges on done, and that coordination tail
        # (0.1 s poll quanta) is not part of the delivered-MB/s data path.
        ended = time.time()
        if pace:
            time.sleep(pace)
    if ack_every:
        consumer.ack()
    stats = consumer.stats()
    consumer.close()
    report.put((
        'done', member,
        {**stats, 'bytes': delivered_bytes, 'start': started, 'end': ended},
    ))
    store.close()
    bus.close()


def _publish_group_topic(
    broker_addr: tuple[str, int],
    peers: list,
    topic: str,
    count: int,
    nbytes: int,
) -> None:
    """Publish ``count`` items round-robin across the partition topics."""
    connector = ZMQConnector(
        f'bench-group-producer-{topic}',
        peers=peers,
        shard_threshold=SHARD_THRESHOLD,
        ring_vnodes=GROUP_RING_VNODES,
        pool_size=2,
    )
    store = Store('stream-group-bench', connector, cache_size=0)
    bus = KVEventBus(
        *broker_addr, retention=max(64, count), poll_interval=0.05,
    )
    producer = StreamProducer(
        store, bus, topic, partitions=GROUP_PARTITIONS,
    )
    payload = b'\xee' * nbytes
    for i in range(count):
        producer.send({'i': i, 'data': payload})
    producer.close()
    bus.close()
    store.close()  # no clear: members evict the keys as they ack


def _run_group_fleet(
    members: list[tuple[str, float, int | None]],
    topic: str,
    count: int,
    nbytes: int,
    broker_addr: tuple[str, int],
    peers: list,
    session_timeout: float,
    kill: str | None = None,
    kill_after_vals: int = 2,
    kill_grace_s: float = 0.5,
) -> dict[str, Any]:
    """Publish ``count`` items, then drain them with a group-member fleet.

    ``members`` is ``(name, pace_seconds, ack_every_or_None)`` per member.
    With ``kill=<name>``, that member is SIGKILLed once it has reported
    ``kill_after_vals`` items plus a heartbeat's grace — mid-workload, so
    its un-acked window must be redelivered to the survivors.
    """
    _publish_group_topic(broker_addr, peers, topic, count, nbytes)
    context = multiprocessing.get_context('fork')
    report = context.Queue()
    gate = context.Event()
    procs = {
        name: context.Process(
            target=_group_member_main,
            args=(
                report, gate, name, broker_addr, peers, topic,
                pace, ack_every, session_timeout,
            ),
            daemon=True,
        )
        for name, pace, ack_every in members
    }
    for proc in procs.values():
        proc.start()
    joined: set[str] = set()
    deadline = time.monotonic() + 60.0
    while len(joined) < len(procs):
        kind, member, _ = report.get(timeout=max(0.1, deadline - time.monotonic()))
        assert kind == 'joined', kind
        joined.add(member)
    gate.set()
    values: dict[str, list[int]] = {name: [] for name in procs}
    stats: dict[str, dict[str, Any]] = {}
    killed = False
    expected_done = len(procs) - (1 if kill else 0)
    deadline = time.monotonic() + 300.0
    while len(stats) < expected_done:
        assert time.monotonic() < deadline, (
            f'group fleet stalled: done={sorted(stats)}, '
            f'values={ {m: len(v) for m, v in values.items()} }'
        )
        try:
            kind, member, payload = report.get(timeout=1.0)
        except queue.Empty:
            continue
        if kind == 'val':
            values[member].append(payload)
        elif kind == 'done':
            stats[member] = payload
        if kill and not killed and len(values[kill]) >= kill_after_vals:
            # One more heartbeat reports the victim's delivered positions
            # (the group watermark survivors count redelivery against).
            time.sleep(kill_grace_s)
            procs[kill].kill()
            killed = True
    for name, proc in procs.items():
        proc.join(timeout=10.0)
        if kill and name == kill:
            assert proc.exitcode not in (0, None), 'victim exited cleanly'
        else:
            assert proc.exitcode == 0, f'{name} exited {proc.exitcode}'
    elapsed = (
        max(s['end'] for s in stats.values())
        - min(s['start'] for s in stats.values())
    )
    return {'values': values, 'stats': stats, 'elapsed_s': elapsed}


def bench_group_scaling(
    broker_addr: tuple[str, int],
    peers: list,
    count: int,
    repetitions: int,
) -> dict[str, Any]:
    """Delivered-MB/s of 1 vs 4 group members over one partitioned topic."""
    runs = []
    for n_members in (1, 4):
        best: dict[str, Any] | None = None
        for rep in range(repetitions):
            topic = f'bench-group-scale-{n_members}-{rep}'
            members = [
                (f'scale{n_members}r{rep}-m{i}', 0.0, GROUP_ACK_EVERY)
                for i in range(n_members)
            ]
            run = _run_group_fleet(
                members, topic, count, GROUP_ITEM_BYTES,
                broker_addr, peers, GROUP_SESSION_TIMEOUT,
            )
            seen = {v for vals in run['values'].values() for v in vals}
            assert seen == set(range(count)), (
                f'{n_members} members: incomplete coverage '
                f'({len(seen)}/{count})'
            )
            entry = {
                'elapsed_s': round(run['elapsed_s'], 4),
                'MBps': round(count * GROUP_ITEM_BYTES / run['elapsed_s'] / 1e6, 1),
                'delivered': sum(s['delivered'] for s in run['stats'].values()),
                'redelivered': sum(
                    s['redelivered'] for s in run['stats'].values()
                ),
                'lost': sum(s['lost'] for s in run['stats'].values()),
            }
            if best is None or entry['elapsed_s'] < best['elapsed_s']:
                best = entry
        assert best is not None
        runs.append({'consumers': n_members, **best})
        print(
            f'group x{n_members}: {best["MBps"]:>6.1f} MB/s '
            f'({best["delivered"]} delivered, '
            f'{best["redelivered"]} redelivered)',
        )
    scaling = round(runs[1]['MBps'] / runs[0]['MBps'], 2)
    return {
        'items': count,
        'item_bytes': GROUP_ITEM_BYTES,
        'partitions': GROUP_PARTITIONS,
        'ack_every': GROUP_ACK_EVERY,
        'runs': runs,
        'scaling_MBps_4_over_1': scaling,
        'passes_3x_at_4': scaling >= 3.0,
    }


def bench_group_kill(
    broker_addr: tuple[str, int],
    peers: list,
    count: int = KILL_ITEMS,
) -> dict[str, Any]:
    """SIGKILL 1 of 3 group members mid-workload; survivors must cover all.

    The victim (named to sort first, so round-robin assigns it two of the
    four partitions) paces slowly and never acks — the worst case: its
    whole delivered window is un-acked when the kill lands.  Survivors
    must redeliver it from the committed offsets after lease expiry, so
    their coverage alone spans every item, with zero events lost.
    """
    victim = 'a-victim'
    members: list[tuple[str, float, int | None]] = [
        (victim, 0.2, None),
        ('surv-1', 0.01, 4),
        ('surv-2', 0.01, 4),
    ]
    run = _run_group_fleet(
        members, 'bench-group-kill', count, GROUP_ITEM_BYTES,
        broker_addr, peers, KILL_SESSION_TIMEOUT, kill=victim,
    )
    survivor_seen = {
        v for name, vals in run['values'].items()
        for v in vals if name != victim
    }
    coverage_complete = survivor_seen == set(range(count))
    redelivered = sum(s['redelivered'] for s in run['stats'].values())
    lost = sum(s['lost'] for s in run['stats'].values())
    result = {
        'items': count,
        'item_bytes': GROUP_ITEM_BYTES,
        'members': len(members),
        'killed': victim,
        'victim_delivered_before_kill': len(run['values'][victim]),
        'survivor_delivered': sum(
            s['delivered'] for s in run['stats'].values()
        ),
        'redelivered': redelivered,
        'deduplicated': sum(
            s['deduplicated'] for s in run['stats'].values()
        ),
        'lost': lost,
        'elapsed_s': round(run['elapsed_s'], 4),
        'at_least_once_held': coverage_complete and lost == 0 and redelivered >= 1,
    }
    print(
        f'group kill: victim died after {result["victim_delivered_before_kill"]} '
        f'items un-acked, survivors redelivered {redelivered}, lost {lost} '
        f'-> at-least-once held: {result["at_least_once_held"]}',
    )
    return result


def bench_group(smoke: bool) -> dict[str, Any]:
    """Consumer-group scaling + kill-one-member, on a fresh emulated fleet."""
    procs, addresses = _spawn_nodes(
        1 + N_DATA_NODES,
        latency_s=GROUP_ONE_WAY_LATENCY_S,
        bandwidth_bps=LINK_BANDWIDTH_BPS,
    )
    broker_addr, node_addrs = addresses[0], addresses[1:]
    peers = [
        (f'bench-gnode-{i}', host, port)
        for i, (host, port) in enumerate(node_addrs)
    ]
    try:
        scaling = bench_group_scaling(
            broker_addr, peers,
            GROUP_SMOKE_ITEMS if smoke else GROUP_ITEMS,
            1 if smoke else REPETITIONS,
        )
        kill = bench_group_kill(broker_addr, peers)
    finally:
        for proc in procs:
            proc.terminate()
        reset_nodes()
    return {
        'emulation': {
            'one_way_latency_s': GROUP_ONE_WAY_LATENCY_S,
            'link_bandwidth_Gbps': round(LINK_BANDWIDTH_BPS * 8 / 1e9, 2),
            'data_nodes': N_DATA_NODES,
        },
        'scaling': scaling,
        'kill_one_consumer': kill,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--out', default='BENCH_stream.json')
    parser.add_argument(
        '--smoke',
        action='store_true',
        help='quick CI run: 1KB and 1MB points and a smaller group '
             'scaling sweep (the kill-one-consumer scenario runs in full)',
    )
    parser.add_argument(
        '--gate',
        action='store_true',
        help=f'exit non-zero unless policy=auto reaches '
             f'{AUTO_GATE_MIN_RATIO}x of inline MB/s on the small sweep '
             f'points',
    )
    args = parser.parse_args(argv)

    throughput = bench_throughput(SMOKE_SWEEP if args.smoke else SWEEP)
    backpressure = bench_backpressure()
    consumer_group = bench_group(args.smoke)

    passes_2x = all(entry['passes_2x'] for entry in throughput)
    passes_auto = all(
        entry.get('passes_auto', True) for entry in throughput
    )
    report = {
        'benchmark': 'stream_channels',
        'python': sys.version.split()[0],
        'platform': platform.platform(),
        'smoke': args.smoke,
        'emulation': {
            'one_way_latency_s': ONE_WAY_LATENCY_S,
            'link_bandwidth_Gbps': round(LINK_BANDWIDTH_BPS * 8 / 1e9, 2),
            'data_nodes': N_DATA_NODES,
            'shard_threshold': SHARD_THRESHOLD,
            'prefetch': PREFETCH,
        },
        'throughput': throughput,
        'passes_2x_at_1MB_plus': passes_2x,
        'passes_auto_at_small': passes_auto,
        'backpressure': backpressure,
        'consumer_group': consumer_group,
    }
    with open(args.out, 'w') as f:
        json.dump(report, f, indent=2)
    print(
        f'wrote {args.out} (>=2x at >=1MB: {passes_2x}, auto at small '
        f'sizes: {passes_auto}, retention bound '
        f'enforced: {backpressure["retention_bound_enforced"]}, group '
        f'scaling {consumer_group["scaling"]["scaling_MBps_4_over_1"]}x '
        f'at 4 consumers, at-least-once held: '
        f'{consumer_group["kill_one_consumer"]["at_least_once_held"]})',
    )
    if args.gate and not passes_auto:
        failing = [
            f'{e["size"]} auto {e["auto_vs_inline_MBps"]:.2f}x inline'
            for e in throughput if not e.get('passes_auto', True)
        ]
        print(f'GATE FAILED: {failing}')
        return 1
    return 0


if __name__ == '__main__':
    raise SystemExit(main())
