"""Table 2: real-time defect analysis round-trip task times."""
from __future__ import annotations

from benchmarks.conftest import full_sweeps
from benchmarks.conftest import print_table
from repro.harness.table2 import run_table2


def test_table2_defect_analysis(benchmark):
    repeats = 10 if full_sweeps() else 3
    table = benchmark.pedantic(
        lambda: run_table2(repeats=repeats, image_side=512), rounds=1, iterations=1,
    )
    print_table(table)
    # Proxying task inputs yields >30 % improvements for FileStore and >15 %
    # for EndpointStore (the paper reports 30-37 %), and proxying the outputs
    # as well never makes things worse by more than a few percent.
    file_inputs = table.value('improvement_pct', configuration='FileStore (inputs)')
    endpoint_inputs = table.value('improvement_pct', configuration='EndpointStore (inputs)')
    assert file_inputs > 30.0
    assert endpoint_inputs > 15.0
    file_both = table.value('improvement_pct', configuration='FileStore (inputs/outputs)')
    assert file_both > file_inputs - 5.0
