"""Figure 5: Globus Compute round-trip times with and without ProxyStore.

Regenerates both panels (no-op and 1 s sleep tasks) for the four
client/endpoint placements.  The quick sweep covers 10 B - 10 MB (the cloud
baseline is cut off at its 5 MB payload limit exactly as in the paper);
``REPRO_BENCH_FULL=1`` extends the sweep to 100 MB.
"""
from __future__ import annotations

from benchmarks.conftest import full_sweeps
from benchmarks.conftest import print_table
from repro.harness.fig5 import run_figure5
from repro.simulation import size_sweep


def _sizes() -> list[int]:
    return size_sweep(10, 100_000_000 if full_sweeps() else 10_000_000)


def test_fig5_noop_tasks(benchmark):
    table = benchmark.pedantic(
        lambda: run_figure5(task_type='noop', sizes=_sizes()), rounds=1, iterations=1,
    )
    print_table(table)
    # The cloud baseline must be unavailable above the payload limit while
    # every ProxyStore option still handles the largest payloads.
    largest = max(_sizes())
    assert table.value('roundtrip_s', configuration='Theta -> Theta',
                       method='cloud', input_bytes=largest) is None
    assert table.value('roundtrip_s', configuration='Theta -> Theta',
                       method='file-store', input_bytes=largest) is not None


def test_fig5_sleep_tasks(benchmark):
    table = benchmark.pedantic(
        lambda: run_figure5(task_type='sleep', sizes=_sizes()), rounds=1, iterations=1,
    )
    print_table(table)
    # Asynchronous proxy resolution overlaps with the 1 s of compute, so a
    # proxied 1 MB input costs barely more than the no-op floor plus 1 s.
    small = table.value('roundtrip_s', configuration='Midway2 -> Theta',
                        method='endpoint-store', input_bytes=10)
    large = table.value('roundtrip_s', configuration='Midway2 -> Theta',
                        method='endpoint-store', input_bytes=1_000_000)
    assert large - small < 0.75
