"""Ablations: component-level costs of the design choices in DESIGN.md."""
from __future__ import annotations

from benchmarks.conftest import print_table
from repro.harness.ablations import run_ablations


def test_ablations(benchmark):
    table = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    print_table(table)
    # Caching removes repeated deserialization cost.
    cached = table.value('seconds', ablation='deserialization-cache', variant='cache-enabled')
    uncached = table.value('seconds', ablation='deserialization-cache', variant='cache-disabled')
    assert cached < uncached
    # Evict-on-resolve leaves no objects behind.
    assert table.value('seconds', ablation='evict-flag', variant='evict-on-resolve') == 0.0
    assert table.value('seconds', ablation='evict-flag', variant='keep') > 0.0
    # Proxy access is slower than direct access but within a small factor.
    direct = table.value('seconds', ablation='proxy-overhead', variant='direct-access')
    proxied = table.value('seconds', ablation='proxy-overhead', variant='via-proxy')
    assert proxied > direct
