"""Shared configuration for the benchmark suite.

Each benchmark regenerates one table or figure of the paper by calling the
corresponding ``repro.harness`` function under ``pytest-benchmark`` and then
printing the resulting rows/series (captured with ``-s`` or in the pytest
summary output).  Set ``REPRO_BENCH_FULL=1`` to run the full parameter sweeps
used in EXPERIMENTS.md instead of the quicker default sweeps.
"""
from __future__ import annotations

import os

import pytest


def full_sweeps() -> bool:
    """Whether to run the paper-scale parameter sweeps (slower)."""
    return os.environ.get('REPRO_BENCH_FULL', '0') not in ('0', '', 'false')


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Benchmarks share the process: keep registries isolated between them."""
    yield
    from repro.dim import reset_nodes
    from repro.endpoint.endpoint import reset_endpoint_registry
    from repro.globus_sim import reset_transfer_service
    from repro.store import unregister_all

    unregister_all()
    reset_nodes()
    reset_endpoint_registry()
    reset_transfer_service()


def print_table(table) -> None:
    """Print a harness result table below the benchmark output."""
    print()
    print(table)
