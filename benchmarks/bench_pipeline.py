"""Benchmark of a 3-stage pipeline surviving broker and consumer crashes.

The flagship robustness scenario: an **ingest -> transform -> index**
document pipeline runs over a three-broker fleet with ``replicas=2``
(every partition topic and both group coordinators mirrored onto a ring
successor), and mid-run a seeded fault plan SIGKILLs

* one **transform worker** (a real subprocess, killed without acking its
  in-flight window), and
* the **broker acting as the index group's coordinator** (a real broker
  subprocess, taking its partitions' primaries and its coordinator state
  with it).

Stage layout:

* **ingest** — the parent publishes ``DOCS`` synthetic documents to a
  partitioned topic through a replicated producer.
* **transform** — two subprocess workers form a consumer group over the
  ingest topic, tokenize each document, publish the result to the index
  topic (also replicated), and ack behind the publish so a crash can
  only duplicate work, never lose it.
* **index** — the parent drains the index topic through a second
  consumer group, deduplicating by document id into the final index.

Acceptance (recorded in the JSON):

* every document reaches the index despite both kills (coverage is
  complete, nothing counted lost at either group stage),
* offsets committed before the broker kill survive onto the replica
  coordinator (the group fails over instead of rewinding),
* recovery time — kill to next indexed document — is measured and
  bounded, and
* acked keys are evicted: the data-plane store ends empty.

Run directly (also used as a CI step)::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --out BENCH_pipeline.json
    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke
"""
from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import sys
import threading
import time
from typing import Any

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import repro  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402

PARTITIONS = 4
REPLICAS = 2
BROKERS = 3
DOCS = 160
SMOKE_DOCS = 48
INGEST_TOPIC = 'pipeline-ingest'
INDEX_TOPIC = 'pipeline-index'
TRANSFORM_GROUP = 'pipeline-transform'
INDEX_GROUP = 'pipeline-index'
STORE_NAME = 'pipeline-store'
WORKER_SESSION_TIMEOUT = 2.0
#: The victim transform worker paces slowly and never acks — the
#: worst-case crash state: its whole delivered window is un-acked when
#: the kill lands and must be redelivered.  The survivor runs flat out.
VICTIM_PACE_S = 0.05
VICTIM_ACK_EVERY = None
SURVIVOR_ACK_EVERY = 4
#: Kill the victim once it has delivered this many documents (plus one
#: heartbeat's grace, so the positions are watermarked as redelivery).
KILL_VICTIM_AFTER = 6

_WORDS = ('proxy', 'store', 'broker', 'replica', 'offset', 'cursor', 'ring')


def _document(i: int) -> dict[str, Any]:
    body = ' '.join(_WORDS[(i + k) % len(_WORDS)] for k in range(12))
    return {'doc': i, 'text': f'document {i}: {body}'}


def _broker_main(report_queue):
    """Broker subprocess: serve on an ephemeral port until SIGKILLed."""
    from repro.kvserver.server import KVServer

    server = KVServer(stream_retention=1024)
    _host, port = server.start()
    report_queue.put((os.getpid(), port))
    while True:
        time.sleep(0.5)


def _transform_worker(
    store_addr, broker_urls, member, pace, ack_every, report_queue,
):
    """Stage-2 subprocess: consume ingest docs, tokenize, publish to index.

    Acks *behind* the publish: a crash between publish and ack duplicates
    the document downstream (the index stage dedups), but never drops it.
    """
    from repro.exceptions import StoreKeyError
    from repro.stream import StreamConsumer
    from repro.stream import StreamProducer

    host, port = store_addr
    store = repro.store_from_url(f'redis://{host}:{port}/{STORE_NAME}')
    consumer = StreamConsumer(
        store, broker_urls, INGEST_TOPIC,
        group=TRANSFORM_GROUP, partitions=PARTITIONS, replicas=REPLICAS,
        member=member, session_timeout=WORKER_SESSION_TIMEOUT, timeout=120.0,
    )
    producer = StreamProducer(
        store, broker_urls, INDEX_TOPIC,
        partitions=PARTITIONS, replicas=REPLICAS,
    )
    report_queue.put(('joined', member, None))
    since_ack = 0
    transformed = 0
    skipped = 0
    for item in consumer:
        try:
            tokens = item['text'].split()
        except StoreKeyError:
            # Evicted key: acking is what evicts, so another member
            # already processed this document — skip, don't re-publish.
            skipped += 1
            continue
        producer.send({
            'doc': int(item['doc']),
            'tokens': len(tokens),
            'by': member,
        })
        report_queue.put(('val', member, int(item['doc'])))
        transformed += 1
        since_ack += 1
        if ack_every and since_ack >= ack_every:
            consumer.ack()
            since_ack = 0
        if pace:
            time.sleep(pace)
    consumer.ack()
    stats = consumer.stats()
    consumer.close()
    # No end markers from workers: the parent ends the index topic once
    # the surviving worker reports done (the victim never gets here).
    producer.close(end=False)
    store.close()
    report_queue.put((
        'done', member,
        {**stats, 'transformed': transformed, 'skipped': skipped},
    ))


def run_pipeline(docs: int, seed: int) -> dict[str, Any]:
    from repro.kvserver.server import KVServer
    from repro.stream import StreamConsumer
    from repro.stream import StreamProducer

    # The data-plane store lives on its own parent-owned server — the
    # chaos targets the *brokers* and a *consumer*; DIM-node crashes are
    # bench_fig6/test_cluster territory.
    store_server = KVServer()
    store_addr = store_server.start()
    store = repro.store_from_url(
        f'redis://{store_addr[0]}:{store_addr[1]}/{STORE_NAME}',
    )

    ctx = multiprocessing.get_context('spawn')
    ports_queue = ctx.Queue()
    brokers = [
        ctx.Process(target=_broker_main, args=(ports_queue,), daemon=True)
        for _ in range(BROKERS)
    ]
    for proc in brokers:
        proc.start()
    port_by_pid = dict(ports_queue.get(timeout=30) for _ in brokers)
    proc_by_port = {port_by_pid[proc.pid]: proc for proc in brokers}
    urls = [f'kv://127.0.0.1:{port}' for port in sorted(proc_by_port)]

    report_queue = ctx.Queue()
    workers = {
        name: ctx.Process(
            target=_transform_worker,
            args=(store_addr, urls, name, pace, ack_every, report_queue),
            daemon=True,
        )
        for name, pace, ack_every in (
            ('worker-victim', VICTIM_PACE_S, VICTIM_ACK_EVERY),
            ('worker-survivor', 0.0, SURVIVOR_ACK_EVERY),
        )
    }
    worker_stats: dict[str, dict[str, Any]] = {}
    joined: set[str] = set()
    for proc in workers.values():
        proc.start()
    deadline = time.monotonic() + 60.0
    while len(joined) < len(workers):
        kind, member, _ = report_queue.get(
            timeout=max(0.1, deadline - time.monotonic()),
        )
        if kind == 'joined':
            joined.add(member)
    # Let the membership converge on the split assignment before any
    # document exists: both workers must own their half when the kill
    # lands, so the victim's un-acked window is genuinely redelivered.
    time.sleep(1.0)

    # ---- Stage 1: ingest -------------------------------------------------
    started = time.perf_counter()
    ingest_started = started
    producer = StreamProducer(
        store, urls, INGEST_TOPIC, partitions=PARTITIONS, replicas=REPLICAS,
    )
    producer.send_batch([_document(i) for i in range(docs)])
    producer.close(end=True)
    ingest_s = time.perf_counter() - ingest_started

    # A watcher thread owns the worker-side chaos and the end-of-stream
    # bookkeeping, so the parent can keep draining the index consumer —
    # and killing brokers — meanwhile.  It SIGKILLs the victim once its
    # un-acked window is fat enough (after one heartbeat's grace, so the
    # positions are watermarked and the takeover counts as redelivery),
    # and ends the index topic once the survivor finishes stage 2 —
    # which includes redelivering the victim's window.
    progress: dict[str, int] = {}
    chaos: dict[str, Any] = {'worker_killed_at': None, 'faults': []}

    def _watch_transform_stage() -> None:
        watch = time.monotonic() + 300.0
        while time.monotonic() < watch:
            try:
                kind, member, payload = report_queue.get(timeout=1.0)
            except Exception:  # noqa: BLE001 - queue.Empty
                continue
            if kind == 'val':
                progress[member] = progress.get(member, 0) + 1
                if (
                    member == 'worker-victim'
                    and chaos['worker_killed_at'] is None
                    and progress[member] >= KILL_VICTIM_AFTER
                ):
                    time.sleep(0.6)  # one heartbeat reports the positions
                    run = FaultPlan(seed=seed).kill(
                        'transform-worker', at=0.0,
                    ).start(
                        pids={
                            'transform-worker': workers['worker-victim'].pid,
                        },
                    )
                    run.join(timeout=10)
                    chaos['faults'].extend(run.report())
                    chaos['worker_killed_at'] = time.perf_counter()
            elif kind == 'done':
                worker_stats[member] = payload
                if member == 'worker-survivor':
                    closer = StreamProducer(
                        store, urls, INDEX_TOPIC,
                        partitions=PARTITIONS, replicas=REPLICAS,
                    )
                    closer.close(end=True)
                    return

    watcher = threading.Thread(target=_watch_transform_stage)
    watcher.start()

    # ---- Stage 3: index, with faults injected mid-drain ------------------
    consumer = StreamConsumer(
        store, urls, INDEX_TOPIC,
        group=INDEX_GROUP, partitions=PARTITIONS, replicas=REPLICAS,
        member='indexer', timeout=120.0,
    )
    backend = consumer.coordinator._backend
    index: dict[int, int] = {}
    duplicates = 0
    broker_killed_at = None
    broker_recovery_s = None
    coordinator_failover_s = None
    victim_broker = None
    committed_before_kill: dict[str, Any] = {}
    plan_reports: list[dict[str, Any]] = []

    for item in consumer:
        now = time.perf_counter()
        if broker_killed_at is not None and broker_recovery_s is None:
            broker_recovery_s = now - broker_killed_at
        doc = int(item['doc'])
        if doc in index:
            duplicates += 1
        else:
            index[doc] = int(item['tokens'])
        consumer.ack()

        if (
            chaos['worker_killed_at'] is not None
            and broker_killed_at is None
            and len(index) >= docs // 2
        ):
            committed_before_kill = consumer.coordinator.fetch(
                consumer.router.topics,
            )
            victim_broker = backend.acting_broker
            victim_proc = proc_by_port[int(victim_broker.rsplit(':', 1)[1])]
            run = FaultPlan(seed=seed).kill('coordinator-broker', at=0.0).start(
                pids={'coordinator-broker': victim_proc.pid},
            )
            run.join(timeout=10)
            plan_reports.extend(run.report())
            broker_killed_at = time.perf_counter()
            # Time the coordinator failover itself: the next group call
            # must walk past the dead primary onto the replica.
            consumer.coordinator.fetch(consumer.router.topics)
            coordinator_failover_s = time.perf_counter() - broker_killed_at

    total_s = time.perf_counter() - started
    index_stats = consumer.stats()
    committed_after = consumer.coordinator.fetch(consumer.router.topics)
    failovers = consumer.coordinator.failovers
    acting_after = backend.acting_broker
    consumer.close()
    watcher.join(timeout=30)
    for proc in workers.values():
        proc.join(timeout=30)
    victim_exitcode = workers['worker-victim'].exitcode

    stranded = len(store_server)
    store.close()
    for proc in brokers:
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=10)
    store_server.stop()

    offsets_preserved = bool(committed_before_kill) and all(
        committed_after[topic]['committed'] >= entry['committed']
        for topic, entry in committed_before_kill.items()
    )
    survivor = worker_stats.get('worker-survivor', {})
    gates = {
        'coverage_complete': sorted(index) == list(range(docs)),
        'zero_lost': index_stats['lost'] == 0 and survivor.get('lost') == 0,
        'worker_killed_by_signal': victim_exitcode not in (0, None),
        'worker_redelivered': survivor.get('redelivered', 0) >= 1,
        'broker_failover_happened': failovers >= 1 and acting_after != victim_broker,
        'offsets_preserved_across_failover': offsets_preserved,
        'recovery_measured': (
            coordinator_failover_s is not None
            and 0.0 < coordinator_failover_s < 60.0
        ),
        'store_empty': stranded == 0,
    }
    return {
        'docs': docs,
        'brokers': BROKERS,
        'partitions': PARTITIONS,
        'replicas': REPLICAS,
        'seed': seed,
        'total_s': round(total_s, 4),
        'sustained_docs_per_s': round(len(index) / total_s, 1),
        'stages': {
            'ingest': {
                'docs': docs,
                'elapsed_s': round(ingest_s, 4),
                'docs_per_s': round(docs / ingest_s, 1),
            },
            'transform': {
                'survivor': survivor,
                'victim_exitcode': victim_exitcode,
            },
            'index': {
                **index_stats,
                'unique_docs': len(index),
                'duplicates': duplicates,
                'coordinator_failovers': failovers,
            },
        },
        'faults': chaos['faults'] + plan_reports,
        'recovery': {
            'coordinator_failover_s': (
                round(coordinator_failover_s, 4)
                if coordinator_failover_s is not None else None
            ),
            'broker_kill_to_next_indexed_s': (
                round(broker_recovery_s, 4)
                if broker_recovery_s is not None else None
            ),
            'killed_broker': victim_broker,
            'acting_coordinator_after': acting_after,
        },
        'stranded_keys': stranded,
        'gates': gates,
        'all_passed': all(gates.values()),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--out', default='BENCH_pipeline.json')
    parser.add_argument(
        '--smoke', action='store_true',
        help='quick CI run: fewer documents, same two kills',
    )
    parser.add_argument(
        '--seed', type=int, default=1234,
        help='fault-plan seed (recorded in the report)',
    )
    args = parser.parse_args(argv)

    result = run_pipeline(SMOKE_DOCS if args.smoke else DOCS, args.seed)
    report = {
        'benchmark': 'pipeline_chaos',
        'python': sys.version.split()[0],
        'platform': platform.platform(),
        'smoke': args.smoke,
        **result,
    }
    with open(args.out, 'w') as f:
        json.dump(report, f, indent=2)
    recovery = result['recovery']['coordinator_failover_s']
    print(
        f'wrote {args.out} ({result["sustained_docs_per_s"]} docs/s '
        f'sustained through both kills, coordinator failover '
        f'{recovery}s, gates passed: {result["all_passed"]})',
    )
    return 0 if report['all_passed'] else 1


if __name__ == '__main__':
    raise SystemExit(main())
