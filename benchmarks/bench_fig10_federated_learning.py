"""Figure 10: federated learning model transfer time vs model size."""
from __future__ import annotations

from benchmarks.conftest import print_table
from repro.harness.fig10 import PAYLOAD_LIMIT_BYTES
from repro.harness.fig10 import run_figure10


def test_fig10_federated_learning_transfers(benchmark):
    blocks = (1, 5, 10, 20, 30, 40, 50)
    table = benchmark.pedantic(lambda: run_figure10(hidden_blocks=blocks), rounds=1, iterations=1)
    print_table(table)
    # Models beyond ~40 hidden blocks exceed the FaaS payload limit and can
    # only be transferred with ProxyStore (Figure 10).
    largest = max(blocks)
    assert table.value('transfer_s', hidden_blocks=largest, method='cloud-transfer') is None
    assert table.value('transfer_s', hidden_blocks=largest, method='endpoint-store') is not None
    assert table.value('model_bytes', hidden_blocks=largest, method='cloud-transfer') > PAYLOAD_LIMIT_BYTES
    # Where both work, ProxyStore reduces transfer time substantially
    # (the paper reports ~68 % on average).
    improvements = []
    for b in blocks:
        cloud = table.value('transfer_s', hidden_blocks=b, method='cloud-transfer')
        endpoint = table.value('transfer_s', hidden_blocks=b, method='endpoint-store')
        if cloud is not None:
            improvements.append((cloud - endpoint) / cloud)
    assert improvements and sum(improvements) / len(improvements) > 0.4
