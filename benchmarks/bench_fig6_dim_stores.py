"""Figure 6: distributed in-memory stores versus DataSpaces and cloud transfer."""
from __future__ import annotations

from benchmarks.conftest import full_sweeps
from benchmarks.conftest import print_table
from repro.harness.fig6 import run_figure6
from repro.simulation import size_sweep


def _sizes() -> list[int]:
    return size_sweep(1, 1_000_000_000 if full_sweeps() else 100_000_000)


def test_fig6_distributed_memory_stores(benchmark):
    table = benchmark.pedantic(lambda: run_figure6(sizes=_sizes()), rounds=1, iterations=1)
    print_table(table)
    largest = max(_sizes())
    polaris = 'Polaris Login -> Polaris Compute'
    chameleon = 'Chameleon Node -> Chameleon Node'
    margo = table.value('roundtrip_s', system=polaris, method='margo-store', input_bytes=largest)
    ucx_polaris = table.value('roundtrip_s', system=polaris, method='ucx-store', input_bytes=largest)
    zmq = table.value('roundtrip_s', system=polaris, method='zmq-store', input_bytes=largest)
    dataspaces = table.value('roundtrip_s', system=polaris, method='dataspaces', input_bytes=largest)
    # MargoStore achieves the best overall performance on Polaris and beats
    # DataSpaces on both systems (Section 5.1).
    assert margo <= ucx_polaris <= zmq
    assert margo < dataspaces
    ucx_chameleon = table.value('roundtrip_s', system=chameleon, method='ucx-store', input_bytes=largest)
    margo_chameleon = table.value('roundtrip_s', system=chameleon, method='margo-store', input_bytes=largest)
    redis_chameleon = table.value('roundtrip_s', system=chameleon, method='redis-store', input_bytes=largest)
    # UCXStore performs measurably worse than MargoStore and RedisStore for
    # larger sizes on Chameleon.
    assert ucx_chameleon > margo_chameleon
    assert ucx_chameleon > redis_chameleon
