"""Micro-benchmark of the (de)serialization hot path.

Times serialize -> deserialize round trips for 1 KB / 1 MB / 64 MB payloads
across the four payload kinds the paper's workloads exercise (raw bytes,
str, NumPy arrays, pickled dataclasses), comparing the zero-copy
buffer-aware serializer against the pre-buffer implementation (concatenated
wire bytes, ``BytesIO`` NumPy writes, unconditional input materialization —
kept inline below as the baseline).

Run directly (also used as a CI step)::

    PYTHONPATH=src python benchmarks/bench_serializer.py --out BENCH_serializer.json
    PYTHONPATH=src python benchmarks/bench_serializer.py --smoke --gate

The JSON output accumulates the perf trajectory: per-case seconds/op,
throughput, and the speedup of the new path over the legacy one.  The local
connector put-copy check asserts the acceptance property that a ``put`` of
serialized ``bytes`` stores zero copies.  With ``--gate`` the run exits
non-zero unless the new path holds at least noise-tolerant parity with the
legacy path at every size/kind — the CI tripwire for small-object
regressions.
"""
from __future__ import annotations

import argparse
import dataclasses
import io
import json
import pickle
import platform
import sys
import time
from typing import Any

import numpy as np

from repro.connectors.local import LocalConnector
from repro.serialize import SerializedObject
from repro.serialize import deserialize
from repro.serialize import serialize

SIZES = {'1KB': 1024, '1MB': 1024 * 1024, '64MB': 64 * 1024 * 1024}
KINDS = ('bytes', 'str', 'ndarray', 'dataclass')

#: ``--gate`` bound: every row must reach this fraction of legacy speed.
#: The committed full-run JSON shows >= 1.0x; the gate's margin only
#: absorbs shared-runner timer noise, it is not a license to regress.
GATE_MIN_SPEEDUP = 0.9


# --------------------------------------------------------------------------- #
# Legacy (pre-buffer) serializer, kept verbatim as the comparison baseline
# --------------------------------------------------------------------------- #
def legacy_serialize(obj: Any) -> bytes:
    if isinstance(obj, bytes):
        return b'\x01' + obj
    if isinstance(obj, (bytearray, memoryview)):
        return b'\x01' + bytes(obj)
    if isinstance(obj, str):
        return b'\x02' + obj.encode('utf-8')
    if isinstance(obj, np.ndarray):
        buffer = io.BytesIO()
        np.save(buffer, obj, allow_pickle=False)
        return b'\x03' + buffer.getvalue()
    return b'\x05' + pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def legacy_deserialize(data: bytes) -> Any:
    data = bytes(data)
    identifier, payload = data[:1], data[1:]
    if identifier == b'\x01':
        return payload
    if identifier == b'\x02':
        return payload.decode('utf-8')
    if identifier == b'\x03':
        return np.load(io.BytesIO(payload), allow_pickle=False)
    return pickle.loads(payload)


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class ModelUpdate:
    """Stand-in for the FL / molecular-design task payloads (Fig. 10/11)."""

    round_id: int
    weights: np.ndarray
    name: str = 'bench'


def make_payload(kind: str, nbytes: int) -> Any:
    if kind == 'bytes':
        return bytes(nbytes)
    if kind == 'str':
        return 'a' * nbytes
    if kind == 'ndarray':
        return np.zeros(nbytes // 8, dtype=np.float64)
    if kind == 'dataclass':
        return ModelUpdate(round_id=1, weights=np.zeros(nbytes // 8))
    raise ValueError(kind)


def iterations_for(nbytes: int) -> int:
    if nbytes <= 4096:
        return 2000
    if nbytes <= 4 * 1024 * 1024:
        return 40
    return 4


def time_roundtrip(ser, des, obj: Any, iterations: int) -> float:
    """Best-of-three mean seconds per serialize+deserialize round trip."""
    best = float('inf')
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(iterations):
            des(ser(obj))
        elapsed = (time.perf_counter() - start) / iterations
        best = min(best, elapsed)
    return best


def check_local_put_copy_free() -> bool:
    """Acceptance: a put of serialized bytes reaches storage with 0 copies."""
    payload = b'q' * (1024 * 1024)
    serialized = serialize(payload)
    if serialized.pieces[1] is not payload:  # serialize copied
        return False
    with LocalConnector() as connector:
        key = connector.put(serialized)
        stored = connector._store[key]
        return (
            isinstance(stored, SerializedObject)
            and stored.pieces[1] is payload  # stored without copying
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('--out', default='BENCH_serializer.json')
    parser.add_argument(
        '--max-size',
        default='64MB',
        choices=sorted(SIZES),
        help='largest payload size to run (smaller = quicker smoke run)',
    )
    parser.add_argument(
        '--smoke',
        action='store_true',
        help='quick CI run: payloads up to 1MB only',
    )
    parser.add_argument(
        '--gate',
        action='store_true',
        help=f'exit non-zero unless every size/kind row reaches '
             f'{GATE_MIN_SPEEDUP}x of the legacy path',
    )
    args = parser.parse_args(argv)

    max_nbytes = SIZES['1MB' if args.smoke else args.max_size]
    results = []
    for size_label, nbytes in SIZES.items():
        if nbytes > max_nbytes:
            continue
        for kind in KINDS:
            obj = make_payload(kind, nbytes)
            iterations = iterations_for(nbytes)
            new_s = time_roundtrip(serialize, deserialize, obj, iterations)
            legacy_s = time_roundtrip(
                legacy_serialize, legacy_deserialize, obj, iterations,
            )
            if args.gate and legacy_s / new_s < GATE_MIN_SPEEDUP:
                # One retry absorbs a noisy first measurement; a real
                # regression fails both times.
                new_s = time_roundtrip(serialize, deserialize, obj, iterations)
                legacy_s = time_roundtrip(
                    legacy_serialize, legacy_deserialize, obj, iterations,
                )
            actual_nbytes = len(serialize(obj))
            entry = {
                'kind': kind,
                'size': size_label,
                'payload_bytes': actual_nbytes,
                'iterations': iterations,
                'new_s_per_op': new_s,
                'legacy_s_per_op': legacy_s,
                'new_MBps': actual_nbytes / new_s / 1e6,
                'legacy_MBps': actual_nbytes / legacy_s / 1e6,
                'speedup': legacy_s / new_s,
            }
            results.append(entry)
            print(
                f'{size_label:>5} {kind:<10} '
                f'new {entry["new_MBps"]:>10.1f} MB/s   '
                f'legacy {entry["legacy_MBps"]:>10.1f} MB/s   '
                f'speedup {entry["speedup"]:>6.2f}x',
            )

    copy_free = check_local_put_copy_free()
    print(f'local-connector put of serialized bytes is copy-free: {copy_free}')

    min_speedup = min(entry['speedup'] for entry in results)
    report = {
        'benchmark': 'serializer_roundtrip',
        'python': sys.version.split()[0],
        'platform': platform.platform(),
        'local_put_copy_free': copy_free,
        'min_speedup': round(min_speedup, 3),
        'results': results,
    }
    with open(args.out, 'w') as f:
        json.dump(report, f, indent=2)
    print(f'wrote {args.out} (min speedup {min_speedup:.2f}x)')
    if args.gate:
        failing = [
            f'{e["size"]}/{e["kind"]} {e["speedup"]:.2f}x'
            for e in results if e['speedup'] < GATE_MIN_SPEEDUP
        ]
        if failing or not copy_free:
            print(
                f'GATE FAILED: rows below {GATE_MIN_SPEEDUP}x legacy: '
                f'{failing or "none"}; copy-free put: {copy_free}',
            )
            return 1
        print(f'gate passed: every row >= {GATE_MIN_SPEEDUP}x legacy')
    return 0


if __name__ == '__main__':
    raise SystemExit(main())
