"""Table 1: connector capability matrix."""
from __future__ import annotations

from benchmarks.conftest import print_table
from repro.harness.table1 import run_table1


def test_table1_connector_summary(benchmark):
    table = benchmark(run_table1)
    print_table(table)
    assert len(table) >= 8
