"""Tests of the simulated Globus transfer service."""
from __future__ import annotations

import os

import pytest

from repro.exceptions import TransferError
from repro.globus_sim import GlobusEndpointSpec
from repro.globus_sim import GlobusTransferService
from repro.globus_sim import TransferStatus
from repro.globus_sim import get_transfer_service
from repro.globus_sim import reset_transfer_service


@pytest.fixture(autouse=True)
def _clean_service():
    yield
    reset_transfer_service()


@pytest.fixture()
def service():
    return GlobusTransferService()


@pytest.fixture()
def endpoints(tmp_path, service):
    a = GlobusEndpointSpec.create(str(tmp_path / 'ep-a'))
    b = GlobusEndpointSpec.create(str(tmp_path / 'ep-b'))
    service.register_endpoint(a)
    service.register_endpoint(b)
    return a, b


def _write(spec: GlobusEndpointSpec, name: str, data: bytes) -> None:
    with open(os.path.join(spec.endpoint_path, name), 'wb') as f:
        f.write(data)


def test_endpoint_spec_create_makes_directory(tmp_path):
    spec = GlobusEndpointSpec.create(str(tmp_path / 'new-ep'))
    assert os.path.isdir(spec.endpoint_path)
    assert len(spec.endpoint_uuid) == 32


def test_register_and_list_endpoints(service, endpoints):
    a, b = endpoints
    assert set(service.endpoints()) == {a.endpoint_uuid, b.endpoint_uuid}
    assert service.endpoint(a.endpoint_uuid) == a


def test_unknown_endpoint_raises(service):
    with pytest.raises(TransferError):
        service.endpoint('nope')


def test_transfer_copies_file(service, endpoints):
    a, b = endpoints
    _write(a, 'data.bin', b'contents')
    task_id = service.submit_transfer(a.endpoint_uuid, b.endpoint_uuid, [('data.bin', 'data.bin')])
    task = service.wait(task_id)
    assert task.status is TransferStatus.SUCCEEDED
    with open(os.path.join(b.endpoint_path, 'data.bin'), 'rb') as f:
        assert f.read() == b'contents'


def test_transfer_multiple_items_single_task(service, endpoints):
    a, b = endpoints
    for i in range(3):
        _write(a, f'f{i}', f'file {i}'.encode())
    task_id = service.submit_transfer(
        a.endpoint_uuid, b.endpoint_uuid, [(f'f{i}', f'f{i}') for i in range(3)],
    )
    service.wait(task_id)
    for i in range(3):
        assert os.path.isfile(os.path.join(b.endpoint_path, f'f{i}'))


def test_transfer_missing_source_fails(service, endpoints):
    a, b = endpoints
    task_id = service.submit_transfer(a.endpoint_uuid, b.endpoint_uuid, [('missing', 'missing')])
    with pytest.raises(TransferError, match='failed'):
        service.wait(task_id)
    assert service.get_task(task_id).status is TransferStatus.FAILED


def test_injected_failure(service, endpoints):
    a, b = endpoints
    _write(a, 'ok.bin', b'x')
    service.fail_next_transfer()
    task_id = service.submit_transfer(a.endpoint_uuid, b.endpoint_uuid, [('ok.bin', 'ok.bin')])
    with pytest.raises(TransferError):
        service.wait(task_id)
    # Next transfer succeeds again.
    task_id = service.submit_transfer(a.endpoint_uuid, b.endpoint_uuid, [('ok.bin', 'ok.bin')])
    assert service.wait(task_id).status is TransferStatus.SUCCEEDED


def test_failure_rate_validation():
    with pytest.raises(ValueError):
        GlobusTransferService(failure_rate=1.5)


def test_unknown_task_raises(service):
    with pytest.raises(TransferError):
        service.get_task('bogus')


def test_wait_timeout(tmp_path):
    service = GlobusTransferService(task_delay_s=0.5)
    a = GlobusEndpointSpec.create(str(tmp_path / 'a'))
    b = GlobusEndpointSpec.create(str(tmp_path / 'b'))
    service.register_endpoint(a)
    service.register_endpoint(b)
    _write(a, 'f', b'x')
    task_id = service.submit_transfer(a.endpoint_uuid, b.endpoint_uuid, [('f', 'f')])
    with pytest.raises(TransferError, match='timed out'):
        service.wait(task_id, timeout=0.05)
    # Eventually succeeds.
    assert service.wait(task_id, timeout=5).status is TransferStatus.SUCCEEDED


def test_global_service_singleton():
    assert get_transfer_service() is get_transfer_service()
    reset_transfer_service()
    first = get_transfer_service()
    assert get_transfer_service() is first
