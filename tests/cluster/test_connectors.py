"""Cluster configuration through connectors, URLs, and the Store facade."""
from __future__ import annotations

import pickle

import pytest

from repro.connectors.redis import RedisConnector
from repro.connectors.zmq import ZMQConnector
from repro.dim import lookup_node
from repro.dim import reset_nodes
from repro.exceptions import ConnectorError
from repro.kvserver.server import launch_server
from repro.proxy import get_factory
from repro.store import Store


@pytest.fixture(autouse=True)
def _clean_nodes():
    yield
    reset_nodes()


def test_dim_connector_replicated_round_trip():
    conn = ZMQConnector('z0', peers=['z0', 'z1', 'z2'], replicas=2)
    try:
        key = conn.put(b'replicated')
        assert key.replicas is not None and len(key.replicas) == 2
        assert bytes(conn.get(key)) == b'replicated'
        assert conn.exists(key)
        conn.evict(key)
        assert not conn.exists(key)
    finally:
        conn.close()


def test_dim_connector_cluster_config_round_trips():
    conn = ZMQConnector(
        'z0',
        peers=['z0', 'z1', 'z2'],
        replicas=2,
        ring_vnodes=32,
        failure_threshold=2,
    )
    try:
        config = conn.config()
        assert config['replicas'] == 2
        assert config['ring_vnodes'] == 32
        assert config['failure_threshold'] == 2
        clone = ZMQConnector(**pickle.loads(pickle.dumps(config)))
        try:
            # The clone computes identical placement: deterministic ring.
            ring_a = conn._client.ring
            ring_b = clone._client.ring
            assert ring_a == ring_b
            assert all(
                ring_a.owners(f'k{i}', 2) == ring_b.owners(f'k{i}', 2)
                for i in range(100)
            )
        finally:
            clone.close()
    finally:
        conn.close()


def test_dim_cluster_url_parameters():
    store = Store.from_url(
        'zmq://u0/url-cluster?peers=u0,u1,u2&replicas=2'
        '&ring_vnodes=16&hedge_threshold=0.1&failure_threshold=3'
        '&rebalance_throttle=1000000',
    )
    try:
        client = store.connector._client
        assert client.replicas == 2
        assert client.ring_vnodes == 16
        assert client.hedge_threshold == 0.1
        assert client.failure_threshold == 3
        assert client.rebalancer is not None
        assert client.rebalancer.throttle_bytes_per_s == 1000000
        proxy_target = store.put('clustered value')
        assert store.get(proxy_target) == 'clustered value'
    finally:
        store.close()


def test_dim_url_rebalance_can_be_disabled():
    store = Store.from_url(
        'zmq://d0/no-rebalance?peers=d0,d1&replicas=2&rebalance=0',
    )
    try:
        assert store.connector._client.cluster is not None
        assert store.connector._client.rebalancer is None
    finally:
        store.close()


def test_legacy_mode_is_unchanged():
    conn = ZMQConnector('solo')
    try:
        assert conn._client.cluster is None
        assert conn._client.rebalancer is None
        key = conn.put(b'plain')
        assert key.replicas is None  # legacy keys carry no replica list
        assert conn.config()['replicas'] == 1
        assert conn.cluster_health() == {
            'clustered': False,
            'replicas': 1,
            'ring': ['solo'],
        }
    finally:
        conn.close()


def test_cluster_requires_peers():
    with pytest.raises(ConnectorError):
        ZMQConnector('lonely', replicas=2)


def test_join_and_leave_through_connector():
    conn = ZMQConnector('j0', peers=['j0', 'j1'], replicas=2)
    try:
        keys = [conn.put(b'x%d' % i) for i in range(10)]
        conn.join_peer('j2')
        assert 'j2' in conn._client.cluster.membership.ring
        assert conn._client.rebalancer.wait_idle(10)
        conn.leave_peer('j1')
        assert conn._client.rebalancer.wait_idle(10)
        for i, key in enumerate(keys):
            assert bytes(conn.get(key)) == b'x%d' % i
        # Drained: the departed node's share now lives on j0/j2 only.
        assert conn._client.cluster.membership.state_of('j1') == 'left'
    finally:
        conn.close()


def test_redis_cluster_from_url_and_config():
    servers = [launch_server('127.0.0.1', 0) for _ in range(3)]
    nodes = ','.join(f'{s.host}:{s.port}' for s in servers)
    try:
        store = Store.from_url(
            f'redis:///redis-url-cluster?nodes={nodes}&replicas=2'
            '&ring_vnodes=16',
        )
        try:
            key = store.put([1, 2, 3])
            assert store.get(key) == [1, 2, 3]
            config = store.connector.config()
            assert config['replicas'] == 2
            assert len(config['nodes']) == 3

            # Another process (simulated via config round-trip) agrees on
            # placement and can read the same keys — no coordinator.
            clone = RedisConnector(**pickle.loads(pickle.dumps(config)))
            try:
                assert clone.get(key) is not None
            finally:
                clone.close()
        finally:
            store.close()
    finally:
        for server in servers:
            server.stop()


def test_redis_launch_nodes_convenience():
    conn = RedisConnector(launch_nodes=2, replicas=2)
    try:
        key = conn.put(b'two-copies')
        assert bytes(conn.get(key)) == b'two-copies'
        health = conn.cluster_health()
        assert health['clustered'] is True
        assert len(health['ring']) == 2
    finally:
        conn.close(clear=True)


def test_redis_single_server_mode_unchanged():
    conn = RedisConnector(launch=True)
    try:
        assert conn._cluster is None
        key = conn.put(b'central')
        assert bytes(conn.get(key)) == b'central'
        assert conn.cluster_health() == {'clustered': False, 'replicas': 1}
        assert 'nodes' not in conn.config()
    finally:
        conn.close(clear=True)


def test_redis_rejects_conflicting_node_options():
    with pytest.raises(ConnectorError):
        RedisConnector(nodes=['127.0.0.1:1'], launch_nodes=2)
    with pytest.raises(ConnectorError):
        RedisConnector(nodes=['no-port-here'])


def test_store_metrics_capture_cluster_node_health():
    store_conn = ZMQConnector('m0', peers=['m0', 'm1'], replicas=2)
    store = Store('cluster-metrics', store_conn, metrics=True)
    try:
        key = store.put('observable')
        assert store.get(key) == 'observable'
        summary = store.metrics_summary()
        node_ops = [op for op in summary if op.startswith('cluster.node.')]
        assert node_ops, summary.keys()
        health = store.cluster_health()
        assert health['clustered'] is True
        assert set(health['nodes']) == {'m0', 'm1'}
        assert health['nodes']['m0']['state'] == 'alive'
    finally:
        store.close()


def test_store_cluster_health_without_cluster_support(local_store):
    assert local_store.cluster_health() == {'clustered': False}


def test_replicated_keys_survive_store_proxy_round_trip():
    store_conn = ZMQConnector('p0', peers=['p0', 'p1', 'p2'], replicas=2)
    store = Store('cluster-proxy', store_conn)
    try:
        proxy = store.proxy({'answer': 42})
        victim = get_factory(proxy).key.replicas[0].node_id
        lookup_node(victim, 'tcp').close()
        assert proxy['answer'] == 42  # resolves through a surviving replica
    finally:
        store.close()
