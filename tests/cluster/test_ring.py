"""Determinism and movement-bound tests for the consistent-hash ring."""
from __future__ import annotations

import pickle
import subprocess
import sys
from collections import Counter

import pytest

from repro.cluster import DEFAULT_VNODES
from repro.cluster import HashRing
from repro.cluster import LegacyRing
from repro.cluster import placement_delta

NODES = ['alpha', 'bravo', 'charlie', 'delta']
KEYS = [f'object-{i}' for i in range(400)]


def test_owner_count_and_distinctness():
    ring = HashRing(NODES, vnodes=32)
    for key in KEYS[:50]:
        owners = ring.owners(key, 2)
        assert len(owners) == 2
        assert len(set(owners)) == 2
        assert all(o in NODES for o in owners)


def test_requesting_more_replicas_than_nodes_returns_all():
    ring = HashRing(['a', 'b'], vnodes=8)
    assert set(ring.owners('k', 5)) == {'a', 'b'}
    assert HashRing([], vnodes=8).owners('k', 2) == ()


def test_primary_is_first_owner():
    ring = HashRing(NODES, vnodes=32)
    for key in KEYS[:20]:
        assert ring.primary(key) == ring.owners(key, 3)[0]


def test_placement_ignores_node_insertion_order():
    a = HashRing(NODES, vnodes=32)
    b = HashRing(list(reversed(NODES)), vnodes=32)
    assert a == b
    assert all(a.owners(k, 2) == b.owners(k, 2) for k in KEYS)


def test_placement_is_identical_across_processes():
    # The property that lets every client place keys without coordination:
    # a fresh interpreter (fresh PYTHONHASHSEED) computes the same owners.
    ring = HashRing(NODES, vnodes=32)
    local = {key: ring.owners(key, 2) for key in KEYS[:100]}
    script = (
        'from repro.cluster import HashRing\n'
        f'ring = HashRing({NODES!r}, vnodes=32)\n'
        f'print(repr({{k: ring.owners(k, 2) for k in {KEYS[:100]!r}}}))\n'
    )
    output = subprocess.run(
        [sys.executable, '-c', script],
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    assert eval(output) == local  # noqa: S307 - trusted repr round-trip


def test_ring_pickle_round_trip():
    ring = HashRing(NODES, vnodes=32)
    clone = pickle.loads(pickle.dumps(ring))
    assert clone == ring
    assert all(clone.owners(k, 2) == ring.owners(k, 2) for k in KEYS)


def test_single_join_moves_about_one_over_n_of_keys():
    ring = HashRing(NODES, vnodes=128)
    grown = ring.with_nodes('echo')
    delta = placement_delta(ring, grown, KEYS, replicas=1)
    moved = len(delta) / len(KEYS)
    # Expected 1/5 = 0.2 for the primary placement; the vnode projection
    # keeps the variance tight enough that 0.35 is a safe ceiling.
    assert moved < 0.35
    # Every moved key must now be owned by the joining node.
    assert all(after == ('echo',) for _, after in delta.values())


def test_single_leave_moves_only_departed_keys():
    ring = HashRing(NODES, vnodes=128)
    shrunk = ring.without_nodes('delta')
    changed = placement_delta(ring, shrunk, KEYS, replicas=1)
    assert all(before == ('delta',) for before, _ in changed.values())
    assert len(changed) / len(KEYS) < 0.45  # ~1/4 expected


def test_remove_then_restore_recovers_original_placement():
    ring = HashRing(NODES, vnodes=64)
    cycled = ring.without_nodes('bravo').with_nodes('bravo')
    assert cycled == ring
    assert all(cycled.owners(k, 2) == ring.owners(k, 2) for k in KEYS)


def test_load_spread_is_reasonably_even():
    ring = HashRing(NODES, vnodes=DEFAULT_VNODES)
    counts = Counter(ring.primary(k) for k in KEYS)
    assert set(counts) == set(NODES)
    assert max(counts.values()) < 3 * min(counts.values())


def test_vnodes_validation():
    with pytest.raises(ValueError):
        HashRing(NODES, vnodes=0)


def test_legacy_ring_pins_everything_to_one_node():
    ring = LegacyRing('solo')
    assert ring.nodes == ('solo',)
    assert len(ring) == 1
    assert 'solo' in ring and 'other' not in ring
    for key in KEYS[:10]:
        assert ring.owners(key, 3) == ('solo',)
        assert ring.primary(key) == 'solo'
    assert ring == LegacyRing('solo')
    assert ring != LegacyRing('other')
