"""Membership transitions, crash detection, and health bookkeeping."""
from __future__ import annotations

import pytest

from repro.cluster import ClusterMembership
from repro.exceptions import NodeUnavailableError
from repro.store.metrics import StoreMetrics


def membership(**kwargs):
    return ClusterMembership(['a', 'b', 'c'], vnodes=16, **kwargs)


def test_initial_members_are_alive_and_on_ring():
    m = membership()
    assert m.alive() == ('a', 'b', 'c')
    assert m.reachable() == ('a', 'b', 'c')
    assert set(m.ring.nodes) == {'a', 'b', 'c'}
    assert m.state_of('a') == 'alive'
    assert m.state_of('ghost') is None


def test_join_adds_node_and_rebuilds_ring():
    m = membership()
    assert m.join('d')
    assert 'd' in m.ring
    assert not m.join('d')  # already alive: no-op


def test_leave_keeps_node_reachable_but_off_ring():
    m = membership()
    assert m.leave('b')
    assert m.state_of('b') == 'left'
    assert 'b' not in m.ring
    assert 'b' in m.reachable()  # still drainable
    assert 'b' not in m.alive()


def test_mark_dead_removes_node_from_reachable():
    m = membership()
    assert m.mark_dead('c', 'connection refused')
    assert m.state_of('c') == 'dead'
    assert 'c' not in m.ring
    assert 'c' not in m.reachable()
    assert m.health()['c']['last_error'] == 'connection refused'


def test_forget_drops_non_alive_nodes_only():
    m = membership()
    assert not m.forget('a')  # alive nodes cannot be forgotten
    m.mark_dead('a')
    assert m.forget('a')
    assert m.state_of('a') is None


def test_join_revives_dead_node_with_fresh_health():
    m = membership()
    m.mark_dead('b', 'boom')
    assert m.join('b')
    assert m.state_of('b') == 'alive'
    assert m.health()['b']['failures'] == 0


def test_consecutive_unavailable_failures_declare_dead():
    m = membership(failure_threshold=3)
    err = NodeUnavailableError('down')
    for _ in range(2):
        m.record('a', ok=False, unavailable=True, error=err)
    assert m.state_of('a') == 'alive'
    m.record('a', ok=False, unavailable=True, error=err)
    assert m.state_of('a') == 'dead'


def test_success_resets_consecutive_failure_count():
    m = membership(failure_threshold=2)
    err = NodeUnavailableError('blip')
    m.record('a', ok=False, unavailable=True, error=err)
    m.record('a', ok=True, elapsed=0.001)
    m.record('a', ok=False, unavailable=True, error=err)
    assert m.state_of('a') == 'alive'  # never hit 2 in a row


def test_non_unavailable_failures_never_evict():
    m = membership(failure_threshold=1)
    for _ in range(5):
        m.record('a', ok=False, error=ValueError('corrupt request'))
    assert m.state_of('a') == 'alive'
    assert m.health()['a']['failures'] == 5


def test_latency_ewma_tracks_successes():
    m = membership()
    m.record('a', ok=True, elapsed=0.1)
    assert m.health()['a']['latency_ewma_s'] == pytest.approx(0.1)
    m.record('a', ok=True, elapsed=0.2)
    assert 0.1 < m.health()['a']['latency_ewma_s'] < 0.2


def test_ring_change_notifies_subscribers():
    m = membership()
    events = []
    m.subscribe(lambda old, new, reason: events.append((reason, new.nodes)))
    m.join('d')
    m.mark_dead('a')
    m.record('b', ok=True)  # health-only: no ring change, no event
    assert [r for r, _ in events] == ['join:d', 'dead:a']
    assert events[-1][1] == ('b', 'c', 'd')


def test_record_feeds_bound_metrics():
    m = membership()
    metrics = StoreMetrics()
    m.bind_metrics(metrics)
    m.record('a', ok=True, elapsed=0.01)
    m.record('b', ok=False, unavailable=True, error=NodeUnavailableError('x'))
    summary = metrics.as_dict()
    assert summary['cluster.node.a.ok']['count'] == 1
    assert summary['cluster.node.b.fail']['count'] == 1


def test_failure_threshold_validation():
    with pytest.raises(ValueError):
        membership(failure_threshold=0)
