"""Chaos test: kill a node mid-workload and assert zero lost keys."""
from __future__ import annotations

import pytest

from repro.dim import DIMClient
from repro.dim import lookup_node
from repro.dim import reset_nodes
from repro.kvserver.server import launch_server


@pytest.fixture(autouse=True)
def _clean_nodes():
    yield
    reset_nodes()


def test_kill_one_dim_node_mid_workload_loses_nothing():
    client = DIMClient(
        'c0', 'tcp', peers=['c0', 'c1', 'c2'], replicas=2,
    )
    try:
        # Phase 1: steady-state workload.
        payloads = {f'obj{i}'.encode() + b'-' * i: None for i in range(60)}
        keys = {}
        for i, payload in enumerate(payloads):
            keys[payload] = client.put(payload)

        # Phase 2: crash the node holding the most primaries, with no
        # warning to the client (the typed transport error is the only
        # crash signal).
        primaries = [k.replicas[0].node_id for k in keys.values()]
        victim = max(set(primaries), key=primaries.count)
        lookup_node(victim, 'tcp').close()

        # Phase 3: the workload continues through the crash — every
        # previously written key must still be readable (replica failover)
        # and new writes must succeed (re-placement on survivors).
        for payload, key in keys.items():
            value = client.get(key)
            assert value is not None, f'lost {key.object_id} in crash'
            assert bytes(value) == payload
        post = [client.put(b'post-crash-%d' % i) for i in range(20)]
        for i, key in enumerate(post):
            assert bytes(client.get(key)) == b'post-crash-%d' % i
            assert victim not in {r.node_id for r in key.replicas}

        # The crash was detected and the membership reflects it.
        assert client.cluster.membership.state_of(victim) == 'dead'
        assert client.cluster.stats.failovers >= 1

        # Phase 4: background self-healing restored full replication of
        # every key onto the survivors.
        assert client.rebalancer.wait_idle(15)
        survivors = [n for n in ('c0', 'c1', 'c2') if n != victim]
        for key in list(keys.values()) + post:
            held = sum(
                1 for n in survivors
                if client.cluster.backend(n).exists(key.object_id)
            )
            assert held == 2, (key.object_id, held)
    finally:
        client.close()


def test_kill_one_simkv_node_mid_workload_loses_nothing():
    from repro.connectors.redis import RedisConnector

    servers = [launch_server('127.0.0.1', 0) for _ in range(3)]
    conn = RedisConnector(
        nodes=[(s.host, s.port) for s in servers], replicas=2,
    )
    try:
        keys = [conn.put(b'payload-%d' % i) for i in range(40)]
        victim = servers[0]
        victim.stop()
        for i, key in enumerate(keys):
            value = conn.get(key)
            assert value is not None, f'lost {key.object_id}'
            assert bytes(value) == b'payload-%d' % i
        post = [conn.put(b'post-%d' % i) for i in range(10)]
        for i, key in enumerate(post):
            assert bytes(conn.get(key)) == b'post-%d' % i
        dead = f'{victim.host}:{victim.port}'
        assert conn._cluster.membership.state_of(dead) == 'dead'
        assert conn._rebalancer.wait_idle(15)
    finally:
        conn.close()
        for server in servers[1:]:
            server.stop()


def test_crashed_node_can_rejoin_and_reacquire_share():
    client = DIMClient(
        'r0', 'tcp', peers=['r0', 'r1', 'r2'], replicas=2,
    )
    try:
        keys = [client.put(b'v%d' % i) for i in range(30)]
        victim = keys[0].replicas[0].node_id
        lookup_node(victim, 'tcp').close()
        for i, key in enumerate(keys):
            assert bytes(client.get(key)) == b'v%d' % i
        assert client.rebalancer.wait_idle(15)

        # Rejoin under the same id: a fresh empty server on a fresh port.
        client.join_peer(victim)
        assert client.cluster.membership.state_of(victim) == 'alive'
        assert client.rebalancer.wait_idle(15)
        # All data still present, and the rejoined node holds its share.
        for i, key in enumerate(keys):
            assert bytes(client.get(key)) == b'v%d' % i
        rejoined = client.cluster.backend(victim)
        assert rejoined.keys()  # reacquired part of the key space
    finally:
        client.close()
