"""Replication engine: failover, hedged reads, read-repair, orphan cleanup."""
from __future__ import annotations

import threading
import time

import pytest

from repro.cluster import ClusterClient
from repro.cluster import ClusterMembership
from repro.cluster import Rebalancer
from repro.exceptions import NodeUnavailableError


class FakeNode:
    """In-memory NodeBackend with fault and latency injection."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.data: dict[str, bytes] = {}
        self.down = False
        self.delay = 0.0
        self.fail_puts_with: Exception | None = None
        self.lock = threading.Lock()

    def _gate(self) -> None:
        if self.delay:
            time.sleep(self.delay)
        if self.down:
            raise NodeUnavailableError(f'{self.node_id} is down')

    def put(self, key, value):
        self._gate()
        if self.fail_puts_with is not None:
            raise self.fail_puts_with
        with self.lock:
            self.data[key] = value

    def put_batch(self, items):
        self._gate()
        if self.fail_puts_with is not None:
            raise self.fail_puts_with
        with self.lock:
            self.data.update(dict(items))

    def get(self, key):
        self._gate()
        with self.lock:
            return self.data.get(key)

    def get_batch(self, keys):
        self._gate()
        with self.lock:
            return [self.data.get(k) for k in keys]

    def exists(self, key):
        self._gate()
        with self.lock:
            return key in self.data

    def evict(self, key):
        self._gate()
        with self.lock:
            self.data.pop(key, None)

    def evict_batch(self, keys):
        self._gate()
        with self.lock:
            for key in keys:
                self.data.pop(key, None)

    def keys(self):
        self._gate()
        with self.lock:
            return list(self.data)


def make_cluster(n=3, replicas=2, **kwargs):
    nodes = {f'n{i}': FakeNode(f'n{i}') for i in range(n)}
    membership = ClusterMembership(nodes, vnodes=16)
    cluster = ClusterClient(
        lambda node_id: nodes[node_id],
        membership,
        replicas=replicas,
        **kwargs,
    )
    return cluster, nodes


def holders(nodes, key):
    return {n for n, node in nodes.items() if key in node.data}


def test_put_writes_exactly_n_replicas():
    cluster, nodes = make_cluster()
    for i in range(20):
        key = f'k{i}'
        owners = cluster.put(key, b'v%d' % i)
        assert len(owners) == 2
        assert holders(nodes, key) == set(owners)


def test_get_prefers_primary_and_reads_value():
    cluster, nodes = make_cluster()
    cluster.put('key', b'value')
    assert cluster.get('key') == b'value'
    assert cluster.get('never-stored') is None


def test_get_fails_over_when_primary_is_down():
    cluster, nodes = make_cluster(hedge_threshold=0)
    owners = cluster.put('key', b'value')
    nodes[owners[0]].down = True
    assert cluster.get('key') == b'value'
    assert cluster.stats.failovers >= 1
    # Ordinary traffic discovered the crash: the node left the ring.
    assert cluster.membership.state_of(owners[0]) == 'dead'


def test_hedged_read_wins_when_primary_is_slow():
    cluster, nodes = make_cluster(hedge_threshold=0.02)
    owners = cluster.put('key', b'value')
    nodes[owners[0]].delay = 0.5  # far beyond the hedge threshold
    start = time.monotonic()
    assert cluster.get('key') == b'value'
    elapsed = time.monotonic() - start
    assert elapsed < 0.4  # did not wait out the slow primary
    assert cluster.stats.hedged_reads == 1
    assert cluster.stats.hedge_wins == 1


def test_read_repair_restores_missing_replica():
    cluster, nodes = make_cluster(hedge_threshold=0)
    owners = cluster.put('key', b'value')
    # Simulate a lost copy on the primary (e.g. a restarted node).
    del nodes[owners[0]].data['key']
    assert cluster.get('key') == b'value'
    assert cluster.stats.read_repairs >= 1
    assert 'key' in nodes[owners[0]].data  # repaired


def test_put_replaces_dead_replica_and_retries():
    cluster, nodes = make_cluster()
    victim = 'n1'
    nodes[victim].down = True
    for i in range(10):
        owners = cluster.put(f'k{i}', b'x')
        assert victim not in owners
        assert holders(nodes, f'k{i}') == set(owners)
    assert cluster.membership.state_of(victim) == 'dead'


def test_partial_put_failure_evicts_orphan_replicas():
    # All nodes stay 'alive' from membership's perspective (threshold high
    # enough that retries run out first), so every attempt fails and the
    # copies that landed on healthy nodes must be cleaned up.
    nodes = {f'n{i}': FakeNode(f'n{i}') for i in range(3)}
    membership = ClusterMembership(nodes, vnodes=16, failure_threshold=100)
    cluster = ClusterClient(
        lambda node_id: nodes[node_id], membership, replicas=2, put_retries=1,
    )
    # Find a key whose replica set includes n1, then take n1 down.
    key = next(
        f'k{i}' for i in range(100)
        if 'n1' in membership.ring.owners(f'k{i}', 2)
    )
    nodes['n1'].down = True
    with pytest.raises(NodeUnavailableError):
        cluster.put(key, b'value')
    assert holders(nodes, key) == set()  # no orphan copies anywhere
    assert cluster.stats.orphans_evicted >= 1


def test_non_unavailable_put_error_is_raised_not_retried():
    cluster, nodes = make_cluster()
    owners = cluster.membership.ring.owners('key', 2)
    nodes[owners[1]].fail_puts_with = ValueError('corrupt request')
    with pytest.raises(ValueError):
        cluster.put('key', b'value')
    # The healthy replica's copy was still cleaned up.
    assert holders(nodes, 'key') == set()
    # A bad request must not evict the node from the ring.
    assert cluster.membership.state_of(owners[1]) == 'alive'


def test_put_batch_places_every_key():
    cluster, nodes = make_cluster()
    items = [(f'k{i}', b'v%d' % i) for i in range(30)]
    placements = cluster.put_batch(items)
    assert set(placements) == {k for k, _ in items}
    for key, owners in placements.items():
        assert holders(nodes, key) == set(owners)


def test_get_batch_falls_back_to_replicas():
    cluster, nodes = make_cluster(hedge_threshold=0)
    items = [(f'k{i}', b'v%d' % i) for i in range(20)]
    cluster.put_batch(items)
    nodes['n0'].down = True
    values = cluster.get_batch([k for k, _ in items])
    assert values == [v for _, v in items]


def test_evict_removes_all_replicas():
    cluster, nodes = make_cluster()
    cluster.put('key', b'value')
    cluster.evict('key')
    assert holders(nodes, 'key') == set()
    assert not cluster.exists('key')


def test_exists_consults_candidates_and_owners():
    cluster, nodes = make_cluster()
    owners = cluster.put('key', b'value')
    assert cluster.exists('key')
    # Even if the ring has moved on, candidate hints still find the copy.
    nodes['extra'] = FakeNode('extra')
    nodes['extra'].data['key'] = b'value'
    for node in owners:
        cluster.backend(node).evict('key')
    assert cluster.exists('key', candidates=('extra',))


def test_put_with_no_alive_nodes_raises():
    cluster, nodes = make_cluster(n=2, replicas=2)
    for node in nodes.values():
        node.down = True
    with pytest.raises(NodeUnavailableError):
        cluster.put('key', b'value')


def test_rebalancer_re_replicates_after_crash():
    cluster, nodes = make_cluster()
    rebalancer = Rebalancer(cluster, pause_s=0)
    try:
        placements = cluster.put_batch([(f'k{i}', b'x') for i in range(40)])
        victim = 'n2'
        nodes[victim].down = True
        cluster.membership.mark_dead(victim)
        assert rebalancer.wait_idle(10)
        for key in placements:
            held = holders(nodes, key) - {victim}
            assert len(held) == 2, (key, held)
    finally:
        rebalancer.stop()


def test_rebalancer_drains_voluntary_leave():
    cluster, nodes = make_cluster()
    rebalancer = Rebalancer(cluster, pause_s=0)
    try:
        placements = cluster.put_batch([(f'k{i}', b'x') for i in range(40)])
        cluster.membership.leave('n0')  # still reachable: drains, not lost
        assert rebalancer.wait_idle(10)
        for key in placements:
            held = holders(nodes, key)
            # Every key fully replicated on the remaining members...
            assert held >= set(cluster.membership.ring.owners(key, 2))
        # ...and the drained copies dropped from the departed node.
        assert not nodes['n0'].data
    finally:
        rebalancer.stop()


def test_rebalancer_pulls_share_to_new_node():
    cluster, nodes = make_cluster()
    rebalancer = Rebalancer(cluster, pause_s=0)
    try:
        cluster.put_batch([(f'k{i}', b'x') for i in range(60)])
        nodes['n3'] = FakeNode('n3')
        cluster.membership.join('n3')
        assert rebalancer.wait_idle(10)
        assert nodes['n3'].data  # the new node now holds its arc share
        stats = rebalancer.stats
        assert stats.keys_migrated > 0
        # Movement bound: a single join moves roughly replicas/N of keys,
        # nowhere near the whole key space.
        assert stats.keys_migrated < 60
    finally:
        rebalancer.stop()


def test_rebalancer_key_filter_excludes_keys():
    cluster, nodes = make_cluster()
    rebalancer = Rebalancer(
        cluster, pause_s=0, key_filter=lambda key: '.s' not in key,
    )
    try:
        cluster.put('plain', b'x')
        nodes['n0'].data['pinned.s0'] = b'stripe'  # placed outside the ring
        nodes['n3'] = FakeNode('n3')
        cluster.membership.join('n3')
        assert rebalancer.wait_idle(10)
        assert 'pinned.s0' not in nodes['n3'].data
        assert holders(nodes, 'pinned.s0') == {'n0'}  # untouched
    finally:
        rebalancer.stop()
