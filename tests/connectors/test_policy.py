"""Tests for MultiConnector routing policies."""
from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.connectors.policy import Policy


def test_default_policy_matches_everything():
    policy = Policy()
    assert policy.is_valid()
    assert policy.is_valid(size_bytes=0)
    assert policy.is_valid(size_bytes=10**12)


def test_size_bounds():
    policy = Policy(min_size_bytes=100, max_size_bytes=1000)
    assert not policy.is_valid(size_bytes=99)
    assert policy.is_valid(size_bytes=100)
    assert policy.is_valid(size_bytes=1000)
    assert not policy.is_valid(size_bytes=1001)
    # Without a size constraint supplied, size is not checked.
    assert policy.is_valid()


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError):
        Policy(min_size_bytes=-1)
    with pytest.raises(ValueError):
        Policy(min_size_bytes=10, max_size_bytes=5)


def test_subset_tags():
    policy = Policy(subset_tags=('cpu', 'gpu'))
    assert policy.is_valid(subset_tags=('cpu',))
    assert policy.is_valid(subset_tags=('cpu', 'gpu'))
    assert not policy.is_valid(subset_tags=('tpu',))
    assert Policy().is_valid(subset_tags=()) is True
    assert Policy().is_valid(subset_tags=('anything',)) is False


def test_superset_tags():
    policy = Policy(superset_tags=('site-a',))
    assert not policy.is_valid()
    assert not policy.is_valid(superset_tags=('site-b',))
    assert policy.is_valid(superset_tags=('site-a',))
    assert policy.is_valid(superset_tags=('site-a', 'site-b'))


def test_dict_roundtrip():
    policy = Policy(
        min_size_bytes=5,
        max_size_bytes=500,
        subset_tags=('a', 'b'),
        superset_tags=('c',),
        priority=3,
    )
    assert Policy.from_dict(policy.as_dict()) == policy


def test_from_dict_defaults():
    assert Policy.from_dict({}) == Policy()


@given(
    min_size=st.integers(0, 1000),
    span=st.integers(0, 1000),
    size=st.integers(0, 3000),
)
def test_size_matching_property(min_size, span, size):
    policy = Policy(min_size_bytes=min_size, max_size_bytes=min_size + span)
    expected = min_size <= size <= min_size + span
    assert policy.is_valid(size_bytes=size) == expected
