"""Tests for the Margo/UCX/ZMQ distributed in-memory connectors."""
from __future__ import annotations

import pytest

from repro.connectors.margo import MargoConnector
from repro.connectors.ucx import UCXConnector
from repro.connectors.zmq import ZMQConnector
from repro.dim import reset_nodes
from repro.store import Store
from tests.connectors.behavior import ConnectorBehavior


@pytest.fixture(autouse=True)
def _clean_nodes():
    yield
    reset_nodes()


@pytest.fixture(params=[MargoConnector, UCXConnector, ZMQConnector])
def connector(request):
    conn = request.param(node_id=f'test-{request.param.__name__}')
    yield conn
    conn.close()


class TestDIMConnectors(ConnectorBehavior):
    pass


def test_margo_and_ucx_use_memory_transport():
    assert MargoConnector.transport == 'memory'
    assert UCXConnector.transport == 'memory'


def test_zmq_uses_tcp_transport():
    assert ZMQConnector.transport == 'tcp'


def test_default_node_id_is_hostname():
    import socket

    conn = MargoConnector()
    try:
        assert conn.node_id == socket.gethostname()
    finally:
        conn.close()


def test_cross_node_fetch_between_connectors():
    producer = MargoConnector(node_id='compute-node-0')
    consumer = MargoConnector(node_id='compute-node-1')
    try:
        key = producer.put(b'simulation result')
        assert consumer.get(key) == b'simulation result'
    finally:
        producer.close()
        consumer.close()


def test_connector_names_distinct():
    names = {MargoConnector.connector_name, UCXConnector.connector_name, ZMQConnector.connector_name}
    assert names == {'margo', 'ucx', 'zmq'}


def test_store_proxy_through_dim_connector():
    import pickle

    store = Store('dim-store', MargoConnector(node_id='dim-store-node'))
    try:
        p = store.proxy([1, 2, 3], cache_local=False)
        assert pickle.loads(pickle.dumps(p)) == [1, 2, 3]
    finally:
        store.close()


def test_capability_tags_mention_transport():
    assert 'rdma' in MargoConnector.capabilities.tags
    assert 'rdma' in UCXConnector.capabilities.tags
    assert 'tcp' in ZMQConnector.capabilities.tags
