"""Reusable behavioural test mixin applied to every Connector implementation.

Each connector test module subclasses :class:`ConnectorBehavior` and provides
a ``connector`` fixture; the mixin then exercises the full Connector protocol
(put/get/exists/evict, batching, config round-trips) plus the store-level
proxy lifetime contract (pickle round trips, evict-on-resolve, lifetime- and
ownership-driven eviction) so all implementations are held to the same
contract.
"""
from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.connectors.protocol import Connector
from repro.connectors.protocol import connector_from_path
from repro.connectors.protocol import connector_path
from repro.connectors.protocol import new_object_id
from repro.exceptions import UseAfterFreeError
from repro.proxy import borrow
from repro.proxy import drop
from repro.proxy import extract
from repro.proxy import get_factory
from repro.serialize import SerializedObject
from repro.serialize import deserialize
from repro.serialize import serialize
from repro.serialize import small_frame_threshold
from repro.store import ContextLifetime
from repro.store import Store


class ConnectorBehavior:
    """Common contract tests parametrized over connector fixtures."""

    @staticmethod
    def _store(connector: Connector) -> Store:
        """A registered store over the shared connector fixture.

        ``cache_size=0`` so every resolution and existence check really hits
        the connector.  The store is *not* closed by the tests — the
        connector fixture outlives it — and the registry is cleared by the
        suite-wide autouse fixture.
        """
        return Store(
            f'behavior-store-{new_object_id()[:8]}',
            connector,
            cache_size=0,
            register=True,
        )

    def test_put_get_roundtrip(self, connector: Connector):
        data = b'some payload bytes'
        key = connector.put(data)
        assert connector.get(key) == data

    def test_get_missing_returns_none(self, connector: Connector):
        key = connector.put(b'x')
        connector.evict(key)
        assert connector.get(key) is None

    def test_exists(self, connector: Connector):
        key = connector.put(b'value')
        assert connector.exists(key)
        connector.evict(key)
        assert not connector.exists(key)

    def test_evict_missing_is_noop(self, connector: Connector):
        key = connector.put(b'value')
        connector.evict(key)
        connector.evict(key)  # second evict must not raise

    def test_put_empty_bytes(self, connector: Connector):
        key = connector.put(b'')
        assert connector.exists(key)
        assert connector.get(key) == b''

    def test_put_large_payload(self, connector: Connector):
        data = bytes(bytearray(range(256)) * 4096)  # 1 MiB
        key = connector.put(data)
        assert connector.get(key) == data

    def test_distinct_keys_for_identical_data(self, connector: Connector):
        k1 = connector.put(b'same')
        k2 = connector.put(b'same')
        assert k1 != k2
        connector.evict(k1)
        assert connector.get(k2) == b'same'

    def test_put_batch_get_batch(self, connector: Connector):
        datas = [f'item-{i}'.encode() for i in range(5)]
        keys = connector.put_batch(datas)
        assert len(keys) == len(datas)
        assert connector.get_batch(keys) == datas

    def test_get_batch_with_missing_key(self, connector: Connector):
        keys = connector.put_batch([b'a', b'b'])
        connector.evict(keys[0])
        assert connector.get_batch(keys) == [None, b'b']

    def test_evict_batch(self, connector: Connector):
        keys = connector.put_batch([b'a', b'b', b'c'])
        connector.evict_batch(keys)
        assert all(not connector.exists(k) for k in keys)

    def test_put_accepts_buffer_inputs(self, connector: Connector):
        payload = b'buffer input payload'
        for data in (bytearray(payload), memoryview(payload)):
            key = connector.put(data)
            assert bytes(connector.get(key)) == payload

    def test_put_serialized_object_roundtrip(self, connector: Connector):
        # The buffer path every Store.put takes: a multi-segment
        # SerializedObject goes in, the stored bytes deserialize back.
        obj = {'name': 'zc', 'blob': b'x' * 2048, 'n': 7}
        key = connector.put(serialize(obj))
        assert deserialize(connector.get(key)) == obj

    def test_put_serialized_ndarray_roundtrip(self, connector: Connector):
        arr = np.arange(4096, dtype=np.float64).reshape(64, 64)
        key = connector.put(serialize(arr))
        restored = deserialize(connector.get(key))
        assert np.array_equal(restored, arr)
        assert restored.dtype == arr.dtype

    def test_put_batch_serialized_objects(self, connector: Connector):
        objs = [b'raw', 'text', list(range(10))]
        keys = connector.put_batch([serialize(o) for o in objs])
        restored = [deserialize(d) for d in connector.get_batch(keys)]
        assert restored == objs

    def test_put_empty_serialized_payload(self, connector: Connector):
        key = connector.put(serialize(b''))
        data = connector.get(key)
        assert data is not None
        assert deserialize(data) == b''

    def test_put_multi_segment_equals_joined(self, connector: Connector):
        # Above the small-frame threshold so serialize keeps segments.
        serialized = serialize(np.arange(32 * 1024))
        assert isinstance(serialized, SerializedObject)
        key_segments = connector.put(serialized)
        key_joined = connector.put(bytes(serialized))
        assert bytes(connector.get(key_segments)) == bytes(connector.get(key_joined))

    def test_keys_are_picklable(self, connector: Connector):
        key = connector.put(b'data')
        restored = pickle.loads(pickle.dumps(key))
        assert restored == key
        assert connector.get(restored) == b'data'

    def test_config_roundtrip_shares_data(self, connector: Connector):
        key = connector.put(b'shared data')
        clone = type(connector).from_config(connector.config())
        try:
            assert clone.get(key) == b'shared data'
        finally:
            if clone is not connector:
                clone.close()

    def test_connector_path_roundtrip(self, connector: Connector):
        key = connector.put(b'via path')
        path = connector_path(connector)
        clone = connector_from_path(path, connector.config())
        try:
            assert clone.get(key) == b'via path'
        finally:
            if clone is not connector:
                clone.close()

    def test_capabilities_storage_field_valid(self, connector: Connector):
        assert connector.capabilities.storage in ('memory', 'disk', 'hybrid')

    def test_context_manager(self, connector: Connector):
        with connector as c:
            assert c is connector

    # ------------------------------------------------------------------ #
    # Store-level proxy lifetime contract (same across every scheme)
    # ------------------------------------------------------------------ #
    def test_proxy_pickle_roundtrip(self, connector: Connector):
        store = self._store(connector)
        obj = {'scheme': type(connector).__name__, 'payload': list(range(32))}
        proxy = store.proxy(obj, cache_local=False)
        restored = pickle.loads(pickle.dumps(proxy))
        assert extract(restored) == obj
        # A plain proxy never disturbs the stored object.
        assert connector.exists(get_factory(proxy).key)

    def test_proxy_evict_on_resolve(self, connector: Connector):
        store = self._store(connector)
        proxy = store.proxy('read-exactly-once', evict=True, cache_local=False)
        key = get_factory(proxy).key
        assert connector.exists(key)
        assert extract(proxy) == 'read-exactly-once'
        assert not connector.exists(key)

    def test_lifetime_close_evicts_bound_keys(self, connector: Connector):
        store = self._store(connector)
        lifetime = ContextLifetime()
        proxies = [
            store.proxy(f'bound-{i}', lifetime=lifetime, cache_local=False)
            for i in range(3)
        ]
        keys = [get_factory(p).key for p in proxies]
        assert all(connector.exists(k) for k in keys)
        assert extract(proxies[0]) == 'bound-0'  # resolving does not evict
        assert connector.exists(keys[0])
        lifetime.close()
        assert all(not connector.exists(k) for k in keys)

    def test_owned_proxy_drop_leaves_no_key(self, connector: Connector):
        store = self._store(connector)
        owned = store.owned_proxy({'model': 'weights'}, cache_local=False)
        key = get_factory(owned).key
        assert connector.exists(key)
        view = borrow(owned)
        assert extract(view) == {'model': 'weights'}
        drop(owned)
        assert not store.exists(key)
        assert not connector.exists(key)
        # The stale borrow fails with the dedicated ownership error, not a
        # StoreKeyError from a doomed fetch.
        with pytest.raises(UseAfterFreeError):
            view['model']

    # ------------------------------------------------------------------ #
    # Small-object fast path (same wire contract across every scheme)
    # ------------------------------------------------------------------ #
    def test_small_payloads_roundtrip_at_threshold_boundary(
        self, connector: Connector,
    ):
        # One payload per side of the small-frame threshold: the compact
        # bytes frame and the segmented frame must store and resolve
        # identically through every connector.
        store = self._store(connector)
        threshold = small_frame_threshold()
        for size in (1024, threshold - 1, threshold, threshold + 1):
            payload = bytes(range(256)) * (size // 256) + b'x' * (size % 256)
            key = store.put(payload)
            assert store.get(key) == payload, f'size={size}'
            store.evict(key)

    def test_small_proxy_resolves_on_both_routes(self, connector: Connector):
        store = self._store(connector)
        threshold = small_frame_threshold()
        small = 's' * 1024  # compact frame
        large = 'L' * (threshold * 2)  # segmented frame
        for obj in (small, large):
            proxy = store.proxy(obj, cache_local=False)
            assert extract(proxy) == obj
            store.evict(get_factory(proxy).key)

    def test_coalesced_puts_match_uncoalesced(self, connector: Connector):
        # With write coalescing on, the same keys/values must become
        # visible as without it.  Only meaningful on connectors with
        # deferred-write (new_key/set) support.
        supports_deferred = (
            type(connector).new_key is not Connector.new_key
            and type(connector).set is not Connector.set
        )
        if not supports_deferred:
            pytest.skip('connector does not support deferred writes')
        store = Store(
            f'behavior-coalesce-{new_object_id()[:8]}',
            connector,
            cache_size=0,
            register=True,
            coalesce_writes=True,
            coalesce_max_ops=4,
            coalesce_deadline=5.0,  # only explicit flushes in this test
        )
        try:
            objs = [f'co-{i}'.encode() for i in range(6)]
            keys = store.put_batch(objs)
            # Buffered or not, every key reads back its own value...
            assert store.get_batch(keys) == objs
            # ...and after an explicit flush the values are on the
            # connector itself, indistinguishable from uncoalesced puts.
            store.flush()
            assert [deserialize(connector.get(k)) for k in keys] == objs
        finally:
            # Join the deadline thread without closing the shared
            # connector fixture.
            store._coalescer.close()
