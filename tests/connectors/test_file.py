"""Tests for FileConnector."""
from __future__ import annotations

import os

import pytest

from repro.connectors.file import FileConnector
from tests.connectors.behavior import ConnectorBehavior


@pytest.fixture()
def connector(tmp_path):
    conn = FileConnector(str(tmp_path / 'store'))
    yield conn
    conn.close(clear=True)


class TestFileConnector(ConnectorBehavior):
    pass


def test_creates_directory(tmp_path):
    target = tmp_path / 'nested' / 'dir'
    conn = FileConnector(str(target))
    try:
        assert target.is_dir()
    finally:
        conn.close(clear=True)


def test_objects_persist_across_connector_instances(tmp_path):
    directory = str(tmp_path / 'persist')
    first = FileConnector(directory)
    key = first.put(b'persisted')
    first.close()  # close without clear keeps the data on disk
    second = FileConnector(directory)
    try:
        assert second.get(key) == b'persisted'
    finally:
        second.close(clear=True)


def test_close_with_clear_removes_directory(tmp_path):
    directory = tmp_path / 'gone'
    conn = FileConnector(str(directory))
    conn.put(b'x')
    conn.close(clear=True)
    assert not directory.exists()


def test_len_ignores_temp_files(tmp_path):
    conn = FileConnector(str(tmp_path / 'd'))
    try:
        conn.put(b'a')
        conn.put(b'b')
        # Simulate a leftover temporary file from an interrupted write.
        with open(os.path.join(conn.store_dir, '.tmp-leftover'), 'wb') as f:
            f.write(b'junk')
        assert len(conn) == 2
    finally:
        conn.close(clear=True)


def test_len_zero_after_directory_removed(tmp_path):
    conn = FileConnector(str(tmp_path / 'd'))
    conn.close(clear=True)
    assert len(conn) == 0


def test_file_contents_match_exactly(tmp_path):
    conn = FileConnector(str(tmp_path / 'd'))
    try:
        payload = os.urandom(4096)
        key = conn.put(payload)
        path = os.path.join(conn.store_dir, key.object_id)
        with open(path, 'rb') as f:
            assert f.read() == payload
    finally:
        conn.close(clear=True)
