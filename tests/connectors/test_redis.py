"""Tests for RedisConnector (backed by the SimKV server)."""
from __future__ import annotations

import pytest

from repro.connectors.redis import RedisConnector
from repro.kvserver import KVServer
from repro.store import Store
from tests.connectors.behavior import ConnectorBehavior


@pytest.fixture(scope='module')
def kv_server():
    server = KVServer()
    server.start()
    yield server
    server.stop()


@pytest.fixture()
def connector(kv_server):
    conn = RedisConnector(kv_server.host, kv_server.port)
    yield conn
    conn.close(clear=True)


class TestRedisConnector(ConnectorBehavior):
    pass


def test_launch_mode_starts_server():
    conn = RedisConnector(launch=True)
    try:
        key = conn.put(b'launched')
        assert conn.get(key) == b'launched'
        assert conn.port != 0
    finally:
        conn.close(clear=True)


def test_two_connectors_share_one_server(kv_server):
    a = RedisConnector(kv_server.host, kv_server.port)
    b = RedisConnector(kv_server.host, kv_server.port)
    try:
        key = a.put(b'shared')
        assert b.get(key) == b'shared'
    finally:
        a.close()
        b.close()


def test_store_proxy_through_redis_connector(kv_server):
    store = Store('redis-proxy-store', RedisConnector(kv_server.host, kv_server.port))
    try:
        p = store.proxy({'result': 42}, cache_local=False)
        import pickle

        restored = pickle.loads(pickle.dumps(p))
        assert restored['result'] == 42
    finally:
        store.close(clear=True)


def test_repr_mentions_address(kv_server):
    conn = RedisConnector(kv_server.host, kv_server.port)
    try:
        assert str(kv_server.port) in repr(conn)
    finally:
        conn.close()


def test_put_batch_uses_one_round_trip(kv_server):
    conn = RedisConnector(kv_server.host, kv_server.port)
    try:
        requests: list[str] = []
        original = conn._client._request

        def counting_request(command, key=None, value=None):
            requests.append(command)
            return original(command, key, value)

        conn._client._request = counting_request
        keys = conn.put_batch([f'item-{i}'.encode() for i in range(8)])
        assert requests == ['MSET']
        requests.clear()
        assert [bytes(d) for d in conn.get_batch(keys)] == [
            f'item-{i}'.encode() for i in range(8)
        ]
        assert requests == ['MGET']
        requests.clear()
        conn.evict_batch(keys)
        assert requests == ['MDEL']
        assert not any(conn.exists(k) for k in keys)
    finally:
        conn.close(clear=True)


def test_mget_returns_none_for_missing(kv_server):
    conn = RedisConnector(kv_server.host, kv_server.port)
    try:
        keys = conn.put_batch([b'a', b'b'])
        conn.evict(keys[0])
        got = conn.get_batch(keys)
        assert got[0] is None and bytes(got[1]) == b'b'
    finally:
        conn.close(clear=True)
