"""Tests for LocalConnector."""
from __future__ import annotations

import pytest

from repro.connectors.local import LocalConnector
from tests.connectors.behavior import ConnectorBehavior


@pytest.fixture()
def connector():
    conn = LocalConnector()
    yield conn
    conn.close(clear=True)


class TestLocalConnector(ConnectorBehavior):
    pass


def test_shared_store_id_shares_data():
    a = LocalConnector(store_id='shared')
    b = LocalConnector(store_id='shared')
    try:
        key = a.put(b'x')
        assert b.get(key) == b'x'
    finally:
        a.close(clear=True)
        b.close(clear=True)


def test_distinct_connectors_do_not_share():
    a = LocalConnector()
    b = LocalConnector()
    try:
        key = a.put(b'x')
        assert b.get(key) is None
    finally:
        a.close(clear=True)
        b.close(clear=True)


def test_len_tracks_stored_objects():
    conn = LocalConnector()
    try:
        assert len(conn) == 0
        keys = [conn.put(b'x') for _ in range(3)]
        assert len(conn) == 3
        conn.evict(keys[0])
        assert len(conn) == 2
    finally:
        conn.close(clear=True)


def test_close_with_clear_removes_global_entry():
    conn = LocalConnector(store_id='to-clear')
    conn.put(b'x')
    conn.close(clear=True)
    fresh = LocalConnector(store_id='to-clear')
    try:
        assert len(fresh) == 0
    finally:
        fresh.close(clear=True)


def test_repr_contains_store_id():
    conn = LocalConnector(store_id='abc')
    try:
        assert 'abc' in repr(conn)
    finally:
        conn.close(clear=True)
