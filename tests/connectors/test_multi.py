"""Tests for the MultiConnector."""
from __future__ import annotations

import pytest

from repro.connectors.file import FileConnector
from repro.connectors.local import LocalConnector
from repro.connectors.multi import MultiConnector
from repro.connectors.multi import MultiKey
from repro.connectors.policy import Policy
from repro.exceptions import NoPolicyMatchError
from repro.store import Store
from tests.connectors.behavior import ConnectorBehavior


@pytest.fixture()
def connector(tmp_path):
    conn = MultiConnector({
        'small': (LocalConnector(), Policy(max_size_bytes=10_000, priority=1)),
        'large': (FileConnector(str(tmp_path / 'big')), Policy(min_size_bytes=0, priority=0)),
    })
    yield conn
    conn.close(clear=True)


class TestMultiConnector(ConnectorBehavior):
    pass


def test_requires_connectors():
    with pytest.raises(ValueError):
        MultiConnector({})


def test_routes_by_size(tmp_path):
    small_backend = LocalConnector()
    large_backend = FileConnector(str(tmp_path / 'large'))
    conn = MultiConnector({
        'memory': (small_backend, Policy(max_size_bytes=1_000, priority=1)),
        'disk': (large_backend, Policy(min_size_bytes=1_001, priority=1)),
    })
    try:
        small_key = conn.put(b'x' * 100)
        large_key = conn.put(b'x' * 10_000)
        assert small_key.connector_label == 'memory'
        assert large_key.connector_label == 'disk'
        assert len(small_backend) == 1
        assert len(large_backend) == 1
        assert conn.get(small_key) == b'x' * 100
        assert conn.get(large_key) == b'x' * 10_000
    finally:
        conn.close(clear=True)


def test_priority_breaks_ties(tmp_path):
    conn = MultiConnector({
        'low': (LocalConnector(), Policy(priority=0)),
        'high': (LocalConnector(), Policy(priority=10)),
    })
    try:
        key = conn.put(b'anything')
        assert key.connector_label == 'high'
    finally:
        conn.close(clear=True)


def test_no_match_raises():
    conn = MultiConnector({
        'bounded': (LocalConnector(), Policy(max_size_bytes=10)),
    })
    try:
        with pytest.raises(NoPolicyMatchError):
            conn.put(b'x' * 100)
    finally:
        conn.close(clear=True)


def test_subset_tag_routing():
    gpu_backend = LocalConnector()
    cpu_backend = LocalConnector()
    conn = MultiConnector({
        'gpu-store': (gpu_backend, Policy(subset_tags=('gpu',), priority=5)),
        'default': (cpu_backend, Policy(priority=0)),
    })
    try:
        tagged = conn.put(b'model weights', subset_tags=('gpu',))
        untagged = conn.put(b'simulation input')
        assert tagged.connector_label == 'gpu-store'
        assert untagged.connector_label in ('default', 'gpu-store')
        assert conn.get(tagged) == b'model weights'
    finally:
        conn.close(clear=True)


def test_superset_tag_restriction():
    restricted = LocalConnector()
    fallback = LocalConnector()
    conn = MultiConnector({
        'cluster-only': (restricted, Policy(superset_tags=('cluster-a',), priority=5)),
        'anywhere': (fallback, Policy(priority=0)),
    })
    try:
        at_cluster = conn.put(b'data', superset_tags=('cluster-a',))
        elsewhere = conn.put(b'data')
        assert at_cluster.connector_label == 'cluster-only'
        assert elsewhere.connector_label == 'anywhere'
    finally:
        conn.close(clear=True)


def test_get_exists_evict_route_to_owning_connector(tmp_path):
    backend_a = LocalConnector()
    backend_b = FileConnector(str(tmp_path / 'b'))
    conn = MultiConnector({
        'a': (backend_a, Policy(max_size_bytes=10, priority=1)),
        'b': (backend_b, Policy(min_size_bytes=11, priority=1)),
    })
    try:
        key = conn.put(b'x' * 50)
        assert conn.exists(key)
        conn.evict(key)
        assert not conn.exists(key)
        assert len(backend_b) == 0
    finally:
        conn.close(clear=True)


def test_config_roundtrip_preserves_policies(tmp_path):
    conn = MultiConnector({
        'mem': (LocalConnector(), Policy(max_size_bytes=100, priority=2)),
        'disk': (FileConnector(str(tmp_path / 'd')), Policy(min_size_bytes=101)),
    })
    try:
        clone = MultiConnector.from_config(conn.config())
        assert set(clone.connectors) == {'mem', 'disk'}
        assert clone.policy_for('mem').max_size_bytes == 100
        assert clone.policy_for('mem').priority == 2
        key = conn.put(b'z' * 10)
        assert clone.get(key) == b'z' * 10
        clone.close()
    finally:
        conn.close(clear=True)


def test_store_proxy_with_connector_constraints(tmp_path):
    gpu_backend = LocalConnector()
    conn = MultiConnector({
        'gpu': (gpu_backend, Policy(subset_tags=('gpu',), priority=5)),
        'any': (LocalConnector(), Policy(priority=0)),
    })
    store = Store('multi-store', conn)
    try:
        proxy = store.proxy([1.0] * 10, subset_tags=('gpu',), cache_local=False)
        assert proxy == [1.0] * 10
        assert len(gpu_backend) == 1
    finally:
        store.close(clear=True)


def test_multikey_is_picklable():
    import pickle

    key = MultiKey('label', ('obj', 'connector'))
    assert pickle.loads(pickle.dumps(key)) == key
