"""Tests of the scheme-based connector registry and StoreURL parsing."""
from __future__ import annotations

import pytest

from repro.connectors import Connector
from repro.connectors import get_connector_class
from repro.connectors import list_connectors
from repro.connectors import register_connector
from repro.connectors import unregister_connector
from repro.connectors.file import FileConnector
from repro.connectors.local import LocalConnector
from repro.connectors.registry import StoreURL
from repro.exceptions import ConnectorSchemeExistsError
from repro.exceptions import UnknownConnectorSchemeError


def test_builtin_connectors_self_register():
    schemes = list_connectors()
    for scheme in ('local', 'file', 'redis', 'endpoint', 'multi',
                   'globus', 'zmq', 'ucx', 'margo'):
        assert scheme in schemes, scheme
    assert schemes['local'] is LocalConnector
    assert schemes['file'] is FileConnector


def test_get_connector_class_unknown_scheme():
    with pytest.raises(UnknownConnectorSchemeError, match='warp-drive'):
        get_connector_class('warp-drive')


def test_register_collision_and_replace():
    class FirstClaimant(LocalConnector):
        pass

    try:
        register_connector('collision-test', FirstClaimant)
        # Same class again: a no-op, not a collision.
        register_connector('collision-test', FirstClaimant)

        class SecondClaimant(LocalConnector):
            pass

        with pytest.raises(ConnectorSchemeExistsError, match='collision-test'):
            register_connector('collision-test', SecondClaimant)
        register_connector('collision-test', SecondClaimant, replace=True)
        assert get_connector_class('collision-test') is SecondClaimant
    finally:
        unregister_connector('collision-test')


def test_register_rejects_empty_scheme():
    with pytest.raises(ValueError):
        register_connector('', LocalConnector)


def test_subclass_with_own_scheme_self_registers():
    class AutoRegistered(LocalConnector):
        scheme = 'auto-registered-test'

    try:
        assert get_connector_class('auto-registered-test') is AutoRegistered
    finally:
        unregister_connector('auto-registered-test')


def test_subclass_without_scheme_does_not_steal_parents():
    class Derived(LocalConnector):
        pass

    assert get_connector_class('local') is LocalConnector


def test_base_connector_from_url_not_implemented():
    with pytest.raises(NotImplementedError):
        Connector.from_url('anything://x')


def test_store_url_parsing_basics():
    url = StoreURL('redis://example.org:6380/my-ns?launch=1&cache_size=8')
    assert url.scheme == 'redis'
    assert url.host == 'example.org'
    assert url.port == 6380
    assert url.path == '/my-ns'
    assert url.pop_bool('launch') is True
    assert url.pop_int('cache_size') == 8
    url.ensure_consumed()


def test_store_url_leftover_params_raise():
    url = StoreURL('local://?unknown=1')
    with pytest.raises(ValueError, match='unknown'):
        url.ensure_consumed()


def test_store_url_bool_rejects_garbage():
    url = StoreURL('local://?flag=sometimes')
    with pytest.raises(ValueError, match='flag'):
        url.pop_bool('flag')


def test_store_url_hostless_netloc():
    url = StoreURL('endpoint://uuid-a,uuid-b/name')
    assert url.netloc == 'uuid-a,uuid-b'
    assert url.port is None
