"""Tests for GlobusConnector."""
from __future__ import annotations

import pytest

from repro.connectors.globus import GlobusConnector
from repro.connectors.globus import current_hostname
from repro.connectors.globus import set_current_hostname
from repro.exceptions import ConnectorError
from repro.exceptions import TransferError
from repro.globus_sim import GlobusEndpointSpec
from repro.globus_sim import GlobusTransferService
from repro.globus_sim import reset_transfer_service
from tests.connectors.behavior import ConnectorBehavior


@pytest.fixture(autouse=True)
def _clean_service():
    yield
    reset_transfer_service()
    set_current_hostname(None)


@pytest.fixture()
def service():
    return GlobusTransferService()


def make_two_site_connector(tmp_path, service):
    """Connector mapping 'site-a*' and 'site-b*' hostnames to two endpoints."""
    spec_a = GlobusEndpointSpec.create(str(tmp_path / 'ep-a'))
    spec_b = GlobusEndpointSpec.create(str(tmp_path / 'ep-b'))
    service.register_endpoint(spec_a)
    service.register_endpoint(spec_b)
    return GlobusConnector(
        endpoints={
            r'^site-a': (spec_a.endpoint_uuid, spec_a.endpoint_path),
            r'^site-b': (spec_b.endpoint_uuid, spec_b.endpoint_path),
        },
        service=service,
    )


@pytest.fixture()
def connector(tmp_path, service):
    """Single-endpoint connector matching any hostname (for the shared behaviour suite)."""
    spec = GlobusEndpointSpec.create(str(tmp_path / 'only-ep'))
    service.register_endpoint(spec)
    conn = GlobusConnector(
        endpoints={r'.*': (spec.endpoint_uuid, spec.endpoint_path)},
        service=service,
    )
    yield conn
    conn.close(clear=True)


class TestGlobusConnector(ConnectorBehavior):
    pass


def test_requires_endpoint_mapping():
    with pytest.raises(ValueError):
        GlobusConnector(endpoints={})


def test_hostname_override_roundtrip():
    token = set_current_hostname('site-a-login')
    assert current_hostname() == 'site-a-login'
    set_current_hostname(None)
    assert current_hostname() != 'site-a-login'


def test_no_matching_hostname_raises(tmp_path, service):
    spec = GlobusEndpointSpec.create(str(tmp_path / 'ep'))
    service.register_endpoint(spec)
    conn = GlobusConnector(
        endpoints={r'^no-such-host$': (spec.endpoint_uuid, spec.endpoint_path)},
        service=service,
    )
    with pytest.raises(ConnectorError, match='no Globus endpoint pattern'):
        conn.put(b'x')


def test_cross_site_transfer_via_globus(tmp_path, service):
    conn = make_two_site_connector(tmp_path, service)
    # Producer runs at "site-a".
    set_current_hostname('site-a-login')
    key = conn.put(b'inter-site payload')
    assert len(key.task_ids) == 1
    # Consumer runs at "site-b": the proxy would wait on the transfer task
    # and then read from the local (site-b) endpoint directory.
    set_current_hostname('site-b-compute-07')
    assert conn.get(key) == b'inter-site payload'


def test_put_batch_submits_single_task_per_destination(tmp_path, service):
    conn = make_two_site_connector(tmp_path, service)
    set_current_hostname('site-a-login')
    keys = conn.put_batch([b'one', b'two', b'three'])
    task_ids = {key.task_ids for key in keys}
    assert len(task_ids) == 1  # all objects share the same transfer task
    set_current_hostname('site-b-node')
    assert conn.get_batch(keys) == [b'one', b'two', b'three']


def test_failed_transfer_raises_on_get(tmp_path, service):
    conn = make_two_site_connector(tmp_path, service)
    set_current_hostname('site-a-login')
    service.fail_next_transfer()
    key = conn.put(b'doomed')
    set_current_hostname('site-b-node')
    with pytest.raises(TransferError):
        conn.get(key)


def test_exists_false_before_transfer_completes(tmp_path):
    service = GlobusTransferService(task_delay_s=0.3)
    spec_a = GlobusEndpointSpec.create(str(tmp_path / 'a'))
    spec_b = GlobusEndpointSpec.create(str(tmp_path / 'b'))
    service.register_endpoint(spec_a)
    service.register_endpoint(spec_b)
    conn = GlobusConnector(
        endpoints={
            r'^site-a': (spec_a.endpoint_uuid, spec_a.endpoint_path),
            r'^site-b': (spec_b.endpoint_uuid, spec_b.endpoint_path),
        },
        service=service,
    )
    set_current_hostname('site-a-login')
    key = conn.put(b'slow')
    set_current_hostname('site-b-node')
    assert conn.exists(key) is False  # task still in flight
    assert conn.get(key) == b'slow'   # get waits for completion
    assert conn.exists(key) is True


def test_evict_removes_from_all_endpoints(tmp_path, service):
    conn = make_two_site_connector(tmp_path, service)
    set_current_hostname('site-a-login')
    key = conn.put(b'data')
    set_current_hostname('site-b-node')
    conn.get(key)
    conn.evict(key)
    assert conn.get(key) is None
    set_current_hostname('site-a-login')
    assert conn.get(key) is None
