"""Tests for EndpointConnector."""
from __future__ import annotations

import pickle

import pytest

from repro.connectors.endpoint import EndpointConnector
from repro.connectors.endpoint import current_local_endpoint
from repro.connectors.endpoint import set_local_endpoint
from repro.endpoint import Endpoint
from repro.endpoint import RelayServer
from repro.endpoint.endpoint import reset_endpoint_registry
from repro.exceptions import EndpointError
from repro.store import Store
from tests.connectors.behavior import ConnectorBehavior


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    set_local_endpoint(None)
    reset_endpoint_registry()


@pytest.fixture()
def relay():
    return RelayServer()


@pytest.fixture()
def connector(relay):
    endpoint = Endpoint('behaviour-site', relay)
    endpoint.start()
    conn = EndpointConnector([endpoint.uuid])
    yield conn
    conn.close(clear=True)
    endpoint.stop()


class TestEndpointConnector(ConnectorBehavior):
    pass


def test_requires_endpoints():
    with pytest.raises(ValueError):
        EndpointConnector([])


def test_error_when_no_endpoint_running():
    conn = EndpointConnector(['0' * 32])
    with pytest.raises(EndpointError):
        conn.put(b'x')


def test_local_endpoint_override(relay):
    a = Endpoint('site-a', relay)
    b = Endpoint('site-b', relay)
    a.start()
    b.start()
    conn = EndpointConnector([a.uuid, b.uuid])
    try:
        set_local_endpoint(b.uuid)
        assert current_local_endpoint() == b.uuid
        key = conn.put(b'written at b')
        assert key.endpoint_id == b.uuid
        assert b.storage.exists(key.object_id)
        assert not a.storage.exists(key.object_id)
    finally:
        set_local_endpoint(None)
        a.stop()
        b.stop()


def test_cross_site_resolution_via_peer_connection(relay):
    """Producer stores at site A; consumer at site B fetches through its own endpoint."""
    a = Endpoint('site-a', relay)
    b = Endpoint('site-b', relay)
    a.start()
    b.start()
    conn = EndpointConnector([a.uuid, b.uuid])
    try:
        set_local_endpoint(a.uuid)
        key = conn.put(b'produced at A')
        assert key.endpoint_id == a.uuid

        # Consumer side: same connector config, different local endpoint.
        set_local_endpoint(b.uuid)
        consumer = EndpointConnector.from_config(conn.config())
        assert consumer.get(key) == b'produced at A'
        assert consumer.exists(key)
        consumer.evict(key)
        assert not a.storage.exists(key.object_id)
    finally:
        set_local_endpoint(None)
        a.stop()
        b.stop()


def test_proxy_across_sites_with_store(relay):
    """End-to-end: proxy created at site A resolves at site B via endpoints."""
    a = Endpoint('site-a', relay)
    b = Endpoint('site-b', relay)
    a.start()
    b.start()
    set_local_endpoint(a.uuid)
    store = Store('endpoint-proxy-store', EndpointConnector([a.uuid, b.uuid]))
    try:
        proxy = store.proxy({'model': [1.0, 2.0, 3.0]}, cache_local=False)
        data = pickle.dumps(proxy)

        # "Move" to site B: resolve the proxy there.
        set_local_endpoint(b.uuid)
        restored = pickle.loads(data)
        assert restored['model'] == [1.0, 2.0, 3.0]
    finally:
        set_local_endpoint(None)
        store.close()
        a.stop()
        b.stop()


def test_pinned_local_uuid(relay):
    a = Endpoint('site-a', relay)
    b = Endpoint('site-b', relay)
    a.start()
    b.start()
    conn = EndpointConnector([a.uuid, b.uuid], local_uuid=b.uuid)
    try:
        key = conn.put(b'pinned')
        assert key.endpoint_id == b.uuid
    finally:
        a.stop()
        b.stop()


def test_close_clear_clears_local_storage(relay):
    a = Endpoint('site-a', relay)
    a.start()
    conn = EndpointConnector([a.uuid])
    try:
        conn.put(b'x')
        conn.close(clear=True)
        assert len(a.storage) == 0
    finally:
        a.stop()
