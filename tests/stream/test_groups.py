"""Consumer groups: partitioning, coordination, rebalance, redelivery.

The unit layer checks the coordinator-free contracts (partition naming,
stable hashing, deterministic assignment, ring placement); the
integration layer runs real group members over both transports through
splits, joins, member death, and crash-mid-ack — asserting the
at-least-once guarantee end to end: full coverage, exact redelivery
accounting, and zero stranded keys.
"""
from __future__ import annotations

import hashlib
import pickle
import threading
import time

import pytest

import repro
from repro.exceptions import GroupMembershipError
from repro.exceptions import StoreError
from repro.stream import LocalEventBus
from repro.stream import StreamConsumer
from repro.stream import StreamProducer
from repro.stream import broker_id
from repro.stream import partition_topics
from repro.stream.events import StreamEvent
from repro.stream.groups import GroupConsumer
from repro.stream.groups import GroupCoordinator
from repro.stream.groups import PartitionRouter
from repro.stream.groups import assign_partitions
from repro.stream.groups import partition_for

_STORE_COUNTER = iter(range(10**6))


@pytest.fixture()
def group_store():
    """A local store per test, cleared on teardown."""
    store = repro.store_from_url(
        f'local:///group-test-store-{next(_STORE_COUNTER)}',
    )
    yield store
    store.close(clear=True)


# --------------------------------------------------------------------------- #
# Partitioning primitives
# --------------------------------------------------------------------------- #
def test_partition_topics_single_keeps_plain_name():
    assert partition_topics('jobs', 1) == ['jobs']
    assert partition_topics('jobs', 3) == ['jobs.p0', 'jobs.p1', 'jobs.p2']
    with pytest.raises(ValueError):
        partition_topics('jobs', 0)


def test_partition_for_is_stable_blake2b():
    # The contract is the blake2b scheme itself (never randomized hash()):
    # every process must compute the same index for the same key.
    digest = hashlib.blake2b(b'alpha', digest_size=8).digest()
    expected = int.from_bytes(digest, 'big') % 7
    assert partition_for('alpha', 7) == expected
    assert partition_for('alpha', 7) == partition_for('alpha', 7)
    assert all(0 <= partition_for(f'k{i}', 5) < 5 for i in range(100))
    with pytest.raises(ValueError):
        partition_for('alpha', 0)


def test_assign_partitions_round_robin_deterministic():
    topics = partition_topics('t', 4)
    # Member order must not matter: sorted ids drive the round-robin.
    assignment = assign_partitions(['b', 'a'], topics)
    assert assignment == {'a': ['t.p0', 't.p2'], 'b': ['t.p1', 't.p3']}
    assert assign_partitions(['a', 'b'], topics) == assignment
    # More members than partitions: the extras idle with empty claims.
    wide = assign_partitions(['a', 'b', 'c', 'd', 'e'], topics)
    assert wide['e'] == []
    assert sorted(t for claims in wide.values() for t in claims) == sorted(topics)
    assert assign_partitions([], topics) == {}


# --------------------------------------------------------------------------- #
# Partition router
# --------------------------------------------------------------------------- #
def test_partition_router_placement_is_deterministic():
    buses = [LocalEventBus(f'router-bus-{i}') for i in range(3)]
    router_a = PartitionRouter('t', 8, buses)
    router_b = PartitionRouter('t', 8, list(reversed(buses)))
    for topic in router_a.topics:
        assert broker_id(router_a.bus_for(topic)) == broker_id(
            router_b.bus_for(topic),
        )
    assert broker_id(router_a.designated('group:g')) == broker_id(
        router_b.designated('group:g'),
    )
    # Every partition landed on one of the fleet's brokers.
    ids = {broker_id(bus) for bus in buses}
    assert {broker_id(router_a.bus_for(t)) for t in router_a.topics} <= ids


def test_partition_router_config_round_trip():
    buses = [LocalEventBus(f'router-rt-{i}') for i in range(2)]
    router = PartitionRouter('t', 4, buses)
    rebuilt = PartitionRouter.from_config(
        pickle.loads(pickle.dumps(router.config())),
    )
    assert rebuilt.topic == 't'
    assert rebuilt.partitions == 4
    for topic in router.topics:
        assert broker_id(rebuilt.bus_for(topic)) == broker_id(
            router.bus_for(topic),
        )
    rebuilt.close()


def test_partition_router_rejects_duplicate_brokers():
    bus = LocalEventBus('router-dup')
    with pytest.raises(ValueError):
        PartitionRouter('t', 2, [bus, LocalEventBus('router-dup')])


# --------------------------------------------------------------------------- #
# Coordinator (both transports)
# --------------------------------------------------------------------------- #
def test_coordinator_membership_offsets_and_ends(make_bus, topic):
    router = PartitionRouter(topic, 2, make_bus())
    coordinator = GroupCoordinator(f'g-{topic}', router)
    view = coordinator.join('m1', session_timeout=5.0)
    assert 'm1' in view['members']
    generation = view['generation']
    view = coordinator.join('m2', session_timeout=5.0)
    assert view['generation'] > generation
    assert view['members'] == ['m1', 'm2']
    ptopic = router.topics[0]
    coordinator.heartbeat('m1', {ptopic: 4}, {ptopic: 9})
    coordinator.commit('m1', {ptopic: 3}, {ptopic: 4})
    # Commits are monotonic: a stale, lower offset never rolls back.
    coordinator.commit('m1', {ptopic: 1}, {ptopic: 4})
    fetched = coordinator.fetch([ptopic])[ptopic]
    assert fetched['committed'] == 3
    assert fetched['watermark'] == 4
    assert fetched['end'] == 9
    assert fetched['end_member'] == 'm1'
    stats = coordinator.stats()
    assert stats['committed'][ptopic] == 3
    assert stats['ends'][ptopic] == 9
    coordinator.leave('m2', {})
    assert coordinator.stats()['members'] == ['m1']


def test_coordinator_expires_silent_members(make_bus, topic):
    router = PartitionRouter(topic, 2, make_bus())
    coordinator = GroupCoordinator(f'g-{topic}', router)
    coordinator.join('quiet', session_timeout=0.2)
    coordinator.join('alive', session_timeout=5.0)
    time.sleep(0.35)
    view = coordinator.heartbeat('alive', {})
    assert view['members'] == ['alive']
    with pytest.raises(GroupMembershipError):
        coordinator.heartbeat('quiet', {})


# --------------------------------------------------------------------------- #
# Group consumers end to end
# --------------------------------------------------------------------------- #
def _drain(consumer, sink, errors):
    """Consume to completion, resolving and acking every item."""
    try:
        for event, item in consumer.events():
            sink.append((event.key, int(item['i'])))
            consumer.ack()
    except BaseException as e:  # noqa: BLE001 - surfaced in the main thread
        errors.append(e)


def _drain_all(consumers, sinks):
    errors: list[BaseException] = []
    threads = [
        threading.Thread(target=_drain, args=(consumer, sink, errors))
        for consumer, sink in zip(consumers, sinks)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not any(thread.is_alive() for thread in threads)
    if errors:
        raise errors[0]


def _group_consumer(group_store, bus, topic, **kwargs):
    kwargs.setdefault('timeout', 15.0)
    return StreamConsumer(group_store, bus, topic, **kwargs)


def test_stream_consumer_dispatches_group_kwarg(group_store, make_bus, topic):
    consumer = StreamConsumer(
        group_store, make_bus(), topic, group='g', partitions=2,
    )
    try:
        assert isinstance(consumer, GroupConsumer)
        assert not isinstance(consumer, StreamConsumer)
    finally:
        consumer.close()


def test_two_members_split_partitions_exactly_once(group_store, make_bus, topic):
    bus = make_bus()
    group = f'g-{topic}'
    a = _group_consumer(
        group_store, bus, topic, group=group, partitions=4, member='a',
    )
    b = _group_consumer(
        group_store, make_bus(), topic, group=group, partitions=4, member='b',
    )
    try:
        # Converge both members onto the two-member generation before load.
        a.refresh()
        b.refresh()
        assert sorted(a.assignment + b.assignment) == partition_topics(topic, 4)
        assert not set(a.assignment) & set(b.assignment)

        producer = StreamProducer(group_store, make_bus(), topic, partitions=4)
        for i in range(12):
            producer.send({'i': i}, partition_key=str(i))
        producer.close()

        sink_a: list = []
        sink_b: list = []
        _drain_all([a, b], [sink_a, sink_b])
        values_a = [value for _key, value in sink_a]
        values_b = [value for _key, value in sink_b]
        # Exactly-once in the steady state: full coverage, no overlap.
        assert sorted(values_a + values_b) == list(range(12))
        assert a.redelivered == b.redelivered == 0
        assert a.lost == b.lost == 0
        # Every delivered key was acked away — nothing strands.
        assert all(
            not group_store.exists(key) for key, _value in sink_a + sink_b
        )
    finally:
        a.close()
        b.close()


def test_rebalance_on_join_hands_off_without_loss(group_store, make_bus, topic):
    bus = make_bus()
    group = f'g-{topic}'
    a = _group_consumer(
        group_store, bus, topic, group=group, partitions=4, member='a',
    )
    b = None
    try:
        a.refresh()
        assert a.assignment == partition_topics(topic, 4)
        producer = StreamProducer(group_store, make_bus(), topic, partitions=4)
        for i in range(20):
            producer.send({'i': i})
        producer.close()

        # The solo member works part of the stream, acking as it goes...
        sink_a: list = []
        events_a = a.events()
        for _ in range(6):
            event, item = next(events_a)
            sink_a.append((event.key, int(item['i'])))
            a.ack()
        # ...then a second member joins and takes half the partitions.
        b = _group_consumer(
            group_store, make_bus(), topic, group=group, partitions=4,
            member='b',
        )
        a.refresh()
        b.refresh()
        assert len(a.assignment) == len(b.assignment) == 2

        errors: list = []
        sink_b: list = []

        def finish_a():
            try:
                for event, item in events_a:
                    sink_a.append((event.key, int(item['i'])))
                    a.ack()
            except BaseException as e:  # noqa: BLE001
                errors.append(e)

        drain_a = threading.Thread(target=finish_a)
        drain_b = threading.Thread(target=_drain, args=(b, sink_b, errors))
        drain_a.start()
        drain_b.start()
        drain_a.join(timeout=30)
        drain_b.join(timeout=30)
        assert not drain_a.is_alive() and not drain_b.is_alive()
        assert not errors

        values = [v for _k, v in sink_a] + [v for _k, v in sink_b]
        # Everything acked before the handoff stays acked; nothing is
        # dropped or double-delivered across the rebalance.
        assert sorted(values) == list(range(20))
        assert a.redelivered == b.redelivered == 0
        assert all(not group_store.exists(key) for key, _v in sink_a + sink_b)
    finally:
        a.close()
        if b is not None:
            b.close()


def _crash(consumer):
    """Simulate a hard crash: stop heartbeating, leave everything dirty.

    Nothing is acked, committed, or unsubscribed — exactly the state a
    SIGKILL leaves behind; only the coordinator's lease expiry reveals it.
    """
    consumer._closed.set()
    consumer._heartbeat_thread.join(timeout=5)


def test_member_death_redelivers_unacked(group_store, make_bus, topic):
    bus = make_bus()
    group = f'g-{topic}'
    victim = _group_consumer(
        group_store, bus, topic, group=group, partitions=2, member='victim',
        session_timeout=0.6,
    )
    survivor = None
    try:
        victim.refresh()
        producer = StreamProducer(group_store, make_bus(), topic, partitions=2)
        for i in range(8):
            producer.send({'i': i})
        producer.close()

        victim_values = []
        events = victim.events()
        for _ in range(3):
            _event, item = next(events)
            victim_values.append(int(item['i']))
        # Report delivered positions (the watermark), then crash un-acked.
        victim.refresh()
        _crash(victim)
        time.sleep(0.9)  # let the lease expire at the coordinator

        survivor = _group_consumer(
            group_store, make_bus(), topic, group=group, partitions=2,
            member='survivor', session_timeout=5.0,
        )
        sink: list = []
        errors: list = []
        _drain_all([survivor], [sink])
        assert not errors
        values = [value for _key, value in sink]
        # The survivor replays the whole stream (nothing was committed)
        # and counts exactly the victim's delivered events as redelivered.
        assert sorted(values) == list(range(8))
        assert survivor.redelivered == len(victim_values)
        assert survivor.deduplicated == 0
        assert set(victim_values) <= set(values)
        assert all(not group_store.exists(key) for key, _value in sink)
    finally:
        victim.close()
        if survivor is not None:
            survivor.close()


def test_crash_mid_ack_deduplicates_evicted_keys(group_store, make_bus, topic):
    """A crash between evict and commit must not re-deliver dead proxies.

    The victim evicted its delivered keys but died before the offset
    commit landed — the committed-behind state ``ack()``'s ordering makes
    possible.  The successor recognizes the redelivered events' missing
    keys, counts them ``deduplicated``, and commits past them.
    """
    bus = make_bus()
    group = f'g-{topic}'
    victim = _group_consumer(
        group_store, bus, topic, group=group, partitions=1, member='victim',
        session_timeout=0.6,
    )
    successor = None
    try:
        victim.refresh()
        producer = StreamProducer(group_store, make_bus(), topic, partitions=1)
        for i in range(6):
            producer.send({'i': i})
        producer.close()

        events = victim.events()
        done = [int(next(events)[1]['i']) for _ in range(3)]
        assert done == [0, 1, 2]
        victim.refresh()
        # The evict half of ack() completed; the commit never did.
        keys = [
            key
            for claim in victim._claims.values()
            for _seq, key in claim.unacked
        ]
        assert len(keys) == 3
        group_store.evict_batch(keys)
        _crash(victim)
        time.sleep(0.9)

        successor = _group_consumer(
            group_store, make_bus(), topic, group=group, partitions=1,
            member='successor', session_timeout=5.0,
        )
        sink: list = []
        _drain_all([successor], [sink])
        assert [value for _key, value in sink] == [3, 4, 5]
        assert successor.deduplicated == 3
        assert successor.redelivered == 0
        assert successor.delivered == 3
    finally:
        victim.close()
        if successor is not None:
            successor.close()


def test_group_consumer_refuses_to_pickle(group_store, make_bus, topic):
    consumer = _group_consumer(
        group_store, make_bus(), topic, group=f'g-{topic}', partitions=2,
    )
    try:
        with pytest.raises(StoreError, match='live'):
            pickle.dumps(consumer)
    finally:
        consumer.close()


# --------------------------------------------------------------------------- #
# Partitioned producers
# --------------------------------------------------------------------------- #
def _partition_events(bus, topic, partitions):
    """Decode whatever each partition topic currently retains."""
    per_topic = {}
    for ptopic in partition_topics(topic, partitions):
        subscription = bus.subscribe(ptopic, from_seq=0)
        events = []
        batch = subscription.next_batch(timeout=1.0)
        while batch:
            events.extend(
                StreamEvent.decode(data, seq=seq) for seq, data in batch
            )
            batch = subscription.next_batch(timeout=0.2)
        subscription.close()
        per_topic[ptopic] = events
    return per_topic


def test_partitioned_producer_routes_stable_keys(group_store, make_bus, topic):
    bus = make_bus()
    producer = StreamProducer(group_store, bus, topic, partitions=3)
    for i in range(9):
        producer.send(
            {'i': i},
            metadata={'pkey': f'key-{i % 3}'},
            partition_key=f'key-{i % 3}',
        )
    producer.close()
    per_topic = _partition_events(make_bus(), topic, 3)
    names = partition_topics(topic, 3)
    seen = 0
    # Equal keys land on equal partitions; close() ended every partition.
    for ptopic, events in per_topic.items():
        for event in events:
            if event.end:
                continue
            seen += 1
            expected = names[partition_for(event.metadata['pkey'], 3)]
            assert ptopic == expected
        assert events[-1].end
    assert seen == 9


def test_partitioned_producer_round_robin_and_batch(group_store, make_bus, topic):
    bus = make_bus()
    producer = StreamProducer(group_store, bus, topic, partitions=3)
    for i in range(6):
        producer.send({'i': i})
    seqs = producer.send_batch(
        [{'i': i} for i in range(6, 12)],
        partition_keys=[None, None, 'x', 'x', None, 'x'],
    )
    assert len(seqs) == 6
    producer.close()
    assert producer.sent == 12
    per_topic = _partition_events(make_bus(), topic, 3)
    counts = {
        ptopic: sum(1 for e in events if not e.end)
        for ptopic, events in per_topic.items()
    }
    assert sum(counts.values()) == 12
    # Keyless round-robin spreads the load: no partition goes empty.
    assert all(count > 0 for count in counts.values())


def test_partitioned_producer_pickle_round_trip(group_store, make_bus, topic):
    producer = StreamProducer(group_store, make_bus(), topic, partitions=2)
    producer.send({'i': 0})
    clone = pickle.loads(pickle.dumps(producer))
    assert clone.partitions == 2
    clone.send({'i': 1})
    clone.close()
    per_topic = _partition_events(make_bus(), topic, 2)
    data = [e for events in per_topic.values() for e in events if not e.end]
    assert len(data) == 2
    ends = [events[-1].end for events in per_topic.values() if events]
    assert ends and all(ends)


def test_group_delivery_metrics_surface_on_store(make_bus, topic):
    store = repro.store_from_url(
        f'local:///group-metrics-store-{next(_STORE_COUNTER)}?metrics=1',
    )
    try:
        consumer = _group_consumer(
            store, make_bus(), topic, group=f'g-{topic}', partitions=2,
        )
        producer = StreamProducer(store, make_bus(), topic, partitions=2)
        for i in range(4):
            producer.send({'i': i})
        producer.close()
        sink: list = []
        _drain_all([consumer], [sink])
        consumer.close()
        summary = store.metrics_summary()
        assert summary['stream.group.delivered']['count'] == 4
        assert summary['stream.group.commits']['count'] >= 1
        assert 'stream.group.redelivered' not in summary
    finally:
        store.close(clear=True)
