"""Fixtures for the streaming tests: both event transports, one KV server.

Every bus-facing test is parametrized over the ``local`` (in-process ring
buffers) and ``kv`` (SimKV broker with push fan-out) transports so the
ordering/retention/backpressure guarantees are verified end to end on
each.
"""
from __future__ import annotations

import itertools

import pytest

from repro.kvserver.server import KVServer
from repro.stream import KVEventBus
from repro.stream import LocalEventBus

_COUNTER = itertools.count()


@pytest.fixture(scope='module')
def kv_server():
    """One SimKV broker shared by the module's KV-transport tests."""
    server = KVServer(stream_retention=256)
    server.start()
    yield server
    server.stop()


@pytest.fixture(params=['local', 'kv'])
def make_bus(request, kv_server):
    """Factory returning fresh, same-transport bus handles per call.

    Handles made by one factory share topics (``local`` buses share a
    ``bus_id`` namespace; ``kv`` buses point at the module's server), so a
    test can hold distinct producer- and consumer-side handles.
    """
    transport = request.param
    bus_id = f'test-bus-{next(_COUNTER)}'
    created = []

    def factory(**kwargs):
        if transport == 'local':
            bus = LocalEventBus(bus_id, **kwargs)
        else:
            assert kv_server.port is not None
            bus = KVEventBus(kv_server.host, kv_server.port, **kwargs)
        created.append(bus)
        return bus

    factory.transport = transport
    yield factory
    for bus in created:
        bus.close()


@pytest.fixture()
def topic():
    """A topic name unique to the test (topics outlive bus handles)."""
    return f'topic-{next(_COUNTER)}'
