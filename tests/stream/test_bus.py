"""Event-bus guarantees, verified against both transports.

Ordering, retention-bounded catch-up, lost-event accounting, per-topic
configuration, and (for the KV transport) push fan-out and slow-consumer
backpressure.
"""
from __future__ import annotations

import threading
import time

import pytest

from repro.stream import event_bus_from_url
from repro.stream.bus import LocalEventBus


def test_publish_assigns_monotonic_seqs(make_bus, topic):
    bus = make_bus()
    seqs = [bus.publish(topic, b'e%d' % i) for i in range(5)]
    assert seqs == [0, 1, 2, 3, 4]
    assert bus.publish_batch(topic, [b'a', b'b']) == [5, 6]


def test_subscribe_receives_in_order(make_bus, topic):
    bus = make_bus()
    sub = bus.subscribe(topic)
    payloads = [b'event-%d' % i for i in range(20)]
    bus.publish_batch(topic, payloads)
    received = []
    while len(received) < 20:
        batch = sub.next_batch(timeout=5.0)
        assert batch, 'timed out waiting for pushed events'
        received.extend(batch)
    assert [seq for seq, _ in received] == list(range(20))
    assert [bytes(data) for _, data in received] == payloads
    assert sub.lost == 0
    sub.close()


def test_subscribe_from_seq_replays_backlog(make_bus, topic):
    bus = make_bus()
    for i in range(10):
        bus.publish(topic, b'%d' % i)
    sub = bus.subscribe(topic, from_seq=4)
    received = []
    while len(received) < 6:
        batch = sub.next_batch(timeout=5.0)
        assert batch
        received.extend(batch)
    assert [seq for seq, _ in received] == [4, 5, 6, 7, 8, 9]
    sub.close()


def test_catchup_is_bounded_by_retention(make_bus, topic):
    """A subscriber beyond the ring start gets what is retained, plus a
    lost count for what aged out — never an unbounded replay."""
    bus = make_bus(retention=8)
    bus.configure_topic(topic, retention=8)
    for i in range(30):
        bus.publish(topic, b'%d' % i)
    sub = bus.subscribe(topic, from_seq=0)
    received = []
    while len(received) < 8:
        batch = sub.next_batch(timeout=5.0)
        assert batch
        received.extend(batch)
    assert [seq for seq, _ in received] == list(range(22, 30))
    assert sub.lost == 22
    stats = bus.topic_stats(topic)
    assert stats is not None
    assert stats['ring_events'] == 8
    assert stats['dropped_events'] == 22
    sub.close()


def test_retention_bounds_broker_memory(make_bus, topic):
    """With no consumer draining at all, broker-side bytes stay bounded."""
    retention = 4
    bus = make_bus(retention=retention)
    bus.configure_topic(topic, retention=retention)
    payload = b'x' * 4096
    for _ in range(100):
        bus.publish(topic, payload)
    stats = bus.topic_stats(topic)
    assert stats is not None
    assert stats['ring_events'] == retention
    assert stats['ring_bytes'] <= retention * len(payload)


def test_configure_topic_trims_immediately(make_bus, topic):
    bus = make_bus()
    for i in range(10):
        bus.publish(topic, b'%d' % i)
    bus.configure_topic(topic, retention=3)
    stats = bus.topic_stats(topic)
    assert stats is not None
    assert stats['ring_events'] == 3
    assert stats['retention'] == 3


def test_unknown_topic_stats_is_none(make_bus):
    bus = make_bus()
    assert bus.topic_stats('never-used') is None


def test_fanout_to_multiple_subscribers(make_bus, topic):
    bus = make_bus()
    subs = [bus.subscribe(topic) for _ in range(3)]
    bus.publish_batch(topic, [b'a', b'b', b'c'])
    for sub in subs:
        received = []
        while len(received) < 3:
            batch = sub.next_batch(timeout=5.0)
            assert batch
            received.extend(batch)
        assert [bytes(d) for _, d in received] == [b'a', b'b', b'c']
        sub.close()


def test_concurrent_publishers_interleave_without_loss(make_bus, topic):
    bus = make_bus()
    sub = bus.subscribe(topic)
    n_threads, per_thread = 4, 25

    def publisher(tid: int) -> None:
        for i in range(per_thread):
            bus.publish(topic, b'%d:%d' % (tid, i))

    threads = [
        threading.Thread(target=publisher, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = n_threads * per_thread
    received = []
    while len(received) < total:
        batch = sub.next_batch(timeout=5.0)
        assert batch
        received.extend(batch)
    assert [seq for seq, _ in received] == list(range(total))
    # Each publisher's own events arrive in its publication order.
    for tid in range(n_threads):
        mine = [
            int(bytes(d).split(b':')[1])
            for _, d in received
            if bytes(d).startswith(b'%d:' % tid)
        ]
        assert mine == list(range(per_thread))
    sub.close()


def test_bus_config_round_trip(make_bus, topic):
    from repro.stream.bus import bus_from_config

    bus = make_bus()
    bus.publish(topic, b'shared')
    clone = bus_from_config(bus.config())
    try:
        sub = clone.subscribe(topic, from_seq=0)
        batch = sub.next_batch(timeout=5.0)
        assert [bytes(d) for _, d in batch] == [b'shared']
        sub.close()
    finally:
        clone.close()


def test_event_bus_from_url_local():
    bus = event_bus_from_url('local://url-bus-test?retention=7')
    assert isinstance(bus, LocalEventBus)
    assert bus.retention == 7
    other = event_bus_from_url('local://url-bus-test')
    assert bus.publish('t', b'x') == 0
    sub = other.subscribe('t', from_seq=0)
    assert [bytes(d) for _, d in sub.next_batch(timeout=5.0)] == [b'x']


def test_event_bus_from_url_rejects_unknown_params():
    with pytest.raises(ValueError):
        event_bus_from_url('local://x?retentoin=5')


def test_close_wakes_blocked_subscriber(make_bus, topic):
    """close() from another thread must wake a next_batch(timeout=None)."""
    bus = make_bus()
    sub = bus.subscribe(topic)
    result: list = []

    def blocked_consumer() -> None:
        result.append(sub.next_batch(timeout=None))

    thread = threading.Thread(target=blocked_consumer)
    thread.start()
    time.sleep(0.2)  # let it block on the empty topic
    sub.close()
    thread.join(timeout=5.0)
    assert not thread.is_alive(), 'close() did not wake the blocked consumer'
    assert result == [[]]


# --------------------------------------------------------------------------- #
# KV-transport-specific behavior
# --------------------------------------------------------------------------- #
def test_kv_slow_consumer_backpressure(make_bus, topic):
    """A subscriber that stops draining cannot grow broker memory: pushes
    stop at the highwater mark, the ring stays retention-bounded, and the
    consumer recovers retained events (counting the rest as lost)."""
    if make_bus.transport != 'kv':
        pytest.skip('server-side push backpressure is KV-transport behavior')
    retention = 8
    bus = make_bus(retention=retention, max_queued_batches=1)
    sub = bus.subscribe(topic)
    payload = b'p' * (256 * 1024)
    for _ in range(64):
        bus.publish(topic, payload)
    time.sleep(0.2)  # let pushes land / be dropped
    stats = bus.topic_stats(topic)
    assert stats is not None
    assert stats['ring_events'] <= retention
    assert stats['ring_bytes'] <= retention * len(payload)
    # The consumer still converges on the stream head.
    seen: list[int] = []
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        seen.extend(seq for seq, _ in sub.next_batch(timeout=1.0))
        if seen and seen[-1] == 63:
            break
    assert seen, 'slow consumer never recovered'
    assert seen[-1] == 63
    assert seen == sorted(seen)
    assert sub.lost + len(seen) == 64
    sub.close()


def test_kv_subscription_survives_reconnect(make_bus, topic):
    if make_bus.transport != 'kv':
        pytest.skip('dedicated push connections are KV-transport behavior')
    bus = make_bus()
    sub = bus.subscribe(topic)
    bus.publish(topic, b'before')
    assert [bytes(d) for _, d in sub.next_batch(timeout=5.0)] == [b'before']
    # Kill the push connection out from under the subscription.
    assert sub._sock is not None
    sub._sock.close()
    bus.publish(topic, b'after')
    received = []
    deadline = time.monotonic() + 10.0
    while not received and time.monotonic() < deadline:
        received = sub.next_batch(timeout=1.0)
    assert [bytes(d) for _, d in received] == [b'after']
    sub.close()


def test_stalled_subscriber_is_reaped():
    """A subscriber that stops reading with bytes queued is evicted.

    Without the no-progress sweep one dead (but not closed) subscriber
    connection would hold its queued frames forever — the broker-side
    leak the subscriber_timeout reaper exists to stop.
    """
    import socket as socket_mod

    from repro.kvserver.client import KVClient
    from repro.kvserver.protocol import recv_message
    from repro.kvserver.protocol import send_message
    from repro.kvserver.server import KVServer

    server = KVServer(
        stream_retention=8,
        push_highwater=64 * 1024,
        subscriber_timeout=0.5,
    )
    host, port = server.start()
    stalled = socket_mod.socket()
    client = KVClient(host, port)
    topic = 'reap-topic'
    try:
        # A raw subscriber with a tiny receive window that never reads:
        # the kernel buffers fill, the server's queue backs up, and the
        # connection makes no progress.
        stalled.setsockopt(
            socket_mod.SOL_SOCKET, socket_mod.SO_RCVBUF, 4096,
        )
        stalled.connect((host, port))
        send_message(stalled, (1, 'SUBSCRIBE', topic, {'from_seq': None}))
        reply = recv_message(stalled)
        assert reply[0] == 1 and reply[1] == 'ok'
        assert client.topic_stats(topic)['subscribers'] == 1

        payload = b'x' * (32 * 1024)
        deadline = time.monotonic() + 20
        while server.reaped_subscribers == 0:
            assert time.monotonic() < deadline, 'subscriber never reaped'
            client.publish(topic, payload)
            time.sleep(0.02)

        stats = client.topic_stats(topic)
        assert stats['reaped_subscribers'] == 1
        assert stats['subscribers'] == 0
        assert server.reaped_subscribers == 1
        # The reap closed the connection: the stalled socket sees EOF
        # once the already-buffered bytes are drained.
        stalled.settimeout(5.0)
        while stalled.recv(1 << 16):
            pass
    finally:
        stalled.close()
        client.close()
        server.stop()
