"""Subscriber reconnect-resume: a broker restart must not lose the gap.

The satellite scenario for broker failover: a subscriber's push
connection dies when its broker goes down; the broker comes back on the
*same* port (here: a fresh server process whose ring is repopulated at
the original sequence numbers, exactly what ``REPL_PUBLISH`` mirroring
produces); the subscription reconnects from its cursor and the
SUBSCRIBE-time backfill delivers the missed events exactly once.
"""
from __future__ import annotations

import time

import pytest

from repro.kvserver.client import KVClient
from repro.kvserver.server import KVServer

TOPIC = 'reconnect-topic'


def _collect(subscription, count, deadline_s=30.0):
    """Drain ``count`` events from ``subscription`` (bounded wait)."""
    deadline = time.monotonic() + deadline_s
    events = []
    while len(events) < count:
        assert time.monotonic() < deadline, (
            f'only {len(events)}/{count} events before deadline'
        )
        events.extend(subscription.next_batch(timeout=1.0))
    return events


@pytest.mark.timeout(120)
def test_restarted_broker_backfills_cursor_gap_exactly_once():
    from repro.stream.kv import KVEventBus

    server = KVServer()
    host, port = server.start()

    bus = KVEventBus(host, port)
    payloads = [f'event-{i}'.encode() for i in range(10)]
    for payload in payloads[:5]:
        bus.publish(TOPIC, payload)

    subscription = bus.subscribe(TOPIC, from_seq=0)
    first = _collect(subscription, 5)
    assert [seq for seq, _ in first] == [0, 1, 2, 3, 4]
    assert subscription.position == 5

    # The broker dies and restarts on the same port.  Its replacement's
    # ring is repopulated at the ORIGINAL sequence numbers — the same
    # explicit-seq REPL_PUBLISH path replicas use to mirror a primary.
    server.stop()
    restarted = KVServer(host, port)
    restarted.start()
    try:
        mirror = KVClient(host, port)
        mirror.repl_publish(
            TOPIC,
            [(seq, payloads[seq]) for seq in range(5, 10)],
        )
        mirror.close()

        # The subscription notices the dead connection, reconnects with
        # backoff, and the cursor-driven SUBSCRIBE backfills 5..9.
        gap = _collect(subscription, 5)
        assert [seq for seq, _ in gap] == [5, 6, 7, 8, 9]
        assert [bytes(data) for _seq, data in gap] == payloads[5:]
        assert subscription.position == 10
        assert subscription.lost == 0
        # Exactly once: no event delivered twice across the restart.
        all_seqs = [seq for seq, _ in first + gap]
        assert len(all_seqs) == len(set(all_seqs)) == 10
    finally:
        subscription.close()
        bus.close()
        restarted.stop()
