"""StreamProducer/StreamConsumer behavior over both event transports.

Ordering, metadata, end-of-stream, ack-driven batch eviction, owned-item
eviction, lifetime binding, inline events, and catch-up from retention.
"""
from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro
from repro.exceptions import StoreError
from repro.exceptions import StoreKeyError
from repro.exceptions import UseAfterFreeError
from repro.proxy import drop
from repro.proxy import is_owned
from repro.proxy.proxy import Proxy
from repro.store import ContextLifetime
from repro.store.factory import StoreFactory
from repro.stream import StreamConsumer
from repro.stream import StreamProducer

_STORE_COUNTER = iter(range(10**6))


@pytest.fixture()
def stream_store():
    """A local store per test, cleared on teardown."""
    store = repro.store_from_url(
        f'local:///stream-test-store-{next(_STORE_COUNTER)}',
    )
    yield store
    store.close(clear=True)


def _channel(stream_store, make_bus, topic, **consumer_kwargs):
    bus = make_bus()
    producer = StreamProducer(stream_store, bus, topic)
    consumer = StreamConsumer(
        stream_store, make_bus(), topic,
        from_seq=0, timeout=10.0, **consumer_kwargs,
    )
    return producer, consumer


def test_stream_orders_and_yields_lazy_proxies(stream_store, make_bus, topic):
    producer, consumer = _channel(stream_store, make_bus, topic)
    for i in range(10):
        producer.send({'rank': i})
    producer.close()
    items = list(consumer)
    assert len(items) == 10
    assert all(isinstance(item, Proxy) for item in items)
    assert not any(repro.is_resolved(item) for item in items)
    assert [item['rank'] for item in items] == list(range(10))


def test_send_batch_preserves_order(stream_store, make_bus, topic):
    producer, consumer = _channel(stream_store, make_bus, topic)
    seqs = producer.send_batch([np.arange(4) * i for i in range(6)])
    assert seqs == list(range(6))
    producer.close()
    items = list(consumer)
    for i, item in enumerate(items):
        np.testing.assert_array_equal(np.asarray(item), np.arange(4) * i)


def test_events_carry_metadata_and_seq(stream_store, make_bus, topic):
    producer, consumer = _channel(stream_store, make_bus, topic)
    producer.send(b'payload', metadata={'round': 7})
    producer.close()
    (event, item), = list(consumer.events())
    assert event.seq == 0
    assert event.metadata == {'round': 7}
    assert not event.inline
    assert bytes(item) == b'payload'


def test_closed_producer_rejects_sends(stream_store, make_bus, topic):
    producer, _ = _channel(stream_store, make_bus, topic)
    producer.close()
    with pytest.raises(StoreError):
        producer.send(1)


def test_ack_batch_evicts_delivered_items(stream_store, make_bus, topic):
    producer, consumer = _channel(stream_store, make_bus, topic)
    for i in range(4):
        producer.send(i)
    producer.close()
    delivered = list(consumer.events())
    keys = [event.key for event, _ in delivered]
    assert all(stream_store.exists(key) for key in keys)
    assert consumer.ack() == 4
    assert not any(stream_store.exists(key) for key in keys)
    assert consumer.ack() == 0  # idempotent
    with pytest.raises(StoreKeyError):
        StoreFactory(keys[0], stream_store.config()).resolve()


def test_owned_mode_evicts_on_drop(stream_store, make_bus, topic):
    producer, consumer = _channel(stream_store, make_bus, topic, owned=True)
    producer.send({'model': 1})
    producer.close()
    (event, item), = list(consumer.events())
    assert is_owned(item)
    assert stream_store.exists(event.key)
    drop(item)
    assert not stream_store.exists(event.key)
    with pytest.raises(UseAfterFreeError):
        item['model']


def test_lifetime_binding_evicts_on_scope_close(stream_store, make_bus, topic):
    lifetime = ContextLifetime(store=stream_store)
    producer, consumer = _channel(
        stream_store, make_bus, topic, lifetime=lifetime,
    )
    for i in range(3):
        producer.send(i)
    producer.close()
    events = list(consumer.events())
    keys = [event.key for event, _ in events]
    assert all(stream_store.exists(key) for key in keys)
    lifetime.close()
    assert not any(stream_store.exists(key) for key in keys)


def test_owned_and_lifetime_are_mutually_exclusive(stream_store, make_bus, topic):
    with pytest.raises(ValueError):
        StreamConsumer(
            stream_store, make_bus(), topic,
            owned=True, lifetime=ContextLifetime(store=stream_store),
        )


def test_inline_events_bypass_the_store(stream_store, make_bus, topic):
    bus = make_bus()
    producer = StreamProducer(stream_store, bus, topic, inline=True)
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
    )
    before = len(stream_store.connector)  # LocalConnector supports len()
    producer.send({'x': 1})
    producer.close()
    (event, item), = list(consumer.events())
    assert event.inline
    assert event.key is None
    assert item == {'x': 1}
    assert len(stream_store.connector) == before  # nothing was stored


def test_consumer_catches_up_from_retention(stream_store, make_bus, topic):
    bus = make_bus(retention=5)
    bus.configure_topic(topic, retention=5)
    producer = StreamProducer(stream_store, bus, topic)
    for i in range(17):
        producer.send(i)
    producer.close()  # the end marker is event 17
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
    )
    items = [int(item) for item in consumer]
    # retention 5 kept the end marker plus the last 4 items
    assert items == [13, 14, 15, 16]
    assert consumer.lost == 13
    assert consumer.delivered == 4


def test_consumer_timeout_raises(stream_store, make_bus, topic):
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, timeout=0.2,
    )
    with pytest.raises(TimeoutError):
        next(iter(consumer))


def test_consumer_close_stops_iteration(stream_store, make_bus, topic):
    producer, consumer = _channel(stream_store, make_bus, topic)
    producer.send(1)
    iterator = consumer.events()
    next(iterator)
    consumer.close()
    assert list(iterator) == []


def test_producer_pickle_round_trip_same_process(stream_store, make_bus, topic):
    """A pickled producer reattaches to the same store and bus."""
    bus = make_bus()
    producer = StreamProducer(stream_store, bus, topic)
    producer.send('first')
    clone = pickle.loads(pickle.dumps(producer))
    try:
        clone.send('second')
        consumer = StreamConsumer(
            stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
        )
        clone.close()
        assert [str(item) for item in consumer] == ['first', 'second']
    finally:
        if clone.store is not stream_store:
            clone.store.close()


def test_lifetime_bound_consumer_refuses_to_pickle(stream_store, make_bus, topic):
    """The lifetime (and its eviction duty) cannot travel: pickling a
    bound consumer must fail loudly, not silently drop the binding."""
    consumer = StreamConsumer(
        stream_store, make_bus(), topic,
        lifetime=ContextLifetime(store=stream_store),
    )
    with pytest.raises(StoreError):
        pickle.dumps(consumer)


def test_consumer_pickle_carries_prefetch(stream_store, make_bus, topic):
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, prefetch=3, timeout=0.1,
    )
    clone = pickle.loads(pickle.dumps(consumer))
    try:
        assert clone.prefetch == 3
    finally:
        if clone.store is not stream_store:
            clone.store.close()


def test_consumer_pickle_resumes_position(stream_store, make_bus, topic):
    bus = make_bus()
    producer = StreamProducer(stream_store, bus, topic)
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
    )
    for i in range(6):
        producer.send(i)
    # Consume half, pickle, resume in the "other" consumer.
    iterator = consumer.events()
    got = [int(next(iterator)[1]) for _ in range(3)]
    assert got == [0, 1, 2]
    resumed = pickle.loads(pickle.dumps(consumer))
    try:
        producer.close()
        rest = [int(item) for item in resumed]
        assert rest == [3, 4, 5]
    finally:
        if resumed.store is not stream_store:
            resumed.store.close()


def test_consumer_close_evicts_delivered_unacked_keys(stream_store, make_bus, topic):
    """Closing a consumer must not strand keys: items delivered but never
    acked are evicted by default (context exit takes the same path)."""
    producer, consumer = _channel(stream_store, make_bus, topic)
    for i in range(3):
        producer.send(i)
    producer.close()
    with consumer:
        keys = [event.key for event, _ in consumer.events()]
        assert all(stream_store.exists(key) for key in keys)
    assert not any(stream_store.exists(key) for key in keys)


def test_consumer_close_can_leave_pending_stored(stream_store, make_bus, topic):
    producer, consumer = _channel(stream_store, make_bus, topic)
    producer.send('kept')
    producer.close()
    (event, _item), = list(consumer.events())
    consumer.close(evict_pending=False)
    # The caller explicitly took over eviction duty.
    assert stream_store.exists(event.key)
    stream_store.evict(event.key)


def test_consumer_pickle_clone_inherits_eviction_duty(stream_store, make_bus, topic):
    """A pickled consumer carries its delivered-but-unacked keys: the
    clone's ack (or close) evicts them, so a handoff cannot strand keys."""
    bus = make_bus()
    producer = StreamProducer(stream_store, bus, topic)
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
    )
    for i in range(2):
        producer.send(i)
    producer.close()
    iterator = consumer.events()
    keys = [next(iterator)[0].key for _ in range(2)]
    clone = pickle.loads(pickle.dumps(consumer))
    try:
        assert all(stream_store.exists(key) for key in keys)
        assert clone.ack() == 2
        assert not any(stream_store.exists(key) for key in keys)
    finally:
        if clone.store is not stream_store:
            clone.store.close()
