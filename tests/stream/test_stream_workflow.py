"""Stream-driven task dispatch through the workflow engine.

One task per published event; proxies cross the engine's hub as tiny
factories while workers resolve bulk data from the store, and results
optionally flow onto an output topic — a complete streaming pipeline.
"""
from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.stream import StreamConsumer
from repro.stream import StreamProducer
from repro.workflow.engine import WorkflowEngine

_COUNTER = iter(range(10**6))


@pytest.fixture()
def stream_store():
    store = repro.store_from_url(
        f'local:///wf-stream-store-{next(_COUNTER)}',
    )
    yield store
    store.close(clear=True)


def _double(value):
    return np.asarray(value) * 2


def test_run_stream_dispatches_one_task_per_event(stream_store, make_bus, topic):
    bus = make_bus()
    producer = StreamProducer(stream_store, bus, topic)
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
    )
    for i in range(8):
        producer.send(np.full(16, i))
    producer.close()
    with WorkflowEngine(n_workers=2, extra_hops=0) as engine:
        stats = engine.run_stream(_double, consumer)
    assert stats == {'tasks': 8, 'published': 0}
    assert engine.stats.tasks_completed == 8


def test_run_stream_publishes_results_in_order(stream_store, make_bus, topic):
    bus = make_bus()
    out_topic = topic + '-out'
    producer = StreamProducer(stream_store, bus, topic)
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
    )
    out_producer = StreamProducer(stream_store, make_bus(), out_topic)
    out_consumer = StreamConsumer(
        stream_store, make_bus(), out_topic, from_seq=0, timeout=10.0,
    )
    for i in range(6):
        producer.send(np.full(8, i))
    producer.close()
    with WorkflowEngine(n_workers=3, extra_hops=0) as engine:
        stats = engine.run_stream(_double, consumer, output=out_producer)
    assert stats == {'tasks': 6, 'published': 6}
    results = list(out_consumer)
    assert len(results) == 6
    for i, result in enumerate(results):
        np.testing.assert_array_equal(np.asarray(result), np.full(8, i) * 2)


def test_run_stream_backpressure_bound_validated(stream_store, make_bus, topic):
    consumer = StreamConsumer(stream_store, make_bus(), topic, timeout=0.1)
    with WorkflowEngine(n_workers=1, extra_hops=0) as engine:
        with pytest.raises(ValueError):
            engine.run_stream(_double, consumer, max_outstanding=0)


def _explode(value):
    raise RuntimeError('task failed')


def test_failed_run_stream_does_not_end_output_topic(stream_store, make_bus, topic):
    """A failed run must not publish a clean end marker downstream —
    consumers would mistake the truncated output for a complete stream."""
    bus = make_bus()
    out_topic = topic + '-out'
    producer = StreamProducer(stream_store, bus, topic)
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
    )
    out_producer = StreamProducer(stream_store, make_bus(), out_topic)
    out_consumer = StreamConsumer(
        stream_store, make_bus(), out_topic, from_seq=0, timeout=0.3,
    )
    producer.send(np.arange(4))
    producer.close()
    with WorkflowEngine(n_workers=1, extra_hops=0) as engine:
        with pytest.raises(RuntimeError):
            engine.run_stream(_explode, consumer, output=out_producer)
    # The output topic did not terminate: iterating it times out rather
    # than ending as if the stream completed.
    with pytest.raises(TimeoutError):
        list(out_consumer)
