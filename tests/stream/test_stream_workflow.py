"""Stream-driven task dispatch through the workflow engine.

One task per published event; proxies cross the engine's hub as tiny
factories while workers resolve bulk data from the store, and results
optionally flow onto an output topic — a complete streaming pipeline.
"""
from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.stream import StreamConsumer
from repro.stream import StreamProducer
from repro.workflow.engine import WorkflowEngine

_COUNTER = iter(range(10**6))


@pytest.fixture()
def stream_store():
    store = repro.store_from_url(
        f'local:///wf-stream-store-{next(_COUNTER)}',
    )
    yield store
    store.close(clear=True)


def _double(value):
    return np.asarray(value) * 2


def test_run_stream_dispatches_one_task_per_event(stream_store, make_bus, topic):
    bus = make_bus()
    producer = StreamProducer(stream_store, bus, topic)
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
    )
    for i in range(8):
        producer.send(np.full(16, i))
    producer.close()
    with WorkflowEngine(n_workers=2, extra_hops=0) as engine:
        stats = engine.run_stream(_double, consumer)
    assert stats == {'tasks': 8, 'published': 0, 'retries': 0}
    assert engine.stats.tasks_completed == 8


def test_run_stream_publishes_results_in_order(stream_store, make_bus, topic):
    bus = make_bus()
    out_topic = topic + '-out'
    producer = StreamProducer(stream_store, bus, topic)
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
    )
    out_producer = StreamProducer(stream_store, make_bus(), out_topic)
    out_consumer = StreamConsumer(
        stream_store, make_bus(), out_topic, from_seq=0, timeout=10.0,
    )
    for i in range(6):
        producer.send(np.full(8, i))
    producer.close()
    with WorkflowEngine(n_workers=3, extra_hops=0) as engine:
        stats = engine.run_stream(_double, consumer, output=out_producer)
    assert stats == {'tasks': 6, 'published': 6, 'retries': 0}
    results = list(out_consumer)
    assert len(results) == 6
    for i, result in enumerate(results):
        np.testing.assert_array_equal(np.asarray(result), np.full(8, i) * 2)


def test_run_stream_backpressure_bound_validated(stream_store, make_bus, topic):
    consumer = StreamConsumer(stream_store, make_bus(), topic, timeout=0.1)
    with WorkflowEngine(n_workers=1, extra_hops=0) as engine:
        with pytest.raises(ValueError):
            engine.run_stream(_double, consumer, max_outstanding=0)


def _explode(value):
    raise RuntimeError('task failed')


def test_failed_run_stream_does_not_end_output_topic(stream_store, make_bus, topic):
    """A failed run must not publish a clean end marker downstream —
    consumers would mistake the truncated output for a complete stream."""
    bus = make_bus()
    out_topic = topic + '-out'
    producer = StreamProducer(stream_store, bus, topic)
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
    )
    out_producer = StreamProducer(stream_store, make_bus(), out_topic)
    out_consumer = StreamConsumer(
        stream_store, make_bus(), out_topic, from_seq=0, timeout=0.3,
    )
    producer.send(np.arange(4))
    producer.close()
    with WorkflowEngine(n_workers=1, extra_hops=0) as engine:
        with pytest.raises(RuntimeError):
            engine.run_stream(_explode, consumer, output=out_producer)
    # The output topic did not terminate: iterating it times out rather
    # than ending as if the stream completed.
    with pytest.raises(TimeoutError):
        list(out_consumer)


_FLAKY_STATE: dict[str, int] = {}


def _flaky_double(value):
    """Fail with the typed crash signal until the third attempt."""
    from repro.exceptions import NodeUnavailableError

    attempts = _FLAKY_STATE['attempts'] = _FLAKY_STATE.get('attempts', 0) + 1
    if attempts <= 2:
        raise NodeUnavailableError('storage node down')
    return np.asarray(value) * 2


def _always_down(value):
    from repro.exceptions import NodeUnavailableError

    raise NodeUnavailableError('storage node down')


def test_run_stream_retries_node_unavailable(stream_store, make_bus, topic):
    """Transient node loss is retried with backoff, counted, and metered."""
    _FLAKY_STATE.clear()
    store = repro.store_from_url(
        f'local:///wf-retry-store-{next(_COUNTER)}?metrics=1',
    )
    try:
        bus = make_bus()
        producer = StreamProducer(store, bus, topic)
        consumer = StreamConsumer(
            store, make_bus(), topic, from_seq=0, timeout=10.0,
        )
        producer.send(np.arange(4))
        producer.close()
        with WorkflowEngine(n_workers=1, extra_hops=0) as engine:
            stats = engine.run_stream(
                _flaky_double, consumer, retry_backoff=0.01,
            )
        assert stats == {'tasks': 1, 'published': 0, 'retries': 2}
        assert engine.stats.task_retries == 2
        summary = store.metrics_summary()
        assert summary['stream.task_retries']['count'] == 2
    finally:
        store.close(clear=True)


def test_run_stream_propagates_exhausted_retries(stream_store, make_bus, topic):
    """A permanently dead node exhausts the budget and fails the run —
    without publishing a clean end marker downstream."""
    bus = make_bus()
    out_topic = topic + '-out'
    producer = StreamProducer(stream_store, bus, topic)
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
    )
    out_producer = StreamProducer(stream_store, make_bus(), out_topic)
    out_consumer = StreamConsumer(
        stream_store, make_bus(), out_topic, from_seq=0, timeout=0.3,
    )
    producer.send(np.arange(4))
    producer.close()
    from repro.exceptions import NodeUnavailableError

    with WorkflowEngine(n_workers=1, extra_hops=0) as engine:
        with pytest.raises(NodeUnavailableError):
            engine.run_stream(
                _always_down, consumer,
                output=out_producer, max_retries=2, retry_backoff=0.01,
            )
    assert engine.stats.task_retries == 2
    with pytest.raises(TimeoutError):
        list(out_consumer)
