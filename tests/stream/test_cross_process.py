"""Producer/consumer pickle round-trips across real process boundaries.

A producer pickled into a worker process publishes through the same SimKV
broker/store the parent consumes from, and a consumer pickled into a
worker resolves proxies produced by the parent — the streaming analogue
of proxies travelling through a workflow system.
"""
from __future__ import annotations

import multiprocessing
import pickle

import numpy as np
import pytest

import repro
from repro.kvserver.server import KVServer
from repro.stream import KVEventBus
from repro.stream import StreamConsumer
from repro.stream import StreamProducer


@pytest.fixture()
def kv_setup():
    """A KV server plus a redis-backed store and kv bus pointed at it."""
    server = KVServer()
    host, port = server.start()
    store = repro.store_from_url(f'redis://{host}:{port}/xproc-store')
    bus = KVEventBus(host, port)
    yield store, bus
    bus.close()
    store.close()
    server.stop()


def _produce_items(producer_bytes: bytes, count: int) -> None:
    producer = pickle.loads(producer_bytes)
    for i in range(count):
        producer.send(
            {'rank': i, 'data': np.full(64, i)},
            metadata={'origin': 'child'},
        )
    producer.close()
    producer.store.close()


def _consume_items(consumer_bytes: bytes, result_queue) -> None:
    consumer = pickle.loads(consumer_bytes)
    values = [int(item['rank']) for item in consumer]
    consumer.store.close()
    result_queue.put(values)


def test_pickled_producer_feeds_parent_consumer(kv_setup):
    store, bus = kv_setup
    topic = 'xproc-produce'
    consumer = StreamConsumer(store, bus, topic, from_seq=0, timeout=30.0)
    producer = StreamProducer(store, bus, topic)
    ctx = multiprocessing.get_context('spawn')
    child = ctx.Process(
        target=_produce_items, args=(pickle.dumps(producer), 5),
    )
    child.start()
    try:
        received = list(consumer.events())
    finally:
        child.join(timeout=30)
        assert child.exitcode == 0
    assert len(received) == 5
    for i, (event, item) in enumerate(received):
        assert event.metadata == {'origin': 'child'}
        assert item['rank'] == i
        np.testing.assert_array_equal(np.asarray(item['data']), np.full(64, i))


def test_pickled_consumer_resolves_parent_items(kv_setup):
    store, bus = kv_setup
    topic = 'xproc-consume'
    consumer = StreamConsumer(store, bus, topic, from_seq=0, timeout=30.0)
    ctx = multiprocessing.get_context('spawn')
    result_queue = ctx.Queue()
    child = ctx.Process(
        target=_consume_items, args=(pickle.dumps(consumer), result_queue),
    )
    child.start()
    try:
        producer = StreamProducer(store, bus, topic)
        for i in range(4):
            producer.send({'rank': i, 'data': np.full(32, i)})
        producer.close()
        values = result_queue.get(timeout=30)
    finally:
        child.join(timeout=30)
    assert child.exitcode == 0
    assert values == [0, 1, 2, 3]
