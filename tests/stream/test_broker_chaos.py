"""Chaos test: SIGKILL the coordinator-designated broker mid-workload.

A three-broker fleet (real subprocesses, real sockets) serves a
partitioned topic with ``replicas=2``.  A consumer group works through
the stream; partway in, the broker currently acting as the group
coordinator is killed with SIGKILL — no goodbye, no flush.  The
replicated topic rings and mirrored coordinator state on the ring
successors must absorb the crash: every value is delivered, offsets
committed before the kill survive onto the new coordinator, and the
time from kill to the next successful delivery is recorded.
"""
from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time

import pytest

import repro
from repro.faults import FaultPlan

ITEMS = 36
PARTITIONS = 4
GROUP = 'broker-chaos-group'
TOPIC = 'broker-chaos-topic'


def _broker(ports_queue):
    """One broker subprocess: start a KVServer on an ephemeral port,
    report (pid, port), then idle until SIGKILLed (or told to exit)."""
    import os

    from repro.kvserver.server import KVServer

    server = KVServer(stream_retention=256)
    _host, port = server.start()
    ports_queue.put((os.getpid(), port))
    # Serve forever: the parent ends this process with kill()/terminate().
    while True:
        time.sleep(0.5)


@pytest.mark.chaos
@pytest.mark.timeout(180)
def test_sigkill_coordinator_broker_loses_nothing():
    from repro.stream import StreamConsumer
    from repro.stream import StreamProducer

    ctx = multiprocessing.get_context('spawn')
    ports_queue = ctx.Queue()
    brokers = [ctx.Process(target=_broker, args=(ports_queue,)) for _ in range(3)]
    for proc in brokers:
        proc.start()
    port_by_pid = dict(ports_queue.get(timeout=30) for _ in brokers)
    proc_by_port = {port_by_pid[proc.pid]: proc for proc in brokers}
    urls = [f'kv://127.0.0.1:{port}' for port in sorted(proc_by_port)]

    store = repro.store_from_url('local:///broker-chaos-store')
    consumer = None
    run = None
    try:
        producer = StreamProducer(
            store, urls, TOPIC, partitions=PARTITIONS, replicas=2,
        )
        producer.send_batch(list(range(ITEMS // 2)))

        consumer = StreamConsumer(
            store, urls, TOPIC,
            group=GROUP, partitions=PARTITIONS, replicas=2, timeout=30.0,
        )
        backend = consumer.coordinator._backend
        items = iter(consumer)
        got = []
        for _ in range(ITEMS // 4):
            got.append(int(next(items)))
            consumer.ack()
        committed_before = consumer.coordinator.fetch(consumer.router.topics)
        assert any(
            entry['committed'] > 0 for entry in committed_before.values()
        )

        # SIGKILL the broker acting as group coordinator — via a seeded
        # fault plan, the same mechanism bench_pipeline uses.
        victim = backend.acting_broker
        victim_port = int(victim.rsplit(':', 1)[1])
        victim_proc = proc_by_port[victim_port]
        plan = FaultPlan(seed=7).kill('coordinator', at=0.0)
        run = plan.start(pids={'coordinator': victim_proc.pid})
        run.join(timeout=10)
        assert run.report()[0]['error'] is None
        t_kill = time.monotonic()
        victim_proc.join(timeout=10)
        assert victim_proc.exitcode not in (0, None)  # died by signal

        # Keep the workload flowing through the failover.
        late = StreamProducer(
            store, urls, TOPIC, partitions=PARTITIONS, replicas=2,
        )
        late.send_batch(list(range(ITEMS // 2, ITEMS)))
        late.close(end=True)
        producer.close(end=False)

        recovery_s = None
        for proxy in items:
            if recovery_s is None:
                recovery_s = time.monotonic() - t_kill
            got.append(int(proxy))
            consumer.ack()
        assert recovery_s is not None, 'no delivery after the kill'

        # Zero lost events, exact coverage despite the dead broker.
        assert sorted(set(got)) == list(range(ITEMS))
        assert consumer.lost == 0
        assert consumer.coordinator.failovers >= 1
        assert backend.acting_broker != victim
        # Offsets committed before the kill survived onto the replica
        # coordinator — the group did not rewind past its acks.
        after = consumer.coordinator.fetch(consumer.router.topics)
        for topic, entry in committed_before.items():
            assert after[topic]['committed'] >= entry['committed']
        # Recovery time is the headline robustness metric: it must be a
        # real measurement, well inside the reconnect-policy envelope.
        assert 0.0 < recovery_s < 60.0
    finally:
        if run is not None:
            run.stop()
        if consumer is not None:
            consumer.close()
        store.close(clear=True)
        for proc in brokers:
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=10)
