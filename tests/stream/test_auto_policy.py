"""The adaptive ``policy='auto'`` routing in StreamProducer.

Small items (serialized size at or under ``inline_threshold``) ride the
event bus inline, large ones are stored behind a proxy key — per item,
by measured size, over both event transports.
"""
from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro
from repro.proxy.proxy import Proxy
from repro.stream import StreamConsumer
from repro.stream import StreamProducer
from repro.stream.channels import PRODUCER_POLICIES

_STORE_COUNTER = iter(range(10**6))


@pytest.fixture()
def stream_store():
    store = repro.store_from_url(
        f'local:///auto-policy-store-{next(_STORE_COUNTER)}?metrics=1',
    )
    yield store
    store.close(clear=True)


def _channel(stream_store, make_bus, topic, threshold=4096, **producer_kwargs):
    producer = StreamProducer(
        stream_store, make_bus(), topic,
        policy='auto', inline_threshold=threshold, **producer_kwargs,
    )
    consumer = StreamConsumer(
        stream_store, make_bus(), topic, from_seq=0, timeout=10.0,
    )
    return producer, consumer


def test_auto_routes_by_measured_size(stream_store, make_bus, topic):
    producer, consumer = _channel(stream_store, make_bus, topic)
    small = b's' * 100
    large = np.arange(100_000)
    producer.send(small)
    producer.send(large)
    producer.close()
    items = list(consumer)
    # Inline item arrives as the deserialized object, proxied as a Proxy.
    assert items[0] == small
    assert not isinstance(items[0], Proxy)
    assert isinstance(items[1], Proxy)
    assert np.array_equal(np.asarray(items[1]), large)
    assert producer.inline_sends == 1
    assert producer.proxy_sends == 1


def test_auto_send_batch_splits_routes(stream_store, make_bus, topic):
    producer, consumer = _channel(stream_store, make_bus, topic)
    objs = [b'a' * 10, np.arange(50_000), 'medium' * 100, np.arange(60_000)]
    producer.send_batch(objs)
    producer.close()
    items = list(consumer)
    assert items[0] == objs[0]
    assert np.array_equal(np.asarray(items[1]), objs[1])
    assert items[2] == objs[2]
    assert np.array_equal(np.asarray(items[3]), objs[3])
    assert producer.inline_sends == 2
    assert producer.proxy_sends == 2


def test_auto_routes_recorded_in_store_metrics(stream_store, make_bus, topic):
    producer, consumer = _channel(stream_store, make_bus, topic)
    producer.send(b'tiny')
    producer.send(np.arange(100_000))
    producer.close()
    list(consumer)
    summary = stream_store.metrics_summary()
    assert summary['stream.inline_sends']['count'] == 1
    assert summary['stream.proxy_sends']['count'] == 1


def test_threshold_boundary_is_inclusive(stream_store, make_bus, topic):
    # A payload whose serialized size == threshold must inline.
    threshold = 1024 + 1  # ident byte + 1024 payload bytes
    producer, consumer = _channel(
        stream_store, make_bus, topic, threshold=threshold,
    )
    producer.send(b'b' * 1024)  # serialized: exactly threshold bytes
    producer.send(b'c' * 1025)  # one over
    producer.close()
    items = list(consumer)
    assert producer.inline_sends == 1
    assert producer.proxy_sends == 1
    assert items[0] == b'b' * 1024
    assert bytes(items[1]) == b'c' * 1025


def test_per_call_inline_overrides_auto(stream_store, make_bus, topic):
    producer, consumer = _channel(stream_store, make_bus, topic)
    producer.send(b'force proxy', inline=False)
    producer.send(np.arange(100_000), inline=True)
    producer.close()
    items = list(consumer)
    assert isinstance(items[0], Proxy)
    assert not isinstance(items[1], Proxy)
    assert producer.proxy_sends == 1
    assert producer.inline_sends == 1


def test_auto_producer_pickle_roundtrip(stream_store, make_bus, topic):
    producer = StreamProducer(
        stream_store, make_bus(), topic,
        policy='auto', inline_threshold=777,
    )
    clone = pickle.loads(pickle.dumps(producer))
    assert clone.policy == 'auto'
    assert clone.inline_threshold == 777
    assert not clone.inline


def test_invalid_policy_rejected(stream_store, make_bus, topic):
    with pytest.raises(ValueError, match='unknown stream policy'):
        StreamProducer(stream_store, make_bus(), topic, policy='sometimes')
    assert 'auto' in PRODUCER_POLICIES


def test_inline_flag_still_means_inline_policy(stream_store, make_bus, topic):
    producer = StreamProducer(stream_store, make_bus(), topic, inline=True)
    assert producer.policy == 'inline'
    assert producer.inline
    default = StreamProducer(stream_store, make_bus(), topic + '-d')
    assert default.policy == 'proxy'
    assert not default.inline


def test_auto_on_partitioned_topic(stream_store, make_bus, topic):
    producer = StreamProducer(
        stream_store, [make_bus()], topic,
        policy='auto', inline_threshold=4096, partitions=2,
    )
    consumers = [
        StreamConsumer(
            stream_store, make_bus(), f'{topic}.p{p}',
            from_seq=0, timeout=10.0,
        )
        for p in range(2)
    ]
    small_items = [f'item-{i}'.encode() for i in range(4)]
    producer.send_batch(small_items)
    producer.send(np.arange(100_000))
    producer.close()
    delivered = []
    for consumer in consumers:
        delivered.extend(list(consumer))
    assert len(delivered) == 5
    assert producer.inline_sends == 4
    assert producer.proxy_sends == 1
