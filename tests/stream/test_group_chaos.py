"""Chaos test: SIGKILL a consumer-group member mid-workload.

Three member processes split a partitioned topic through one SimKV
broker; one of them (processing slowly, never acking — the worst-case
crash state) is killed with SIGKILL partway through.  The group must
deliver **every** value at least once to the survivors, redeliver the
victim's in-flight work, and leave **zero** keys stranded on the server.
"""
from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time

import pytest

import repro
from repro.kvserver.server import KVServer

ITEMS = 32
PARTITIONS = 4
GROUP = 'chaos-group'
TOPIC = 'chaos-topic'
SESSION_TIMEOUT = 1.5


@pytest.fixture()
def kv_setup():
    """A KV server plus a redis-backed store and kv bus pointed at it."""
    from repro.stream import KVEventBus

    server = KVServer(stream_retention=256)
    host, port = server.start()
    store = repro.store_from_url(f'redis://{host}:{port}/chaos-store')
    bus = KVEventBus(host, port)
    yield server, store, bus
    bus.close()
    store.close()
    server.stop()


def _member(host, port, member, pace, ack, events_queue):
    """One group member process: construct in-process (members don't pickle),
    report every processed value, optionally ack as it goes."""
    from repro.stream import KVEventBus
    from repro.stream import StreamConsumer

    store = repro.store_from_url(f'redis://{host}:{port}/chaos-store')
    bus = KVEventBus(host, port)
    consumer = StreamConsumer(
        store, bus, TOPIC,
        group=GROUP, partitions=PARTITIONS, member=member,
        session_timeout=SESSION_TIMEOUT, timeout=30.0,
    )
    events_queue.put(('joined', member, None))
    for _event, item in consumer.events():
        events_queue.put(('val', member, int(item['i'])))
        if ack:
            consumer.ack()
        time.sleep(pace)
    events_queue.put(('done', member, consumer.stats()))
    consumer.close()
    bus.close()
    store.close()


@pytest.mark.chaos
@pytest.mark.timeout(120)
def test_sigkill_member_redelivers_with_zero_stranded_keys(kv_setup):
    server, store, bus = kv_setup
    from repro.stream import StreamProducer

    ctx = multiprocessing.get_context('spawn')
    events_queue = ctx.Queue()
    # The victim is deliberately the worst case: slow (so the kill lands
    # mid-stream) and never acking (so everything it touched must be
    # redelivered).  Survivors ack per item.
    victim = ctx.Process(
        target=_member,
        args=(server.host, server.port, 'victim', 0.25, False, events_queue),
    )
    survivors = [
        ctx.Process(
            target=_member,
            args=(server.host, server.port, name, 0.01, True, events_queue),
        )
        for name in ('survivor-a', 'survivor-b')
    ]
    victim.start()
    for child in survivors:
        child.start()

    values: dict[str, list[int]] = {}
    stats: dict[str, dict] = {}
    killed = False
    published = False
    joined: set[str] = set()
    deadline = time.monotonic() + 60
    try:
        while len(stats) < 2:
            if not published and len(joined) == 3:
                # Publish only once every member has joined and had a
                # heartbeat to converge on the final assignment — so the
                # victim deterministically owns (and slowly works) its
                # own share when the kill lands.
                time.sleep(0.8)
                producer = StreamProducer(
                    store, bus, TOPIC, partitions=PARTITIONS,
                )
                for i in range(ITEMS):
                    producer.send({'i': i})
                producer.close()
                published = True
            remaining = deadline - time.monotonic()
            assert remaining > 0, f'timed out; progress: {values}, {stats}'
            try:
                kind, member, payload = events_queue.get(timeout=remaining)
            except queue_mod.Empty:
                continue
            if kind == 'joined':
                joined.add(member)
            elif kind == 'val':
                values.setdefault(member, []).append(payload)
            else:
                stats[member] = payload
            if not killed and len(values.get('victim', [])) >= 3:
                # Give the victim one more heartbeat to report positions
                # (makes its deliveries count as redelivered, not just
                # uncommitted), then kill it dead.
                time.sleep(0.6)
                victim.kill()
                killed = True
        assert killed, 'victim finished before the kill landed'
    finally:
        victim.join(timeout=10)
        for child in survivors:
            child.join(timeout=30)
        for child in survivors + [victim]:
            if child.is_alive():
                child.kill()

    assert victim.exitcode not in (0, None)  # died by signal, not cleanly
    assert all(child.exitcode == 0 for child in survivors)

    survivor_values = values.get('survivor-a', []) + values.get('survivor-b', [])
    # At-least-once: the victim committed nothing, so every value —
    # including everything the victim processed before dying — reaches a
    # survivor.
    assert sorted(set(survivor_values)) == list(range(ITEMS))
    assert set(values.get('victim', [])) <= set(survivor_values)
    # Per-member accounting is exact: delivered == values processed.
    total_redelivered = 0
    for name in ('survivor-a', 'survivor-b'):
        assert stats[name]['delivered'] == len(values.get(name, []))
        assert stats[name]['lost'] == 0
        total_redelivered += stats[name]['redelivered']
    # The victim heartbeated its positions before dying, so at least its
    # watermarked deliveries are counted as redeliveries by survivors.
    assert total_redelivered >= 1
    # Survivors acked everything (including the redelivered work), so the
    # store holds zero stranded keys.
    assert len(server) == 0
