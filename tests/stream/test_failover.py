"""Broker failover: replicated publish, subscriber failover, coordinator HA.

All in-process (threaded servers, real sockets) — the subprocess version
with SIGKILL lives in ``test_broker_chaos.py`` under the ``chaos`` marker.
"""
from __future__ import annotations

import time

import pytest

import repro
from repro.exceptions import ConnectorError
from repro.exceptions import GroupMembershipError
from repro.exceptions import NodeUnavailableError
from repro.exceptions import StreamGroupError
from repro.kvserver.client import KVClient
from repro.kvserver.server import KVServer
from repro.stream import StreamConsumer
from repro.stream import StreamProducer
from repro.stream.failover import FailoverSubscription
from repro.stream.groups import PartitionRouter

_STORE_COUNTER = iter(range(10**6))


@pytest.fixture()
def fleet():
    """Three live brokers; tests may stop some — teardown tolerates that."""
    servers = [KVServer() for _ in range(3)]
    for server in servers:
        server.start()
    yield servers
    for server in servers:
        try:
            server.stop()
        except Exception:  # noqa: BLE001 - already stopped by the test
            pass


@pytest.fixture()
def store():
    store = repro.store_from_url(
        f'local:///failover-store-{next(_STORE_COUNTER)}',
    )
    yield store
    store.close(clear=True)


def _urls(servers):
    return [f'kv://127.0.0.1:{s.port}' for s in servers]


def _server_of(servers, node_id):
    return next(s for s in servers if str(s.port) in node_id)


# --------------------------------------------------------------------------- #
# Typed errors and argument validation
# --------------------------------------------------------------------------- #
def test_group_membership_error_is_connector_error():
    # Dual parentage: group-layer callers catch StreamGroupError, failover
    # layers catch ConnectorError — the more specific class must come
    # first in except chains, which subclassing makes possible.
    assert issubclass(GroupMembershipError, StreamGroupError)
    assert issubclass(GroupMembershipError, ConnectorError)


def test_plain_consumer_rejects_replicas(store):
    with pytest.raises(ValueError, match='consumer group'):
        StreamConsumer(store, 'local://b', 'topic', replicas=2)


def test_producer_requires_partitions_for_replicas(store):
    with pytest.raises(ValueError, match='partitioned'):
        StreamProducer(store, 'local://b', 'topic', replicas=2)


def test_router_validates_replicas(fleet):
    with pytest.raises(ValueError):
        PartitionRouter('t', 2, _urls(fleet), replicas=0)
    # Replication factor is clamped to the fleet size.
    router = PartitionRouter('t', 2, _urls(fleet), replicas=9)
    assert router.replicas == 3
    router.close()


# --------------------------------------------------------------------------- #
# Replicated publish
# --------------------------------------------------------------------------- #
def test_publish_mirrors_to_replica_brokers(fleet):
    router = PartitionRouter('mirrored', 2, _urls(fleet), replicas=2)
    try:
        topic = router.topics[0]
        seqs = router.publish_batch(topic, [b'a', b'b', b'c'])
        assert seqs == [0, 1, 2]
        owners = router.owners(topic)
        assert len(owners) == 2
        for node in owners:
            client = KVClient('127.0.0.1', int(node.rsplit(':', 1)[1]))
            fetched = client.fetch_events(topic, since=0)
            assert [
                (int(s), bytes(d)) for s, d in fetched['events']
            ] == [(0, b'a'), (1, b'b'), (2, b'c')]
            client.close()
    finally:
        router.close()


def test_publish_fails_over_when_primary_dies(fleet):
    router = PartitionRouter('po-topic', 2, _urls(fleet), replicas=2)
    try:
        topic = router.topics[0]
        router.publish_batch(topic, [b'before'])
        primary = router.owners(topic)[0]
        _server_of(fleet, primary).stop()
        # The publish walks past the dead primary onto the replica and
        # continues the primary's numbering (the replica holds the mirror).
        seqs = router.publish_batch(topic, [b'after'])
        assert seqs == [1]
        assert router.membership.state_of(primary) == 'dead'
    finally:
        router.close()


# --------------------------------------------------------------------------- #
# Subscriber failover
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(120)
def test_subscription_fails_over_and_resumes_from_cursor(fleet):
    router = PartitionRouter('sub-topic', 2, _urls(fleet), replicas=2)
    try:
        topic = router.topics[0]
        router.publish_batch(topic, [b'e0', b'e1', b'e2'])
        subscription = router.subscribe(topic, from_seq=0)
        assert isinstance(subscription, FailoverSubscription)
        got = []
        deadline = time.monotonic() + 30.0
        while len(got) < 3 and time.monotonic() < deadline:
            got.extend(subscription.next_batch(timeout=1.0))
        assert [seq for seq, _ in got] == [0, 1, 2]

        victim = subscription.broker
        _server_of(fleet, victim).stop()
        router.publish_batch(topic, [b'e3', b'e4'])

        deadline = time.monotonic() + 30.0
        while len(got) < 5 and time.monotonic() < deadline:
            got.extend(subscription.next_batch(timeout=1.0))
        assert [seq for seq, _ in got] == [0, 1, 2, 3, 4]
        assert subscription.failovers >= 1
        assert subscription.broker != victim
        assert subscription.lost == 0
        subscription.close()
    finally:
        router.close()


# --------------------------------------------------------------------------- #
# Coordinator failover
# --------------------------------------------------------------------------- #
@pytest.mark.timeout(180)
def test_coordinator_failover_preserves_commits_and_coverage(fleet, store):
    urls = _urls(fleet)
    producer = StreamProducer(store, urls, 'ha-docs', partitions=4, replicas=2)
    producer.send_batch(list(range(10)))

    consumer = StreamConsumer(
        store, urls, 'ha-docs',
        group='ha-group', partitions=4, replicas=2, timeout=20.0,
    )
    backend = consumer.coordinator._backend
    got = []
    items = iter(consumer)
    for _ in range(5):
        got.append(int(next(items)))
    consumer.ack()
    committed_before = consumer.coordinator.fetch(consumer.router.topics)

    # Kill the acting coordinator broker: its replica holds the mirrored
    # membership and offsets, so the group continues without losing acks.
    victim = backend.acting_broker
    _server_of(fleet, victim).stop()

    late = StreamProducer(store, urls, 'ha-docs', partitions=4, replicas=2)
    late.send_batch(list(range(10, 20)))
    late.close(end=True)
    producer.close(end=False)

    for proxy in items:
        got.append(int(proxy))
        consumer.ack()

    assert sorted(set(got)) == list(range(20))
    assert consumer.lost == 0
    assert consumer.coordinator.failovers >= 1
    assert backend.acting_broker != victim
    # Offsets committed before the failover survived onto the replica.
    after = consumer.coordinator.fetch(consumer.router.topics)
    for topic, entry in committed_before.items():
        assert after[topic]['committed'] >= entry['committed']
    consumer.close()


@pytest.mark.timeout(120)
def test_coordinator_calls_raise_when_every_owner_is_dead(fleet):
    router = PartitionRouter('dead-topic', 2, _urls(fleet), replicas=2)
    try:
        from repro.stream.groups import _ReplicatedKVBackend

        backend = _ReplicatedKVBackend('doomed', router)
        for server in fleet:
            server.stop()
        with pytest.raises(NodeUnavailableError):
            backend.join('m1', 5.0)
    finally:
        router.close()
