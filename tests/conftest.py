"""Shared pytest fixtures for the test suite."""
from __future__ import annotations

import pytest

from repro.serialize.registry import default_registry
from repro.store import unregister_all


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Keep process-global registries isolated between tests."""
    yield
    unregister_all()
    default_registry.clear()


@pytest.fixture()
def local_store(tmp_path):
    """A Store backed by a LocalConnector, unregistered on teardown."""
    from repro.store import Store

    store = Store.from_url('local:///test-local-store?cache_size=4')
    yield store
    store.close(clear=True)


@pytest.fixture()
def file_store(tmp_path):
    """A Store backed by a FileConnector rooted in a temp directory."""
    from repro.store import Store

    store = Store.from_url(f'file://{tmp_path}/data?name=test-file-store')
    yield store
    store.close(clear=True)
