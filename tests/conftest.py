"""Shared pytest fixtures and chaos/timeout wiring for the test suite."""
from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.serialize.registry import default_registry
from repro.store import unregister_all

try:
    import pytest_timeout  # noqa: F401
    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


def pytest_configure(config):
    """Register the suite's custom markers (no pytest.ini in this repo)."""
    config.addinivalue_line(
        'markers',
        'chaos: fault-injection tests that kill real subprocesses '
        "(deselect with -m 'not chaos')",
    )
    config.addinivalue_line(
        'markers',
        'timeout(seconds): fail the test if it runs longer than the bound '
        '(pytest-timeout when installed, SIGALRM fallback otherwise)',
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """SIGALRM fallback for ``@pytest.mark.timeout`` without pytest-timeout.

    A hung failover test must fail fast, not wedge the whole run.  When
    the real plugin is installed it handles the marker itself; this
    fallback only arms an alarm on the main thread of platforms that
    have ``SIGALRM`` (the CI runners do).
    """
    marker = item.get_closest_marker('timeout')
    seconds = 0
    if marker is not None and not _HAVE_PYTEST_TIMEOUT:
        if marker.args:
            seconds = int(marker.args[0])
        elif 'seconds' in marker.kwargs:
            seconds = int(marker.kwargs['seconds'])
    usable = (
        seconds > 0
        and hasattr(signal, 'SIGALRM')
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f'test exceeded its {seconds}s timeout (SIGALRM fallback)',
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Keep process-global registries isolated between tests."""
    yield
    unregister_all()
    default_registry.clear()


#: The witness wraps every lock the suite creates when this env var is
#: set — the dedicated CI job runs the cluster/stream/chaos tests with
#: it to catch dynamic lock-order inversions the static RP003 rule
#: cannot see.
_WITNESS_ENABLED = os.environ.get('REPRO_WITNESS') == '1'


@pytest.fixture(scope='session', autouse=_WITNESS_ENABLED)
def _witness_session():
    """Install the runtime lock-order witness for the whole run."""
    from repro.analysis import witness

    witness.install(raise_on_violation=True)
    yield
    witness.uninstall()


@pytest.fixture(autouse=_WITNESS_ENABLED)
def _witness_check(_witness_session):
    """Fail any test during which an inversion was recorded.

    A violation normally raises inside the offending thread; if that
    thread swallowed it (a broad except in a worker), the recorded
    message still fails the test here.
    """
    from repro.analysis import witness

    witness.clear_violations()
    yield
    seen = witness.violations()
    witness.clear_violations()
    assert not seen, 'lock-order inversion(s) observed:\n' + '\n'.join(seen)


@pytest.fixture()
def local_store(tmp_path):
    """A Store backed by a LocalConnector, unregistered on teardown."""
    from repro.store import Store

    store = Store.from_url('local:///test-local-store?cache_size=4')
    yield store
    store.close(clear=True)


@pytest.fixture()
def file_store(tmp_path):
    """A Store backed by a FileConnector rooted in a temp directory."""
    from repro.store import Store

    store = Store.from_url(f'file://{tmp_path}/data?name=test-file-store')
    yield store
    store.close(clear=True)
