"""Tests of the harness result-table utilities."""
from __future__ import annotations

import pytest

from repro.harness import ResultTable
from repro.harness import format_table
from repro.harness.reporting import mean
from repro.harness.reporting import stdev


def test_mean_and_stdev():
    assert mean([]) == 0.0
    assert mean([1, 2, 3]) == pytest.approx(2.0)
    assert stdev([5]) == 0.0
    assert stdev([2, 4]) == pytest.approx(1.0)


def test_add_row_and_column():
    table = ResultTable('t', ['a', 'b'])
    table.add_row(a=1, b='x')
    table.add_row(a=2, b='y')
    assert len(table) == 2
    assert table.column('a') == [1, 2]


def test_filter_and_value():
    table = ResultTable('t', ['method', 'size', 'time'])
    table.add_row(method='m1', size=10, time=1.0)
    table.add_row(method='m1', size=20, time=2.0)
    table.add_row(method='m2', size=10, time=3.0)
    assert len(table.filter(method='m1')) == 2
    assert table.value('time', method='m2', size=10) == 3.0
    with pytest.raises(KeyError):
        table.value('time', method='m1')  # two matches
    with pytest.raises(KeyError):
        table.value('time', method='m3', size=10)  # no matches


def test_format_table_renders_all_pieces():
    table = ResultTable('My Title', ['col', 'value'])
    table.add_row(col='x', value=1.2345)
    table.add_row(col='y', value=None)
    table.add_note('a note')
    text = format_table(table)
    assert 'My Title' in text
    assert 'col' in text and 'value' in text
    assert '1.234' in text
    assert '--' in text
    assert 'note: a note' in text


def test_format_table_max_rows():
    table = ResultTable('t', ['a'])
    for i in range(10):
        table.add_row(a=i)
    text = format_table(table, max_rows=3)
    assert 'more rows' in text


def test_str_uses_format_table():
    table = ResultTable('Str Title', ['a'])
    table.add_row(a=0.0001)
    assert 'Str Title' in str(table)
