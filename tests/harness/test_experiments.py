"""Reduced-parameter runs of every experiment harness.

These tests execute the same code the benchmarks run, with small sweeps, and
check the *qualitative* findings of the paper: who wins, where the payload
limit bites, and how improvements trend with size/scale.  EXPERIMENTS.md
records the full-sweep numbers.
"""
from __future__ import annotations

import pytest

from repro.harness.ablations import run_ablations
from repro.harness.fig5 import FIG5_CONFIGURATIONS
from repro.harness.fig5 import run_figure5
from repro.harness.fig6 import run_figure6
from repro.harness.fig7 import run_figure7
from repro.harness.fig8 import run_figure8
from repro.harness.fig9 import run_figure9
from repro.harness.fig10 import run_figure10
from repro.harness.fig11 import run_figure11
from repro.harness.table1 import run_table1
from repro.harness.table2 import run_table2


def test_table1_lists_all_paper_connectors():
    table = run_table1()
    names = set(table.column('connector'))
    for expected in ('FileConnector', 'RedisConnector', 'MargoConnector', 'UCXConnector',
                     'ZMQConnector', 'GlobusConnector', 'EndpointConnector'):
        assert expected in names
    globus = table.filter(connector='GlobusConnector')[0]
    assert globus['inter_site'] == 'yes' and globus['persistence'] == 'yes'


def test_fig5_noop_qualitative_findings():
    sizes = [10, 1_000_000, 10_000_000]
    table = run_figure5(task_type='noop', sizes=sizes)
    theta = 'Theta -> Theta'
    # Cloud baseline is cut off by the payload limit; ProxyStore is not.
    assert table.value('roundtrip_s', configuration=theta, method='cloud',
                       input_bytes=10_000_000) is None
    assert table.value('roundtrip_s', configuration=theta, method='file-store',
                       input_bytes=10_000_000) is not None
    # At 1 MB every ProxyStore option beats moving the data through the cloud.
    cloud_1mb = table.value('roundtrip_s', configuration=theta, method='cloud',
                            input_bytes=1_000_000)
    for method in ('file-store', 'redis-store', 'endpoint-store'):
        assert table.value('roundtrip_s', configuration=theta, method=method,
                           input_bytes=1_000_000) < cloud_1mb
    # Inter-site: GlobusStore is not competitive below the payload limit.
    midway = 'Midway2 -> Theta'
    assert table.value('roundtrip_s', configuration=midway, method='globus-store',
                       input_bytes=1_000_000) > \
        table.value('roundtrip_s', configuration=midway, method='cloud',
                    input_bytes=1_000_000)


def test_fig5_sleep_overlap_hides_transfer():
    sizes = [10, 1_000_000]
    noop = run_figure5(task_type='noop', sizes=sizes,
                       configurations=FIG5_CONFIGURATIONS[2:3])
    sleep = run_figure5(task_type='sleep', sizes=sizes,
                        configurations=FIG5_CONFIGURATIONS[2:3])
    cfg = FIG5_CONFIGURATIONS[2].label
    # The asynchronous resolve lets the 1 MB transfer hide inside the 1 s
    # sleep: sleep-task time grows by (far) less than the no-op delta plus 1 s.
    noop_delta = (noop.value('roundtrip_s', configuration=cfg, method='endpoint-store', input_bytes=1_000_000)
                  - noop.value('roundtrip_s', configuration=cfg, method='endpoint-store', input_bytes=10))
    sleep_delta = (sleep.value('roundtrip_s', configuration=cfg, method='endpoint-store', input_bytes=1_000_000)
                   - sleep.value('roundtrip_s', configuration=cfg, method='endpoint-store', input_bytes=10))
    assert sleep_delta < max(noop_delta, 0.05) + 1e-6


def test_fig6_qualitative_findings():
    table = run_figure6(sizes=[1_000, 100_000_000])
    polaris = 'Polaris Login -> Polaris Compute'
    chameleon = 'Chameleon Node -> Chameleon Node'
    size = 100_000_000
    margo = table.value('roundtrip_s', system=polaris, method='margo-store', input_bytes=size)
    assert margo < table.value('roundtrip_s', system=polaris, method='dataspaces', input_bytes=size)
    assert margo < table.value('roundtrip_s', system=polaris, method='zmq-store', input_bytes=size)
    # UCX underperforms Margo and Redis on Chameleon's commodity network.
    assert table.value('roundtrip_s', system=chameleon, method='ucx-store', input_bytes=size) > \
        table.value('roundtrip_s', system=chameleon, method='margo-store', input_bytes=size)


def test_fig7_improvement_grows_with_size():
    table = run_figure7(input_sizes=[100, 1_000_000], output_sizes=[100], repeats=3,
                        stores=('redis-store',))
    small = table.value('improvement_pct', store='redis-store', input_bytes=100, output_bytes=100)
    large = table.value('improvement_pct', store='redis-store', input_bytes=1_000_000, output_bytes=100)
    assert large > small
    assert large > 10.0


def test_fig8_latency_grows_with_concurrency():
    table = run_figure8(client_counts=(1, 4), payload_sizes=(1_000, 100_000),
                        requests_per_client=10)
    assert table.value('avg_time_ms', operation='get', payload_bytes=100_000, clients=4) > \
        table.value('avg_time_ms', operation='get', payload_bytes=100_000, clients=1)
    assert len(table) == 8


def test_fig9_redis_ssh_faster_but_endpoints_competitive():
    table = run_figure9(payload_sizes=(1_000, 1_000_000), requests=2)
    pair = 'Frontera -> Theta'
    endpoint = table.value('avg_time_ms', site_pair=pair, system='ps-endpoints',
                           operation='get', payload_bytes=1_000_000)
    redis = table.value('avg_time_ms', site_pair=pair, system='redis+ssh',
                        operation='get', payload_bytes=1_000_000)
    assert redis < endpoint          # Redis+SSH is generally faster...
    assert endpoint < redis * 20     # ...but endpoints stay competitive.


def test_fig10_payload_limit_and_speedup():
    table = run_figure10(hidden_blocks=(1, 30, 50))
    assert table.value('transfer_s', hidden_blocks=50, method='cloud-transfer') is None
    assert table.value('transfer_s', hidden_blocks=50, method='endpoint-store') is not None
    cloud = table.value('transfer_s', hidden_blocks=30, method='cloud-transfer')
    endpoint = table.value('transfer_s', hidden_blocks=30, method='endpoint-store')
    assert endpoint < cloud


def test_fig11_utilization_trends():
    table = run_figure11(node_counts=(128, 1024))
    assert table.value('cpu_utilization', cpu_nodes=1024, configuration='baseline') < \
        table.value('cpu_utilization', cpu_nodes=128, configuration='baseline')
    assert table.value('cpu_utilization', cpu_nodes=1024, configuration='proxystore') > 0.9


def test_table2_proxying_inputs_improves_roundtrip():
    table = run_table2(repeats=2, image_side=512)
    assert table.value('improvement_pct', configuration='FileStore (inputs)') > 10.0
    assert table.value('improvement_pct', configuration='EndpointStore (inputs)') > 0.0


@pytest.mark.slow
def test_ablations_run_and_have_expected_relations():
    table = run_ablations()
    assert table.value('seconds', ablation='deserialization-cache', variant='cache-enabled') < \
        table.value('seconds', ablation='deserialization-cache', variant='cache-disabled')
    assert table.value('seconds', ablation='evict-flag', variant='evict-on-resolve') == 0.0
