"""Tests of the Globus-Compute-like FaaS substrate."""
from __future__ import annotations

import pytest

from repro.connectors.local import LocalConnector
from repro.exceptions import FaaSError
from repro.exceptions import PayloadTooLargeError
from repro.exceptions import TaskExecutionError
from repro.faas import CloudFaaSService
from repro.faas import ComputeEndpoint
from repro.faas import Executor
from repro.proxy import Proxy
from repro.simulation import VirtualClock
from repro.simulation import paper_testbed
from repro.simulation.context import on_host
from repro.simulation.costed import CostedConnector
from repro.simulation.costs import SharedFilesystemCost
from repro.store import Store


@pytest.fixture()
def fabric():
    return paper_testbed()


@pytest.fixture()
def clock():
    return VirtualClock()


@pytest.fixture()
def cloud(fabric, clock):
    service = CloudFaaSService(fabric, clock)
    endpoint = ComputeEndpoint('theta', 'theta-compute', clock, fabric)
    service.register_endpoint(endpoint)
    return service


@pytest.fixture()
def executor(cloud):
    return Executor(cloud, 'theta', client_host='theta-login')


def _double(x, ctx=None):
    return x * 2


def _double_len(x, ctx=None):
    return len(x) * 2


def _sleepy(seconds, ctx=None):
    ctx.sleep(seconds)
    return seconds


def _failing(ctx=None):
    raise RuntimeError('task exploded')


def test_submit_and_result(executor):
    future = executor.submit(_double, 21)
    assert future.done()
    assert future.result() == 42


def test_result_is_idempotent(executor, clock):
    future = executor.submit(_double, 1)
    first = future.result()
    t = clock.now()
    assert future.result() == first
    assert clock.now() == t  # second call does not re-download


def test_unknown_endpoint_rejected(cloud):
    with pytest.raises(FaaSError):
        Executor(cloud, 'nonexistent')


def test_roundtrip_advances_virtual_time(executor, clock):
    assert clock.now() == 0.0
    executor.submit(_double, 5).result()
    # Four request overheads plus network time.
    assert clock.now() > 4 * 0.3


def test_virtual_sleep_included_in_roundtrip(executor, clock):
    executor.submit(_sleepy, 2.5).result()
    assert clock.now() > 2.5


def test_payload_limit_enforced(executor):
    with pytest.raises(PayloadTooLargeError):
        executor.submit(_double, b'x' * (6 * 1024 * 1024))


def test_proxy_payload_bypasses_limit(executor, fabric, clock):
    store = Store(
        'faas-test-store',
        CostedConnector(LocalConnector(), SharedFilesystemCost(fabric), clock),
    )
    try:
        big = b'x' * (6 * 1024 * 1024)
        with on_host('theta-login'):
            proxy = store.proxy(big, cache_local=False)
            # The 6 MB input rides as a tiny proxy; only the scalar result
            # travels back through the cloud.
            future = executor.submit(_double_len, proxy)
            assert future.result() == 2 * len(big)
    finally:
        store.close(clear=True)


def test_task_exception_surfaces_on_result(executor):
    future = executor.submit(_failing)
    with pytest.raises(TaskExecutionError, match='task exploded'):
        future.result()


def test_larger_payloads_take_longer(fabric):
    def roundtrip(nbytes: int) -> float:
        clock = VirtualClock()
        cloud = CloudFaaSService(fabric, clock)
        cloud.register_endpoint(ComputeEndpoint('ep', 'theta-compute', clock, fabric))
        Executor(cloud, 'ep', client_host='midway2-login').submit(_double, b'x' * nbytes).result()
        return clock.now()

    assert roundtrip(1_000_000) > roundtrip(100)


def test_task_record_bookkeeping(executor):
    future = executor.submit(_double, 'ab')
    future.result()
    record = future.record()
    assert record.done
    assert record.input_bytes > 0
    assert record.result_bytes > 0
    assert record.roundtrip_time > 0
    assert set(record.timeline) >= {'upload', 'dispatch', 'execute', 'result_upload'}


def test_executor_map(executor):
    futures = executor.map(_double, [1, 2, 3])
    assert [f.result() for f in futures] == [2, 4, 6]


def test_endpoint_runs_tasks_on_its_host(cloud, clock, fabric):
    from repro.simulation.context import current_host

    def where_am_i(ctx=None):
        return current_host()

    executor = Executor(cloud, 'theta', client_host='midway2-login')
    assert executor.submit(where_am_i).result() == 'theta-compute'


def test_endpoint_task_counter(cloud, executor):
    endpoint_obj = cloud._endpoint('theta')
    before = endpoint_obj.tasks_executed
    executor.submit(_double, 1).result()
    assert endpoint_obj.tasks_executed == before + 1


def test_fetch_result_unknown_task(cloud):
    with pytest.raises(FaaSError):
        cloud.fetch_result('theta-login', 'bogus')
