"""Runtime lock-order witness: inversion detection without deadlocking."""
from __future__ import annotations

import threading

import pytest

from repro.analysis import witness


@pytest.fixture()
def witnessed():
    """Install the witness for one test, restoring real locks after."""
    already = witness.installed()
    witness.install(raise_on_violation=True)
    yield
    if already:
        # The session fixture (REPRO_WITNESS=1 runs) owns the patch; put
        # it back instead of leaving real constructors behind.
        witness.install(raise_on_violation=True)
    else:
        witness.uninstall()


def test_ab_ba_inversion_raises_before_blocking(witnessed):
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with pytest.raises(witness.WitnessViolation, match='inversion'):
            lock_a.acquire()
    assert len(witness.violations()) == 1
    witness.clear_violations()


def test_consistent_order_never_fires(witnessed):
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    for _ in range(3):
        with lock_a:
            with lock_b:
                pass
    assert witness.violations() == []


def test_record_only_mode_logs_without_raising(witnessed):
    witness.install(raise_on_violation=False)
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        acquired = lock_a.acquire()  # logged, not raised
        assert acquired
        lock_a.release()
    assert len(witness.violations()) == 1
    witness.clear_violations()


def test_try_lock_is_a_legitimate_escape(witnessed):
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        assert lock_a.acquire(blocking=False)
        lock_a.release()
    assert witness.violations() == []


def test_rlock_reentry_is_not_an_order_edge(witnessed):
    rlock = threading.RLock()
    with rlock:
        with rlock:
            pass
    assert witness.violations() == []


def test_condition_wait_notify_works_under_witness(witnessed):
    cond = threading.Condition()
    box: list[str] = []

    def consumer() -> None:
        with cond:
            while not box:
                cond.wait(timeout=5)
            box.append('consumed')

    thread = threading.Thread(target=consumer)
    thread.start()
    with cond:
        box.append('produced')
        cond.notify()
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert box == ['produced', 'consumed']
    assert witness.violations() == []


def test_cross_thread_inversion_is_detected(witnessed):
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    # Thread 1 establishes A -> B.
    def forward() -> None:
        with lock_a:
            with lock_b:
                pass

    thread = threading.Thread(target=forward)
    thread.start()
    thread.join(timeout=5)
    # The main thread then attempts B -> A: caught before it can block.
    with lock_b:
        with pytest.raises(witness.WitnessViolation):
            lock_a.acquire()
    witness.clear_violations()


def test_uninstall_restores_real_constructors(witnessed):
    witness.uninstall()
    assert not witness.installed()
    lock = threading.Lock()
    assert not isinstance(lock, witness.WitnessLock)
