"""Per-rule fixture tests: each rule fires on its target and only there."""
from __future__ import annotations


def _rules(report):
    return [f.rule for f in report.findings]


# -- RP001: blocking call in the event loop ------------------------------- #

EVENT_LOOP_BAD = '''
    import time

    class KVServer:
        def _serve_loop(self):
            self._tick()

        def _tick(self):
            time.sleep(0.1)

        def _handle(self, request):
            self._lock.acquire()

        def unreachable(self):
            time.sleep(5)  # not reachable from the loop entries
'''


def test_rp001_flags_blocking_calls_reachable_from_loop(analyze):
    report = analyze({'src/repro/kvserver/server.py': EVENT_LOOP_BAD},
                     select=['RP001'])
    assert _rules(report) == ['RP001', 'RP001']
    messages = ' '.join(f.message for f in report.findings)
    assert 'time.sleep' in messages
    assert 'acquire' in messages


EVENT_LOOP_OK = '''
    class KVServer:
        def _serve_loop(self):
            events = self._selector.select(0.05)
            with self._lock:
                pass
            self._lock.acquire(timeout=1.0)
            self._lock.acquire(blocking=False)

    class NotTheServer:
        def _serve_loop(self):
            import time
            time.sleep(1)  # other classes are out of scope
'''


def test_rp001_allows_with_lock_timeouts_and_other_classes(analyze):
    report = analyze({'src/repro/kvserver/server.py': EVENT_LOOP_OK},
                     select=['RP001'])
    assert report.clean


def test_rp001_flags_select_without_timeout(analyze):
    source = '''
        class KVServer:
            def _serve_loop(self):
                self._selector.select()
    '''
    report = analyze({'src/repro/kvserver/server.py': source},
                     select=['RP001'])
    assert _rules(report) == ['RP001']


# -- RP002: stored exception pins buffers --------------------------------- #

def test_rp002_flags_exception_stored_on_self(analyze):
    source = '''
        class Resolver:
            def run(self):
                try:
                    self.resolve()
                except Exception as e:
                    self._error = e
    '''
    report = analyze({'src/repro/proxy/x.py': source}, select=['RP002'])
    assert _rules(report) == ['RP002']
    assert 'with_traceback' in report.findings[0].message


def test_rp002_accepts_stripped_and_local_stores(analyze):
    source = '''
        class Resolver:
            def run(self):
                try:
                    self.resolve()
                except Exception as e:
                    self._error = e.with_traceback(None)

            def local_only(self):
                try:
                    self.resolve()
                except Exception as e:
                    last = e  # dies with the frame
                return last

            def cleared_first(self):
                try:
                    self.resolve()
                except Exception as e:
                    e.__traceback__ = None
                    self._error = e
    '''
    report = analyze({'src/repro/proxy/x.py': source}, select=['RP002'])
    assert report.clean


def test_rp002_flags_closure_escape(analyze):
    source = '''
        def make():
            box = None
            def run():
                nonlocal box
                try:
                    work()
                except Exception as e:
                    box = e
            return run
    '''
    report = analyze({'src/repro/proxy/x.py': source}, select=['RP002'])
    assert _rules(report) == ['RP002']


# -- RP003: lock-order cycles --------------------------------------------- #

def test_rp003_flags_opposite_nesting_orders(analyze):
    source = '''
        import threading

        class Engine:
            def __init__(self):
                self._alock = threading.Lock()
                self._block = threading.Lock()

            def forward(self):
                with self._alock:
                    with self._block:
                        pass

            def backward(self):
                with self._block:
                    with self._alock:
                        pass
    '''
    report = analyze({'src/repro/cluster/x.py': source}, select=['RP003'])
    assert set(_rules(report)) == {'RP003'}
    assert len(report.findings) >= 2  # one per participating edge
    assert 'cycle' in report.findings[0].message


def test_rp003_consistent_order_is_clean(analyze):
    source = '''
        import threading

        class Engine:
            def one(self):
                with self._alock:
                    with self._block:
                        pass

            def two(self):
                with self._alock:
                    with self._block:
                        pass
    '''
    report = analyze({'src/repro/cluster/x.py': source}, select=['RP003'])
    assert report.clean


def test_rp003_one_hop_call_cycle(analyze):
    source = '''
        class Engine:
            def outer(self):
                with self._alock:
                    self.helper()

            def helper(self):
                with self._block:
                    pass

            def backward(self):
                with self._block:
                    with self._alock:
                        pass
    '''
    report = analyze({'src/repro/cluster/x.py': source}, select=['RP003'])
    assert set(_rules(report)) == {'RP003'}


def test_rp003_self_deadlock_on_plain_lock(analyze):
    source = '''
        import threading

        class Engine:
            def __init__(self):
                self._lock = threading.Lock()

            def oops(self):
                with self._lock:
                    with self._lock:
                        pass
    '''
    report = analyze({'src/repro/cluster/x.py': source}, select=['RP003'])
    assert _rules(report) == ['RP003']
    assert 'self-deadlock' in report.findings[0].message


# -- RP004: silent broad except ------------------------------------------- #

def test_rp004_flags_silent_swallow_in_scope(analyze):
    source = '''
        def pump():
            try:
                step()
            except Exception:
                pass
    '''
    report = analyze({'src/repro/stream/x.py': source}, select=['RP004'])
    assert _rules(report) == ['RP004']


def test_rp004_accepts_reraise_metric_or_counter(analyze):
    source = '''
        def reraises(self):
            try:
                step()
            except Exception as e:
                raise ConnectorError('step failed') from e

        def records(self):
            try:
                step()
            except Exception:
                self._record('stream.failures')

        def counts(self):
            try:
                step()
            except Exception:
                self.failures += 1
    '''
    report = analyze({'src/repro/stream/x.py': source}, select=['RP004'])
    assert report.clean


def test_rp004_out_of_scope_paths_are_ignored(analyze):
    source = '''
        def pump():
            try:
                step()
            except Exception:
                pass
    '''
    report = analyze({'src/repro/store/x.py': source}, select=['RP004'])
    assert report.clean


def test_rp004_narrow_except_is_fine(analyze):
    source = '''
        def pump():
            try:
                step()
            except (KeyError, ValueError):
                pass
    '''
    report = analyze({'src/repro/stream/x.py': source}, select=['RP004'])
    assert report.clean


# -- RP005: metric-name registry ------------------------------------------ #

def test_rp005_flags_undocumented_metric(analyze):
    source = '''
        def work(self):
            self._record('stream.mystery', 0.0)
    '''
    docs = "| `stream.known` | somewhere | something |"
    report = analyze({'src/repro/stream/x.py': source},
                     select=['RP005'], docs=docs)
    rules = _rules(report)
    assert rules.count('RP005') == 2  # undocumented code + dead docs row
    messages = [f.message for f in report.findings]
    assert any('stream.mystery' in m for m in messages)
    assert any('stream.known' in m for m in messages)


def test_rp005_documented_metrics_are_clean(analyze):
    source = '''
        def work(self):
            self._record('stream.known', 0.0)
            self._bump('failovers')
    '''
    docs = '''\
        | `stream.known` | here | meaning |
        | `cluster.failovers` | there | meaning |
    '''
    report = analyze({'src/repro/stream/x.py': source},
                     select=['RP005'], docs=docs)
    assert report.clean


def test_rp005_wildcards_match_both_directions(analyze):
    source = '''
        def work(self, node_id, suffix):
            self._record(f'cluster.node.{node_id}.{suffix}', 0.0)
    '''
    docs = "| `cluster.node.<id>.ok` / `cluster.node.<id>.fail` | rpc | latency |"
    report = analyze({'src/repro/cluster/x.py': source},
                     select=['RP005'], docs=docs)
    assert report.clean


def test_rp005_numeric_first_arg_is_not_a_metric(analyze):
    source = '''
        def fold(self, stats, elapsed):
            stats.record(elapsed, 128)
    '''
    docs = "| `anything` | x | y |"
    report = analyze({'src/repro/store/x.py': source},
                     select=['RP005'], docs=docs)
    # only the dead docs row fires; the non-string record() is ignored
    assert [f.path for f in report.findings] == ['docs/API.md']


# -- RP006: daemon threads must be joined --------------------------------- #

def test_rp006_flags_unjoined_daemon_attr(analyze):
    source = '''
        import threading

        class Service:
            def start(self):
                self._thread = threading.Thread(target=self.run, daemon=True)
                self._thread.start()
    '''
    report = analyze({'src/repro/stream/x.py': source}, select=['RP006'])
    assert _rules(report) == ['RP006']
    assert '_thread' in report.findings[0].message


def test_rp006_join_via_alias_swap_is_clean(analyze):
    source = '''
        import threading

        class Service:
            def start(self):
                self._reader = threading.Thread(target=self.run, daemon=True)
                self._reader.start()

            def close(self):
                reader, self._reader = self._reader, None
                if reader is not None:
                    reader.join(timeout=2.0)
    '''
    report = analyze({'src/repro/stream/x.py': source}, select=['RP006'])
    assert report.clean


def test_rp006_collection_join_is_clean(analyze):
    source = '''
        import threading

        class Pool:
            def spawn(self):
                worker = threading.Thread(target=self.run, daemon=True)
                self._workers.append(worker)
                worker.start()

            def close(self):
                workers, self._workers = self._workers, []
                for worker in workers:
                    worker.join(timeout=5)
    '''
    report = analyze({'src/repro/stream/x.py': source}, select=['RP006'])
    assert report.clean


def test_rp006_fire_and_forget_local_is_flagged(analyze):
    source = '''
        import threading

        class Service:
            def submit(self):
                worker = threading.Thread(target=self.run, daemon=True)
                worker.start()
    '''
    report = analyze({'src/repro/stream/x.py': source}, select=['RP006'])
    assert _rules(report) == ['RP006']
    assert 'fire-and-forget' in report.findings[0].message


def test_rp006_returned_thread_transfers_ownership(analyze):
    source = '''
        import threading

        def spawn(target):
            worker = threading.Thread(target=target, daemon=True)
            worker.start()
            return worker
    '''
    report = analyze({'src/repro/stream/x.py': source}, select=['RP006'])
    assert report.clean


def test_rp006_getattr_alias_join_is_clean(analyze):
    source = '''
        import threading

        class Factory:
            def resolve_async(self):
                self._async_thread = threading.Thread(target=self.go, daemon=True)
                self._async_thread.start()

            def result(self):
                thread = getattr(self, '_async_thread', None)
                if thread is not None:
                    thread.join()
    '''
    report = analyze({'src/repro/stream/x.py': source}, select=['RP006'])
    assert report.clean
