"""Tests for the repro.analysis static lint framework and runtime witness."""
