"""Framework behaviour: suppressions, baseline semantics, CLI, reports."""
from __future__ import annotations

import json

from repro.analysis import load_baseline
from repro.analysis import run_analysis
from repro.analysis.__main__ import main
from repro.analysis.core import save_baseline

SILENT = '''
def pump():
    try:
        step()
    except Exception:
        pass
'''


def _write(tmp_path, relpath, text):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


# -- suppressions ---------------------------------------------------------- #

def test_same_line_suppression(tmp_path):
    _write(tmp_path, 'src/repro/stream/x.py', SILENT.replace(
        'except Exception:',
        'except Exception:  # repro: ignore[RP004] - demo',
    ))
    report = run_analysis(tmp_path, select=['RP004'])
    assert report.clean
    assert len(report.suppressed) == 1


def test_standalone_comment_above_suppresses(tmp_path):
    _write(tmp_path, 'src/repro/stream/x.py', '''
def pump():
    try:
        step()
    # repro: ignore[RP004] - reason spanning
    # several comment lines still lands on the except
    except Exception:
        pass
''')
    report = run_analysis(tmp_path, select=['RP004'])
    assert report.clean
    assert len(report.suppressed) == 1


def test_suppression_is_rule_specific(tmp_path):
    _write(tmp_path, 'src/repro/stream/x.py', SILENT.replace(
        'except Exception:',
        'except Exception:  # repro: ignore[RP001]',
    ))
    report = run_analysis(tmp_path, select=['RP004'])
    assert [f.rule for f in report.findings] == ['RP004']


def test_star_suppresses_every_rule(tmp_path):
    _write(tmp_path, 'src/repro/stream/x.py', SILENT.replace(
        'except Exception:',
        'except Exception:  # repro: ignore[*]',
    ))
    report = run_analysis(tmp_path, select=['RP004'])
    assert report.clean


def test_marker_inside_string_is_not_a_suppression(tmp_path):
    _write(tmp_path, 'src/repro/stream/x.py', '''
def pump():
    try:
        step()
    except Exception:
        return "# repro: ignore[RP004]"
''')
    report = run_analysis(tmp_path, select=['RP004'])
    assert [f.rule for f in report.findings] == ['RP004']


# -- baseline -------------------------------------------------------------- #

def test_baseline_filters_and_survives_line_shifts(tmp_path):
    source_file = _write(tmp_path, 'src/repro/stream/x.py', SILENT)
    first = run_analysis(tmp_path, select=['RP004'])
    assert len(first.findings) == 1

    baseline_path = tmp_path / 'baseline.json'
    save_baseline(baseline_path, first.findings)
    baseline = load_baseline(baseline_path)
    filtered = run_analysis(tmp_path, select=['RP004'], baseline=baseline)
    assert filtered.clean
    assert len(filtered.baselined) == 1

    # Unrelated edits above the finding keep the fingerprint stable.
    source_file.write_text('import os  # new first line\n' + SILENT)
    shifted = run_analysis(tmp_path, select=['RP004'], baseline=baseline)
    assert shifted.clean


def test_baseline_counts_do_not_absorb_new_duplicates(tmp_path):
    _write(tmp_path, 'src/repro/stream/x.py', SILENT)
    first = run_analysis(tmp_path, select=['RP004'])
    baseline_path = tmp_path / 'baseline.json'
    save_baseline(baseline_path, first.findings)

    # A second identical handler produces an identical fingerprint; the
    # single baseline entry must absorb only one of them.
    _write(tmp_path, 'src/repro/stream/x.py', SILENT + SILENT.replace(
        'def pump', 'def pump2',
    ))
    report = run_analysis(
        tmp_path, select=['RP004'], baseline=load_baseline(baseline_path),
    )
    assert len(report.baselined) == 1
    assert len(report.findings) == 1


def test_unknown_rule_id_is_an_error(tmp_path):
    _write(tmp_path, 'src/repro/stream/x.py', 'x = 1\n')
    try:
        run_analysis(tmp_path, select=['RP999'])
    except ValueError as e:
        assert 'RP999' in str(e)
    else:
        raise AssertionError('expected ValueError for unknown rule id')


# -- CLI ------------------------------------------------------------------- #

def test_cli_strict_exit_codes(tmp_path, capsys):
    _write(tmp_path, 'src/repro/stream/x.py', SILENT)
    assert main(['--root', str(tmp_path), '--select', 'RP004']) == 0
    assert main(['--root', str(tmp_path), '--select', 'RP004', '--strict']) == 1
    out = capsys.readouterr().out
    assert 'RP004' in out


def test_cli_update_baseline_then_strict_is_clean(tmp_path, capsys):
    _write(tmp_path, 'src/repro/stream/x.py', SILENT)
    assert main([
        '--root', str(tmp_path), '--select', 'RP004', '--update-baseline',
    ]) == 0
    assert main([
        '--root', str(tmp_path), '--select', 'RP004', '--strict',
    ]) == 0
    # --no-baseline resurfaces the grandfathered finding (audit mode).
    assert main([
        '--root', str(tmp_path), '--select', 'RP004', '--strict',
        '--no-baseline',
    ]) == 1


def test_cli_json_output(tmp_path, capsys):
    _write(tmp_path, 'src/repro/stream/x.py', SILENT)
    assert main(['--root', str(tmp_path), '--select', 'RP004', '--json']) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload['counts'] == {'RP004': 1}
    assert payload['findings'][0]['rule'] == 'RP004'
    assert payload['findings'][0]['fingerprint']


def test_cli_list_rules(capsys):
    assert main(['--list-rules']) == 0
    out = capsys.readouterr().out
    for rule in ('RP001', 'RP002', 'RP003', 'RP004', 'RP005', 'RP006'):
        assert rule in out


def test_cli_unknown_rule_exits_2(tmp_path, capsys):
    _write(tmp_path, 'src/repro/stream/x.py', 'x = 1\n')
    assert main(['--root', str(tmp_path), '--select', 'RP999']) == 2
