"""Fixture-project helper shared by the analysis rule tests."""
from __future__ import annotations

import textwrap

import pytest

from repro.analysis import run_analysis


@pytest.fixture()
def analyze(tmp_path):
    """Build a throwaway project tree and run selected rules over it.

    Usage::

        report = analyze(
            {'src/repro/stream/x.py': '...'},
            select=['RP004'],
            docs='| `foo` | here | meaning |',
        )

    Files land under ``tmp_path`` with repo-like relative paths so
    path-scoped rules see the prefixes they expect; ``docs`` (when
    given) becomes the body of the ``docs/API.md`` metric table.
    """
    def _analyze(files, select, docs=None, baseline=None):
        for relpath, text in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text))
        if docs is not None:
            docs_file = tmp_path / 'docs' / 'API.md'
            docs_file.parent.mkdir(parents=True, exist_ok=True)
            docs_file.write_text(
                '# API\n\n## Store metric names\n\n'
                '| Metric | Recorded by | Meaning |\n|---|---|---|\n'
                + textwrap.dedent(docs)
                + '\n\n## Versioning\n',
            )
        return run_analysis(tmp_path, select=select, baseline=baseline)

    return _analyze
