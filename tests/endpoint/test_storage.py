"""Tests of EndpointStorage (in-memory store with disk spill)."""
from __future__ import annotations

import os

import pytest

from repro.endpoint.storage import EndpointStorage


def test_basic_set_get_evict():
    storage = EndpointStorage()
    storage.set('a', b'1')
    assert storage.exists('a')
    assert storage.get('a') == b'1'
    storage.evict('a')
    assert storage.get('a') is None
    assert not storage.exists('a')


def test_get_missing_returns_none():
    assert EndpointStorage().get('missing') is None


def test_overwrite_updates_value_and_len():
    storage = EndpointStorage()
    storage.set('a', b'one')
    storage.set('a', b'two!')
    assert storage.get('a') == b'two!'
    assert len(storage) == 1


def test_clear():
    storage = EndpointStorage()
    for i in range(5):
        storage.set(str(i), b'x')
    storage.clear()
    assert len(storage) == 0
    assert storage.memory_usage_bytes == 0


def test_memory_usage_tracking():
    storage = EndpointStorage()
    storage.set('a', b'12345')
    storage.set('b', b'123')
    assert storage.memory_usage_bytes == 8
    storage.evict('a')
    assert storage.memory_usage_bytes == 3


def test_spill_requires_dump_dir():
    with pytest.raises(ValueError):
        EndpointStorage(max_memory_bytes=100)
    with pytest.raises(ValueError):
        EndpointStorage(max_memory_bytes=0, dump_dir='/tmp/x')


def test_spill_to_disk_and_read_back(tmp_path):
    storage = EndpointStorage(max_memory_bytes=100, dump_dir=str(tmp_path))
    storage.set('first', b'a' * 80)
    storage.set('second', b'b' * 80)  # pushes 'first' to disk
    assert storage.spilled_count == 1
    assert storage.memory_usage_bytes <= 100
    assert storage.get('first') == b'a' * 80
    assert storage.get('second') == b'b' * 80
    assert len(storage) == 2
    assert os.path.isfile(str(tmp_path / 'first'))


def test_spilled_object_evict_removes_file(tmp_path):
    storage = EndpointStorage(max_memory_bytes=50, dump_dir=str(tmp_path))
    storage.set('big', b'x' * 60)   # immediately spilled (over budget)
    assert storage.spilled_count == 1
    storage.evict('big')
    assert storage.get('big') is None
    assert not os.path.isfile(str(tmp_path / 'big'))


def test_rewriting_spilled_object_returns_to_memory(tmp_path):
    storage = EndpointStorage(max_memory_bytes=100, dump_dir=str(tmp_path))
    storage.set('a', b'a' * 80)
    storage.set('b', b'b' * 80)   # 'a' spilled
    storage.set('a', b'tiny')     # back in memory, disk copy removed
    assert storage.get('a') == b'tiny'
    assert not os.path.isfile(str(tmp_path / 'a'))


def test_clear_removes_spilled_files(tmp_path):
    storage = EndpointStorage(max_memory_bytes=10, dump_dir=str(tmp_path))
    storage.set('a', b'x' * 50)
    storage.clear()
    assert len(storage) == 0
    assert os.listdir(str(tmp_path)) == []
