"""Tests of the relay (signaling) server."""
from __future__ import annotations

import pytest

from repro.endpoint.messages import RelayForward
from repro.endpoint.relay import RelayServer
from repro.exceptions import RelayError


def test_register_assigns_uuid_when_missing():
    relay = RelayServer()
    uuid = relay.register(lambda m: None)
    assert isinstance(uuid, str) and len(uuid) == 32
    assert relay.connected(uuid)


def test_register_keeps_provided_uuid():
    relay = RelayServer()
    uuid = relay.register(lambda m: None, endpoint_uuid='my-uuid')
    assert uuid == 'my-uuid'


def test_forward_delivers_to_handler():
    relay = RelayServer()
    received = []
    a = relay.register(lambda m: None)
    b = relay.register(received.append)
    relay.forward(a, b, {'hello': 'world'})
    assert len(received) == 1
    message = received[0]
    assert isinstance(message, RelayForward)
    assert message.src_uuid == a
    assert message.payload == {'hello': 'world'}


def test_forward_unknown_destination_raises():
    relay = RelayServer()
    a = relay.register(lambda m: None)
    with pytest.raises(RelayError):
        relay.forward(a, 'missing', 'payload')


def test_forward_unregistered_source_raises():
    relay = RelayServer()
    b = relay.register(lambda m: None)
    with pytest.raises(RelayError):
        relay.forward('not-registered', b, 'payload')


def test_unregister():
    relay = RelayServer()
    uuid = relay.register(lambda m: None)
    relay.unregister(uuid)
    assert not relay.connected(uuid)
    assert uuid not in relay.registered_endpoints()


def test_traffic_counters_track_signaling_only():
    relay = RelayServer()
    a = relay.register(lambda m: None)
    b = relay.register(lambda m: None)
    assert relay.messages_forwarded == 0
    relay.forward(a, b, 'offer')
    relay.forward(b, a, 'answer')
    assert relay.messages_forwarded == 2
    assert relay.bytes_forwarded > 0
    # Signaling messages are tiny: this is the paper's point that the relay
    # has minimal hosting requirements.
    assert relay.bytes_forwarded < 1024


def test_repr():
    relay = RelayServer(name='test-relay')
    assert 'test-relay' in repr(relay)
