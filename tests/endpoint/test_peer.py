"""Tests of peer connections and chunked data channels."""
from __future__ import annotations

import pytest

from repro.endpoint.messages import PeerRequest
from repro.endpoint.messages import PeerResponse
from repro.endpoint.peer import ChannelEnd
from repro.endpoint.peer import DataChannel
from repro.endpoint.peer import PeerConnection
from repro.exceptions import PeeringError


def make_pair(handler_a=None, handler_b=None, chunk_size=16_384):
    """Create two connected PeerConnection instances."""
    end_a = ChannelEnd()
    end_b = ChannelEnd()
    handler_a = handler_a or (lambda req: PeerResponse(message_id=req.message_id, success=True))
    handler_b = handler_b or (lambda req: PeerResponse(message_id=req.message_id, success=True))
    conn_a = PeerConnection('a' * 32, 'b' * 32, end_a, end_b.token,
                            on_request=handler_a, chunk_size=chunk_size)
    conn_b = PeerConnection('b' * 32, 'a' * 32, end_b, end_a.token,
                            on_request=handler_b, chunk_size=chunk_size)
    return conn_a, conn_b


def test_channel_end_lookup():
    end = ChannelEnd()
    assert ChannelEnd.lookup(end.token) is end
    end.close()
    with pytest.raises(PeeringError):
        ChannelEnd.lookup(end.token)


def test_data_channel_chunking_counts():
    end = ChannelEnd()
    channel = DataChannel(end.token, chunk_size=10)
    nbytes, nchunks = channel.send(b'x' * 95)
    assert nbytes > 95  # pickled payload is a bit larger than the raw bytes
    assert nchunks == (nbytes + 9) // 10
    end.close()


def test_data_channel_rejects_bad_chunk_size():
    end = ChannelEnd()
    with pytest.raises(ValueError):
        DataChannel(end.token, chunk_size=0)
    end.close()


def test_request_response_roundtrip():
    def handler(request: PeerRequest) -> PeerResponse:
        return PeerResponse(message_id=request.message_id, success=True,
                            data=request.data[::-1] if request.data else None)

    conn_a, conn_b = make_pair(handler_b=handler)
    try:
        response = conn_a.request(PeerRequest(op='get', object_id='obj', data=b'abcdef'))
        assert response.success
        assert response.data == b'fedcba'
    finally:
        conn_a.close()
        conn_b.close()


def test_large_message_crosses_many_chunks():
    payload = b'z' * 100_000

    def handler(request: PeerRequest) -> PeerResponse:
        return PeerResponse(message_id=request.message_id, success=True, data=request.data)

    conn_a, conn_b = make_pair(handler_b=handler, chunk_size=1024)
    try:
        response = conn_a.request(PeerRequest(op='get', object_id='o', data=payload))
        assert response.data == payload
        assert conn_a.stats.chunks_sent > 90
    finally:
        conn_a.close()
        conn_b.close()


def test_handler_exception_reported_as_error_response():
    def handler(request: PeerRequest) -> PeerResponse:
        raise RuntimeError('handler exploded')

    conn_a, conn_b = make_pair(handler_b=handler)
    try:
        response = conn_a.request(PeerRequest(op='get', object_id='o'))
        assert not response.success
        assert 'handler exploded' in response.error
    finally:
        conn_a.close()
        conn_b.close()


def test_request_after_close_raises():
    conn_a, conn_b = make_pair()
    conn_a.close()
    conn_b.close()
    with pytest.raises(PeeringError):
        conn_a.request(PeerRequest(op='get', object_id='o'))


def test_request_timeout_when_peer_gone():
    conn_a, conn_b = make_pair()
    conn_b.close()  # peer no longer processes inbound frames
    try:
        with pytest.raises(PeeringError):
            conn_a.request(PeerRequest(op='get', object_id='o'), timeout=0.2)
    finally:
        conn_a.close()


def test_stats_accumulate():
    conn_a, conn_b = make_pair()
    try:
        for _ in range(3):
            conn_a.request(PeerRequest(op='exists', object_id='o'))
        assert conn_a.stats.messages_sent == 3
        assert conn_a.stats.bytes_sent > 0
        assert conn_b.stats.messages_sent == 3  # the responses
    finally:
        conn_a.close()
        conn_b.close()


def test_repr_mentions_uuids():
    conn_a, conn_b = make_pair()
    try:
        assert 'aaaaaaaa' in repr(conn_a)
    finally:
        conn_a.close()
        conn_b.close()
