"""Tests of PS-endpoints: local serving, peering and forwarding."""
from __future__ import annotations

import threading

import pytest

from repro.endpoint import Endpoint
from repro.endpoint import RelayServer
from repro.endpoint.endpoint import get_registered_endpoint
from repro.endpoint.endpoint import registered_endpoints
from repro.endpoint.endpoint import reset_endpoint_registry
from repro.endpoint.storage import EndpointStorage
from repro.exceptions import EndpointError
from repro.exceptions import PeeringError


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    reset_endpoint_registry()


@pytest.fixture()
def relay():
    return RelayServer()


@pytest.fixture()
def endpoint(relay):
    ep = Endpoint('site-a', relay)
    ep.start()
    yield ep
    ep.stop()


def test_start_registers_with_relay_and_registry(relay):
    ep = Endpoint('site-x', relay)
    uuid = ep.start()
    assert relay.connected(uuid)
    assert get_registered_endpoint(uuid) is ep
    assert uuid in registered_endpoints()
    ep.stop()
    assert not relay.connected(uuid)
    assert get_registered_endpoint(uuid) is None


def test_start_is_idempotent(relay):
    ep = Endpoint('site-x', relay)
    first = ep.start()
    assert ep.start() == first
    ep.stop()


def test_reuses_provided_uuid(relay):
    ep = Endpoint('site-x', relay, endpoint_uuid='fixed-uuid')
    assert ep.start() == 'fixed-uuid'
    ep.stop()


def test_operations_require_running_endpoint(relay):
    ep = Endpoint('site-x', relay)
    with pytest.raises(EndpointError):
        ep.get('obj')


def test_local_set_get_exists_evict(endpoint):
    endpoint.set('obj', b'value')
    assert endpoint.exists('obj')
    assert endpoint.get('obj') == b'value'
    endpoint.evict('obj')
    assert not endpoint.exists('obj')
    assert endpoint.get('obj') is None


def test_context_manager(relay):
    with Endpoint('ctx', relay) as ep:
        assert ep.running
        ep.set('k', b'v')
        assert ep.get('k') == b'v'
    assert not ep.running


def test_custom_storage_with_spill(relay, tmp_path):
    storage = EndpointStorage(max_memory_bytes=64, dump_dir=str(tmp_path))
    with Endpoint('spilling', relay, storage=storage) as ep:
        ep.set('big', b'x' * 100)
        assert ep.get('big') == b'x' * 100
        assert storage.spilled_count == 1


def test_peer_forwarding_between_endpoints(relay):
    with Endpoint('site-a', relay) as a, Endpoint('site-b', relay) as b:
        b.set('remote-obj', b'held by b')
        # A client of endpoint A asks for an object that lives on endpoint B.
        assert a.get('remote-obj', endpoint_id=b.uuid) == b'held by b'
        assert a.exists('remote-obj', endpoint_id=b.uuid)
        a.evict('remote-obj', endpoint_id=b.uuid)
        assert not b.exists('remote-obj')


def test_peer_set_stores_on_remote(relay):
    with Endpoint('site-a', relay) as a, Endpoint('site-b', relay) as b:
        a.set('pushed', b'data', endpoint_id=b.uuid)
        assert b.get('pushed') == b'data'
        assert a.get('pushed') is None  # not stored locally on A


def test_peer_connection_reused_across_requests(relay):
    with Endpoint('site-a', relay) as a, Endpoint('site-b', relay) as b:
        b.set('o1', b'1')
        b.set('o2', b'2')
        a.get('o1', endpoint_id=b.uuid)
        a.get('o2', endpoint_id=b.uuid)
        assert len(a.peer_connections()) == 1
        signaling_before = relay.messages_forwarded
        a.get('o1', endpoint_id=b.uuid)
        # No new signaling traffic once the peer connection exists.
        assert relay.messages_forwarded == signaling_before


def test_bulk_data_does_not_go_through_relay(relay):
    with Endpoint('site-a', relay) as a, Endpoint('site-b', relay) as b:
        payload = b'x' * 500_000
        b.set('large', payload)
        assert a.get('large', endpoint_id=b.uuid) == payload
        # The relay carried only the handshake, never the 500 KB object.
        assert relay.bytes_forwarded < 5_000


def test_peer_connection_reestablished_after_close(relay):
    with Endpoint('site-a', relay) as a, Endpoint('site-b', relay) as b:
        b.set('obj', b'v1')
        assert a.get('obj', endpoint_id=b.uuid) == b'v1'
        # Simulate the connection dropping.
        connection = a.peer_connections()[b.uuid]
        connection.close()
        b.set('obj', b'v2')
        assert a.get('obj', endpoint_id=b.uuid) == b'v2'
        assert a.peer_connections()[b.uuid] is not connection


def test_request_to_unknown_endpoint_fails(relay, endpoint):
    response_error = None
    try:
        endpoint.get('obj', endpoint_id='0' * 32)
    except EndpointError as e:
        response_error = str(e)
    assert response_error is not None


def test_get_missing_object_on_remote_returns_none(relay):
    with Endpoint('site-a', relay) as a, Endpoint('site-b', relay) as b:
        assert a.get('never-stored', endpoint_id=b.uuid) is None


def test_ice_candidates_exchanged_during_handshake(relay):
    with Endpoint('site-a', relay) as a, Endpoint('site-b', relay) as b:
        b.set('obj', b'x')
        a.get('obj', endpoint_id=b.uuid)
        # Both sides emitted at least one candidate during the handshake.
        assert a.ice_candidates_exchanged + b.ice_candidates_exchanged >= 1


def test_concurrent_clients_single_endpoint(endpoint):
    """Many client threads issue requests to the single-threaded endpoint."""
    endpoint.set('shared', b'payload')
    errors = []

    def client(n):
        try:
            for i in range(20):
                endpoint.set(f'obj-{n}-{i}', b'x' * 100)
                assert endpoint.get(f'obj-{n}-{i}') == b'x' * 100
        except Exception as e:  # pragma: no cover - only on failure
            errors.append(e)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert endpoint.requests_served >= 8 * 40
