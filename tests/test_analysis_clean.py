"""Tier-1 gate: the repository itself passes its own static analysis.

This is the enforcement end of ``repro.analysis``: every rule runs over
``src/repro`` exactly as ``python -m repro.analysis --strict`` does in
CI, and any non-suppressed, non-baselined finding fails the build.
"""
from __future__ import annotations

from pathlib import Path

from repro.analysis import all_checkers
from repro.analysis import load_baseline
from repro.analysis import run_analysis
from repro.analysis.__main__ import BASELINE_NAME

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_default_rule_set_is_clean():
    baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
    report = run_analysis(REPO_ROOT, baseline=baseline)
    rendered = '\n'.join(f.render() for f in report.findings)
    assert report.clean, f'repro.analysis found new violations:\n{rendered}'
    assert report.files_checked > 100  # the walk really covered src/repro


def test_all_six_rules_are_registered_and_ran():
    baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
    report = run_analysis(REPO_ROOT, baseline=baseline)
    expected = ('RP001', 'RP002', 'RP003', 'RP004', 'RP005', 'RP006')
    assert tuple(all_checkers()) == expected
    assert report.rules_run == expected


def test_baseline_entries_are_still_live():
    """Every grandfathered fingerprint still matches a real finding.

    When a baselined site gets fixed, its entry must be removed (run
    ``python -m repro.analysis --update-baseline``) so the baseline
    never papers over future regressions at other sites.
    """
    baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
    report = run_analysis(REPO_ROOT, baseline=baseline)
    matched = {f.fingerprint() for f in report.baselined}
    stale = set(baseline) - matched
    assert not stale, (
        f'baseline entries no longer match any finding: {sorted(stale)}; '
        'regenerate with python -m repro.analysis --update-baseline'
    )
