"""End-to-end integration tests combining several subsystems.

These scenarios mirror how the paper composes the pieces: proxies created by
one component are consumed by another (FaaS tasks, workflow tasks, peer
endpoints), stores are reconstructed from configs embedded in factories, and
MultiConnector policies steer different objects over different channels.
"""
from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.connectors.endpoint import EndpointConnector
from repro.connectors.endpoint import set_local_endpoint
from repro.connectors.file import FileConnector
from repro.connectors.local import LocalConnector
from repro.connectors.multi import MultiConnector
from repro.connectors.policy import Policy
from repro.connectors.redis import RedisConnector
from repro.endpoint import Endpoint
from repro.endpoint import RelayServer
from repro.endpoint.endpoint import reset_endpoint_registry
from repro.faas import CloudFaaSService
from repro.faas import ComputeEndpoint
from repro.faas import Executor
from repro.proxy import Proxy
from repro.proxy import extract
from repro.proxy import get_factory
from repro.proxy import is_resolved
from repro.simulation import VirtualClock
from repro.simulation import paper_testbed
from repro.simulation.context import on_host
from repro.simulation.costed import CostedConnector
from repro.simulation.costs import SharedFilesystemCost
from repro.store import Store
from repro.store import get_store
from repro.store import unregister_store
from repro.workflow import ColmenaQueues
from repro.workflow import TaskServer
from repro.workflow import Thinker
from repro.workflow import WorkflowEngine


@pytest.fixture(autouse=True)
def _clean_endpoints():
    yield
    set_local_endpoint(None)
    reset_endpoint_registry()


def _norm(data, ctx=None):
    """A task usable by both the FaaS and workflow substrates."""
    return float(np.linalg.norm(np.asarray(data)))


def test_proxy_created_by_store_consumed_by_workflow_task(tmp_path):
    """Producer proxies data via a FileStore; a workflow task consumes it."""
    store = Store('integration-file-store', FileConnector(str(tmp_path / 'd')))
    try:
        data = np.arange(1000, dtype=np.float64)
        proxy = store.proxy(data, cache_local=False)
        with WorkflowEngine(n_workers=1) as engine:
            future = engine.submit(_norm, proxy)
            assert future.result() == pytest.approx(float(np.linalg.norm(data)))
    finally:
        store.close(clear=True)


def test_faas_task_returns_proxy_consumed_by_client(tmp_path):
    """A task proxies its (large) result; the client resolves it lazily."""
    fabric = paper_testbed()
    clock = VirtualClock()
    cloud = CloudFaaSService(fabric, clock)
    cloud.register_endpoint(ComputeEndpoint('ep', 'theta-compute', clock, fabric))
    executor = Executor(cloud, 'ep', client_host='theta-login')
    store = Store(
        'integration-result-store',
        CostedConnector(FileConnector(str(tmp_path / 'results')),
                        SharedFilesystemCost(fabric), clock),
    )
    try:
        def produce(n, ctx=None):
            result_store = get_store('integration-result-store')
            return result_store.proxy(np.ones(n), cache_local=False)

        with on_host('theta-login'):
            future = executor.submit(produce, 200_000)
            result = future.result()
            assert isinstance(result, Proxy)
            assert not is_resolved(result)
            # Result payload through the cloud was tiny even though the array
            # is 1.6 MB.
            assert future.record().result_bytes < 5_000
            assert float(np.asarray(result).sum()) == 200_000
    finally:
        store.close(clear=True)


def test_store_reconstruction_chain_across_simulated_processes(tmp_path):
    """Proxy -> pickle -> unregister store -> resolve recreates the store once."""
    store = Store('integration-chain-store', FileConnector(str(tmp_path / 'chain')))
    proxies = [store.proxy(i, cache_local=False) for i in range(5)]
    wire = pickle.dumps(proxies)
    unregister_store('integration-chain-store')

    restored = pickle.loads(wire)
    assert [extract(p) for p in restored] == list(range(5))
    recreated = get_store('integration-chain-store')
    assert recreated is not None
    # Every factory resolved through the single recreated store instance.
    assert all(get_factory(p).get_store() is recreated for p in restored)
    recreated.close(clear=True)
    store.connector.close()


def test_multiconnector_store_spanning_redis_file_and_endpoint(tmp_path):
    """One Store routes objects to Redis, the file system, or an endpoint."""
    relay = RelayServer()
    endpoint = Endpoint('integration-site', relay)
    endpoint.start()
    multi = MultiConnector({
        'redis': (RedisConnector(launch=True), Policy(max_size_bytes=1_000, priority=2)),
        'file': (FileConnector(str(tmp_path / 'bulk')), Policy(min_size_bytes=1_001, priority=1)),
        'endpoint': (EndpointConnector([endpoint.uuid]),
                     Policy(superset_tags=('remote',), priority=10)),
    })
    store = Store('integration-multi-store', multi)
    try:
        small = store.proxy({'id': 1}, cache_local=False)
        bulk = store.proxy(np.zeros(10_000), cache_local=False)
        remote = store.proxy(b'model weights', superset_tags=('remote',), cache_local=False)
        assert get_factory(small).key.connector_label == 'redis'
        assert get_factory(bulk).key.connector_label == 'file'
        assert get_factory(remote).key.connector_label == 'endpoint'
        # All three resolve transparently through the same store.
        assert small['id'] == 1
        assert float(np.asarray(bulk).sum()) == 0.0
        assert bytes(remote) == b'model weights'
    finally:
        store.close(clear=True)
        endpoint.stop()


def test_colmena_pipeline_with_endpoint_store_across_sites():
    """Workflow results proxied through endpoints resolve at another 'site'."""
    relay = RelayServer()
    site_a = Endpoint('wf-site-a', relay)
    site_b = Endpoint('wf-site-b', relay)
    site_a.start()
    site_b.start()
    set_local_endpoint(site_a.uuid)
    store = Store('integration-colmena-endpoint',
                  EndpointConnector([site_a.uuid, site_b.uuid]))
    queues = ColmenaQueues()
    try:
        with WorkflowEngine(n_workers=1) as engine:
            server = TaskServer(queues, engine, fixed_overhead_s=0.0)
            server.register_topic('make-array', lambda n: np.full(n, 7.0),
                                  store=store, threshold_bytes=1_000)
            thinker = Thinker(queues)
            with server:
                result = thinker.run_task('make-array', 10_000)
        assert result.proxied_result
        # The "consumer" at site B resolves the proxied result via peering.
        set_local_endpoint(site_b.uuid)
        value = pickle.loads(pickle.dumps(result.value))
        assert float(np.asarray(value).mean()) == pytest.approx(7.0)
    finally:
        set_local_endpoint(None)
        store.close()
        site_a.stop()
        site_b.stop()


def test_metrics_capture_end_to_end_traffic(tmp_path):
    """Store metrics attribute time and bytes to each operation."""
    store = Store('integration-metrics', FileConnector(str(tmp_path / 'm')), metrics=True)
    try:
        proxies = store.proxy_batch([np.arange(100) for _ in range(4)], cache_local=False)
        for proxy in proxies:
            _ = proxy.sum()
        summary = store.metrics_summary()
        assert summary['put_batch']['count'] == 1
        assert summary['get']['count'] == 4
        assert summary['deserialize']['total_bytes'] > 0
    finally:
        store.close(clear=True)
