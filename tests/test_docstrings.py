"""Docstring coverage enforcement for the documented packages.

CI runs ruff's pydocstyle rules (D100–D104 plus public-method D102) over
``src/repro/{store,proxy,stream,cluster}``; this test enforces the same contract
from the tier-1 suite so coverage cannot regress on machines without ruff
installed.  Every module, public class, and public function/method in
those packages must carry a docstring.
"""
from __future__ import annotations

import ast
import pathlib

import pytest

REPO_SRC = pathlib.Path(__file__).resolve().parent.parent / 'src' / 'repro'
DOCUMENTED_PACKAGES = ('store', 'proxy', 'stream', 'cluster', 'faults', 'analysis')


def _documented_modules() -> list[pathlib.Path]:
    paths = []
    for package in DOCUMENTED_PACKAGES:
        paths.extend(sorted((REPO_SRC / package).rglob('*.py')))
    assert paths, 'documented packages not found (repo layout changed?)'
    return paths


def _missing_docstrings(path: pathlib.Path) -> list[str]:
    tree = ast.parse(path.read_text())
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(f'{path.name}: module docstring')

    def walk(node: ast.AST, parents: tuple[ast.AST, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            # Functions nested inside another function are implementation
            # detail (ruff's D rules skip them too).
            if any(
                isinstance(p, (ast.FunctionDef, ast.AsyncFunctionDef))
                for p in parents
            ):
                continue
            public = not child.name.startswith('_') and all(
                not p.name.startswith('_')
                for p in parents
                if isinstance(p, ast.ClassDef)
            )
            if public and ast.get_docstring(child) is None:
                missing.append(f'{path.name}:{child.lineno} {child.name}')
            walk(child, parents + (child,))

    walk(tree, ())
    return missing


@pytest.mark.parametrize(
    'path', _documented_modules(), ids=lambda p: str(p.relative_to(REPO_SRC)),
)
def test_public_api_is_documented(path: pathlib.Path) -> None:
    missing = _missing_docstrings(path)
    assert not missing, (
        'public symbols without docstrings (docs/API.md contract): '
        + ', '.join(missing)
    )


def test_top_level_exports_are_documented() -> None:
    """Every symbol re-exported from ``repro`` carries a docstring."""
    import repro

    undocumented = []
    for name in repro.__all__:
        if name.startswith('__'):
            continue
        obj = getattr(repro, name)
        if callable(obj) and not (obj.__doc__ or '').strip():
            undocumented.append(name)
    assert not undocumented, f'undocumented top-level exports: {undocumented}'
