"""Fault-plan tests: seeded schedules, process kills, network actions."""
from __future__ import annotations

import subprocess
import sys
import time

import pytest

from repro.faults import FaultInjector
from repro.faults import FaultPlan
from repro.faults.plan import FaultAction


def test_action_validation():
    with pytest.raises(ValueError):
        FaultAction(0.0, 'explode', 't')
    with pytest.raises(ValueError):
        FaultAction(-1.0, 'kill', 't')


def test_seeded_jitter_is_reproducible():
    def build(seed):
        plan = FaultPlan(seed=seed)
        plan.kill('a', 1.0, jitter=0.5).reset('b', 2.0, jitter=0.5)
        return [action.at for action in plan.actions]

    assert build(42) == build(42)
    assert build(42) != build(43)  # different seed, different schedule
    for at in build(42):
        assert at >= 0.0


def test_network_actions_arm_the_injector():
    injector = FaultInjector()
    plan = (
        FaultPlan()
        .reset('h:1', 0.0, count=2)
        .refuse('h:2', 0.0)
        .latency('h:3', 0.0, delay=0.01, duration=0.1)
        .truncate('h:4', 0.0)
    )
    run = plan.start(injector=injector)
    run.join(timeout=5.0)
    assert run.done
    assert [f['error'] for f in run.report()] == [None] * 4
    assert injector.on_send('h:1') == 'reset'
    assert injector.on_send('h:4') == 'truncate'
    with pytest.raises(ConnectionRefusedError):
        injector.on_connect('h:2')


def test_kill_action_sigkills_subprocess():
    victim = subprocess.Popen(
        [sys.executable, '-c', 'import time; time.sleep(60)'],
    )
    try:
        plan = FaultPlan().kill('victim', 0.1)
        run = plan.start(pids={'victim': victim.pid})
        run.join(timeout=5.0)
        assert victim.wait(timeout=5.0) == -9  # SIGKILL
        report = run.report()
        assert report[0]['kind'] == 'kill'
        assert report[0]['error'] is None
    finally:
        if victim.poll() is None:
            victim.kill()


def test_kill_resolves_callable_pid_late():
    # The plan is built before the victim exists: the pid resolves at
    # fire time through the callable.
    box = {}
    victim = subprocess.Popen(
        [sys.executable, '-c', 'import time; time.sleep(60)'],
    )
    try:
        plan = FaultPlan().kill('late', 0.1)
        run = plan.start(pids={'late': lambda: box.get('pid')})
        box['pid'] = victim.pid
        run.join(timeout=5.0)
        assert victim.wait(timeout=5.0) == -9
    finally:
        if victim.poll() is None:
            victim.kill()


def test_unknown_kill_target_is_recorded_not_raised():
    plan = FaultPlan().kill('ghost', 0.0)
    run = plan.start(pids={})
    run.join(timeout=5.0)
    assert run.done
    assert 'no pid known' in run.report()[0]['error']


def test_stop_cancels_pending_actions():
    injector = FaultInjector()
    plan = FaultPlan().reset('h:1', 30.0)  # far in the future
    run = plan.start(injector=injector)
    time.sleep(0.05)
    run.stop()
    assert run.done
    assert run.report() == []
    assert injector.on_send('h:1') is None  # never armed
