"""Fault-injector tests: both the rule mechanics and the live wire seams."""
from __future__ import annotations

import time

import pytest

from repro.exceptions import ConnectorError
from repro.faults import FaultInjector
from repro.faults import current_injector
from repro.faults import install_injector
from repro.faults import uninstall_injector
from repro.kvserver.client import KVClient
from repro.kvserver.server import KVServer


@pytest.fixture()
def injector():
    """A process-global injector, uninstalled on teardown."""
    injector = install_injector()
    yield injector
    uninstall_injector()


@pytest.fixture()
def server():
    """A live SimKV server on an ephemeral port."""
    server = KVServer()
    server.start()
    yield server
    server.stop()


def test_install_uninstall_roundtrip():
    assert current_injector() is None
    installed = install_injector()
    assert current_injector() is installed
    uninstall_injector()
    assert current_injector() is None


def test_rules_decrement_and_clear():
    injector = FaultInjector()
    injector.add_reset('a:1', count=2)
    assert injector.on_send('a:1') == 'reset'
    assert injector.on_send('a:1') == 'reset'
    assert injector.on_send('a:1') is None  # count exhausted
    injector.add_truncate('a:1')
    injector.clear('a:1')
    assert injector.on_send('a:1') is None
    assert injector.triggered == [('a:1', 'reset'), ('a:1', 'reset')]


def test_wildcard_matches_any_target():
    injector = FaultInjector()
    injector.add_reset('*', count=1)
    assert injector.on_send('anything:99') == 'reset'
    assert injector.on_send('anything:99') is None


def test_latency_expires_after_duration():
    injector = FaultInjector()
    injector.add_latency('b:2', 0.01, duration=0.05)
    start = time.monotonic()
    injector.on_send('b:2')
    assert time.monotonic() - start >= 0.01
    time.sleep(0.06)
    start = time.monotonic()
    injector.on_send('b:2')
    assert time.monotonic() - start < 0.01  # expired


def test_refuse_blocks_connect_seam(injector, server):
    target = f'{server.host}:{server.port}'
    injector.add_refuse(target, count=50)
    with pytest.raises(ConnectorError):
        client = KVClient(server.host, server.port, pool_size=1)
        client.set('k', b'v')
    assert ('refuse' in {kind for _t, kind in injector.triggered})


def test_reset_on_send_recovers_via_pooled_retry(injector, server):
    # A single injected reset kills one pooled connection; the client's
    # stale-connection retry transparently re-issues on a fresh socket.
    client = KVClient(server.host, server.port, pool_size=2)
    client.set('warm', b'1')  # establish the pool
    injector.add_reset(f'{server.host}:{server.port}', count=1)
    client.set('k', b'v')
    assert client.get('k') == b'v'
    assert ('reset' in {kind for _t, kind in injector.triggered})
    client.close()


def test_truncate_mid_frame_recovers_via_pooled_retry(injector, server):
    # Truncation writes half a frame then kills the connection — the
    # server must discard the partial frame and the client must retry.
    client = KVClient(server.host, server.port, pool_size=2)
    client.set('warm', b'1')
    injector.add_truncate(f'{server.host}:{server.port}', count=1)
    client.set('k', b'x' * 4096)
    assert client.get('k') == b'x' * 4096
    assert ('truncate' in {kind for _t, kind in injector.triggered})
    client.close()


def test_no_injector_seams_are_noops(server):
    assert current_injector() is None
    client = KVClient(server.host, server.port)
    client.set('k', b'v')
    assert client.get('k') == b'v'
    client.close()
