"""Tests for the shared jittered-backoff retry policy."""
from __future__ import annotations

import random
import time

import pytest

from repro.faults import DEFAULT_RECONNECT_POLICY
from repro.faults import RetryPolicy
from repro.faults.retry import IMMEDIATE_POLICY


def test_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_delay_exponential_and_capped():
    policy = RetryPolicy(
        max_attempts=10, base_delay=0.1, max_delay=0.4,
        multiplier=2.0, jitter=0.0,
    )
    assert policy.delay(0) == pytest.approx(0.1)
    assert policy.delay(1) == pytest.approx(0.2)
    assert policy.delay(2) == pytest.approx(0.4)
    assert policy.delay(5) == pytest.approx(0.4)  # capped


def test_jitter_is_bounded_and_seed_reproducible():
    policy = RetryPolicy(max_attempts=6, base_delay=0.1, jitter=0.5)
    schedule_a = list(policy.backoffs(random.Random(7)))
    schedule_b = list(policy.backoffs(random.Random(7)))
    assert schedule_a == schedule_b  # same seed, same schedule
    for attempt, delay in enumerate(schedule_a):
        nominal = min(0.1 * (2.0 ** attempt), policy.max_delay)
        assert 0.5 * nominal <= delay <= 1.5 * nominal


def test_zero_base_delay_retries_immediately():
    policy = RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)
    start = time.monotonic()
    assert list(policy.attempts()) == [0, 1, 2, 3]
    assert time.monotonic() - start < 0.05


def test_attempts_loop_shape():
    policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
    tries = 0
    for _attempt in policy.attempts():
        tries += 1
    assert tries == 3


def test_call_retries_then_succeeds():
    policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
    calls = {'n': 0}

    def flaky():
        calls['n'] += 1
        if calls['n'] < 3:
            raise OSError('transient')
        return 'ok'

    assert policy.call(flaky, retry_on=(OSError,)) == 'ok'
    assert calls['n'] == 3


def test_call_exhausts_and_reraises():
    policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
    seen = []

    def always_fails():
        raise OSError('down')

    with pytest.raises(OSError):
        policy.call(
            always_fails,
            retry_on=(OSError,),
            on_retry=lambda attempt, err: seen.append(attempt),
        )
    assert seen == [0]  # one retry notification before the final failure


def test_call_does_not_swallow_unlisted_errors():
    policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)

    def typerror():
        raise TypeError('not transient')

    with pytest.raises(TypeError):
        policy.call(typerror, retry_on=(OSError,))


def test_shared_policies_are_frozen():
    with pytest.raises(AttributeError):
        DEFAULT_RECONNECT_POLICY.max_attempts = 1  # type: ignore[misc]
    assert IMMEDIATE_POLICY.base_delay == 0.0
