"""Tests of the three application reproductions."""
from __future__ import annotations

import numpy as np
import pytest

from repro.apps.defect_analysis import DefectAnalysisResult
from repro.apps.defect_analysis import defect_inference_task
from repro.apps.defect_analysis import generate_micrograph
from repro.apps.defect_analysis import segment_defects
from repro.apps.federated_learning import create_model
from repro.apps.federated_learning import federated_average
from repro.apps.federated_learning import generate_client_data
from repro.apps.federated_learning import model_nbytes
from repro.apps.federated_learning import train_local
from repro.apps.molecular_design import CampaignConfig
from repro.apps.molecular_design import MoleculeDataset
from repro.apps.molecular_design import SurrogateModel
from repro.apps.molecular_design import run_campaign
from repro.apps.molecular_design import simulate_ionization_potential
from repro.connectors.local import LocalConnector
from repro.store import Store


# --------------------------------------------------------------------------- #
# Defect analysis
# --------------------------------------------------------------------------- #
def test_micrograph_generation_shape_and_range():
    image = generate_micrograph(side=128, n_defects=5, seed=1)
    assert image.shape == (128, 128)
    assert image.dtype == np.float32
    assert float(image.max()) <= 1.5


def test_segmentation_finds_planted_defects():
    image = generate_micrograph(side=256, n_defects=12, seed=2)
    result = segment_defects(image)
    assert isinstance(result, DefectAnalysisResult)
    # Blobs can merge or be smoothed away, but the count should be in the
    # right ballpark.
    assert 5 <= result.n_defects <= 12
    assert 0 < result.defect_area_fraction < 0.5
    assert len(result.centroids) == result.n_defects
    assert result.summary()['n_defects'] == result.n_defects


def test_segmentation_empty_image():
    result = segment_defects(np.zeros((64, 64), dtype=np.float32))
    assert result.n_defects == 0
    assert result.centroids == []


def test_segmentation_rejects_wrong_dims():
    with pytest.raises(ValueError):
        segment_defects(np.zeros((4, 4, 3)))


def test_defect_inference_task_plain_and_proxied_output():
    image = generate_micrograph(side=128, n_defects=6, seed=3)
    plain = defect_inference_task(image)
    assert isinstance(plain, DefectAnalysisResult)

    store = Store('defect-output-store', LocalConnector())
    try:
        proxied = defect_inference_task(image, proxy_output_store=store.name)
        assert proxied.n_defects == plain.n_defects  # resolves transparently
    finally:
        store.close(clear=True)


def test_defect_inference_task_unknown_store_raises():
    image = generate_micrograph(side=64, seed=0)
    with pytest.raises(ValueError, match='no store named'):
        defect_inference_task(image, proxy_output_store='never-registered')


# --------------------------------------------------------------------------- #
# Federated learning
# --------------------------------------------------------------------------- #
def test_model_size_grows_with_hidden_blocks():
    sizes = [model_nbytes(create_model(b)) for b in (1, 5, 20)]
    assert sizes[0] < sizes[1] < sizes[2]
    with pytest.raises(ValueError):
        create_model(-1)


def test_model_forward_and_predict_shapes():
    model = create_model(2)
    images, labels = generate_client_data(32, seed=0)
    logits = model.forward(images)
    assert logits.shape == (32, 10)
    assert model.predict(images).shape == (32,)


def test_local_training_reduces_loss():
    model = create_model(1, seed=0)
    images, labels = generate_client_data(256, seed=1)

    def loss(m):
        logits = m.forward(images)
        logits = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        return float(-np.mean(np.log(probs[np.arange(len(labels)), labels] + 1e-9)))

    before = loss(model)
    trained = train_local(model, images, labels, epochs=3)
    assert loss(trained) < before
    # Training returns a copy; the global model is untouched.
    assert np.array_equal(model.layers[0][0], create_model(1, seed=0).layers[0][0])


def test_federated_average():
    a = create_model(1, seed=1)
    b = create_model(1, seed=2)
    avg = federated_average([a, b])
    expected = (a.layers[0][0] + b.layers[0][0]) / 2
    assert np.allclose(avg.layers[0][0], expected)
    with pytest.raises(ValueError):
        federated_average([])
    with pytest.raises(ValueError):
        federated_average([create_model(1), create_model(2)])


# --------------------------------------------------------------------------- #
# Molecular design
# --------------------------------------------------------------------------- #
def test_molecule_dataset_and_simulation():
    dataset = MoleculeDataset.generate(64, seed=0)
    assert len(dataset) == 64
    assert simulate_ionization_potential(dataset, 3) == pytest.approx(float(dataset.true_ip[3]))


def test_surrogate_learns_the_structure():
    dataset = MoleculeDataset.generate(256, seed=1)
    surrogate = SurrogateModel().fit(dataset.features[:200], dataset.true_ip[:200])
    predictions = surrogate.predict(dataset.features[200:])
    correlation = np.corrcoef(predictions, dataset.true_ip[200:])[0, 1]
    assert correlation > 0.9
    top = surrogate.rank_candidates(dataset.features, top_k=5)
    assert len(top) == 5


def test_surrogate_requires_fit_before_predict():
    with pytest.raises(ValueError):
        SurrogateModel().predict(np.zeros((2, 32)))


def test_campaign_baseline_degrades_with_scale():
    small = run_campaign(CampaignConfig(n_cpu_nodes=128), use_proxystore=False)
    large = run_campaign(CampaignConfig(n_cpu_nodes=1024), use_proxystore=False)
    assert large.cpu_utilization < small.cpu_utilization


def test_campaign_proxystore_restores_scaling():
    baseline = run_campaign(CampaignConfig(n_cpu_nodes=1024), use_proxystore=False)
    proxied = run_campaign(CampaignConfig(n_cpu_nodes=1024), use_proxystore=True)
    assert proxied.cpu_utilization > baseline.cpu_utilization + 0.3
    assert proxied.gpu_utilization > baseline.gpu_utilization
    assert proxied.avg_result_processing_s < baseline.avg_result_processing_s
