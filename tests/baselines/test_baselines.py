"""Tests of the IPFS, DataSpaces, and Redis-over-SSH baselines."""
from __future__ import annotations

import pytest

from repro.baselines import DataSpacesClient
from repro.baselines import DataSpacesServer
from repro.baselines import IPFSNetwork
from repro.baselines import IPFSNode
from repro.baselines import SSHTunnelRedis
from repro.exceptions import ConnectorError
from repro.kvserver import KVServer


# --------------------------------------------------------------------------- #
# IPFS
# --------------------------------------------------------------------------- #
def test_ipfs_add_is_content_addressed(tmp_path):
    network = IPFSNetwork()
    node = IPFSNode(str(tmp_path / 'n1'), network)
    cid1 = node.add(b'hello')
    cid2 = node.add(b'hello')
    cid3 = node.add(b'different')
    assert cid1 == cid2
    assert cid1 != cid3
    assert len(node) == 2


def test_ipfs_local_get(tmp_path):
    network = IPFSNetwork()
    node = IPFSNode(str(tmp_path / 'n1'), network)
    cid = node.add(b'local content')
    assert node.get(cid) == b'local content'
    assert node.blocks_fetched_from_peers == 0


def test_ipfs_peer_fetch_and_caching(tmp_path):
    network = IPFSNetwork()
    producer = IPFSNode(str(tmp_path / 'producer'), network)
    consumer = IPFSNode(str(tmp_path / 'consumer'), network)
    cid = producer.add(b'shared content')
    assert not consumer.has_local(cid)
    assert consumer.get(cid) == b'shared content'
    assert consumer.blocks_fetched_from_peers == 1
    # Second access is served from the local cache.
    assert consumer.get(cid) == b'shared content'
    assert consumer.blocks_fetched_from_peers == 1


def test_ipfs_missing_content_raises(tmp_path):
    network = IPFSNetwork()
    node = IPFSNode(str(tmp_path / 'n1'), network)
    with pytest.raises(ConnectorError):
        node.get('0' * 64)


def test_ipfs_remove(tmp_path):
    network = IPFSNetwork()
    node = IPFSNode(str(tmp_path / 'n1'), network)
    cid = node.add(b'x')
    node.remove(cid)
    node.remove(cid)  # idempotent
    assert not node.has_local(cid)


# --------------------------------------------------------------------------- #
# DataSpaces
# --------------------------------------------------------------------------- #
def test_dataspaces_put_get_versioned():
    server = DataSpacesServer()
    client = DataSpacesClient(server)
    client.put('field', 0, b'v0')
    client.put('field', 1, b'v1')
    assert client.get('field', 0) == b'v0'
    assert client.get('field', 1) == b'v1'
    assert server.latest_version('field') == 1
    assert len(server) == 2


def test_dataspaces_missing_raises():
    client = DataSpacesClient(DataSpacesServer())
    with pytest.raises(ConnectorError):
        client.get('missing', 0, timeout=0.01)


def test_dataspaces_blocking_get_sees_later_put():
    import threading

    server = DataSpacesServer()
    client = DataSpacesClient(server)

    def producer():
        import time

        time.sleep(0.05)
        server.put('late', 3, b'finally')

    thread = threading.Thread(target=producer)
    thread.start()
    assert client.get('late', 3, timeout=2.0) == b'finally'
    thread.join()


def test_dataspaces_exists_and_remove():
    server = DataSpacesServer()
    client = DataSpacesClient(server)
    client.put('a', 0, b'x')
    assert client.exists('a', 0)
    server.remove('a', 0)
    assert not client.exists('a', 0)
    assert server.latest_version('a') is None


def test_dataspaces_client_marks_server_started():
    server = DataSpacesServer()
    assert not server.started
    DataSpacesClient(server)
    assert server.started


# --------------------------------------------------------------------------- #
# Redis over SSH
# --------------------------------------------------------------------------- #
@pytest.fixture()
def kv_server():
    server = KVServer()
    server.start()
    yield server
    server.stop()


def test_ssh_tunnel_requires_manual_open(kv_server):
    tunnel = SSHTunnelRedis(kv_server)
    with pytest.raises(ConnectorError, match='tunnel'):
        tunnel.get('key')
    tunnel.open_tunnel()
    tunnel.set('key', b'value')
    assert tunnel.get('key') == b'value'
    assert tunnel.exists('key')
    assert tunnel.delete('key')
    tunnel.close_tunnel()
    with pytest.raises(ConnectorError):
        tunnel.get('key')


def test_ssh_tunnel_requires_running_server():
    server = KVServer()  # never started
    tunnel = SSHTunnelRedis(server)
    with pytest.raises(ConnectorError):
        tunnel.open_tunnel()
