"""Tests of store-managed lifetimes (ContextLifetime, LeaseLifetime, StaticLifetime)."""
from __future__ import annotations

import time

import pytest

from repro.exceptions import LifetimeError
from repro.proxy import SimpleFactory
from repro.proxy import Proxy
from repro.proxy import extract
from repro.proxy import get_factory
from repro.store import ContextLifetime
from repro.store import LeaseLifetime
from repro.store import Lifetime
from repro.store import StaticLifetime
from repro.store import Store


@pytest.fixture(autouse=True)
def _reset_static_lifetime():
    yield
    # A StaticLifetime created by a test must not leak its atexit hook (or
    # its bound keys) into later tests.
    if StaticLifetime._instance is not None:
        StaticLifetime._instance.close()
        StaticLifetime._instance = None


def keys_of(proxies):
    return [get_factory(p).key for p in proxies]


class TestContextLifetime:
    def test_close_batch_evicts_bound_keys(self, local_store):
        lifetime = ContextLifetime()
        proxies = [
            local_store.proxy(f'v{i}', lifetime=lifetime, cache_local=False)
            for i in range(3)
        ]
        keys = keys_of(proxies)
        assert all(local_store.connector.exists(k) for k in keys)
        assert lifetime.keys_bound == 3
        lifetime.close()
        assert all(not local_store.connector.exists(k) for k in keys)
        assert lifetime.keys_evicted == 3
        assert lifetime.done()

    def test_context_manager_closes(self, local_store):
        with ContextLifetime() as lifetime:
            proxy = local_store.proxy('scoped', lifetime=lifetime, cache_local=False)
            key = get_factory(proxy).key
            assert not lifetime.done()
        assert lifetime.done()
        assert not local_store.connector.exists(key)

    def test_close_is_idempotent(self, local_store):
        lifetime = ContextLifetime()
        local_store.proxy('x', lifetime=lifetime, cache_local=False)
        lifetime.close()
        lifetime.close()
        assert lifetime.keys_evicted == 1

    def test_resolution_before_close_does_not_evict(self, local_store):
        lifetime = ContextLifetime()
        proxy = local_store.proxy('shared', lifetime=lifetime, cache_local=False)
        # Two consumers can resolve the same lifetime-bound proxy: the key
        # survives resolution (unlike evict=True) until the lifetime closes.
        assert extract(proxy) == 'shared'
        assert local_store.connector.exists(get_factory(proxy).key)

    def test_add_key_after_close_raises(self, local_store):
        lifetime = ContextLifetime()
        lifetime.close()
        with pytest.raises(LifetimeError):
            local_store.proxy('late', lifetime=lifetime, cache_local=False)

    def test_add_key_requires_store(self):
        lifetime = ContextLifetime()
        with pytest.raises(LifetimeError):
            lifetime.add_key('orphan-key')

    def test_default_store_used_when_none_named(self, local_store):
        lifetime = ContextLifetime(store=local_store)
        key = local_store.put('defaulted')
        lifetime.add_key(key)
        lifetime.close()
        assert not local_store.connector.exists(key)

    def test_add_proxy_binds_store_backed_proxies(self, local_store):
        lifetime = ContextLifetime()
        proxy = local_store.proxy('via-add-proxy', cache_local=False)
        lifetime.add_proxy(proxy)
        lifetime.close()
        assert not local_store.connector.exists(get_factory(proxy).key)

    def test_add_proxy_rejects_non_store_proxies(self):
        lifetime = ContextLifetime()
        with pytest.raises(LifetimeError):
            lifetime.add_proxy(Proxy(SimpleFactory('bare')))

    def test_duplicate_keys_bound_once(self, local_store):
        lifetime = ContextLifetime()
        key = local_store.put('once')
        lifetime.add_key(key, store=local_store)
        lifetime.add_key(key, store=local_store)
        assert lifetime.keys_bound == 1

    def test_spans_multiple_stores(self, local_store, file_store):
        lifetime = ContextLifetime()
        p1 = local_store.proxy('in-local', lifetime=lifetime, cache_local=False)
        p2 = file_store.proxy('in-file', lifetime=lifetime, cache_local=False)
        lifetime.close()
        assert not local_store.connector.exists(get_factory(p1).key)
        assert not file_store.connector.exists(get_factory(p2).key)

    def test_satisfies_lifetime_protocol(self):
        assert isinstance(ContextLifetime(), Lifetime)
        assert isinstance(LeaseLifetime(60.0), Lifetime)
        assert isinstance(StaticLifetime(), Lifetime)


class TestStoreLifetimeIntegration:
    def test_proxy_lifetime_and_evict_mutually_exclusive(self, local_store):
        with pytest.raises(ValueError, match='mutually exclusive'):
            local_store.proxy('x', evict=True, lifetime=ContextLifetime())

    def test_proxy_batch_binds_every_key(self, local_store):
        lifetime = ContextLifetime()
        proxies = local_store.proxy_batch(
            ['a', 'b', 'c'], lifetime=lifetime, cache_local=False,
        )
        assert lifetime.keys_bound == 3
        lifetime.close()
        assert all(
            not local_store.connector.exists(k) for k in keys_of(proxies)
        )

    def test_proxy_batch_mutual_exclusion(self, local_store):
        with pytest.raises(ValueError, match='mutually exclusive'):
            local_store.proxy_batch(['x'], evict=True, lifetime=ContextLifetime())

    def test_proxy_from_key_lifetime(self, local_store):
        key = local_store.put('existing')
        lifetime = ContextLifetime()
        local_store.proxy_from_key(key, lifetime=lifetime)
        lifetime.close()
        assert not local_store.connector.exists(key)

    def test_future_key_bound_to_lifetime(self, local_store):
        lifetime = ContextLifetime()
        future = local_store.future(lifetime=lifetime)
        future.set_result('produced')
        assert future.proxy() == 'produced'
        lifetime.close()
        assert not local_store.connector.exists(future.key)

    def test_future_mutual_exclusion(self, local_store):
        with pytest.raises(ValueError, match='mutually exclusive'):
            local_store.future(evict=True, lifetime=ContextLifetime())

    def test_evict_batch_records_metric(self):
        store = Store.from_url('local://?metrics=1', register=False)
        try:
            keys = store.put_batch(['a', 'b'])
            store.evict_batch(keys)
            summary = store.metrics_summary()
            assert summary['evict_batch']['count'] == 1
            assert all(not store.connector.exists(k) for k in keys)
        finally:
            store.close(clear=True)

    def test_evict_batch_empty_is_noop(self, local_store):
        local_store.evict_batch([])

    def test_evict_batch_clears_local_cache(self):
        store = Store.from_url('local://?cache_size=4', register=False)
        try:
            key = store.put('cached')
            assert store.get(key) == 'cached'
            assert store.is_cached(key)
            store.evict_batch([key])
            assert not store.is_cached(key)
        finally:
            store.close(clear=True)


class TestLeaseLifetime:
    def test_expiry_evicts_keys(self, local_store):
        lease = LeaseLifetime(0.15)
        proxy = local_store.proxy('leased', lifetime=lease, cache_local=False)
        key = get_factory(proxy).key
        assert local_store.connector.exists(key)
        deadline = time.monotonic() + 5.0
        while not lease.done() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert lease.done()
        assert not local_store.connector.exists(key)

    def test_extend_renews_lease(self, local_store):
        lease = LeaseLifetime(0.2)
        local_store.proxy('renewed', lifetime=lease, cache_local=False)
        lease.extend(60.0)
        time.sleep(0.3)  # original TTL elapsed; extension keeps it alive
        assert not lease.done()
        assert lease.remaining() > 30.0
        lease.close()

    def test_close_cancels_timer(self, local_store):
        lease = LeaseLifetime(60.0)
        proxy = local_store.proxy('x', lifetime=lease, cache_local=False)
        lease.close()
        assert lease.remaining() == 0.0
        assert not local_store.connector.exists(get_factory(proxy).key)

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            LeaseLifetime(0)
        lease = LeaseLifetime(60.0)
        try:
            with pytest.raises(ValueError):
                lease.extend(0)
        finally:
            lease.close()

    def test_extend_after_expiry_raises(self):
        lease = LeaseLifetime(0.05)
        deadline = time.monotonic() + 5.0
        while not lease.done() and time.monotonic() < deadline:
            time.sleep(0.02)
        with pytest.raises(LifetimeError):
            lease.extend(1.0)


class TestStaticLifetime:
    def test_singleton_until_closed(self):
        a = StaticLifetime()
        b = StaticLifetime()
        assert a is b
        a.close()
        c = StaticLifetime()
        assert c is not a

    def test_close_evicts_process_long_keys(self, local_store):
        static = StaticLifetime()
        proxy = local_store.proxy('process-long', lifetime=static, cache_local=False)
        static.close()
        assert not local_store.connector.exists(get_factory(proxy).key)


class TestLifetimeRaces:
    def test_bind_after_close_does_not_leak_the_key(self):
        # Store.proxy puts the object before it can bind the key; if the
        # lifetime closed in between, the orphaned key must be evicted
        # before the error propagates.
        store = Store.from_url('local://bind-race-store?register=0')
        try:
            lifetime = ContextLifetime()
            lifetime.close()
            before = dict(store.connector._store)
            with pytest.raises(LifetimeError):
                store.proxy('stranded', lifetime=lifetime, cache_local=False)
            assert dict(store.connector._store) == before  # nothing stranded
            with pytest.raises(LifetimeError):
                store.proxy_batch(['a', 'b'], lifetime=lifetime, cache_local=False)
            assert dict(store.connector._store) == before
        finally:
            store.close(clear=True)

    def test_stale_expiry_timer_loses_to_extend(self, local_store):
        # A fired timer that lost the race with extend() (cancel() cannot
        # stop an already-started callback) must observe the renewed
        # deadline and retire without evicting.
        lease = LeaseLifetime(60.0)
        try:
            proxy = local_store.proxy('renewed', lifetime=lease, cache_local=False)
            lease.extend(60.0)
            lease._expire()  # simulate the stale pre-extend timer firing
            assert not lease.done()
            assert local_store.connector.exists(get_factory(proxy).key)
        finally:
            lease.close()


def test_colmena_task_survives_lifetime_closing_mid_task():
    """Closing the run lifetime between the server's done() check and the
    store bind must not kill the serve loop or fail the task."""
    import numpy as np

    from repro.connectors.local import LocalConnector
    from repro.workflow import ColmenaQueues
    from repro.workflow import TaskServer
    from repro.workflow import Thinker
    from repro.workflow import WorkflowEngine

    class ClosingLifetime(ContextLifetime):
        """Closes itself the moment the server consults it — the worst
        possible interleaving of close() against the put-then-bind path."""

        def add_key(self, *keys, store=None):
            self.close()
            return super().add_key(*keys, store=store)

    queues = ColmenaQueues()
    lifetime = ClosingLifetime()
    store = Store('colmena-race-store', LocalConnector(), cache_size=0)
    try:
        with WorkflowEngine(n_workers=1) as engine:
            server = TaskServer(
                queues, engine, fixed_overhead_s=0.0, lifetime=lifetime,
            )
            server.register_topic(
                'scale',
                lambda data: np.asarray(data) * 2,
                store=store,
                threshold_bytes=0,
            )
            thinker = Thinker(queues)
            with server:
                result = thinker.run_task('scale', np.ones(16), timeout=10.0)
                assert result.success, result.error
                # The serve loop survived; a second task also completes.
                result2 = thinker.run_task('scale', np.ones(16), timeout=10.0)
                assert result2.success, result2.error
    finally:
        store.close(clear=True)


def test_future_result_after_lifetime_close_does_not_resurrect_key(local_store):
    """A producer whose result lands after the run lifetime closed must not
    silently re-create the evicted key with no owner (permanent leak)."""
    from repro.exceptions import ProxyFutureError

    lifetime = ContextLifetime()
    future = local_store.future(lifetime=lifetime)
    lifetime.close()
    with pytest.raises(ProxyFutureError, match='closed'):
        future.set_result('too late')
    assert not local_store.connector.exists(future.key)


def test_lifetime_distinguishes_same_named_stores(tmp_path):
    """Two store instances sharing a name must not have their keys merged:
    each key is evicted on the connector that actually holds it."""
    from repro.connectors.file import FileConnector
    from repro.connectors.local import LocalConnector

    a = Store('same-name', LocalConnector(), register=False)
    b = Store('same-name', FileConnector(str(tmp_path / 'b')), register=False)
    try:
        lifetime = ContextLifetime()
        ka = a.put('in-a')
        kb = b.put('in-b')
        lifetime.add_key(ka, store=a)
        lifetime.add_key(kb, store=b)
        lifetime.close()
        assert not a.connector.exists(ka)
        assert not b.connector.exists(kb)
        assert lifetime.keys_evicted == 2
    finally:
        a.close(clear=True)
        b.close(clear=True)


def test_future_failure_reaches_consumers_after_lifetime_close(local_store):
    """set_exception must work even after the bound lifetime closed: the
    consumer should learn the producer failed, not poll until timeout."""
    from repro.exceptions import ProxyFutureError

    lifetime = ContextLifetime()
    future = local_store.future(lifetime=lifetime, timeout=5.0)
    proxy = future.proxy()
    lifetime.close()
    future.set_exception(RuntimeError('task blew up'))
    with pytest.raises(Exception, match='task blew up'):
        extract(proxy)
    with pytest.raises(ProxyFutureError):
        future.result(timeout=1.0)
