"""Write-coalescing tests: flush triggers, visibility, lifecycle, errors."""
from __future__ import annotations

import threading
import time

import pytest

from repro.connectors.local import LocalConnector
from repro.connectors.protocol import Connector
from repro.exceptions import StoreError
from repro.store import Store
from repro.store.coalesce import WriteCoalescer


@pytest.fixture()
def connector():
    c = LocalConnector()
    yield c
    c.close(clear=True)


def _store(connector, **kwargs):
    defaults = dict(
        cache_size=0,
        register=False,
        metrics=True,
        coalesce_writes=True,
        coalesce_max_ops=1000,
        coalesce_max_bytes=1024 * 1024,
        coalesce_deadline=60.0,  # effectively never, unless a test opts in
    )
    defaults.update(kwargs)
    return Store('coalesce-test', connector, **defaults)


class CountingConnector(LocalConnector):
    """Counts wire-level batch writes so tests can assert coalescing."""

    scheme = None  # do not steal 'local' in the scheme registry

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.set_batch_calls = 0
        self.set_batch_sizes: list[int] = []

    def set_batch(self, items):
        self.set_batch_calls += 1
        self.set_batch_sizes.append(len(items))
        super().set_batch(items)


class FlakyConnector(LocalConnector):
    """Fails set_batch on demand to exercise error propagation."""

    scheme = None

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fail_next = False

    def set_batch(self, items):
        if self.fail_next:
            self.fail_next = False
            raise OSError('injected wire failure')
        super().set_batch(items)


# --------------------------------------------------------------------- #
# Flush triggers
# --------------------------------------------------------------------- #
def test_max_ops_triggers_flush(connector):
    counting = CountingConnector()
    store = _store(counting, coalesce_max_ops=4)
    keys = [store.put(i) for i in range(8)]
    assert counting.set_batch_calls == 2
    assert counting.set_batch_sizes == [4, 4]
    assert [store.get(k) for k in keys] == list(range(8))
    store.close()


def test_max_bytes_triggers_flush(connector):
    counting = CountingConnector()
    store = _store(counting, coalesce_max_bytes=10_000)
    store.put(b'x' * 6000)
    assert counting.set_batch_calls == 0
    store.put(b'y' * 6000)  # 12 KB pending >= 10 KB bound
    assert counting.set_batch_calls == 1
    store.close()


def test_deadline_triggers_background_flush(connector):
    counting = CountingConnector()
    store = _store(counting, coalesce_deadline=0.05)
    key = store.put('deadline me')
    assert counting.set_batch_calls == 0
    deadline = time.monotonic() + 5.0
    while counting.set_batch_calls == 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert counting.set_batch_calls == 1
    assert store.get(key) == 'deadline me'
    store.close()


def test_explicit_flush_and_close_flush(connector):
    store = _store(connector)
    k1 = store.put('one')
    assert connector.get(k1) is None  # still buffered
    store.flush()
    assert connector.get(k1) is not None
    k2 = store.put('two')
    store.close()  # close flushes the remainder
    assert connector.get(k2) is not None


# --------------------------------------------------------------------- #
# Read-side visibility
# --------------------------------------------------------------------- #
def test_buffered_writes_visible_to_reads(connector):
    store = _store(connector)
    key = store.put({'buffered': True})
    assert store._coalescer.pending_ops == 1
    assert store.exists(key)
    assert store.get(key) == {'buffered': True}
    assert store._coalescer.pending_ops == 1  # get served from the buffer
    store.close()


def test_get_batch_flushes_buffer(connector):
    store = _store(connector)
    keys = [store.put(i) for i in range(3)]
    assert store._coalescer.pending_ops == 3
    assert store.get_batch(keys) == [0, 1, 2]
    assert store._coalescer.pending_ops == 0
    store.close()


def test_evict_discards_buffered_write(connector):
    store = _store(connector)
    key = store.put('to evict')
    store.evict(key)
    assert not store.exists(key)
    store.flush()
    assert connector.get(key) is None  # never hit the wire
    store.close()


def test_proxy_creation_writes_through(connector):
    # A proxy may be resolved remotely right away, so proxy puts must not
    # sit in the coalescing buffer.
    store = _store(connector)
    proxy = store.proxy('resolve me now', cache_local=False)
    from repro.proxy import get_factory

    assert connector.get(get_factory(proxy).key) is not None
    store.close()


# --------------------------------------------------------------------- #
# Configuration and guards
# --------------------------------------------------------------------- #
def test_requires_deferred_write_support():
    class NoDeferred(Connector):
        def put(self, data):
            raise NotImplementedError

        def get(self, key):
            return None

        def exists(self, key):
            return False

        def evict(self, key):
            pass

        def config(self):
            return {}

    with pytest.raises(StoreError, match='deferred writes'):
        Store('no-deferred', NoDeferred(), coalesce_writes=True, register=False)


def test_invalid_bounds_rejected(connector):
    with pytest.raises(ValueError):
        WriteCoalescer(connector, max_ops=0)
    with pytest.raises(ValueError):
        WriteCoalescer(connector, max_bytes=-1)
    with pytest.raises(ValueError):
        WriteCoalescer(connector, deadline=0)


def test_config_roundtrip_carries_coalescing(connector):
    store = _store(connector, coalesce_max_ops=7, coalesce_deadline=2.5)
    config = store.config()
    assert config.coalesce_writes
    assert config.coalesce_max_ops == 7
    assert config.coalesce_deadline == 2.5
    clone = Store.from_config(config, register=False)
    assert clone._coalescer is not None
    key = clone.put('via clone')
    assert clone.get(key) == 'via clone'
    clone.close()
    store.close()


def test_from_url_coalescing_params():
    store = Store.from_url(
        'local://?coalesce_writes=1&coalesce_max_ops=3&coalesce_deadline=9',
        register=False,
    )
    try:
        assert store._coalescer is not None
        assert store.coalesce_max_ops == 3
        assert store.coalesce_deadline == 9.0
        k1, k2 = store.put('a'), store.put('b')
        assert store._coalescer.pending_ops == 2  # max_ops=3 not reached
        assert store.get(k1) == 'a'
        assert store.get(k2) == 'b'
    finally:
        store.close()


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #
def test_coalescing_metrics_recorded(connector):
    store = _store(connector, coalesce_max_ops=2)
    for i in range(4):
        store.put(i)
    store.flush()
    summary = store.metrics_summary()
    assert summary['store.coalesced_puts']['count'] == 4
    assert summary['store.coalesce_flushes']['count'] == 2
    store.close()


# --------------------------------------------------------------------- #
# Error propagation and concurrency
# --------------------------------------------------------------------- #
def test_background_flush_error_surfaces_on_next_op():
    flaky = FlakyConnector()
    store = _store(flaky, coalesce_deadline=0.05)
    flaky.fail_next = True
    store.put('will fail in background')
    deadline = time.monotonic() + 5.0
    while store._coalescer._flush_error is None and time.monotonic() < deadline:
        time.sleep(0.01)
    with pytest.raises(OSError, match='injected wire failure'):
        store.put('next op surfaces the failure')
    # The deadline thread survived: subsequent writes flush normally.
    key = store.put('recovered')
    store.flush()
    assert store.get(key) == 'recovered'
    store.close()
    flaky.close(clear=True)


def test_foreground_flush_error_raises(connector):
    flaky = FlakyConnector()
    store = _store(flaky)
    store.put('buffered')
    flaky.fail_next = True
    with pytest.raises(OSError, match='injected wire failure'):
        store.flush()
    store.close()
    flaky.close(clear=True)


def test_concurrent_puts_all_land(connector):
    store = _store(connector, coalesce_max_ops=16, coalesce_deadline=0.01)
    keys: list = []
    lock = threading.Lock()

    def writer(base: int) -> None:
        mine = [store.put(f'item-{base}-{i}') for i in range(50)]
        with lock:
            keys.extend(mine)

    threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    store.flush()
    assert len(keys) == 200
    assert len({k for k in keys}) == 200  # all keys distinct
    values = store.get_batch(keys)
    assert all(v is not None for v in values)
    store.close()
