"""Tests of the Store object-level API."""
from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.connectors.file import FileConnector
from repro.connectors.local import LocalConnector
from repro.exceptions import StoreExistsError
from repro.proxy import get_factory
from repro.proxy import is_resolved
from repro.store import Store
from repro.store import get_store
from repro.store import list_stores
from repro.store import register_store
from repro.store import unregister_store


def test_store_requires_nonempty_name():
    with pytest.raises(ValueError):
        Store('', LocalConnector(), register=False)
    with pytest.raises(ValueError):
        Store(None, LocalConnector(), register=False)  # type: ignore[arg-type]


def test_store_rejects_negative_cache_size():
    with pytest.raises(ValueError):
        Store('x', LocalConnector(), cache_size=-1, register=False)


def test_put_get_roundtrip(local_store):
    key = local_store.put({'a': 1})
    assert local_store.get(key) == {'a': 1}


def test_get_missing_returns_default(local_store):
    key = local_store.put('x')
    local_store.evict(key)
    assert local_store.get(key) is None
    assert local_store.get(key, default='gone') == 'gone'


def test_exists_and_evict(local_store):
    key = local_store.put([1, 2])
    assert local_store.exists(key)
    local_store.evict(key)
    assert not local_store.exists(key)


def test_put_batch_get_batch(local_store):
    objs = [1, 'two', {'three': 3}, np.arange(4)]
    keys = local_store.put_batch(objs)
    results = local_store.get_batch(keys)
    assert results[0] == 1
    assert results[1] == 'two'
    assert results[2] == {'three': 3}
    assert np.array_equal(results[3], np.arange(4))


def test_get_batch_mixed_missing(local_store):
    keys = local_store.put_batch(['a', 'b'])
    local_store.evict(keys[0])
    assert local_store.get_batch(keys) == [None, 'b']


def test_get_uses_cache_for_repeated_access(local_store):
    key = local_store.put([1, 2, 3])
    first = local_store.get(key)
    # Evict from the connector only; the cached object must still be served.
    local_store.connector.evict(key)
    second = local_store.get(key)
    assert second == first
    assert local_store.cache_stats()['hits'] >= 1


def test_cache_disabled_with_zero_size():
    store = Store('no-cache', LocalConnector(), cache_size=0, register=False)
    key = store.put('x')
    assert store.get(key) == 'x'
    store.connector.evict(key)
    assert store.get(key) is None
    store.close()


def test_custom_serializer_applies(local_store):
    events = []

    def ser(obj):
        events.append('ser')
        return repr(obj).encode()

    def des(data):
        events.append('des')
        return eval(data.decode())  # noqa: S307 - test only

    key = local_store.put([1, 2], serializer=ser)
    assert local_store.get(key, deserializer=des) == [1, 2]
    assert events == ['ser', 'des']


def test_store_registration_on_create():
    store = Store('registered-store', LocalConnector())
    try:
        assert get_store('registered-store') is store
        assert 'registered-store' in list_stores()
    finally:
        store.close()
    assert get_store('registered-store') is None


def test_duplicate_registration_raises():
    store = Store('dup-store', LocalConnector())
    try:
        with pytest.raises(StoreExistsError):
            Store('dup-store', LocalConnector())
    finally:
        store.close()


def test_register_store_exist_ok():
    a = Store('replaceable', LocalConnector())
    b = Store('replaceable', LocalConnector(), register=False)
    register_store(b, exist_ok=True)
    assert get_store('replaceable') is b
    unregister_store('replaceable')
    a.connector.close()
    b.connector.close()


def test_unregistered_store_not_in_registry():
    store = Store('anon', LocalConnector(), register=False)
    assert get_store('anon') is None
    store.close()


def test_store_config_roundtrip(tmp_path):
    store = Store('cfg-store', FileConnector(str(tmp_path / 'd')), register=False)
    key = store.put('value')
    config = store.config()
    clone = Store.from_config(config, register=False)
    assert clone.name == store.name
    assert clone.get(key) == 'value'
    store.close(clear=True)
    clone.close()


def test_store_config_dict_roundtrip(local_store):
    config = local_store.config()
    as_dict = config.to_dict()
    restored = type(config).from_dict(as_dict)
    assert restored == config


def test_store_context_manager():
    with Store('ctx-store', LocalConnector()) as store:
        assert get_store('ctx-store') is store
    assert get_store('ctx-store') is None


def test_metrics_recording():
    store = Store('metrics-store', LocalConnector(), metrics=True, register=False)
    key = store.put(np.zeros(128))
    store.get(key)
    store.get(key)  # cache hit
    store.evict(key)
    summary = store.metrics_summary()
    assert summary['put']['count'] == 1
    assert summary['serialize']['count'] == 1
    assert summary['get']['count'] == 1
    assert summary['get_cached']['count'] == 1
    assert summary['evict']['count'] == 1
    assert summary['put']['total_bytes'] > 0
    store.close()


def test_metrics_disabled_by_default(local_store):
    local_store.put('x')
    assert local_store.metrics_summary() == {}


def test_repr(local_store):
    assert 'test-local-store' in repr(local_store)
