"""Tests of the Store object-level API."""
from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.connectors.file import FileConnector
from repro.connectors.local import LocalConnector
from repro.exceptions import StoreExistsError
from repro.proxy import get_factory
from repro.proxy import is_resolved
from repro.store import Store
from repro.store import get_store
from repro.store import list_stores
from repro.store import register_store
from repro.store import unregister_store


def test_store_requires_nonempty_name():
    with pytest.raises(ValueError):
        Store('', LocalConnector(), register=False)
    with pytest.raises(ValueError):
        Store(None, LocalConnector(), register=False)  # type: ignore[arg-type]


def test_store_rejects_negative_cache_size():
    with pytest.raises(ValueError):
        Store('x', LocalConnector(), cache_size=-1, register=False)


def test_put_get_roundtrip(local_store):
    key = local_store.put({'a': 1})
    assert local_store.get(key) == {'a': 1}


def test_get_missing_returns_default(local_store):
    key = local_store.put('x')
    local_store.evict(key)
    assert local_store.get(key) is None
    assert local_store.get(key, default='gone') == 'gone'


def test_exists_and_evict(local_store):
    key = local_store.put([1, 2])
    assert local_store.exists(key)
    local_store.evict(key)
    assert not local_store.exists(key)


def test_put_batch_get_batch(local_store):
    objs = [1, 'two', {'three': 3}, np.arange(4)]
    keys = local_store.put_batch(objs)
    results = local_store.get_batch(keys)
    assert results[0] == 1
    assert results[1] == 'two'
    assert results[2] == {'three': 3}
    assert np.array_equal(results[3], np.arange(4))


def test_get_batch_mixed_missing(local_store):
    keys = local_store.put_batch(['a', 'b'])
    local_store.evict(keys[0])
    assert local_store.get_batch(keys) == [None, 'b']


def test_get_uses_cache_for_repeated_access(local_store):
    key = local_store.put([1, 2, 3])
    first = local_store.get(key)
    # Evict from the connector only; the cached object must still be served.
    local_store.connector.evict(key)
    second = local_store.get(key)
    assert second == first
    assert local_store.cache_stats()['hits'] >= 1


def test_cache_disabled_with_zero_size():
    store = Store('no-cache', LocalConnector(), cache_size=0, register=False)
    key = store.put('x')
    assert store.get(key) == 'x'
    store.connector.evict(key)
    assert store.get(key) is None
    store.close()


def test_custom_serializer_applies(local_store):
    events = []

    def ser(obj):
        events.append('ser')
        return repr(obj).encode()

    def des(data):
        events.append('des')
        return eval(data.decode())  # noqa: S307 - test only

    key = local_store.put([1, 2], serializer=ser)
    assert local_store.get(key, deserializer=des) == [1, 2]
    assert events == ['ser', 'des']


def test_store_registration_on_create():
    store = Store('registered-store', LocalConnector())
    try:
        assert get_store('registered-store') is store
        assert 'registered-store' in list_stores()
    finally:
        store.close()
    assert get_store('registered-store') is None


def test_duplicate_registration_raises():
    store = Store('dup-store', LocalConnector())
    try:
        with pytest.raises(StoreExistsError):
            Store('dup-store', LocalConnector())
    finally:
        store.close()


def test_register_store_exist_ok():
    a = Store('replaceable', LocalConnector())
    b = Store('replaceable', LocalConnector(), register=False)
    register_store(b, exist_ok=True)
    assert get_store('replaceable') is b
    unregister_store('replaceable')
    a.connector.close()
    b.connector.close()


def test_unregistered_store_not_in_registry():
    store = Store('anon', LocalConnector(), register=False)
    assert get_store('anon') is None
    store.close()


def test_store_config_roundtrip(tmp_path):
    store = Store('cfg-store', FileConnector(str(tmp_path / 'd')), register=False)
    key = store.put('value')
    config = store.config()
    clone = Store.from_config(config, register=False)
    assert clone.name == store.name
    assert clone.get(key) == 'value'
    store.close(clear=True)
    clone.close()


def test_store_config_dict_roundtrip(local_store):
    config = local_store.config()
    as_dict = config.to_dict()
    restored = type(config).from_dict(as_dict)
    assert restored == config


def test_store_context_manager():
    with Store('ctx-store', LocalConnector()) as store:
        assert get_store('ctx-store') is store
    assert get_store('ctx-store') is None


def test_metrics_recording():
    store = Store('metrics-store', LocalConnector(), metrics=True, register=False)
    key = store.put(np.zeros(128))
    store.get(key)
    store.get(key)  # cache hit
    store.evict(key)
    summary = store.metrics_summary()
    assert summary['put']['count'] == 1
    assert summary['serialize']['count'] == 1
    assert summary['get']['count'] == 1
    assert summary['get_cached']['count'] == 1
    assert summary['evict']['count'] == 1
    assert summary['put']['total_bytes'] > 0
    store.close()


def test_batch_metrics_match_scalar_counterparts():
    """get_batch records deserialize (and hits/misses), proxy_batch records proxy."""
    store = Store('batch-metrics-store', LocalConnector(),
                  metrics=True, cache_size=4, register=False)
    keys = store.put_batch(['a', 'b', 'c'])
    store.cache.clear()
    fetched = store.get_batch(keys + ['missing-key'])
    assert fetched[:3] == ['a', 'b', 'c'] and fetched[3] is None
    store.get_batch(keys)  # all cache hits this time
    proxies = store.proxy_batch(['x', 'y'])
    assert [str(p) for p in proxies] == ['x', 'y']
    summary = store.metrics_summary()
    assert summary['deserialize']['count'] == 1  # one aggregate record per batch
    assert summary['deserialize']['total_bytes'] > 0
    assert summary['get_miss']['count'] == 1
    assert summary['get_cached']['count'] == 3
    assert summary['proxy']['count'] == 2
    assert summary['proxy']['total_bytes'] > 0
    store.close(clear=True)


def test_close_clear_also_clears_local_cache():
    store = Store('close-clear-store', LocalConnector(), register=False)
    key = store.put({'cached': True})
    store.get(key)  # populate the deserialized-object cache
    assert store.is_cached(key)
    store.close(clear=True)
    assert not store.is_cached(key)
    assert len(store.cache) == 0


def test_from_config_warns_about_custom_serializer():
    import pickle as _pickle

    store = Store(
        'custom-ser-store',
        LocalConnector(),
        serializer=_pickle.dumps,
        deserializer=_pickle.loads,
        register=False,
    )
    config = store.config()
    assert config.custom_serializer and config.custom_deserializer
    with pytest.warns(UserWarning, match='custom'):
        clone = Store.from_config(config, register=False)
    clone.close()
    store.close(clear=True)


class ReversingLocalConnector(LocalConnector):
    """Module-level (so import-path-resolvable) subclass with NO own scheme."""

    def put(self, data):
        return super().put(bytes(data)[::-1])

    def get(self, key):
        data = super().get(key)
        return None if data is None else data[::-1]


def test_config_subclass_without_scheme_uses_import_path():
    """A connector subclass that declares no scheme must NOT resolve to its
    base class through the inherited scheme (silent wrong-class rebuild)."""
    store = Store('subclass-cfg-store', ReversingLocalConnector(), register=False)
    config = store.config()
    assert config.scheme is None  # inherited 'local' must not be recorded
    rebuilt = config.make_connector()
    assert type(rebuilt) is ReversingLocalConnector
    key = store.put('payload')
    clone = Store.from_config(config, register=False)
    assert clone.get(key) == 'payload'
    store.close(clear=True)
    clone.close()


def test_get_batch_all_misses_records_no_deserialize():
    store = Store('all-miss-store', LocalConnector(), metrics=True, register=False)
    bogus = [store.connector.new_key(), store.connector.new_key()]
    assert store.get_batch(bogus) == [None, None]
    summary = store.metrics_summary()
    assert 'deserialize' not in summary
    assert summary['get_miss']['count'] == 2
    store.close(clear=True)


def test_metrics_disabled_by_default(local_store):
    local_store.put('x')
    assert local_store.metrics_summary() == {}


def test_repr(local_store):
    assert 'test-local-store' in repr(local_store)


def test_get_batch_consults_cache_before_connector():
    class CountingConnector(LocalConnector):
        def __init__(self):
            super().__init__()
            self.batch_requests: list[int] = []

        def get_batch(self, keys):
            keys = list(keys)
            self.batch_requests.append(len(keys))
            return super().get_batch(keys)

    connector = CountingConnector()
    store = Store('batch-cache-store', connector, cache_size=8, register=False)
    keys = store.put_batch(['a', 'b', 'c'])
    store.get(keys[0])  # now cached
    values = store.get_batch(keys)
    assert values == ['a', 'b', 'c']
    # Only the two uncached keys reached the connector.
    assert connector.batch_requests == [2]
    values = store.get_batch(keys)
    assert values == ['a', 'b', 'c']
    assert connector.batch_requests == [2]  # fully served from cache
    store.close()


def test_cache_stats_reports_resident_bytes():
    store = Store(
        'resident-bytes-store',
        LocalConnector(),
        cache_size=8,
        cache_max_bytes=1024,
        register=False,
    )
    key = store.put(b'x' * 100)
    store.get(key)
    stats = store.cache_stats()
    assert stats['entries'] == 1
    assert stats['resident_bytes'] >= 100
    assert stats['max_bytes'] == 1024
    # An object over the byte bound is returned but never cached.
    big_key = store.put(b'x' * 4096)
    assert store.get(big_key) == b'x' * 4096
    assert not store.is_cached(big_key)
    assert store.cache_stats()['entries'] == 1
    store.close()


def test_cache_max_bytes_round_trips_through_config():
    store = Store(
        'max-bytes-config-store',
        LocalConnector(),
        cache_max_bytes=2048,
        register=False,
    )
    rebuilt = Store.from_config(store.config(), register=False)
    assert rebuilt.cache.max_bytes == 2048
    store.close()
    rebuilt.close()
