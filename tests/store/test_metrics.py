"""Tests for StoreMetrics and OperationStats."""
from __future__ import annotations

import pytest

from repro.store.metrics import OperationStats
from repro.store.metrics import StoreMetrics
from repro.store.metrics import Timer


def test_timer_measures_positive_elapsed():
    with Timer() as t:
        sum(range(1000))
    assert t.elapsed >= 0.0


def test_operation_stats_record_and_aggregate():
    stats = OperationStats()
    stats.record(0.5, nbytes=10)
    stats.record(1.5, nbytes=20)
    assert stats.count == 2
    assert stats.total_time == pytest.approx(2.0)
    assert stats.avg_time == pytest.approx(1.0)
    assert stats.min_time == pytest.approx(0.5)
    assert stats.max_time == pytest.approx(1.5)
    assert stats.total_bytes == 30
    assert stats.times == [0.5, 1.5]


def test_operation_stats_empty_defaults():
    stats = OperationStats()
    assert stats.avg_time == 0.0
    assert stats.count == 0


def test_store_metrics_record_and_get():
    metrics = StoreMetrics()
    metrics.record('put', 0.1, nbytes=100)
    metrics.record('put', 0.3, nbytes=200)
    metrics.record('get', 0.2)
    assert metrics.get('put').count == 2
    assert metrics.get('missing') is None
    assert metrics.operations() == ['get', 'put']


def test_store_metrics_as_dict():
    metrics = StoreMetrics()
    metrics.record('op', 0.25, nbytes=5)
    summary = metrics.as_dict()
    assert summary['op']['count'] == 1
    assert summary['op']['total_bytes'] == 5
    assert summary['op']['avg_time'] == pytest.approx(0.25)


def test_store_metrics_iter():
    metrics = StoreMetrics()
    metrics.record('a', 0.1)
    items = dict(iter(metrics))
    assert 'a' in items
