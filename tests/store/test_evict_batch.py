"""Batched eviction stays batched through wrapper and routing connectors.

Lifetime closes and consumer acks tear down through ``Store.evict_batch``;
these tests pin that the teardown is one batched connector operation (and
one ``evict_batch`` metric) rather than a per-key fallback loop — the
regression fixed for ``CostedConnector`` and ``MultiConnector``.
"""
from __future__ import annotations

import pytest

from repro.connectors.local import LocalConnector
from repro.connectors.multi import MultiConnector
from repro.connectors.policy import Policy
from repro.simulation.costed import CostedConnector
from repro.simulation.costs import TransferCostModel
from repro.store import ContextLifetime
from repro.store import Store


class CountingConnector(LocalConnector):
    """LocalConnector that counts scalar vs batched evictions."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.evict_calls = 0
        self.evict_batch_calls = 0

    def evict(self, key):
        self.evict_calls += 1
        super().evict(key)

    def evict_batch(self, keys):
        self.evict_batch_calls += 1
        super().evict_batch(list(keys))


class _FreeModel(TransferCostModel):
    """Cost model charging nothing — these tests care about call counts."""

    name = 'free'

    def put_cost(self, nbytes, host):
        return 0.0

    def get_cost(self, nbytes, origin_host, consumer_host, *, first_fetch=True):
        return 0.0


@pytest.fixture()
def cost_model():
    return _FreeModel()


def test_costed_connector_delegates_evict_batch(cost_model):
    inner = CountingConnector()
    costed = CostedConnector(inner, cost_model)
    store = Store('costed-evict-batch', costed, metrics=True, register=False)
    keys = store.put_batch([b'a' * 64, b'b' * 64, b'c' * 64])
    store.evict_batch(keys)
    assert inner.evict_batch_calls == 1
    assert inner.evict_calls == 0
    assert not any(store.exists(key) for key in keys)
    assert store.metrics is not None
    stats = store.metrics.get('evict_batch')
    assert stats is not None and stats.count == 1
    assert store.metrics.get('evict') is None


def test_costed_connector_evict_batch_clears_bookkeeping(cost_model):
    inner = CountingConnector()
    costed = CostedConnector(inner, cost_model)
    keys = [costed.put(b'x' * 128) for _ in range(3)]
    assert set(costed._origins) == set(keys)
    costed.evict_batch(keys)
    assert not costed._origins
    assert not costed._sizes


def test_multi_connector_groups_evictions_per_inner():
    fast = CountingConnector()
    bulk = CountingConnector()
    multi = MultiConnector({
        'fast': (fast, Policy(priority=1, max_size_bytes=100)),
        'bulk': (bulk, Policy(priority=0)),
    })
    small = [multi.put(b's' * 10) for _ in range(3)]
    large = [multi.put(b'l' * 1000) for _ in range(2)]
    assert {key.connector_label for key in small} == {'fast'}
    assert {key.connector_label for key in large} == {'bulk'}
    multi.evict_batch(small + large)
    assert fast.evict_batch_calls == 1
    assert bulk.evict_batch_calls == 1
    assert fast.evict_calls == 0
    assert bulk.evict_calls == 0
    assert not any(multi.exists(key) for key in small + large)


def test_multi_connector_batched_get_routes_per_inner():
    fast = CountingConnector()
    bulk = CountingConnector()
    multi = MultiConnector({
        'fast': (fast, Policy(priority=1, max_size_bytes=100)),
        'bulk': (bulk, Policy(priority=0)),
    })
    keys = [multi.put(b's' * 10), multi.put(b'l' * 1000), multi.put(b's2' * 5)]
    datas = multi.get_batch(keys)
    assert [bytes(d) for d in datas] == [b's' * 10, b'l' * 1000, b's2' * 5]
    missing = multi.get_batch([keys[0]._replace(inner_key=None)])
    assert missing == [None]


def test_lifetime_close_is_one_batch_through_costed_store(cost_model):
    inner = CountingConnector()
    store = Store(
        'costed-lifetime',
        CostedConnector(inner, cost_model),
        metrics=True,
        register=False,
    )
    with ContextLifetime(store=store) as lifetime:
        for i in range(5):
            store.proxy(i, lifetime=lifetime)
    assert inner.evict_batch_calls == 1
    assert inner.evict_calls == 0
    assert store.metrics is not None
    stats = store.metrics.get('evict_batch')
    assert stats is not None and stats.count == 1
