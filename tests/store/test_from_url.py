"""Tests of the v2 URL construction API: Store.from_url / store_from_url."""
from __future__ import annotations

from urllib.parse import quote

import pytest

import repro
from repro.connectors.endpoint import set_local_endpoint
from repro.connectors.file import FileConnector
from repro.connectors.globus import GlobusConnector
from repro.connectors.globus import set_current_hostname
from repro.connectors.local import LocalConnector
from repro.connectors.margo import MargoConnector
from repro.connectors.multi import MultiConnector
from repro.connectors.redis import RedisConnector
from repro.connectors.ucx import UCXConnector
from repro.connectors.zmq import ZMQConnector
from repro.endpoint import Endpoint
from repro.endpoint import RelayServer
from repro.globus_sim import GlobusEndpointSpec
from repro.globus_sim import reset_transfer_service
from repro.globus_sim.service import get_transfer_service
from repro.store import Store


def _roundtrip(store: Store, obj) -> None:
    """put/get and proxy round trip through a freshly URL-built store."""
    key = store.put(obj)
    assert store.get(key) == obj
    proxy = store.proxy(obj, cache_local=False)
    assert proxy == obj


def test_from_url_local_roundtrip():
    store = Store.from_url('local://shared-url-test/url-local?cache_size=4')
    try:
        assert isinstance(store.connector, LocalConnector)
        assert store.connector.store_id == 'shared-url-test'
        assert store.name == 'url-local'
        assert store.cache.maxsize == 4
        _roundtrip(store, {'x': 1})
    finally:
        store.close(clear=True)


def test_from_url_file_roundtrip(tmp_path):
    store = Store.from_url(f'file://{tmp_path}/objs?name=url-file&metrics=1')
    try:
        assert isinstance(store.connector, FileConnector)
        assert store.connector.store_dir == str(tmp_path / 'objs')
        assert store.metrics is not None
        _roundtrip(store, [1, 2, 3])
    finally:
        store.close(clear=True)


def test_from_url_redis_roundtrip():
    store = Store.from_url('redis:///url-redis?launch=1')
    try:
        assert isinstance(store.connector, RedisConnector)
        assert store.name == 'url-redis'
        _roundtrip(store, b'payload')
    finally:
        store.close(clear=True)


@pytest.mark.parametrize(
    ('scheme', 'cls'),
    [('margo', MargoConnector), ('ucx', UCXConnector), ('zmq', ZMQConnector)],
)
def test_from_url_dim_roundtrip(scheme, cls):
    store = Store.from_url(f'{scheme}://url-node-{scheme}/url-{scheme}')
    try:
        assert isinstance(store.connector, cls)
        assert store.connector.node_id == f'url-node-{scheme}'
        _roundtrip(store, {'dim': scheme})
    finally:
        store.close(clear=True)


def test_from_url_endpoint_roundtrip():
    relay = RelayServer()
    with Endpoint('url-site', relay) as endpoint:
        set_local_endpoint(endpoint.uuid)
        try:
            store = Store.from_url(
                f'endpoint://{endpoint.uuid}/url-endpoint?local={endpoint.uuid}',
            )
            try:
                assert store.connector.endpoints == [endpoint.uuid]
                _roundtrip(store, {'site': 'a'})
            finally:
                store.close()
        finally:
            set_local_endpoint(None)


def test_from_url_globus_roundtrip(tmp_path):
    service = get_transfer_service()
    spec_a = GlobusEndpointSpec.create(str(tmp_path / 'site-a'))
    spec_b = GlobusEndpointSpec.create(str(tmp_path / 'site-b'))
    service.register_endpoint(spec_a)
    service.register_endpoint(spec_b)
    url = (
        'globus:///url-globus'
        f'?endpoint=site-a|{spec_a.endpoint_uuid}|{spec_a.endpoint_path}'
        f'&endpoint=site-b|{spec_b.endpoint_uuid}|{spec_b.endpoint_path}'
        '&transfer_timeout=10'
    )
    set_current_hostname('site-a-login')
    try:
        store = Store.from_url(url)
        try:
            assert isinstance(store.connector, GlobusConnector)
            assert store.connector.transfer_timeout == 10.0
            assert store.name == 'url-globus'
            _roundtrip(store, {'bulk': True})
        finally:
            store.close(clear=True)
    finally:
        set_current_hostname(None)
        reset_transfer_service()


def test_from_url_multi_roundtrip(tmp_path):
    small = quote('local://?max_size_bytes=1000&priority=2', safe='')
    bulk = quote(f'file://{tmp_path}/bulk?min_size_bytes=1001', safe='')
    store = Store.from_url(f'multi://?small={small}&bulk={bulk}', name='url-multi')
    try:
        conn = store.connector
        assert isinstance(conn, MultiConnector)
        assert sorted(conn.connectors) == ['bulk', 'small']
        assert conn.policy_for('small').max_size_bytes == 1000
        assert conn.policy_for('small').priority == 2
        assert conn.policy_for('bulk').min_size_bytes == 1001
        assert isinstance(conn.connector_for('bulk'), FileConnector)
        small_key = conn.put(b'x' * 10)
        assert small_key.connector_label == 'small'
        bulk_key = conn.put(b'x' * 5000)
        assert bulk_key.connector_label == 'bulk'
        _roundtrip(store, list(range(10)))
    finally:
        store.close(clear=True)


def test_from_url_multi_policy_tags():
    gpu = quote('local://?superset_tags=gpu&priority=9', safe='')
    any_ = quote('local://?priority=0', safe='')
    store = Store.from_url(f'multi://?gpu={gpu}&any={any_}', name='url-multi-tags')
    try:
        key = store.connector.put(b'weights', superset_tags=('gpu',))
        assert key.connector_label == 'gpu'
        assert store.connector.put(b'plain').connector_label == 'any'
    finally:
        store.close(clear=True)


def test_store_from_url_module_level_one_liner():
    store = repro.store_from_url('local:///one-liner?cache_size=2')
    try:
        assert store.name == 'one-liner'
        assert repro.get_store('one-liner') is store
    finally:
        store.close(clear=True)


def test_from_url_generates_unique_names():
    a = Store.from_url('local://', register=False)
    b = Store.from_url('local://', register=False)
    assert a.name != b.name
    assert a.name.startswith('local-store-')


def test_from_url_explicit_name_beats_query_and_path():
    store = Store.from_url('local:///path-name?name=query-name', name='kwarg-name')
    try:
        assert store.name == 'kwarg-name'
    finally:
        store.close(clear=True)


def test_from_url_register_false_via_query():
    store = Store.from_url('local:///unregistered?register=0')
    assert repro.get_store('unregistered') is None
    store.close(clear=True)


def test_from_url_rejects_unknown_parameters():
    with pytest.raises(ValueError, match='cache_siez'):
        Store.from_url('local://?cache_siez=4')


def test_from_url_config_roundtrips_through_scheme(tmp_path):
    """A URL-built store's config rebuilds the connector registry-first."""
    store = Store.from_url(f'file://{tmp_path}/cfg?name=url-cfg-store')
    try:
        config = store.config()
        assert config.scheme == 'file'
        rebuilt = config.make_connector()
        assert isinstance(rebuilt, FileConnector)
        assert rebuilt.store_dir == store.connector.store_dir
    finally:
        store.close(clear=True)


def test_from_url_wrap_connector():
    wrapped: list = []

    def wrap(connector):
        wrapped.append(connector)
        return connector

    store = Store.from_url('local:///wrapped-store', wrap_connector=wrap)
    try:
        assert wrapped and store.connector is wrapped[0]
    finally:
        store.close(clear=True)


def test_from_url_cache_max_bytes():
    store = Store.from_url('local://?cache_size=4&cache_max_bytes=4096', register=False)
    try:
        assert store.cache.max_bytes == 4096
    finally:
        store.close(clear=True)
