"""Tests of Store.proxy and the StoreFactory resolution path."""
from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.connectors.file import FileConnector
from repro.connectors.local import LocalConnector
from repro.exceptions import StoreError
from repro.exceptions import StoreKeyError
from repro.proxy import Proxy
from repro.proxy import extract
from repro.proxy import get_factory
from repro.proxy import is_resolved
from repro.proxy import resolve
from repro.proxy import resolve_async
from repro.store import Store
from repro.store import StoreFactory
from repro.store import get_store
from repro.store import unregister_store


def test_proxy_returns_lazy_proxy(local_store):
    p = local_store.proxy([1, 2, 3], cache_local=False)
    assert isinstance(p, Proxy)
    assert not is_resolved(p)
    assert p == [1, 2, 3]
    assert is_resolved(p)


def test_proxy_isinstance_of_target_type(local_store):
    p = local_store.proxy(np.arange(5), cache_local=False)
    assert isinstance(p, np.ndarray)
    assert p.sum() == 10


def test_proxy_factory_is_store_factory(local_store):
    p = local_store.proxy('value')
    factory = get_factory(p)
    assert isinstance(factory, StoreFactory)
    assert factory.store_config.name == local_store.name


def test_proxy_pickle_is_small_and_resolvable(local_store):
    big = np.zeros(250_000)  # ~2 MB when serialized
    p = local_store.proxy(big, cache_local=False)
    data = pickle.dumps(p)
    assert len(data) < 2000  # only the factory travels
    restored = pickle.loads(data)
    assert np.array_equal(extract(restored), big)


def test_proxy_local_cache_avoids_connector(local_store):
    obj = {'payload': list(range(100))}
    p = local_store.proxy(obj, cache_local=True)
    # Remove from the connector: the local cache must still resolve it.
    key = get_factory(p).key
    local_store.connector.evict(key)
    assert p == obj


def test_proxy_evict_flag_removes_object_after_first_resolve(local_store):
    p = local_store.proxy('ephemeral', evict=True, cache_local=False)
    key = get_factory(p).key
    assert local_store.connector.exists(key)
    resolve(p)
    assert extract(p) == 'ephemeral'
    assert not local_store.connector.exists(key)


def test_proxy_without_evict_keeps_object(local_store):
    p = local_store.proxy('persistent', cache_local=False)
    key = get_factory(p).key
    resolve(p)
    assert local_store.connector.exists(key)


def test_resolving_missing_object_raises_store_key_error(local_store):
    p = local_store.proxy('x', cache_local=False)
    local_store.evict(get_factory(p).key)
    with pytest.raises(Exception) as excinfo:
        resolve(p)
    # The ProxyResolveError wraps the StoreKeyError raised by the factory.
    assert 'does not exist' in str(excinfo.value)


def test_store_factory_direct_resolution(local_store):
    key = local_store.put('direct')
    factory = StoreFactory(key, local_store.config())
    assert factory() == 'direct'


def test_store_factory_missing_key_raises(local_store):
    key = local_store.put('x')
    local_store.evict(key)
    factory = StoreFactory(key, local_store.config())
    with pytest.raises(StoreKeyError):
        factory.resolve()


def test_store_factory_equality_and_hash(local_store):
    key = local_store.put('x')
    config = local_store.config()
    assert StoreFactory(key, config) == StoreFactory(key, config)
    assert hash(StoreFactory(key, config)) == hash(StoreFactory(key, config))
    assert StoreFactory(key, config) != StoreFactory(key, config, evict=True)


def test_proxy_batch(local_store):
    objs = ['a', 'b', 'c']
    proxies = local_store.proxy_batch(objs, cache_local=False)
    assert len(proxies) == 3
    assert [extract(p) for p in proxies] == objs


def test_proxy_batch_evict(local_store):
    proxies = local_store.proxy_batch(['a', 'b'], evict=True, cache_local=False)
    keys = [get_factory(p).key for p in proxies]
    for p in proxies:
        resolve(p)
    assert all(not local_store.connector.exists(k) for k in keys)


def test_proxy_from_key(local_store):
    key = local_store.put({'k': 1})
    p = local_store.proxy_from_key(key)
    assert p == {'k': 1}


def test_locked_proxy_is_pre_resolved(local_store):
    p = local_store.locked_proxy('already here')
    assert is_resolved(p)
    assert p == 'already here'
    # And the data is still stored for other consumers.
    key = get_factory(p).key
    assert local_store.connector.exists(key)


def test_proxy_resolution_registers_store_in_new_registry_state(tmp_path):
    """Simulates resolving a proxy in a process without the store registered."""
    store = Store('producer-store', FileConnector(str(tmp_path / 'd')))
    p = store.proxy([1, 2, 3], cache_local=False)
    data = pickle.dumps(p)

    # Simulate a fresh consumer process: drop the registry entry.
    unregister_store('producer-store')
    assert get_store('producer-store') is None

    restored = pickle.loads(data)
    assert restored == [1, 2, 3]
    # Resolution re-created and registered an equivalent store.
    recreated = get_store('producer-store')
    assert recreated is not None
    assert recreated is not store
    recreated.close(clear=True)


def test_proxy_resolution_reuses_registered_store(local_store):
    p = local_store.proxy('x', cache_local=False)
    restored = pickle.loads(pickle.dumps(p))
    resolve(restored)
    # The factory found the already-registered store rather than making a new one.
    assert get_factory(restored).get_store() is local_store


def test_resolve_async_prefetches_via_store(local_store):
    p = local_store.proxy('prefetch me', cache_local=False)
    resolve_async(p)
    assert p == 'prefetch me'


def test_resolve_async_noop_when_cached(local_store):
    p = local_store.proxy('cached', cache_local=True)
    resolve_async(p)  # object already in local cache; should remain resolvable
    assert p == 'cached'


def test_proxy_connector_kwargs_rejected_for_plain_connector(local_store):
    # Connectors whose put() does not accept routing kwargs raise a clear
    # StoreError instead of silently dropping the constraints.
    with pytest.raises(StoreError, match='subset_tags'):
        local_store.proxy('x', subset_tags=('gpu',))


def test_proxy_connector_kwargs_rejected_through_wrapper():
    """Validation follows wrapper connectors' inner chain instead of being
    fooled by their pass-through **kwargs signature."""
    from repro.simulation.costed import CostedConnector
    from repro.simulation.costs import SharedFilesystemCost
    from repro.simulation.network import Fabric

    fabric = Fabric()
    wrapped = CostedConnector(LocalConnector(), SharedFilesystemCost(fabric))
    store = Store('wrapped-kwargs-store', wrapped, register=False)
    with pytest.raises(StoreError, match='subset_tags'):
        store.proxy('x', subset_tags=('gpu',))
    store.close(clear=True)


def test_proxy_connector_kwargs_carried_in_factory(tmp_path):
    from repro.connectors.multi import MultiConnector
    from repro.connectors.policy import Policy

    conn = MultiConnector({
        'gpu': (LocalConnector(), Policy(superset_tags=('gpu',), priority=5)),
        'any': (LocalConnector(), Policy(priority=0)),
    })
    store = Store('kwargs-factory-store', conn, register=False)
    p = store.proxy('weights', superset_tags=('gpu',))
    factory = get_factory(p)
    # The MultiConnector routing constraints survive inside the factory so a
    # re-store elsewhere can honour them — and they round-trip a pickle.
    assert factory.connector_kwargs == {'superset_tags': ('gpu',)}
    restored = pickle.loads(pickle.dumps(factory))
    assert restored.connector_kwargs == {'superset_tags': ('gpu',)}
    store.close(clear=True)


def test_proxy_batch_connector_kwargs_carried_in_factory():
    from repro.connectors.multi import MultiConnector
    from repro.connectors.policy import Policy

    gpu_conn = LocalConnector()
    conn = MultiConnector({
        'gpu': (gpu_conn, Policy(superset_tags=('gpu',), priority=5)),
        'any': (LocalConnector(), Policy(priority=0)),
    })
    store = Store('batch-kwargs-store', conn, register=False)
    proxies = store.proxy_batch(['a', 'b'], superset_tags=('gpu',))
    # The batch path forwards the routing constraints to the connector ...
    for p in proxies:
        factory = get_factory(p)
        assert factory.key.connector_label == 'gpu'
        # ... and embeds them in every factory, like the scalar proxy().
        assert factory.connector_kwargs == {'superset_tags': ('gpu',)}
    assert [str(p) for p in proxies] == ['a', 'b']
    store.close(clear=True)


def test_proxy_batch_connector_kwargs_rejected_for_plain_connector(local_store):
    with pytest.raises(StoreError, match='subset_tags'):
        local_store.proxy_batch(['x'], subset_tags=('gpu',))


# --------------------------------------------------------------------------- #
# extract(evict=...): read-time parity with Store.proxy(evict=...)
# --------------------------------------------------------------------------- #
def test_extract_evict_removes_backing_key(local_store):
    p = local_store.proxy('read-once', cache_local=False)
    key = get_factory(p).key
    assert extract(p, evict=True) == 'read-once'
    assert not local_store.connector.exists(key)
    assert not local_store.is_cached(key)


def test_extract_without_evict_keeps_key(local_store):
    p = local_store.proxy('kept', cache_local=False)
    assert extract(p) == 'kept'
    assert local_store.connector.exists(get_factory(p).key)


def test_extract_evict_on_evicting_proxy_does_not_double_evict(local_store):
    # evict-on-resolve already removed the key during resolution; the
    # explicit evict request must not raise on the now-missing key.
    p = local_store.proxy('once', evict=True, cache_local=False)
    key = get_factory(p).key
    assert extract(p, evict=True) == 'once'
    assert not local_store.connector.exists(key)


def test_extract_evict_requires_store_backed_proxy():
    from repro.proxy import SimpleFactory

    p = Proxy(SimpleFactory('bare'))
    assert extract(p) == 'bare'  # no store involved: plain extraction works
    with pytest.raises(TypeError):
        extract(Proxy(SimpleFactory('bare')), evict=True)


def test_extract_evict_rejects_owned_proxies(local_store):
    from repro.exceptions import OwnershipError

    p = local_store.owned_proxy('owned', cache_local=False)
    with pytest.raises(OwnershipError):
        extract(p, evict=True)
    # The owner still controls the key.
    assert local_store.connector.exists(get_factory(p).key)
