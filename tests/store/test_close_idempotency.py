"""Close must be idempotent and safe from ``__del__`` (teardown races)."""
from __future__ import annotations

import gc

import repro
from repro.kvserver.client import KVClient
from repro.kvserver.server import KVServer


def test_store_close_twice_is_safe():
    store = repro.store_from_url('local:///close-twice-store')
    store.put(b'x')
    store.close()
    store.close()  # second close must be a no-op, not an error


def test_store_del_after_close_is_safe():
    store = repro.store_from_url('local:///close-del-store')
    store.close(clear=True)
    del store
    gc.collect()  # __del__ must not resurrect or re-close


def test_store_del_without_close_closes():
    from repro.store.registry import unregister_store

    store = repro.store_from_url('local:///close-implicit-store')
    store.put(b'x')
    # The registry deliberately pins registered stores (a global handle
    # must not vanish under other threads), so __del__ can only fire once
    # the handle is unregistered — e.g. leaked by a test that forgot
    # close().  It must then close the connector without raising.
    unregister_store(store.name)
    del store
    gc.collect()
    replacement = repro.store_from_url('local:///close-implicit-store')
    replacement.close(clear=True)


def test_kvclient_close_twice_and_del():
    server = KVServer()
    host, port = server.start()
    try:
        client = KVClient(host, port)
        client.set('k', b'v')
        assert client.get('k') == b'v'
        client.close()
        client.close()
        del client
        gc.collect()

        # __del__ without an explicit close must tear down cleanly too.
        other = KVClient(host, port)
        other.set('j', b'w')
        del other
        gc.collect()
    finally:
        server.stop()
