"""Tests of ProxyFuture: data-flow proxies for values produced later."""
from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.connectors.file import FileConnector
from repro.connectors.local import LocalConnector
from repro.connectors.margo import MargoConnector
from repro.exceptions import ProxyFutureError
from repro.exceptions import ProxyFutureTimeoutError
from repro.proxy import is_resolved
from repro.store import FutureFactory
from repro.store import ProxyFuture
from repro.store import Store
from repro.store import unregister_all


def test_future_set_then_resolve(local_store):
    future = local_store.future()
    proxy = future.proxy()
    assert not is_resolved(proxy)
    assert not future.done()
    future.set_result({'answer': 42})
    assert future.done()
    assert proxy == {'answer': 42}


def test_future_proxy_blocks_until_producer_writes(local_store):
    future = local_store.future(polling_interval=0.01, timeout=5.0)
    proxy = future.proxy()

    def produce():
        time.sleep(0.15)
        future.set_result('late value')

    producer = threading.Thread(target=produce)
    start = time.perf_counter()
    producer.start()
    try:
        assert proxy == 'late value'
    finally:
        producer.join()
    # The consumer genuinely waited for the producer.
    assert time.perf_counter() - start >= 0.1


def test_future_proxy_created_before_set_result_pickles(tmp_path):
    """The acceptance-criteria scenario: pickle a ProxyFuture proxy, drop all
    process state, and resolve it through a freshly re-created second store."""
    store = Store('future-producer-store', FileConnector(str(tmp_path / 'd')))
    future = store.future(polling_interval=0.01, timeout=5.0)
    wire = pickle.dumps(future.proxy())  # pickled while still unproduced
    future.set_result([10, 20, 30])
    store.close()  # keep the files; a "second process" store takes over
    unregister_all()

    restored = pickle.loads(wire)
    assert not is_resolved(restored)
    assert restored == [10, 20, 30]
    # Resolution re-created an equivalent store from the embedded config.
    from repro.store import get_store

    second = get_store('future-producer-store')
    assert second is not None and second is not store
    second.close(clear=True)


def test_future_result_blocking_read(local_store):
    future = local_store.future(polling_interval=0.01)
    threading.Timer(0.05, lambda: future.set_result('direct')).start()
    assert future.result(timeout=5.0) == 'direct'


def test_future_timeout(local_store):
    from repro.exceptions import ProxyResolveError

    future = local_store.future(polling_interval=0.01, timeout=0.1)
    proxy = future.proxy()
    # The timeout surfaces through the proxy's resolve machinery.
    with pytest.raises(ProxyResolveError, match='no producer wrote'):
        _ = len(proxy)
    with pytest.raises(ProxyFutureTimeoutError):
        future.result(timeout=0.05)


def test_future_double_set_raises(local_store):
    future = local_store.future()
    future.set_result(1)
    with pytest.raises(ProxyFutureError):
        future.set_result(2)


def test_future_set_exception_propagates(local_store):
    future = local_store.future(polling_interval=0.01, timeout=2.0)
    proxy = future.proxy()
    future.set_exception(RuntimeError('producer exploded'))
    with pytest.raises(Exception, match='producer exploded'):
        _ = len(proxy)
    with pytest.raises(ProxyFutureError, match='producer exploded'):
        future.result(timeout=1.0)


def test_future_evict_on_resolve(local_store):
    future = local_store.future(evict=True, polling_interval=0.01)
    proxy = future.proxy()
    future.set_result('ephemeral')
    assert proxy == 'ephemeral'
    assert not local_store.connector.exists(future.key)


def test_future_factory_is_store_factory_subclass(local_store):
    future = local_store.future()
    assert isinstance(future, ProxyFuture)
    from repro.proxy import get_factory

    factory = get_factory(future.proxy())
    assert isinstance(factory, FutureFactory)
    assert factory.polling_interval == future.polling_interval


def test_future_on_dim_connector():
    store = Store('future-dim-store', MargoConnector(node_id='future-node'))
    try:
        future = store.future(polling_interval=0.01)
        proxy = future.proxy()
        future.set_result({'node': 'future-node'})
        assert proxy == {'node': 'future-node'}
    finally:
        store.close(clear=True)


def test_future_on_multi_connector_routes_by_tags():
    from repro.connectors.multi import MultiConnector
    from repro.connectors.policy import Policy

    conn = MultiConnector({
        'tagged': (LocalConnector(), Policy(superset_tags=('gpu',), priority=9)),
        'default': (LocalConnector(), Policy(priority=1)),
    })
    store = Store('future-multi-store', conn)
    try:
        # Size is unknown at allocation time, so only tag/priority routing
        # applies: the 'gpu'-requiring policy cannot match an untagged write.
        future = store.future(polling_interval=0.01)
        assert future.key.connector_label == 'default'
        proxy = future.proxy()
        future.set_result({'routed': True})
        assert proxy == {'routed': True}
    finally:
        store.close(clear=True)


def test_future_connector_kwargs_route_tagged_futures():
    from repro.connectors.multi import MultiConnector
    from repro.connectors.policy import Policy

    conn = MultiConnector({
        'gpu': (LocalConnector(), Policy(superset_tags=('gpu',), priority=9)),
        'default': (LocalConnector(), Policy(priority=1)),
    })
    store = Store('future-tagged-store', conn, register=False)
    try:
        future = store.future(polling_interval=0.01, superset_tags=('gpu',))
        assert future.key.connector_label == 'gpu'
        proxy = future.proxy()
        future.set_result('gpu-bound')
        assert proxy == 'gpu-bound'
    finally:
        store.close(clear=True)


def test_future_unsupported_connector_raises():
    """Connectors without deferred writes reject Store.future() loudly."""

    class NoDeferralConnector(LocalConnector):
        def new_key(self):
            raise NotImplementedError('no deferred writes here')

    store = Store('no-deferral-store', NoDeferralConnector(), register=False)
    with pytest.raises(ProxyFutureError, match='deferred writes'):
        store.future()
    store.close(clear=True)


def test_colmena_result_future_pipelines(local_store):
    """A downstream consumer wired to an upstream task's future output."""
    from repro.workflow import ColmenaQueues
    from repro.workflow import TaskServer
    from repro.workflow import Thinker
    from repro.workflow import WorkflowEngine

    queues = ColmenaQueues()
    with WorkflowEngine(n_workers=2, extra_hops=0) as engine:
        server = TaskServer(queues, engine, fixed_overhead_s=0.0)
        server.register_topic(
            'square', lambda x: x * x, store=local_store, threshold_bytes=10_000,
        )
        thinker = Thinker(queues)
        with server:
            future = server.result_future('square', polling_interval=0.01)
            downstream = future.proxy()  # handed out before the task even runs
            thinker.submit('square', 12, result_future=future)
            # The consumer does not touch the results queue at all.
            assert downstream == 144
            record = thinker.wait_for_result()
            assert record.success


def test_colmena_result_future_requires_store():
    from repro.exceptions import WorkflowError
    from repro.workflow import ColmenaQueues
    from repro.workflow import TaskServer
    from repro.workflow import WorkflowEngine

    queues = ColmenaQueues()
    with WorkflowEngine(n_workers=1) as engine:
        server = TaskServer(queues, engine)
        server.register_topic('bare', lambda: None)
        with pytest.raises(WorkflowError, match='no store'):
            server.result_future('bare')
        with pytest.raises(WorkflowError, match='registered'):
            server.result_future('unknown-topic')


def test_colmena_task_failure_propagates_through_future(local_store):
    from repro.workflow import ColmenaQueues
    from repro.workflow import TaskServer
    from repro.workflow import Thinker
    from repro.workflow import WorkflowEngine

    def explode(x):
        raise ValueError('bad input')

    queues = ColmenaQueues()
    with WorkflowEngine(n_workers=1, extra_hops=0) as engine:
        server = TaskServer(queues, engine, fixed_overhead_s=0.0)
        server.register_topic('explode', explode, store=local_store)
        thinker = Thinker(queues)
        with server:
            future = server.result_future('explode', polling_interval=0.01)
            thinker.submit('explode', 1, result_future=future)
            record = thinker.wait_for_result()
            assert not record.success
            with pytest.raises(ProxyFutureError, match='bad input'):
                future.result(timeout=2.0)
