"""Tests of striping large objects across DIM nodes."""
from __future__ import annotations

import pytest

from repro.dim import DIMClient
from repro.dim import get_local_node
from repro.dim import reset_nodes
from repro.exceptions import ConnectorError
from repro.serialize.buffers import SerializedObject


@pytest.fixture(autouse=True)
def _clean_nodes():
    yield
    reset_nodes()


def _pattern(nbytes: int) -> bytes:
    return bytes(bytearray(range(256)) * (nbytes // 256 + 1))[:nbytes]


@pytest.mark.parametrize('n_nodes', [1, 2, 4])
def test_tcp_shard_roundtrip_integrity(n_nodes):
    peers = [f'shard-node-{i}' for i in range(n_nodes)]
    client = DIMClient(
        'shard-node-0', transport='tcp', peers=peers, shard_threshold=1024,
    )
    payload = _pattern(64 * 1024 + 13)
    try:
        key = client.put(payload)
        assert key.shards is not None
        assert len(key.shards) == n_nodes
        assert sum(shard.nbytes for shard in key.shards) == len(payload)
        got = client.get(key)
        assert bytes(got) == payload
    finally:
        client.close()


def test_shards_land_on_every_node():
    peers = [f'spread-{i}' for i in range(4)]
    client = DIMClient('spread-0', transport='tcp', peers=peers, shard_threshold=64)
    try:
        key = client.put(_pattern(4096))
        nodes = {shard.node_id for shard in key.shards}
        assert nodes == set(peers)
        for peer in peers:
            assert len(get_local_node(peer, 'tcp')) == 1
    finally:
        client.close()


def test_small_objects_stay_on_one_node():
    client = DIMClient(
        'small-0', transport='tcp', peers=['small-0', 'small-1'],
        shard_threshold=1024 * 1024,
    )
    try:
        key = client.put(b'tiny')
        assert key.shards is None
        assert bytes(client.get(key)) == b'tiny'
    finally:
        client.close()


def test_no_peers_disables_sharding():
    client = DIMClient('lonely', transport='tcp', shard_threshold=1)
    try:
        key = client.put(_pattern(4096))
        assert key.shards is None
    finally:
        client.close()


def test_zero_threshold_disables_sharding():
    client = DIMClient(
        'thresh-0', transport='tcp', peers=['thresh-0', 'thresh-1'],
        shard_threshold=0,
    )
    try:
        assert client.put(_pattern(4096)).shards is None
    finally:
        client.close()


def test_sharded_exists_and_evict():
    peers = ['ev-0', 'ev-1', 'ev-2']
    client = DIMClient('ev-0', transport='tcp', peers=peers, shard_threshold=16)
    try:
        key = client.put(_pattern(3000))
        assert client.exists(key)
        client.evict(key)
        assert not client.exists(key)
        assert client.get(key) is None
        for peer in peers:
            assert len(get_local_node(peer, 'tcp')) == 0
    finally:
        client.close()


def test_memory_transport_sharding():
    peers = ['mem-0', 'mem-1']
    producer = DIMClient('mem-0', peers=peers, shard_threshold=8)
    consumer = DIMClient('mem-consumer')
    payload = _pattern(999)
    try:
        key = producer.put(payload)
        assert key.shards is not None and len(key.shards) == 2
        # A different client in the process reads the striped object.
        assert bytes(consumer.get(key)) == payload
    finally:
        producer.close()
        consumer.close()


def test_sharded_get_is_zero_join():
    """Sharded gets reassemble as segment views, not one joined copy."""
    client = DIMClient('zj-0', transport='tcp', peers=['zj-0', 'zj-1'], shard_threshold=8)
    try:
        key = client.put(_pattern(512))
        got = client.get(key)
        assert isinstance(got, SerializedObject)
        assert len(got.segments()) >= 2
    finally:
        client.close()


def test_addressed_peer_tuples():
    """Peers in other processes are addressed as (node_id, host, port)."""
    remote = get_local_node('addr-remote', 'tcp')
    host, port = remote.address
    client = DIMClient(
        'addr-local', transport='tcp',
        peers=[('addr-remote', host, port), 'addr-local'],
        shard_threshold=16,
    )
    payload = _pattern(2048)
    try:
        key = client.put(payload)
        assert {shard.node_id for shard in key.shards} == {'addr-remote', 'addr-local'}
        assert bytes(client.get(key)) == payload
        assert len(remote) == 1
    finally:
        client.close()


def test_addressed_peers_require_tcp():
    client = DIMClient('memaddr', peers=[('x', 'localhost', 1)], shard_threshold=1)
    try:
        with pytest.raises(ConnectorError):
            client.put(_pattern(64))
    finally:
        client.close()


def test_malformed_peer_rejected():
    client = DIMClient('badpeer', transport='tcp', peers=[1234], shard_threshold=1)
    try:
        with pytest.raises(ConnectorError):
            client.put(_pattern(64))
    finally:
        client.close()


def test_batch_roundtrip_mixed_sizes():
    peers = ['batch-0', 'batch-1']
    client = DIMClient('batch-0', transport='tcp', peers=peers, shard_threshold=1024)
    small = [b'a', b'bb', b'ccc']
    big = _pattern(8192)
    try:
        keys = client.put_batch([*small, big])
        assert [k.shards for k in keys[:3]] == [None, None, None]
        assert keys[3].shards is not None
        values = client.get_batch(keys)
        assert [bytes(v) for v in values[:3]] == small
        assert bytes(values[3]) == big
        client.evict_batch(keys)
        assert client.get_batch(keys) == [None, None, None, None]
    finally:
        client.close()


def test_get_batch_uses_one_mget_per_node(monkeypatch):
    client = DIMClient('mget-0', transport='tcp')
    calls: list[list[str]] = []
    try:
        keys = client.put_batch([b'one', b'two', b'three'])
        kv = client._tcp_client(client.local_node.address)
        original = kv.mget

        def spy(ids):
            ids = list(ids)
            calls.append(ids)
            return original(ids)

        monkeypatch.setattr(kv, 'mget', spy)
        values = client.get_batch(keys)
        assert [bytes(v) for v in values] == [b'one', b'two', b'three']
        assert len(calls) == 1 and len(calls[0]) == 3
    finally:
        client.close()


def test_connector_level_sharding_from_url():
    from repro.store import Store

    store = Store.from_url(
        'zmq://conn-shard-0?peers=conn-shard-0,conn-shard-1&shard_threshold=256',
        name='sharded-store',
        register=False,
    )
    payload = _pattern(100_000)
    try:
        key = store.put(payload)
        assert key.shards is not None and len(key.shards) == 2
        assert bytes(store.get(key)) == payload
        config = store.connector.config()
        assert config['peers'] == ['conn-shard-0', 'conn-shard-1']
        assert config['shard_threshold'] == 256
    finally:
        store.close(clear=True)
