"""Tests of the distributed in-memory store substrate."""
from __future__ import annotations

import pytest

from repro.dim import DIMClient
from repro.dim import get_local_node
from repro.dim import reset_nodes
from repro.dim.node import DIMKey
from repro.dim.node import lookup_node
from repro.exceptions import ConnectorError


@pytest.fixture(autouse=True)
def _clean_nodes():
    yield
    reset_nodes()


def test_get_local_node_is_singleton_per_id():
    a = get_local_node('node-a')
    b = get_local_node('node-a')
    assert a is b
    assert get_local_node('node-b') is not a


def test_memory_node_put_get_evict():
    node = get_local_node('n1')
    node.put_local('obj', b'data')
    assert node.exists_local('obj')
    assert node.get_local('obj') == b'data'
    node.evict_local('obj')
    assert node.get_local('obj') is None
    assert len(node) == 0


def test_invalid_transport_rejected():
    from repro.dim.node import DIMNode

    with pytest.raises(ValueError):
        DIMNode('x', transport='carrier-pigeon')


def test_client_put_records_node_identity():
    client = DIMClient('node-a')
    key = client.put(b'payload')
    assert key.node_id == 'node-a'
    assert key.transport == 'memory'
    assert key.address is None


def test_client_cross_node_get_memory_transport():
    producer = DIMClient('producer-node')
    consumer = DIMClient('consumer-node')
    key = producer.put(b'produced here')
    # The consumer fetches from the producer's node server directly.
    assert consumer.get(key) == b'produced here'
    assert consumer.exists(key)
    consumer.evict(key)
    assert not producer.exists(key)
    producer.close()
    consumer.close()


def test_memory_transport_unknown_node_raises():
    client = DIMClient('local')
    bogus = DIMKey('obj', 'never-created', 'memory', None)
    with pytest.raises(ConnectorError):
        client.get(bogus)
    client.close()


def test_tcp_transport_roundtrip():
    producer = DIMClient('tcp-node-a', transport='tcp')
    consumer = DIMClient('tcp-node-b', transport='tcp')
    try:
        key = producer.put(b'over tcp')
        assert key.transport == 'tcp'
        assert key.address is not None
        assert consumer.get(key) == b'over tcp'
        assert consumer.exists(key)
        consumer.evict(key)
        assert consumer.get(key) is None
    finally:
        producer.close()
        consumer.close()


def test_tcp_key_without_address_rejected():
    client = DIMClient('tcp-node', transport='tcp')
    try:
        with pytest.raises(ConnectorError):
            client.get(DIMKey('obj', 'tcp-node', 'tcp', None))
        assert client.exists(DIMKey('obj', 'tcp-node', 'tcp', None)) is False
    finally:
        client.close()


def test_reset_nodes_clears_registry():
    get_local_node('temp-node')
    assert lookup_node('temp-node', 'memory') is not None
    reset_nodes()
    assert lookup_node('temp-node', 'memory') is None
