"""Tests of the SimKV TCP key-value server and client."""
from __future__ import annotations

import threading

import pytest

from repro.exceptions import ConnectorError
from repro.kvserver import KVClient
from repro.kvserver import KVServer
from repro.kvserver import launch_server


@pytest.fixture()
def server():
    srv = KVServer()
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    cli = KVClient(server.host, server.port)
    yield cli
    cli.close()


def test_server_start_assigns_port(server):
    assert server.port is not None and server.port > 0
    assert server.running


def test_server_start_idempotent(server):
    host, port = server.start()
    assert port == server.port


def test_ping(client):
    assert client.ping() is True


def test_set_get_roundtrip(client):
    client.set('key', b'value bytes')
    assert client.get('key') == b'value bytes'


def test_get_missing_returns_none(client):
    assert client.get('missing') is None


def test_exists_and_delete(client):
    client.set('k', b'v')
    assert client.exists('k')
    assert client.delete('k') is True
    assert client.delete('k') is False
    assert not client.exists('k')


def test_flush_and_size(client):
    for i in range(5):
        client.set(f'k{i}', b'x')
    assert client.size() == 5
    assert client.flush() == 5
    assert client.size() == 0


def test_large_values_roundtrip(client):
    payload = bytes(bytearray(range(256)) * 8192)  # 2 MiB
    client.set('big', payload)
    assert client.get('big') == payload


def test_overwrite_value(client):
    client.set('k', b'one')
    client.set('k', b'two')
    assert client.get('k') == b'two'


def test_set_rejects_non_bytes(client):
    with pytest.raises(ConnectorError):
        client._request('SET', 'k', 'not-bytes')


def test_unknown_command_errors(client):
    with pytest.raises(ConnectorError):
        client._request('BOGUS')


def test_malformed_request_errors(server):
    import socket

    from repro.kvserver.protocol import recv_message
    from repro.kvserver.protocol import send_message

    with socket.create_connection((server.host, server.port)) as sock:
        send_message(sock, ('only', 'two'))
        request_id, status, payload = recv_message(sock)
        assert request_id is None
        assert status == 'error'
        assert 'malformed' in payload


def test_multiple_clients_share_data(server):
    a = KVClient(server.host, server.port)
    b = KVClient(server.host, server.port)
    try:
        a.set('shared', b'42')
        assert b.get('shared') == b'42'
    finally:
        a.close()
        b.close()


def test_concurrent_clients(server):
    errors = []

    def worker(n):
        try:
            client = KVClient(server.host, server.port)
            for i in range(50):
                key = f'w{n}-{i}'
                client.set(key, f'value-{n}-{i}'.encode())
                assert client.get(key) == f'value-{n}-{i}'.encode()
            client.close()
        except Exception as e:  # pragma: no cover - only on failure
            errors.append(e)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(server) == 8 * 50


def test_client_connect_failure_raises():
    client = KVClient('127.0.0.1', 1)  # almost certainly nothing listening
    with pytest.raises(ConnectorError):
        client.ping()


def test_server_stop_clears_data(server):
    client = KVClient(server.host, server.port)
    client.set('k', b'v')
    client.close()
    server.stop()
    assert not server.running
    assert len(server) == 0


def test_server_context_manager():
    with KVServer() as srv:
        assert srv.running
        client = KVClient(srv.host, srv.port)
        assert client.ping()
        client.close()
    assert not srv.running


def test_launch_server_reuses_existing_for_fixed_port():
    first = launch_server()
    try:
        again = launch_server(first.host, first.port)
        assert again is first
    finally:
        first.stop()


def test_launch_server_ephemeral_ports_are_distinct():
    a = launch_server()
    b = launch_server()
    try:
        assert a.port != b.port
    finally:
        a.stop()
        b.stop()
