"""Tests of the concurrent SimKV transport: pipelining, drain, retry."""
from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.exceptions import ConnectorError
from repro.kvserver import KVClient
from repro.kvserver import KVServer
from repro.kvserver.protocol import recv_message
from repro.kvserver.protocol import send_message


@pytest.fixture()
def server():
    srv = KVServer()
    srv.start()
    yield srv
    srv.stop()


def test_many_threads_pipeline_one_client(server):
    """N threads issue mixed get/put/exists through ONE shared client."""
    client = KVClient(server.host, server.port)
    errors: list[Exception] = []

    def worker(n: int) -> None:
        try:
            for i in range(40):
                key = f'w{n}-{i}'
                value = f'value-{n}-{i}'.encode()
                client.set(key, value)
                assert client.exists(key)
                got = client.get(key)
                assert bytes(got) == value
                assert client.get(f'missing-{n}-{i}') is None
        except Exception as e:  # pragma: no cover - only on failure
            errors.append(e)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(12)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(server) == 12 * 40
    client.close()


def test_pipelined_responses_match_requests(server):
    """Interleaved large and small values never cross request ids."""
    client = KVClient(server.host, server.port, pool_size=1)
    big = bytes(bytearray(range(256)) * 4096)  # 1 MiB
    client.set('big', big)
    errors: list[Exception] = []

    def reader(n: int) -> None:
        try:
            for _ in range(20):
                assert bytes(client.get('big')) == big
                client.set(f'small-{n}', b'tiny')
                assert bytes(client.get(f'small-{n}')) == b'tiny'
        except Exception as e:  # pragma: no cover - only on failure
            errors.append(e)

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    client.close()


def test_connection_pool_spreads_requests(server):
    client = KVClient(server.host, server.port, pool_size=3)
    for i in range(9):
        client.set(f'k{i}', b'v')
    live = [c for c in client._pool if c is not None]
    assert len(live) == 3
    client.close()


def test_pool_size_must_be_positive(server):
    with pytest.raises(ValueError):
        KVClient(server.host, server.port, pool_size=0)


def test_graceful_shutdown_drains_in_flight_request():
    """A request already on the wire when stop() begins still gets answered."""
    server = KVServer()
    server.start()
    with socket.create_connection((server.host, server.port)) as sock:
        send_message(sock, (7, 'SET', 'k', b'drained'))
        send_message(sock, (8, 'GET', 'k', None))
        stopper = threading.Thread(target=server.stop)
        stopper.start()
        first = recv_message(sock)
        second = recv_message(sock)
        stopper.join(timeout=10)
        assert first == (7, 'ok', True)
        assert second is not None
        request_id, status, payload = second
        assert (request_id, status) == (8, 'ok')
        assert bytes(payload) == b'drained'
        # After the drain the server closes the connection.
        assert recv_message(sock) is None
    assert not server.running


def test_shutdown_drains_many_pipelined_clients():
    server = KVServer()
    server.start()
    client = KVClient(server.host, server.port)
    results: list[bool] = []
    errors: list[Exception] = []
    barrier = threading.Barrier(9)

    def worker(n: int) -> None:
        barrier.wait()
        try:
            client.set(f'k{n}', b'x')
            results.append(True)
        except ConnectorError:
            # A request that arrived after the drain window closed is
            # reported as a failure, never silently dropped or hung.
            errors.append(ConnectorError('late'))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    barrier.wait()
    time.sleep(0.05)  # let most requests reach the wire
    server.stop()
    for t in threads:
        t.join(timeout=15)
        assert not t.is_alive()
    assert len(results) + len(errors) == 8
    assert results  # the in-flight requests were drained, not dropped
    client.close()


def test_request_retries_once_on_stale_connection(server):
    """A dead pooled socket is transparently replaced and the op retried."""
    client = KVClient(server.host, server.port, pool_size=1)
    client.set('k', b'v1')
    connection = client._pool[0]
    assert connection is not None
    # Kill the underlying socket without telling the client.
    connection.sock.shutdown(socket.SHUT_RDWR)
    client.set('k', b'v2')  # would have raised ConnectorError before
    assert bytes(client.get('k')) == b'v2'
    client.close()


def test_request_after_server_restart_reconnects():
    server = KVServer()
    host, port = server.start()
    client = KVClient(host, port)
    client.set('k', b'v')
    server.stop()
    restarted = KVServer(host, port)
    restarted.start()
    try:
        client.set('k2', b'v2')  # first request after restart succeeds
        assert bytes(restarted_get := client.get('k2')) == b'v2', restarted_get
    finally:
        client.close()
        restarted.stop()


def test_connect_failure_does_not_retry_forever():
    client = KVClient('127.0.0.1', 1)
    start = time.perf_counter()
    with pytest.raises(ConnectorError):
        client.ping()
    assert time.perf_counter() - start < 5.0


def test_request_timeout_surfaces_as_connector_error():
    """A server that never answers trips the client-side wait timeout."""
    listener = socket.socket()
    listener.bind(('127.0.0.1', 0))
    listener.listen(1)
    host, port = listener.getsockname()
    client = KVClient(host, port, timeout=0.2)
    try:
        with pytest.raises(ConnectorError):
            client.ping()
    finally:
        client.close()
        listener.close()


def test_inactivity_timeout_allows_slow_streaming_responses():
    """The timeout bounds idle time, not total transfer duration."""
    import pickle

    from repro.kvserver.protocol import encode_message

    listener = socket.socket()
    listener.bind(('127.0.0.1', 0))
    listener.listen(1)
    host, port = listener.getsockname()
    payload = b'x' * 40_000

    def serve() -> None:
        conn, _addr = listener.accept()
        with conn:
            request = recv_message(conn)
            assert request is not None
            segments = encode_message(
                (request[0], 'ok', pickle.PickleBuffer(payload)),
            )
            blob = b''.join(bytes(s) for s in segments)
            # Drip the response: ~0.9 s total, but never >0.3 s idle.
            for i in range(0, len(blob), 2500):
                conn.sendall(blob[i:i + 2500])
                time.sleep(0.05)

    server_thread = threading.Thread(target=serve, daemon=True)
    server_thread.start()
    client = KVClient(host, port, timeout=0.3)
    try:
        start = time.perf_counter()
        got = client.get('whatever')
        elapsed = time.perf_counter() - start
        assert bytes(got) == payload
        assert elapsed > 0.3  # took longer than the timeout, yet succeeded
    finally:
        client.close()
        listener.close()
        server_thread.join(timeout=5)


def test_malformed_frame_kills_only_that_connection(server):
    """Garbage on one connection must not take down the event loop."""
    import struct

    healthy = KVClient(server.host, server.port)
    healthy.set('before', b'1')
    with socket.create_connection((server.host, server.port)) as bad:
        # Valid header announcing an 8-byte pickle, followed by garbage
        # that cannot unpickle.
        bad.sendall(struct.pack('>II', 8, 0) + b'\xffGARBAGE')
        # The server closes the offending connection...
        assert recv_message(bad) is None
    # ...but keeps serving everyone else.
    assert bytes(healthy.get('before')) == b'1'
    healthy.set('after', b'2')
    assert server.running
    healthy.close()


def test_oversized_frame_header_rejected(server):
    """A bogus multi-GB frame header is rejected, not allocated."""
    import struct

    healthy = KVClient(server.host, server.port)
    with socket.create_connection((server.host, server.port)) as bad:
        bad.sendall(struct.pack('>II', 0xFFFFFFFF, 0xFFFFFFFF))
        assert recv_message(bad) is None  # connection dropped
    assert healthy.ping()
    assert server.running
    healthy.close()


def test_request_level_exception_returns_error_response(server):
    """A request the handler chokes on yields an error, not a dead server."""
    client = KVClient(server.host, server.port)
    with pytest.raises(ConnectorError, match='internal error'):
        client._request('SET', ['unhashable', 'key'], b'x')
    assert client.ping()
    assert server.running
    client.close()
