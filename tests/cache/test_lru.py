"""Tests of the thread-safe LRU cache."""
from __future__ import annotations

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache import LRUCache


def test_basic_set_get():
    cache = LRUCache(2)
    cache.set('a', 1)
    assert cache.get('a') == 1
    assert cache.get('missing') is None
    assert cache.get('missing', default='d') == 'd'


def test_eviction_of_least_recently_used():
    cache = LRUCache(2)
    cache.set('a', 1)
    cache.set('b', 2)
    cache.get('a')       # refresh 'a'
    cache.set('c', 3)    # evicts 'b'
    assert cache.exists('a')
    assert not cache.exists('b')
    assert cache.exists('c')
    assert cache.stats.evictions == 1


def test_zero_size_cache_disables_caching():
    cache = LRUCache(0)
    cache.set('a', 1)
    assert not cache.exists('a')
    assert cache.get('a') is None
    assert len(cache) == 0


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        LRUCache(-1)


def test_update_existing_key_does_not_grow():
    cache = LRUCache(2)
    cache.set('a', 1)
    cache.set('a', 2)
    assert len(cache) == 1
    assert cache.get('a') == 2


def test_evict_and_clear():
    cache = LRUCache(4)
    cache.set('a', 1)
    cache.set('b', 2)
    assert cache.evict('a') is True
    assert cache.evict('a') is False
    cache.clear()
    assert len(cache) == 0


def test_stats_hit_rate():
    cache = LRUCache(4)
    assert cache.stats.hit_rate == 0.0
    cache.set('a', 1)
    cache.get('a')
    cache.get('b')
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == pytest.approx(0.5)


def test_exists_does_not_change_stats():
    cache = LRUCache(4)
    cache.set('a', 1)
    cache.exists('a')
    cache.exists('b')
    assert cache.stats.accesses == 0


def test_contains_and_iter():
    cache = LRUCache(4)
    cache.set('a', 1)
    cache.set('b', 2)
    assert 'a' in cache
    assert set(iter(cache)) == {'a', 'b'}


def test_thread_safety_under_concurrent_access():
    cache = LRUCache(64)
    errors = []

    def worker(offset):
        try:
            for i in range(500):
                cache.set((offset, i % 32), i)
                cache.get((offset, (i + 1) % 32))
        except Exception as e:  # pragma: no cover - only on failure
            errors.append(e)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(cache) <= 64


@given(
    maxsize=st.integers(1, 16),
    operations=st.lists(
        st.tuples(st.integers(0, 31), st.integers()),
        max_size=200,
    ),
)
def test_cache_never_exceeds_maxsize_property(maxsize, operations):
    cache = LRUCache(maxsize)
    for key, value in operations:
        cache.set(key, value)
        assert len(cache) <= maxsize


@given(
    keys=st.lists(st.integers(0, 7), min_size=1, max_size=100),
)
def test_most_recently_set_key_is_always_present(keys):
    cache = LRUCache(4)
    for key in keys:
        cache.set(key, key * 2)
        assert cache.exists(key)
        assert cache.get(key) == key * 2


# --------------------------------------------------------------------------- #
# Byte-bounded caching (max_bytes)
# --------------------------------------------------------------------------- #
def test_max_bytes_evicts_by_size():
    cache = LRUCache(100, max_bytes=1000)
    cache.set('a', b'x' * 400)
    cache.set('b', b'x' * 400)
    assert cache.resident_bytes == 800
    cache.set('c', b'x' * 400)   # exceeds 1000 resident -> evicts 'a'
    assert not cache.exists('a')
    assert cache.exists('b') and cache.exists('c')
    assert cache.resident_bytes == 800
    assert cache.stats.evictions == 1


def test_value_larger_than_max_bytes_is_not_cached():
    cache = LRUCache(100, max_bytes=1000)
    cache.set('small-1', b'x' * 100)
    cache.set('small-2', b'x' * 100)
    cache.set('huge', b'x' * 10_000)   # must NOT evict the working set
    assert not cache.exists('huge')
    assert cache.exists('small-1') and cache.exists('small-2')
    assert cache.resident_bytes == 200
    assert cache.stats.evictions == 0


def test_oversized_update_drops_stale_entry():
    cache = LRUCache(100, max_bytes=1000)
    cache.set('k', b'x' * 100)
    cache.set('k', b'x' * 5000)   # grew past the bound: stale copy removed
    assert not cache.exists('k')
    assert cache.resident_bytes == 0


def test_resident_bytes_tracks_updates_and_evictions():
    cache = LRUCache(100, max_bytes=10_000)
    cache.set('k', b'x' * 100)
    cache.set('k', b'x' * 300)   # update replaces, not accumulates
    assert cache.resident_bytes == 300
    cache.evict('k')
    assert cache.resident_bytes == 0
    cache.set('a', b'x' * 50)
    cache.clear()
    assert cache.resident_bytes == 0


def test_max_bytes_uses_nbytes_attribute():
    class Tensor:
        nbytes = 700

    cache = LRUCache(100, max_bytes=1000)
    cache.set('t1', Tensor())
    cache.set('t2', Tensor())   # 1400 > 1000 -> evicts t1
    assert not cache.exists('t1')
    assert cache.exists('t2')


def test_negative_max_bytes_rejected():
    with pytest.raises(ValueError):
        LRUCache(4, max_bytes=-1)


def test_entry_bound_still_applies_with_max_bytes():
    cache = LRUCache(2, max_bytes=1_000_000)
    for i in range(5):
        cache.set(i, b'x')
    assert len(cache) == 2
