"""Property-based tests of proxy transparency using hypothesis."""
from __future__ import annotations

import pickle

from hypothesis import given
from hypothesis import settings
from hypothesis import strategies as st

from repro.proxy import Proxy
from repro.proxy import SimpleFactory
from repro.proxy import extract
from repro.proxy import is_resolved

# Values that are hashable, comparable, and picklable.
scalars = st.one_of(
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=64),
    st.booleans(),
    st.none(),
)

containers = st.one_of(
    st.lists(st.integers(), max_size=20),
    st.dictionaries(st.text(max_size=8), st.integers(), max_size=10),
    st.tuples(st.integers(), st.text(max_size=8)),
    st.sets(st.integers(), max_size=10),
)


@given(value=scalars)
def test_proxy_equals_target(value):
    p = Proxy(SimpleFactory(value))
    assert p == value
    assert extract(p) == value


@given(value=scalars)
def test_proxy_class_matches_target_class(value):
    p = Proxy(SimpleFactory(value))
    assert isinstance(p, type(value))
    assert p.__class__ is type(value)


@given(value=st.one_of(st.integers(), st.text(max_size=32), st.booleans()))
def test_proxy_hash_matches_target_hash(value):
    p = Proxy(SimpleFactory(value))
    assert hash(p) == hash(value)


@given(value=containers)
def test_proxy_len_and_iteration_match(value):
    p = Proxy(SimpleFactory(value))
    assert len(p) == len(value)
    assert sorted(map(repr, iter(p))) == sorted(map(repr, iter(value)))


@given(value=st.lists(st.integers(), min_size=1, max_size=20))
def test_proxy_indexing_matches(value):
    p = Proxy(SimpleFactory(value))
    for i in range(len(value)):
        assert p[i] == value[i]
    assert p[-1] == value[-1]


@given(a=st.integers(-10**6, 10**6), b=st.integers(-10**6, 10**6))
def test_proxy_arithmetic_matches_int_semantics(a, b):
    p = Proxy(SimpleFactory(a))
    assert p + b == a + b
    assert b + p == b + a
    assert p * b == a * b
    assert p - b == a - b
    if b != 0:
        assert p // b == a // b
        assert p % b == a % b


@given(value=scalars)
def test_proxy_str_and_repr_match(value):
    p = Proxy(SimpleFactory(value))
    assert str(p) == str(value)
    assert repr(p) == repr(value)


@settings(max_examples=50)
@given(value=st.one_of(scalars, containers))
def test_proxy_pickle_roundtrip_preserves_value(value):
    p = Proxy(SimpleFactory(value))
    restored = pickle.loads(pickle.dumps(p))
    assert not is_resolved(restored)
    assert extract(restored) == value


@settings(max_examples=50)
@given(value=st.one_of(scalars, containers))
def test_proxy_pickle_after_resolution_still_lazy(value):
    p = Proxy(SimpleFactory(value))
    _ = extract(p)  # force resolution before pickling
    restored = pickle.loads(pickle.dumps(p))
    # Pickling captures only the factory, so the restored proxy is unresolved.
    assert not is_resolved(restored)
    assert extract(restored) == value


@given(value=st.booleans() | st.integers() | st.lists(st.integers(), max_size=5))
def test_proxy_truthiness_matches(value):
    p = Proxy(SimpleFactory(value))
    assert bool(p) == bool(value)
