"""Tests of OwnedProxy, borrows, and the ownership rules."""
from __future__ import annotations

import copy
import gc
import pickle

import pytest

from repro.exceptions import BorrowError
from repro.exceptions import OwnershipError
from repro.exceptions import UseAfterFreeError
from repro.proxy import OwnedProxy
from repro.proxy import Proxy
from repro.proxy import RefMutProxy
from repro.proxy import RefProxy
from repro.proxy import SimpleFactory
from repro.proxy import borrow
from repro.proxy import clone
from repro.proxy import drop
from repro.proxy import flush
from repro.proxy import get_factory
from repro.proxy import extract
from repro.proxy import into_owned
from repro.proxy import is_owned
from repro.proxy import is_proxy
from repro.proxy import mut_borrow
from repro.store import StoreFactory


def owned(store, obj, **kwargs):
    kwargs.setdefault('cache_local', False)
    return store.owned_proxy(obj, **kwargs)


def key_of(proxy):
    return get_factory(proxy).key


class TestOwnedProxyLifecycle:
    def test_behaves_like_target(self, local_store):
        p = owned(local_store, [1, 2, 3])
        assert isinstance(p, list)
        assert p + [4] == [1, 2, 3, 4]
        assert is_proxy(p) and is_owned(p)

    def test_drop_evicts_key(self, local_store):
        p = owned(local_store, 'ephemeral')
        key = key_of(p)
        assert local_store.connector.exists(key)
        drop(p)
        assert not local_store.connector.exists(key)

    def test_drop_is_idempotent(self, local_store):
        p = owned(local_store, 'x')
        drop(p)
        drop(p)

    def test_context_manager_drops_on_exit(self, local_store):
        with owned(local_store, {'a': 1}) as p:
            key = key_of(p)
            assert p['a'] == 1
        assert not local_store.connector.exists(key)

    def test_garbage_collection_drops_owner(self, local_store):
        p = owned(local_store, 'collected')
        key = key_of(p)
        del p
        gc.collect()
        assert not local_store.connector.exists(key)

    def test_use_after_free_raises_dedicated_error(self, local_store):
        p = owned(local_store, [1, 2, 3])
        drop(p)
        with pytest.raises(UseAfterFreeError):
            len(p)

    def test_resolved_owner_still_invalid_after_drop(self, local_store):
        # Even a proxy that already cached its target refuses access once
        # freed: the ownership check comes before target lookup.
        p = owned(local_store, 'resolved')
        assert p == 'resolved'
        drop(p)
        with pytest.raises(UseAfterFreeError):
            str(p)

    def test_factory_carries_ownership_flag(self, local_store):
        p = owned(local_store, 'flagged')
        assert get_factory(p).owned is True

    def test_owned_factory_rejects_evict(self, local_store):
        key = local_store.put('x')
        with pytest.raises(ValueError):
            StoreFactory(key, local_store.config(), evict=True, owned=True)

    def test_owned_proxy_rejects_evicting_factory(self, local_store):
        key = local_store.put('x')
        factory = StoreFactory(key, local_store.config(), evict=True)
        with pytest.raises(OwnershipError):
            OwnedProxy(factory)

    def test_owned_proxy_requires_store_backed_factory(self):
        with pytest.raises(OwnershipError):
            OwnedProxy(SimpleFactory('bare'))

    def test_cannot_copy_owner(self, local_store):
        p = owned(local_store, 'unique')
        with pytest.raises(OwnershipError):
            copy.copy(p)
        with pytest.raises(OwnershipError):
            copy.deepcopy(p)


class TestBorrowRules:
    def test_many_shared_borrows(self, local_store):
        p = owned(local_store, {'k': 'v'})
        views = [borrow(p) for _ in range(4)]
        assert all(v == {'k': 'v'} for v in views)

    def test_mut_borrow_is_exclusive(self, local_store):
        p = owned(local_store, [1])
        m = mut_borrow(p)
        with pytest.raises(BorrowError):
            borrow(p)
        with pytest.raises(BorrowError):
            mut_borrow(p)
        del m
        gc.collect()
        assert borrow(p) == [1]

    def test_shared_borrows_block_mut_borrow(self, local_store):
        p = owned(local_store, [1])
        view = borrow(p)
        with pytest.raises(BorrowError):
            mut_borrow(p)
        del view
        gc.collect()
        assert isinstance(mut_borrow(p), RefMutProxy)

    def test_borrow_after_drop_raises(self, local_store):
        p = owned(local_store, 'gone')
        drop(p)
        with pytest.raises(UseAfterFreeError):
            borrow(p)
        with pytest.raises(UseAfterFreeError):
            mut_borrow(p)

    def test_borrows_invalidated_by_owner_drop(self, local_store):
        p = owned(local_store, 'shared')
        view = borrow(p)
        assert view == 'shared'
        drop(p)
        with pytest.raises(UseAfterFreeError):
            view.upper()

    def test_borrow_requires_owner(self, local_store):
        plain = local_store.proxy('plain', cache_local=False)
        with pytest.raises(OwnershipError):
            borrow(plain)
        with pytest.raises(OwnershipError):
            mut_borrow('not a proxy')

    def test_mut_borrow_flush_writes_back(self, local_store):
        p = owned(local_store, [1, 2])
        m = mut_borrow(p)
        m.append(3)
        flush(m)
        del m
        gc.collect()
        assert borrow(p) == [1, 2, 3]

    def test_flush_requires_resolved_mut_borrow(self, local_store):
        p = owned(local_store, [1])
        m = mut_borrow(p)
        with pytest.raises(OwnershipError):
            flush(m)  # never resolved, nothing was mutated
        with pytest.raises(OwnershipError):
            flush(p)  # owners are not mutable borrows


class TestCloneAndUpgrade:
    def test_clone_is_independent(self, local_store):
        p = owned(local_store, {'n': 1})
        c = clone(p)
        assert key_of(c) != key_of(p)
        drop(p)
        assert c == {'n': 1}
        drop(c)
        assert not local_store.connector.exists(key_of(c))

    def test_clone_blocked_by_mut_borrow(self, local_store):
        p = owned(local_store, [1])
        m = mut_borrow(p)
        with pytest.raises(BorrowError):
            clone(p)
        del m
        gc.collect()
        assert clone(p) == [1]

    def test_into_owned_upgrades_legacy_proxy(self, local_store):
        plain = local_store.proxy('legacy', cache_local=False)
        p = into_owned(plain)
        assert isinstance(p, OwnedProxy)
        assert get_factory(p).owned is True
        key = key_of(p)
        drop(p)
        assert not local_store.connector.exists(key)

    def test_into_owned_rejects_evict_proxy(self, local_store):
        ephemeral = local_store.proxy('x', evict=True, cache_local=False)
        with pytest.raises(OwnershipError):
            into_owned(ephemeral)

    def test_into_owned_rejects_tracked_proxies(self, local_store):
        p = owned(local_store, 'x')
        with pytest.raises(OwnershipError):
            into_owned(p)
        with pytest.raises(OwnershipError):
            into_owned(borrow(p))

    def test_into_owned_rejects_non_proxy(self):
        with pytest.raises(OwnershipError):
            into_owned(Proxy(SimpleFactory('in-memory')))


class TestOwnershipPickling:
    def test_pickled_owner_arrives_as_ref_proxy(self, local_store):
        p = owned(local_store, {'weights': [1.0, 2.0]})
        restored = pickle.loads(pickle.dumps(p))
        assert type(restored) is RefProxy
        assert get_factory(restored).owned is False
        assert restored == {'weights': [1.0, 2.0]}
        # The original is still the owner: dropping it evicts the key.
        key = key_of(p)
        drop(p)
        assert not local_store.connector.exists(key)

    def test_pickled_borrow_is_untracked_ref(self, local_store):
        p = owned(local_store, 'v')
        view = borrow(p)
        restored = pickle.loads(pickle.dumps(view))
        assert type(restored) is RefProxy
        assert restored == 'v'

    def test_unpickled_ref_does_not_affect_borrow_state(self, local_store):
        p = owned(local_store, 'v')
        pickle.loads(pickle.dumps(p))
        # Shipping a RefProxy did not take an in-process borrow.
        assert isinstance(mut_borrow(p), RefMutProxy)


class TestIsOwnedHelper:
    def test_is_owned_classification(self, local_store):
        p = owned(local_store, 'x')
        assert is_owned(p)
        assert is_owned(borrow(p))
        assert not is_owned(local_store.proxy('y', cache_local=False))
        assert not is_owned('not a proxy')
        assert not is_owned(Proxy(SimpleFactory('z')))


class TestIntrospectionDoesNotResolve:
    def test_is_owned_never_resolves_plain_proxy(self, local_store):
        from repro.proxy import is_resolved

        p = local_store.proxy('lazy', cache_local=False)
        assert not is_owned(p)
        assert not is_resolved(p)  # the probe must not touch the store

    def test_is_owned_does_not_destroy_evicting_proxy(self, local_store):
        # The historic hazard: isinstance() falls back to the transparent
        # __class__ property, resolving (and for evict=True, destroying)
        # the proxy as a side effect of a pure introspection call.
        p = local_store.proxy('once', evict=True, cache_local=False)
        key = key_of(p)
        assert not is_owned(p)
        assert local_store.connector.exists(key)

    def test_into_owned_rejection_preserves_evicting_proxy(self, local_store):
        from repro.proxy import is_resolved

        p = local_store.proxy('precious', evict=True, cache_local=False)
        key = key_of(p)
        with pytest.raises(OwnershipError):
            into_owned(p)
        # The rejected upgrade must not have resolved (and thereby
        # destroyed) the read-once value.
        assert not is_resolved(p)
        assert local_store.connector.exists(key)
        assert extract(p) == 'precious'

    def test_ownership_helpers_reject_plain_proxy_without_resolving(
        self, local_store,
    ):
        from repro.proxy import is_resolved

        p = local_store.proxy('untouched', cache_local=False)
        for op in (borrow, mut_borrow, clone, drop, flush):
            with pytest.raises(OwnershipError):
                op(p)
        assert not is_resolved(p)
