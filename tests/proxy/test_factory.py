"""Tests of the Factory base class and concrete factories."""
from __future__ import annotations

import pickle
import time

import pytest

from repro.proxy import Factory
from repro.proxy import LambdaFactory
from repro.proxy import SimpleFactory


def _make_value(a, b=1):
    return a + b


class SlowFactory(Factory):
    """Factory that sleeps briefly so async overlap is observable."""

    def __init__(self, value, delay=0.05):
        super().__init__()
        self.value = value
        self.delay = delay

    def resolve(self):
        time.sleep(self.delay)
        return self.value


class FailingFactory(Factory):
    def resolve(self):
        raise ValueError('cannot resolve')


def test_simple_factory_returns_object():
    f = SimpleFactory({'x': 1})
    assert f() == {'x': 1}
    assert f.resolve() == {'x': 1}


def test_simple_factory_equality_and_repr():
    assert SimpleFactory(1) == SimpleFactory(1)
    assert SimpleFactory(1) != SimpleFactory(2)
    assert 'SimpleFactory' in repr(SimpleFactory(1))


def test_lambda_factory_with_args_and_kwargs():
    f = LambdaFactory(_make_value, 10, b=5)
    assert f() == 15


def test_lambda_factory_requires_callable():
    with pytest.raises(TypeError):
        LambdaFactory('not callable')


def test_lambda_factory_picklable_with_module_function():
    f = LambdaFactory(_make_value, 1, b=2)
    restored = pickle.loads(pickle.dumps(f))
    assert restored() == 3


def test_base_factory_resolve_not_implemented():
    with pytest.raises(NotImplementedError):
        Factory().resolve()


def test_resolve_async_then_call_returns_result():
    f = SlowFactory('hello', delay=0.02)
    f.resolve_async()
    assert f() == 'hello'


def test_resolve_async_is_idempotent():
    f = SlowFactory('x', delay=0.01)
    f.resolve_async()
    f.resolve_async()  # second call is a no-op while one is in flight
    assert f() == 'x'


def test_resolve_async_propagates_errors_on_call():
    f = FailingFactory()
    f.resolve_async()
    with pytest.raises(ValueError, match='cannot resolve'):
        f()


def test_call_after_async_failure_can_retry():
    f = FailingFactory()
    f.resolve_async()
    with pytest.raises(ValueError):
        f()
    # The async error was consumed; a plain call fails again via resolve().
    with pytest.raises(ValueError):
        f()


def test_factory_pickle_drops_async_state():
    f = SlowFactory('v', delay=0.01)
    f.resolve_async()
    restored = pickle.loads(pickle.dumps(f))
    assert restored._async_thread is None
    assert restored() == 'v'


def test_overlapping_async_resolution_saves_time():
    delay = 0.05
    f = SlowFactory('data', delay=delay)
    f.resolve_async()
    time.sleep(delay * 1.5)  # simulate overlapping computation
    start = time.perf_counter()
    assert f() == 'data'
    elapsed = time.perf_counter() - start
    assert elapsed < delay  # result was already available
