"""Tests of the transparent lazy Proxy."""
from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.exceptions import ProxyResolveError
from repro.proxy import Proxy
from repro.proxy import SimpleFactory
from repro.proxy import extract
from repro.proxy import get_factory
from repro.proxy import is_proxy
from repro.proxy import is_resolved
from repro.proxy import resolve
from repro.proxy import resolve_async


class Payload:
    """Simple user type used to verify isinstance transparency."""

    def __init__(self, value):
        self.value = value

    def double(self):
        return self.value * 2

    def __eq__(self, other):
        return isinstance(other, Payload) and self.value == other.value


def test_proxy_requires_callable_factory():
    with pytest.raises(TypeError):
        Proxy(42)


def test_proxy_is_lazy_until_first_use():
    calls = []

    def factory():
        calls.append(1)
        return [1, 2, 3]

    p = Proxy(factory)
    assert not is_resolved(p)
    assert calls == []
    assert len(p) == 3
    assert is_resolved(p)
    assert calls == [1]
    # Resolution result is cached: factory not called again.
    assert p[0] == 1
    assert calls == [1]


def test_proxy_isinstance_transparency():
    p = Proxy(SimpleFactory(Payload(21)))
    assert isinstance(p, Payload)
    assert isinstance(p, Proxy)
    assert p.double() == 42


def test_proxy_class_attribute_is_target_class():
    p = Proxy(SimpleFactory({'a': 1}))
    assert p.__class__ is dict
    assert type(p) is Proxy


def test_proxy_attribute_get_set_delete():
    p = Proxy(SimpleFactory(Payload(1)))
    assert p.value == 1
    p.value = 9
    assert extract(p).value == 9
    p.extra = 'x'
    assert p.extra == 'x'
    del p.extra
    with pytest.raises(AttributeError):
        _ = p.extra


def test_proxy_forwarding_string_conversions():
    p = Proxy(SimpleFactory(3.5))
    assert str(p) == '3.5'
    assert repr(p) == '3.5'
    assert format(p, '.1f') == '3.5'
    assert f'{p}' == '3.5'


def test_proxy_numeric_operators():
    p = Proxy(SimpleFactory(10))
    assert p + 5 == 15
    assert 5 + p == 15
    assert p - 3 == 7
    assert 3 - p == -7
    assert p * 2 == 20
    assert p / 4 == 2.5
    assert p // 3 == 3
    assert p % 3 == 1
    assert divmod(p, 3) == (3, 1)
    assert p ** 2 == 100
    assert 2 ** p == 1024
    assert -p == -10
    assert +p == 10
    assert abs(Proxy(SimpleFactory(-4))) == 4
    assert ~p == -11
    assert p << 1 == 20
    assert p >> 1 == 5
    assert p & 6 == 2
    assert p | 1 == 11
    assert p ^ 3 == 9


def test_proxy_inplace_operators_keep_proxy_type():
    p = Proxy(SimpleFactory(10))
    p += 1
    assert isinstance(p, Proxy)
    assert p == 11
    p *= 2
    assert p == 22


def test_proxy_comparisons_and_hash():
    p = Proxy(SimpleFactory(7))
    assert p == 7
    assert p != 8
    assert p < 8
    assert p <= 7
    assert p > 6
    assert p >= 7
    assert hash(p) == hash(7)


def test_proxy_container_protocol():
    p = Proxy(SimpleFactory({'a': 1, 'b': 2}))
    assert len(p) == 2
    assert p['a'] == 1
    p['c'] = 3
    assert 'c' in p
    del p['c']
    assert 'c' not in p
    assert sorted(iter(p)) == ['a', 'b']

    lst = Proxy(SimpleFactory([3, 1, 2]))
    assert list(reversed(lst)) == [2, 1, 3]


def test_proxy_numeric_conversions():
    p = Proxy(SimpleFactory(3.7))
    assert int(p) == 3
    assert float(p) == 3.7
    assert complex(p) == complex(3.7)
    assert round(p) == 4
    assert round(p, 1) == 3.7
    assert math.trunc(p) == 3
    assert math.floor(p) == 3
    assert math.ceil(p) == 4
    idx = Proxy(SimpleFactory(2))
    assert [10, 20, 30][idx] == 30
    assert bool(Proxy(SimpleFactory(0))) is False


def test_proxy_callable_forwarding():
    p = Proxy(SimpleFactory(lambda x, y=1: x + y))
    assert p(2) == 3
    assert p(2, y=5) == 7


def test_proxy_context_manager_forwarding(tmp_path):
    path = tmp_path / 'f.txt'
    path.write_text('hello')
    p = Proxy(lambda: open(path))
    with p as f:
        assert f.read() == 'hello'


def test_proxy_iteration_protocol():
    p = Proxy(SimpleFactory(iter([1, 2])))
    assert next(p) == 1
    assert next(p) == 2
    with pytest.raises(StopIteration):
        next(p)


def test_proxy_matmul_with_numpy():
    a = np.eye(3)
    b = np.arange(9).reshape(3, 3)
    p = Proxy(SimpleFactory(a))
    assert np.array_equal(p @ b, b)
    assert np.array_equal(b @ p, b)


def test_proxy_dir_includes_target_attributes():
    p = Proxy(SimpleFactory(Payload(1)))
    assert 'double' in dir(p)


def test_proxy_pickles_only_the_factory():
    big = list(range(100_000))
    p = Proxy(SimpleFactory(big))
    # Resolve it first: the target must still be excluded from the pickle.
    assert len(p) == 100_000
    small_proxy_bytes = pickle.dumps(Proxy(SimpleFactory('tiny')))
    assert len(small_proxy_bytes) < 500


def test_proxy_pickle_roundtrip_unresolved():
    p = Proxy(SimpleFactory(Payload(5)))
    restored = pickle.loads(pickle.dumps(p))
    assert isinstance(restored, Proxy)
    assert not is_resolved(restored)
    assert restored.double() == 10


def test_proxy_resolve_error_wrapping():
    def broken():
        raise RuntimeError('boom')

    p = Proxy(broken)
    with pytest.raises(ProxyResolveError, match='boom'):
        resolve(p)


def test_resolve_helpers_type_checking():
    with pytest.raises(TypeError):
        is_resolved([1, 2, 3])
    with pytest.raises(TypeError):
        resolve('not a proxy')
    with pytest.raises(TypeError):
        extract(42)
    assert is_proxy(Proxy(SimpleFactory(1)))
    assert not is_proxy(object())


def test_extract_returns_bare_target():
    target = Payload(3)
    p = Proxy(SimpleFactory(target))
    assert extract(p) is target
    assert type(extract(p)) is Payload


def test_resolve_async_with_plain_callable_is_noop():
    p = Proxy(lambda: 'value')
    resolve_async(p)  # plain callables have no async hook; must not raise
    assert p == 'value'


def test_resolve_async_with_factory_prefetches():
    factory = SimpleFactory('prefetched')
    p = Proxy(factory)
    resolve_async(p)
    assert p == 'prefetched'


def test_get_factory_does_not_resolve():
    factory = SimpleFactory(1)
    p = Proxy(factory)
    assert get_factory(p) is factory
    assert not is_resolved(p)


def test_setting_wrapped_replaces_target():
    p = Proxy(SimpleFactory(1))
    p.__wrapped__ = 99
    assert p == 99
    del p.__wrapped__
    assert not is_resolved(p)
    assert p == 1  # factory re-resolves after the cached target is dropped


def test_proxy_of_proxy_resolves_through():
    inner = Proxy(SimpleFactory([1, 2]))
    outer = Proxy(SimpleFactory(inner))
    assert outer[1] == 2


def test_proxy_equality_between_proxies():
    a = Proxy(SimpleFactory(5))
    b = Proxy(SimpleFactory(5))
    assert a == b


# --------------------------------------------------------------------------- #
# Copy support: copies duplicate the factory, never resolve the target.
# --------------------------------------------------------------------------- #
def test_copy_returns_unresolved_proxy():
    import copy

    p = Proxy(SimpleFactory([1, 2, 3]))
    c = copy.copy(p)
    assert type(c) is Proxy
    assert not is_resolved(p) and not is_resolved(c)
    assert c == [1, 2, 3]
    assert not is_resolved(p)  # copying + resolving the copy left p untouched


def test_deepcopy_does_not_resolve_original():
    import copy

    calls = []

    class CountingFactory(SimpleFactory):
        def resolve(self):
            calls.append(1)
            return super().resolve()

    p = Proxy(CountingFactory({'k': 'v'}))
    d = copy.deepcopy(p)
    # The historic bug: deepcopy's getattr(x, '__deepcopy__') probe was
    # forwarded to the target, resolving the proxy as a side effect.
    assert calls == []
    assert not is_resolved(p) and not is_resolved(d)
    assert d == {'k': 'v'}


def test_deepcopy_duplicates_factory():
    import copy

    factory = SimpleFactory([1, 2])
    p = Proxy(factory)
    d = copy.deepcopy(p)
    assert get_factory(d) is not factory
    assert d == [1, 2]


def test_copy_of_resolved_proxy_is_fresh():
    import copy

    p = Proxy(SimpleFactory('value'))
    assert p == 'value'  # resolve the original
    c = copy.copy(p)
    assert not is_resolved(c)
    assert c == 'value'
