"""Tests of payload generation helpers."""
from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulation import payload_of_size
from repro.simulation import size_sweep
from repro.simulation.payload import human_size


def test_payload_exact_size():
    for size in (0, 1, 10, 1024, 100_000):
        assert len(payload_of_size(size)) == size


def test_payload_rejects_negative():
    with pytest.raises(ValueError):
        payload_of_size(-1)


def test_payload_deterministic_per_seed():
    assert payload_of_size(64, seed=1) == payload_of_size(64, seed=1)
    assert payload_of_size(64, seed=1) != payload_of_size(64, seed=2)


def test_size_sweep_decades():
    sweep = size_sweep(10, 100_000)
    assert sweep == [10, 100, 1000, 10_000, 100_000]


def test_size_sweep_includes_endpoints():
    sweep = size_sweep(10, 5_000)
    assert sweep[0] == 10
    assert sweep[-1] == 5_000


def test_size_sweep_per_decade_points():
    sweep = size_sweep(10, 1000, per_decade=2)
    assert len(sweep) > 3
    assert sorted(sweep) == sweep


def test_size_sweep_invalid_bounds():
    with pytest.raises(ValueError):
        size_sweep(0, 100)
    with pytest.raises(ValueError):
        size_sweep(1000, 10)


def test_human_size():
    assert human_size(10) == '10 B'
    assert human_size(1000) == '1 KB'
    assert human_size(1_500_000) == '1.5 MB'
    assert human_size(100_000_000) == '100 MB'
    assert human_size(1_000_000_000) == '1 GB'


@given(size=st.integers(0, 10_000))
def test_payload_size_property(size):
    assert len(payload_of_size(size)) == size
