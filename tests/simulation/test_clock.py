"""Tests of the virtual clock."""
from __future__ import annotations

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simulation import VirtualClock


def test_clock_starts_at_zero_by_default():
    assert VirtualClock().now() == 0.0


def test_clock_custom_start():
    assert VirtualClock(5.0).now() == 5.0


def test_clock_rejects_negative_start():
    with pytest.raises(ValueError):
        VirtualClock(-1.0)


def test_advance_moves_forward():
    clock = VirtualClock()
    assert clock.advance(1.5) == 1.5
    assert clock.advance(0.5) == 2.0
    assert clock.now() == 2.0


def test_advance_rejects_negative():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_advance_to_only_moves_forward():
    clock = VirtualClock()
    clock.advance_to(3.0)
    assert clock.now() == 3.0
    clock.advance_to(1.0)  # in the past: no-op
    assert clock.now() == 3.0


def test_reset():
    clock = VirtualClock()
    clock.advance(10)
    clock.reset()
    assert clock.now() == 0.0
    with pytest.raises(ValueError):
        clock.reset(-1)


def test_region_measures_elapsed_virtual_time():
    clock = VirtualClock()
    with clock.region() as region:
        clock.advance(2.0)
        clock.advance(0.25)
    assert region.elapsed == pytest.approx(2.25)
    assert region.start == 0.0


def test_concurrent_advances_accumulate():
    clock = VirtualClock()

    def worker():
        for _ in range(1000):
            clock.advance(0.001)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert clock.now() == pytest.approx(4.0, rel=1e-6)


@given(steps=st.lists(st.floats(0, 1e6, allow_nan=False), max_size=50))
def test_clock_is_monotonic_property(steps):
    clock = VirtualClock()
    previous = clock.now()
    for step in steps:
        clock.advance(step)
        assert clock.now() >= previous
        previous = clock.now()
