"""Tests of the network fabric model."""
from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.exceptions import UnknownSiteError
from repro.simulation import Fabric
from repro.simulation import Host
from repro.simulation import Link
from repro.simulation.fabric import CLOUD_SERVICE_HOST
from repro.simulation.fabric import paper_testbed


def make_simple_fabric() -> Fabric:
    fabric = Fabric()
    fabric.add_site('a', internal_link=Link(1e-5, 1e9))
    fabric.add_site('b', internal_link=Link(1e-5, 1e9))
    fabric.add_host(Host('a1', 'a'))
    fabric.add_host(Host('a2', 'a'))
    fabric.add_host(Host('b1', 'b'))
    fabric.connect('a', 'b', Link(0.01, 1e8))
    return fabric


def test_link_validation():
    with pytest.raises(ValueError):
        Link(-1, 1e9)
    with pytest.raises(ValueError):
        Link(0, 0)


def test_link_transfer_time_components():
    link = Link(latency_s=0.01, bandwidth_bps=1e6, per_message_overhead_s=0.001)
    assert link.transfer_time(0) == pytest.approx(0.011)
    assert link.transfer_time(1_000_000) == pytest.approx(0.011 + 1.0)
    assert link.transfer_time(0, messages=3) == pytest.approx(0.033)
    with pytest.raises(ValueError):
        link.transfer_time(-1)
    with pytest.raises(ValueError):
        link.transfer_time(0, messages=0)


def test_link_scaled():
    link = Link(0.01, 1e6)
    slow = link.scaled(bandwidth_factor=0.5)
    assert slow.bandwidth_bps == pytest.approx(5e5)
    assert slow.latency_s == link.latency_s


def test_duplicate_site_rejected():
    fabric = Fabric()
    fabric.add_site('a', internal_link=Link(1e-5, 1e9))
    with pytest.raises(SimulationError):
        fabric.add_site('a', internal_link=Link(1e-5, 1e9))


def test_host_site_mismatch_rejected():
    fabric = Fabric()
    fabric.add_site('a', internal_link=Link(1e-5, 1e9))
    with pytest.raises(UnknownSiteError):
        fabric.add_host(Host('x', 'missing'))


def test_unknown_lookups_raise():
    fabric = make_simple_fabric()
    with pytest.raises(UnknownSiteError):
        fabric.site('zzz')
    with pytest.raises(UnknownSiteError):
        fabric.host('zzz')


def test_intra_site_uses_internal_link():
    fabric = make_simple_fabric()
    t = fabric.transfer_time('a1', 'a2', 1_000_000)
    assert t == pytest.approx(1e-5 + 1_000_000 / 1e9)


def test_same_host_is_memory_speed():
    fabric = make_simple_fabric()
    assert fabric.transfer_time('a1', 'a1', 1_000_000) < fabric.transfer_time('a1', 'a2', 1_000_000)


def test_inter_site_uses_wan_link():
    fabric = make_simple_fabric()
    t = fabric.transfer_time('a1', 'b1', 1_000_000)
    assert t == pytest.approx(0.01 + 1_000_000 / 1e8)


def test_missing_link_raises():
    fabric = make_simple_fabric()
    fabric.add_site('c', internal_link=Link(1e-5, 1e9))
    fabric.add_host(Host('c1', 'c'))
    with pytest.raises(SimulationError):
        fabric.transfer_time('a1', 'c1', 10)


def test_rtt_is_twice_one_way_latency():
    fabric = make_simple_fabric()
    assert fabric.rtt('a1', 'b1') == pytest.approx(2 * fabric.transfer_time('a1', 'b1', 0))


def test_bandwidth_factor_slows_transfer():
    fabric = make_simple_fabric()
    base = fabric.transfer_time('a1', 'b1', 10_000_000)
    throttled = fabric.transfer_time('a1', 'b1', 10_000_000, bandwidth_factor=0.1)
    assert throttled > base


def test_multi_hop_time_sums():
    fabric = make_simple_fabric()
    one = fabric.transfer_time('a1', 'b1', 1000)
    both = fabric.multi_hop_time([('a1', 'b1'), ('b1', 'a2')], 1000)
    assert both == pytest.approx(one + fabric.transfer_time('b1', 'a2', 1000))


def test_can_connect_directly_respects_nat():
    fabric = Fabric()
    fabric.add_site('natted', internal_link=Link(1e-5, 1e9), behind_nat=True)
    fabric.add_site('open', internal_link=Link(1e-5, 1e9), behind_nat=False)
    fabric.add_site('natted2', internal_link=Link(1e-5, 1e9), behind_nat=True)
    assert fabric.can_connect_directly('natted', 'natted') is True
    assert fabric.can_connect_directly('natted', 'open') is True
    assert fabric.can_connect_directly('natted', 'natted2') is False


def test_paper_testbed_has_expected_hosts():
    fabric = paper_testbed()
    for host in (
        'theta-login', 'theta-compute', 'polaris-login', 'polaris-compute',
        'perlmutter-login', 'perlmutter-compute', 'midway2-login',
        'frontera-login', 'chameleon-node-a', CLOUD_SERVICE_HOST,
    ):
        assert fabric.host(host).name == host


def test_paper_testbed_every_site_reaches_cloud():
    fabric = paper_testbed()
    for host in ('theta-login', 'midway2-login', 'frontera-login', 'perlmutter-login'):
        assert fabric.transfer_time(host, CLOUD_SERVICE_HOST, 1000) > 0


def test_paper_testbed_wan_slower_than_lan():
    fabric = paper_testbed()
    lan = fabric.transfer_time('theta-login', 'theta-compute', 10_000_000)
    wan = fabric.transfer_time('frontera-login', 'theta-compute', 10_000_000)
    assert wan > lan


def test_paper_testbed_frontera_farther_than_midway():
    fabric = paper_testbed()
    near = fabric.rtt('midway2-login', 'theta-compute')
    far = fabric.rtt('frontera-login', 'theta-compute')
    assert far > near


@given(nbytes=st.integers(0, 10**9))
def test_transfer_time_monotone_in_size(nbytes):
    fabric = make_simple_fabric()
    smaller = fabric.transfer_time('a1', 'b1', nbytes)
    larger = fabric.transfer_time('a1', 'b1', nbytes + 1000)
    assert larger >= smaller
