"""Tests of the transfer cost models and the CostedConnector wrapper."""
from __future__ import annotations

import pytest

from repro.connectors.local import LocalConnector
from repro.simulation import VirtualClock
from repro.simulation import paper_testbed
from repro.simulation.context import current_host
from repro.simulation.context import on_host
from repro.simulation.context import set_current_host
from repro.simulation.costed import CostedConnector
from repro.simulation.costs import CentralServerCost
from repro.simulation.costs import CloudRelayCost
from repro.simulation.costs import DataSpacesCost
from repro.simulation.costs import DistributedMemoryCost
from repro.simulation.costs import EndpointPeerCost
from repro.simulation.costs import GlobusTransferCost
from repro.simulation.costs import IPFSCost
from repro.simulation.costs import SharedFilesystemCost
from repro.simulation.costs import SSHTunnelRedisCost


@pytest.fixture()
def fabric():
    return paper_testbed()


def test_context_current_host_default_and_override():
    assert current_host() == 'theta-login'
    token = set_current_host('midway2-login')
    assert current_host() == 'midway2-login'
    set_current_host(None)
    assert current_host() == 'theta-login'
    with on_host('frontera-login'):
        assert current_host() == 'frontera-login'
    assert current_host() == 'theta-login'


def test_cloud_relay_more_expensive_than_file_intra_site(fabric):
    size = 1_000_000
    cloud = CloudRelayCost(fabric).roundtrip_cost(size, 'theta-login', 'theta-compute')
    file = SharedFilesystemCost(fabric).roundtrip_cost(size, 'theta-login', 'theta-compute')
    assert cloud > file


def test_cloud_relay_grows_with_payload(fabric):
    model = CloudRelayCost(fabric)
    assert model.roundtrip_cost(5_000_000, 'midway2-login', 'theta-compute') > \
        model.roundtrip_cost(10, 'midway2-login', 'theta-compute') + 1.0


def test_globus_has_high_fixed_overhead_but_scales_well(fabric):
    globus = GlobusTransferCost(fabric)
    endpoint = EndpointPeerCost(fabric)
    small = 10_000
    huge = 2_000_000_000
    # Small transfers: Globus is far slower than peer endpoints.
    assert globus.roundtrip_cost(small, 'midway2-login', 'theta-compute') > \
        endpoint.roundtrip_cost(small, 'midway2-login', 'theta-compute')
    # Very large transfers: Globus overtakes the throttled data channel.
    assert globus.roundtrip_cost(huge, 'midway2-login', 'theta-compute') < \
        endpoint.roundtrip_cost(huge, 'midway2-login', 'theta-compute')


def test_endpoint_peering_setup_charged_once_per_site_pair(fabric):
    model = EndpointPeerCost(fabric)
    first = model.get_cost(1000, 'midway2-login', 'theta-compute')
    second = model.get_cost(1000, 'midway2-login', 'theta-compute')
    assert first > second
    # Reverse direction reuses the same (persistent, bidirectional) connection.
    reverse = model.get_cost(1000, 'theta-compute', 'midway2-login')
    assert reverse < first


def test_endpoint_same_site_cheaper_than_cross_site(fabric):
    model = EndpointPeerCost(fabric)
    same = model.get_cost(10_000, 'theta-login', 'theta-compute')
    cross = EndpointPeerCost(fabric).get_cost(10_000, 'frontera-login', 'theta-compute')
    assert same < cross


def test_distributed_memory_efficiency_ordering(fabric):
    size = 100_000_000
    margo = DistributedMemoryCost(fabric, software_efficiency=1.0)
    zmq = DistributedMemoryCost(fabric, software_efficiency=0.4)
    assert margo.get_cost(size, 'polaris-login', 'polaris-compute') < \
        zmq.get_cost(size, 'polaris-login', 'polaris-compute')


def test_distributed_memory_startup_charged_once(fabric):
    model = DistributedMemoryCost(fabric, startup_overhead_s=0.5)
    first = model.put_cost(10, 'polaris-login')
    second = model.put_cost(10, 'polaris-login')
    assert first > second


def test_dataspaces_and_ssh_and_ipfs_models_positive(fabric):
    for model in (DataSpacesCost(fabric), SSHTunnelRedisCost(fabric, server_host='theta-login'),
                  IPFSCost(fabric), CentralServerCost(fabric, server_host='theta-login')):
        assert model.roundtrip_cost(1_000_000, 'midway2-login', 'theta-compute') > 0


def test_costed_connector_charges_clock_and_ledger(fabric):
    clock = VirtualClock()
    connector = CostedConnector(LocalConnector(), SharedFilesystemCost(fabric), clock)
    with on_host('theta-login'):
        key = connector.put(b'x' * 100_000)
    after_put = clock.now()
    assert after_put > 0
    assert connector.ledger.put_count == 1
    with on_host('theta-compute'):
        assert connector.get(key) == b'x' * 100_000
    assert clock.now() > after_put
    assert connector.ledger.get_count == 1
    assert connector.ledger.total_cost == pytest.approx(clock.now())
    assert connector.ledger.last_get_cost > 0


def test_costed_connector_without_clock_only_records(fabric):
    connector = CostedConnector(LocalConnector(), SharedFilesystemCost(fabric))
    key = connector.put(b'abc')
    connector.get(key)
    assert connector.ledger.put_count == 1
    assert connector.ledger.get_count == 1


def test_costed_connector_get_missing_not_charged(fabric):
    clock = VirtualClock()
    connector = CostedConnector(LocalConnector(), SharedFilesystemCost(fabric), clock)
    key = connector.put(b'abc')
    connector.evict(key)
    before = clock.now()
    assert connector.get(key) is None
    assert clock.now() == before


def test_costed_connector_batch_operations(fabric):
    clock = VirtualClock()
    connector = CostedConnector(LocalConnector(), SharedFilesystemCost(fabric), clock)
    keys = connector.put_batch([b'a', b'b'])
    assert connector.ledger.put_count == 2
    assert connector.get_batch(keys) == [b'a', b'b']
    assert connector.ledger.get_count == 2
    assert connector.exists(keys[0])


def test_costed_connector_config_delegates_to_inner(fabric):
    inner = LocalConnector()
    connector = CostedConnector(inner, SharedFilesystemCost(fabric))
    assert connector.config() == inner.config()
    with pytest.raises(NotImplementedError):
        CostedConnector.from_config({})
