"""Tests of the Parsl-like workflow engine."""
from __future__ import annotations

import pytest

from repro.exceptions import WorkflowError
from repro.workflow import WorkflowEngine


def _add(a, b=0):
    return a + b


def _boom():
    raise ValueError('worker failure')


def test_engine_requires_valid_parameters():
    with pytest.raises(ValueError):
        WorkflowEngine(n_workers=0)
    with pytest.raises(ValueError):
        WorkflowEngine(extra_hops=-1)


def test_submit_and_result():
    with WorkflowEngine(n_workers=2) as engine:
        future = engine.submit(_add, 2, b=3)
        assert future.result() == 5
        assert future.done()


def test_many_tasks_across_workers():
    with WorkflowEngine(n_workers=4) as engine:
        futures = [engine.submit(_add, i, b=i) for i in range(50)]
        assert [f.result() for f in futures] == [2 * i for i in range(50)]
        assert engine.stats.tasks_completed == 50


def test_task_exception_propagates():
    with WorkflowEngine(n_workers=1) as engine:
        future = engine.submit(_boom)
        with pytest.raises(ValueError, match='worker failure'):
            future.result()


def test_submit_after_shutdown_rejected():
    engine = WorkflowEngine(n_workers=1)
    engine.shutdown()
    with pytest.raises(WorkflowError):
        engine.submit(_add, 1)
    engine.shutdown()  # idempotent


def test_stats_track_bytes_through_hub():
    with WorkflowEngine(n_workers=1) as engine:
        engine.submit(_add, b'x' * 10_000, b=b'').result()
        assert engine.stats.input_bytes > 10_000
        assert engine.stats.serialization_passes > 0


def test_extra_hops_zero_disables_recopies():
    with WorkflowEngine(n_workers=1, extra_hops=0) as engine:
        engine.submit(_add, 1, b=2).result()
        assert engine.stats.serialization_passes == 0


def test_result_timeout():
    def slow():
        import time

        time.sleep(0.5)
        return 1

    with WorkflowEngine(n_workers=1) as engine:
        future = engine.submit(slow)
        with pytest.raises(WorkflowError):
            future.result(timeout=0.01)
        assert future.result(timeout=5) == 1


def test_submit_snapshots_mutable_arguments():
    import threading

    import numpy as np

    gate = threading.Event()

    def passthrough(arr):
        gate.wait(5)  # dequeue after the caller has mutated its array
        return float(arr.sum())

    with WorkflowEngine(n_workers=1) as engine:
        data = np.ones(1000)
        future = engine.submit(passthrough, data)
        data[:] = 0.0  # must not affect the already-queued payload
        gate.set()
        assert future.result(timeout=5) == 1000.0
