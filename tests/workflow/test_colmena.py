"""Tests of the Colmena-like Thinker/TaskServer layer."""
from __future__ import annotations

import numpy as np
import pytest

from repro.connectors.local import LocalConnector
from repro.proxy import Proxy
from repro.proxy import is_proxy
from repro.store import Store
from repro.workflow import ColmenaQueues
from repro.workflow import TaskServer
from repro.workflow import Thinker
from repro.workflow import WorkflowEngine


@pytest.fixture()
def engine():
    with WorkflowEngine(n_workers=2) as eng:
        yield eng


@pytest.fixture()
def pipeline(engine):
    queues = ColmenaQueues()
    server = TaskServer(queues, engine, fixed_overhead_s=0.0)
    thinker = Thinker(queues)
    with server:
        yield server, thinker


def _scale(data, factor=2):
    return np.asarray(data) * factor


def test_round_trip_without_store(pipeline):
    server, thinker = pipeline
    server.register_topic('scale', _scale)
    result = thinker.run_task('scale', np.ones(4))
    assert result.success
    assert np.array_equal(result.value, 2 * np.ones(4))
    assert result.roundtrip_time >= 0
    assert not result.proxied_inputs and not result.proxied_result


def test_unknown_topic_reports_error(pipeline):
    server, thinker = pipeline
    result = thinker.run_task('missing-topic', 1)
    assert not result.success
    assert 'missing-topic' in result.error


def test_task_exception_reported(pipeline):
    server, thinker = pipeline

    def fail(_):
        raise RuntimeError('bad inputs')

    server.register_topic('fail', fail)
    result = thinker.run_task('fail', 1)
    assert not result.success
    assert 'bad inputs' in result.error


def test_threshold_proxies_large_inputs_only(pipeline):
    server, thinker = pipeline
    store = Store('colmena-threshold-store', LocalConnector())
    try:
        server.register_topic('scale', _scale, store=store, threshold_bytes=10_000)
        small = thinker.run_task('scale', np.ones(4))
        assert not small.proxied_inputs
        large = thinker.run_task('scale', np.ones(50_000))
        assert large.proxied_inputs
        assert large.input_bytes < 10_000  # only the proxy crossed the pipeline
    finally:
        store.close(clear=True)


def test_results_proxied_when_large(pipeline):
    server, thinker = pipeline
    store = Store('colmena-results-store', LocalConnector())
    try:
        server.register_topic('scale', _scale, store=store, threshold_bytes=1_000)
        result = thinker.run_task('scale', np.ones(10_000))
        assert result.proxied_result
        assert is_proxy(result.value)
        # The Thinker can still use the value transparently.
        assert float(np.asarray(result.value).sum()) == pytest.approx(20_000.0)
    finally:
        store.close(clear=True)


def test_proxy_results_can_be_disabled(pipeline):
    server, thinker = pipeline
    store = Store('colmena-no-result-proxy', LocalConnector())
    try:
        server.register_topic('scale', _scale, store=store, threshold_bytes=0,
                              proxy_results=False)
        result = thinker.run_task('scale', np.ones(1000))
        assert result.proxied_inputs
        assert not result.proxied_result
        assert isinstance(result.value, np.ndarray)
    finally:
        store.close(clear=True)


def test_already_proxied_inputs_pass_through(pipeline):
    server, thinker = pipeline
    store = Store('colmena-preproxied', LocalConnector())
    try:
        server.register_topic('scale', _scale)
        proxy = store.proxy(np.ones(8), cache_local=False)
        result = thinker.run_task('scale', proxy)
        assert result.proxied_inputs
        assert np.array_equal(result.value, 2 * np.ones(8))
    finally:
        store.close(clear=True)


def test_register_topic_validation(engine):
    server = TaskServer(ColmenaQueues(), engine)
    with pytest.raises(ValueError):
        server.register_topic('x', _scale, threshold_bytes=-1)
    with pytest.raises(ValueError):
        TaskServer(ColmenaQueues(), engine, fixed_overhead_s=-0.1)


def test_topics_listing(engine):
    server = TaskServer(ColmenaQueues(), engine)
    server.register_topic('b', _scale)
    server.register_topic('a', _scale)
    assert server.topics() == ['a', 'b']


def test_fixed_overhead_applied(engine):
    queues = ColmenaQueues()
    server = TaskServer(queues, engine, fixed_overhead_s=0.05)
    server.register_topic('scale', _scale)
    thinker = Thinker(queues)
    with server:
        result = thinker.run_task('scale', np.ones(2))
    assert result.roundtrip_time >= 0.05


def test_tasks_processed_counter(pipeline):
    server, thinker = pipeline
    server.register_topic('scale', _scale)
    for _ in range(3):
        thinker.run_task('scale', np.ones(2))
    assert server.tasks_processed == 3
    assert len(thinker.results) == 3


def test_run_lifetime_binds_proxied_task_data(engine):
    """A per-run lifetime collects every key the server proxies; closing it
    batch-evicts them so sustained runs stop leaking backing storage."""
    from repro.proxy import get_factory
    from repro.store import ContextLifetime

    queues = ColmenaQueues()
    run_lifetime = ContextLifetime()
    server = TaskServer(queues, engine, fixed_overhead_s=0.0, lifetime=run_lifetime)
    thinker = Thinker(queues)
    store = Store('colmena-lifetime-store', LocalConnector(), cache_size=0)
    try:
        server.register_topic('scale', _scale, store=store, threshold_bytes=0)
        with server:
            result = thinker.run_task('scale', np.ones(64))
        assert result.proxied_inputs and result.proxied_result
        result_key = get_factory(result.value).key
        assert store.connector.exists(result_key)
        assert run_lifetime.keys_bound >= 2  # proxied input + proxied result
        run_lifetime.close()
        assert not store.connector.exists(result_key)
    finally:
        store.close(clear=True)


def test_topic_lifetime_overrides_server_lifetime(engine):
    from repro.proxy import get_factory
    from repro.store import ContextLifetime

    queues = ColmenaQueues()
    run_lifetime = ContextLifetime()
    topic_lifetime = ContextLifetime()
    server = TaskServer(queues, engine, fixed_overhead_s=0.0, lifetime=run_lifetime)
    thinker = Thinker(queues)
    store = Store('colmena-topic-lifetime', LocalConnector(), cache_size=0)
    try:
        server.register_topic(
            'scale', _scale, store=store, threshold_bytes=0,
            lifetime=topic_lifetime,
        )
        with server:
            result = thinker.run_task('scale', np.ones(16))
        key = get_factory(result.value).key
        assert run_lifetime.keys_bound == 0
        run_lifetime.close()
        assert store.connector.exists(key)  # bound to the topic's lifetime
        topic_lifetime.close()
        assert not store.connector.exists(key)
    finally:
        store.close(clear=True)


def test_result_future_bound_to_run_lifetime(engine):
    from repro.store import ContextLifetime

    queues = ColmenaQueues()
    run_lifetime = ContextLifetime()
    server = TaskServer(queues, engine, fixed_overhead_s=0.0, lifetime=run_lifetime)
    thinker = Thinker(queues)
    store = Store('colmena-future-lifetime', LocalConnector(), cache_size=0)
    try:
        server.register_topic('scale', _scale, store=store, threshold_bytes=100_000)
        with server:
            future = server.result_future('scale', timeout=10.0)
            proxy = future.proxy()
            thinker.submit('scale', np.ones(4), result_future=future)
            thinker.wait_for_result(timeout=10.0)
            assert float(np.asarray(proxy).sum()) == pytest.approx(8.0)
        assert store.connector.exists(future.key)
        run_lifetime.close()
        assert not store.connector.exists(future.key)
    finally:
        store.close(clear=True)


def test_closed_run_lifetime_does_not_reject_late_tasks(engine):
    """Tasks arriving after the run lifetime closed still execute; their
    data simply is not bound to the (finished) lifetime."""
    from repro.store import ContextLifetime

    queues = ColmenaQueues()
    run_lifetime = ContextLifetime()
    server = TaskServer(queues, engine, fixed_overhead_s=0.0, lifetime=run_lifetime)
    thinker = Thinker(queues)
    store = Store('colmena-late-task', LocalConnector(), cache_size=0)
    try:
        server.register_topic('scale', _scale, store=store, threshold_bytes=0)
        run_lifetime.close()
        with server:
            result = thinker.run_task('scale', np.ones(8))
        assert result.success
        assert result.proxied_result
    finally:
        store.close(clear=True)
