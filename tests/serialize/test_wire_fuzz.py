"""Randomized round-trip fuzzing of the wire format.

The serializer now has two frame families — compact small frames (plain
``bytes``: one ident byte + payload) and segmented large frames
(``SerializedObject``) — chosen by payload size.  This suite sweeps the
ident x container-kind matrix with sizes clustered on the interesting
boundaries (0, 1, threshold-1, threshold, threshold+1, and multi-MiB) and
asserts, for every draw:

* the round trip is value-identical (byte-identical for bytes payloads),
* re-serializing the round-tripped value is byte-identical on the wire
  (serialization is deterministic, so this catches any drift between the
  two frame families),
* every legacy-style flat frame still deserializes (consumers upgraded
  before producers keep working),
* the large path keeps its zero-copy aliasing guarantees.

Seeded RNG: failures print the seed so any draw reproduces exactly.
"""
from __future__ import annotations

import dataclasses
import os
import random
import string

import numpy as np
import pytest

from repro.serialize import SerializedObject
from repro.serialize import deserialize
from repro.serialize import serialize
from repro.serialize.serializer import small_frame_threshold

SEED = int(os.environ.get('REPRO_FUZZ_SEED', '20260807'))
DRAWS_PER_KIND = int(os.environ.get('REPRO_FUZZ_DRAWS', '24'))

THRESHOLD = small_frame_threshold()

#: Sizes clustered on the routing boundaries plus a genuinely large tail.
BOUNDARY_SIZES = (
    0,
    1,
    THRESHOLD - 1,
    THRESHOLD,
    THRESHOLD + 1,
    8 * 1024 * 1024 + 17,
)


@dataclasses.dataclass
class Sample:
    """A pickled container mixing scalars with a bulk payload."""

    tag: str
    blob: bytes
    numbers: list[int]


def _random_size(rng: random.Random) -> int:
    """Boundary sizes most of the time, a uniform filler otherwise."""
    if rng.random() < 0.75:
        return rng.choice(BOUNDARY_SIZES)
    return rng.randrange(0, 4 * THRESHOLD)


def _make_bytes(rng: random.Random, size: int) -> bytes:
    return rng.randbytes(size)


def _make_bytearray(rng: random.Random, size: int) -> bytearray:
    return bytearray(rng.randbytes(size))


def _make_memoryview(rng: random.Random, size: int) -> memoryview:
    return memoryview(rng.randbytes(size))


def _make_str(rng: random.Random, size: int) -> str:
    # Mix of ASCII and multibyte so encoded length != character count.
    alphabet = string.ascii_letters + string.digits + 'é世界'
    return ''.join(rng.choice(alphabet) for _ in range(size))


def _make_ndarray(rng: random.Random, size: int) -> np.ndarray:
    return np.frombuffer(rng.randbytes(size), dtype=np.uint8).copy()


def _make_pickled(rng: random.Random, size: int) -> Sample:
    return Sample(
        tag=''.join(rng.choice(string.ascii_lowercase) for _ in range(8)),
        blob=rng.randbytes(size),
        numbers=[rng.randrange(1 << 30) for _ in range(5)],
    )


KINDS = {
    'bytes': _make_bytes,
    'bytearray': _make_bytearray,
    'memoryview': _make_memoryview,
    'str': _make_str,
    'ndarray': _make_ndarray,
    'pickled': _make_pickled,
}


def _values_equal(a: object, b: object) -> bool:
    if isinstance(a, np.ndarray):
        return isinstance(b, np.ndarray) and a.dtype == b.dtype and np.array_equal(a, b)
    if isinstance(a, (bytearray, memoryview)):
        # bytearray/memoryview payloads round-trip as immutable bytes.
        return bytes(a) == b
    return a == b


@pytest.mark.parametrize('kind', sorted(KINDS))
def test_fuzz_round_trip(kind: str) -> None:
    """Every draw round-trips value-identically on either frame family."""
    rng = random.Random(f'{SEED}-{kind}')
    make = KINDS[kind]
    for draw in range(DRAWS_PER_KIND):
        size = _random_size(rng)
        obj = make(rng, size)
        frame = serialize(obj)
        result = deserialize(frame)
        assert _values_equal(obj, result), (
            f'round trip mismatch: seed={SEED} kind={kind} draw={draw} '
            f'size={size}'
        )
        # Determinism across frame families: re-serializing the result
        # produces the same wire bytes (pickled containers are exempt —
        # pickle memoization is not guaranteed stable across objects).
        if kind != 'pickled':
            again = serialize(result if kind != 'memoryview' else memoryview(result))
            assert bytes(frame) == bytes(again), (
                f'non-deterministic wire bytes: seed={SEED} kind={kind} '
                f'draw={draw} size={size}'
            )


@pytest.mark.parametrize('kind', sorted(KINDS))
def test_fuzz_frame_family_matches_size(kind: str) -> None:
    """Sub-threshold payloads become compact frames, large ones segment."""
    rng = random.Random(f'{SEED}-family-{kind}')
    make = KINDS[kind]
    for _ in range(DRAWS_PER_KIND):
        size = _random_size(rng)
        frame = serialize(make(rng, size))
        if isinstance(frame, SerializedObject):
            # The segmented family only appears beyond the threshold.
            assert frame.nbytes >= THRESHOLD
        else:
            assert isinstance(frame, bytes)
            # One ident byte plus payload; headers may add a little.
            assert len(frame) >= 1


@pytest.mark.parametrize('kind', ['bytes', 'str', 'ndarray', 'pickled'])
def test_fuzz_legacy_flat_frames_still_deserialize(kind: str) -> None:
    """A flat legacy frame (pre-small-path producer) parses on every size.

    Legacy producers always emitted ident + payload joined into one byte
    string; ``deserialize`` must keep accepting that for every ident and
    size, including sizes the new producer would emit differently.
    """
    rng = random.Random(f'{SEED}-legacy-{kind}')
    make = KINDS[kind]
    for draw in range(DRAWS_PER_KIND):
        size = _random_size(rng)
        obj = make(rng, size)
        flat = bytes(serialize(obj))  # joining segments = the legacy frame
        result = deserialize(flat)
        assert _values_equal(obj, result), (
            f'legacy frame mismatch: seed={SEED} kind={kind} draw={draw} '
            f'size={size}'
        )
        # Legacy frames also arrive as memoryviews (e.g. from sockets).
        assert _values_equal(obj, deserialize(memoryview(flat)))


def test_fuzz_large_path_zero_copy_aliasing() -> None:
    """Above-threshold frames alias caller memory; deserialize aliases back."""
    rng = random.Random(f'{SEED}-alias')
    for _ in range(10):
        size = rng.choice(BOUNDARY_SIZES[-2:])  # threshold+1 and 8 MiB+
        payload = rng.randbytes(size)
        frame = serialize(payload)
        assert isinstance(frame, SerializedObject)
        # The payload segment is the caller's bytes object, not a copy.
        assert any(seg is payload for seg in frame.pieces)
        result = deserialize(frame)
        assert result is payload  # bytes round-trip by reference

        arr = np.frombuffer(rng.randbytes(size), dtype=np.uint8).copy()
        arr_frame = serialize(arr)
        assert isinstance(arr_frame, SerializedObject)
        out = deserialize(arr_frame)
        # The array's data region aliases a frame segment (no bulk copy).
        byte_bounds = np.lib.array_utils.byte_bounds
        out_lo, out_hi = byte_bounds(out)
        aliased = False
        for seg in arr_frame.segments():
            seg_arr = np.frombuffer(seg, dtype=np.uint8)
            if seg_arr.size < out.nbytes:
                continue
            seg_lo, seg_hi = byte_bounds(seg_arr)
            if seg_lo <= out_lo and out_hi <= seg_hi:
                aliased = True
                break
        assert aliased, f'deserialized array copied its {size}-byte payload'


def test_fuzz_empty_and_single_byte_payloads() -> None:
    """The degenerate sizes round-trip for every kind."""
    for kind, make in KINDS.items():
        rng = random.Random(f'{SEED}-tiny-{kind}')
        for size in (0, 1):
            obj = make(rng, size)
            assert _values_equal(obj, deserialize(serialize(obj))), (
                f'kind={kind} size={size}'
            )
