"""Tests for the default serializer and custom serializer registry."""
from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import SerializationError
from repro.serialize import default_registry
from repro.serialize import deserialize
from repro.serialize import register_serializer
from repro.serialize import serialize
from repro.serialize import unregister_serializer


def test_bytes_fast_path_roundtrip():
    data = b'\x00\x01binary\xff'
    assert deserialize(serialize(data)) == data
    # Fast path stores the payload verbatim after the identifier byte.
    assert serialize(data)[1:] == data


def test_bytearray_and_memoryview_roundtrip_as_bytes():
    assert deserialize(serialize(bytearray(b'abc'))) == b'abc'
    assert deserialize(serialize(memoryview(b'abc'))) == b'abc'


def test_str_fast_path_roundtrip():
    text = 'hello \N{GREEK SMALL LETTER ALPHA} world'
    assert deserialize(serialize(text)) == text


def test_numpy_fast_path_roundtrip():
    arr = np.random.default_rng(0).normal(size=(10, 3))
    restored = deserialize(serialize(arr))
    assert isinstance(restored, np.ndarray)
    assert np.array_equal(restored, arr)
    assert restored.dtype == arr.dtype


def test_pickle_fallback_for_generic_objects():
    obj = {'a': [1, 2, 3], 'b': (4, 5), 'c': {'nested': True}}
    assert deserialize(serialize(obj)) == obj


def test_unpicklable_object_raises_serialization_error():
    with pytest.raises(SerializationError):
        serialize(lambda x: x)  # local lambdas cannot be pickled


def test_deserialize_rejects_non_bytes():
    with pytest.raises(SerializationError):
        deserialize('a string')  # type: ignore[arg-type]


def test_deserialize_rejects_empty_and_unknown_identifier():
    with pytest.raises(SerializationError):
        deserialize(b'')
    with pytest.raises(SerializationError):
        deserialize(b'\x7fgarbage')


def test_deserialize_rejects_corrupted_pickle_payload():
    data = serialize({'a': 1})
    with pytest.raises(SerializationError):
        deserialize(data[:1] + b'corrupted')


class Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y

    def __eq__(self, other):
        return isinstance(other, Point) and (self.x, self.y) == (other.x, other.y)


def _ser_point(p: Point) -> bytes:
    return f'{p.x},{p.y}'.encode()


def _des_point(data: bytes) -> Point:
    x, y = data.decode().split(',')
    return Point(int(x), int(y))


def test_custom_serializer_roundtrip():
    register_serializer('point', Point, _ser_point, _des_point)
    try:
        data = serialize(Point(3, 4))
        assert data.startswith(b'\x04point\n')
        assert deserialize(data) == Point(3, 4)
    finally:
        unregister_serializer('point')


def test_custom_serializer_must_return_bytes():
    register_serializer('bad', Point, lambda p: 'not bytes', _des_point)
    try:
        with pytest.raises(SerializationError):
            serialize(Point(1, 1))
    finally:
        unregister_serializer('bad')


def test_custom_serializer_missing_in_consumer_raises():
    register_serializer('temp', Point, _ser_point, _des_point)
    data = serialize(Point(1, 2))
    unregister_serializer('temp')
    with pytest.raises(SerializationError, match='temp'):
        deserialize(data)


def test_registry_duplicate_name_rejected_unless_overwrite():
    register_serializer('dup', Point, _ser_point, _des_point)
    try:
        with pytest.raises(ValueError):
            register_serializer('dup', Point, _ser_point, _des_point)
        register_serializer('dup', Point, _ser_point, _des_point, overwrite=True)
    finally:
        unregister_serializer('dup')


def test_registry_rejects_newline_in_name():
    with pytest.raises(ValueError):
        register_serializer('bad\nname', Point, _ser_point, _des_point)


def test_registry_find_matches_subclasses():
    class Point3(Point):
        pass

    register_serializer('point', Point, _ser_point, _des_point)
    try:
        entry = default_registry.find(Point3(1, 2))
        assert entry is not None and entry[0] == 'point'
    finally:
        unregister_serializer('point')


def test_registry_len_and_contains():
    assert len(default_registry) == 0
    register_serializer('p', Point, _ser_point, _des_point)
    assert 'p' in default_registry
    assert len(default_registry) == 1
    unregister_serializer('p')
    assert 'p' not in default_registry


@given(
    obj=st.one_of(
        st.binary(max_size=256),
        st.text(max_size=256),
        st.integers(),
        st.floats(allow_nan=False),
        st.lists(st.integers(), max_size=32),
        st.dictionaries(st.text(max_size=8), st.integers(), max_size=16),
        st.tuples(st.integers(), st.text(max_size=8), st.booleans()),
    ),
)
def test_serialize_roundtrip_property(obj):
    assert deserialize(serialize(obj)) == obj


@given(
    shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    seed=st.integers(0, 2**16),
)
def test_serialize_numpy_roundtrip_property(shape, seed):
    arr = np.random.default_rng(seed).integers(-100, 100, size=shape)
    restored = deserialize(serialize(arr))
    assert np.array_equal(restored, arr)
