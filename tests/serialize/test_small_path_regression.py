"""Perf regression gate for the small-object fast path.

Asserts the new serializer's 1 KB round trip is at least on par with the
legacy (pre-buffer) implementation for the payload kinds the paper's
small-message workloads exercise.  The committed benchmark JSON records
the real measured speedups (>= 1.0 per row); this gate runs in tier-1 with
a small noise tolerance so a future change that regresses the 1 KB regime
fails loudly instead of silently rotting.

Set ``REPRO_SKIP_PERF_GATES=1`` to skip under constrained/shared
environments where wall-clock comparisons are meaningless.
"""
from __future__ import annotations

import dataclasses
import io
import os
import pickle
import time
from typing import Any

import numpy as np
import pytest

from repro.serialize import deserialize
from repro.serialize import serialize

_skip_timing_gates = pytest.mark.skipif(
    os.environ.get('REPRO_SKIP_PERF_GATES') == '1',
    reason='perf gates disabled (REPRO_SKIP_PERF_GATES=1)',
)

#: The new path must stay within this factor of legacy (1.0 = parity;
#: the committed BENCH_serializer.json shows >= 1.0 on calm hardware —
#: the gate's margin only absorbs CI timer noise).
MIN_RELATIVE_SPEED = 0.85
ITERATIONS = 2000
ATTEMPTS = 3


# Legacy (pre-buffer) serializer, inline so the gate cannot drift from
# what benchmarks/bench_serializer.py compares against.
def _legacy_serialize(obj: Any) -> bytes:
    if isinstance(obj, bytes):
        return b'\x01' + obj
    if isinstance(obj, (bytearray, memoryview)):
        return b'\x01' + bytes(obj)
    if isinstance(obj, str):
        return b'\x02' + obj.encode('utf-8')
    if isinstance(obj, np.ndarray):
        buffer = io.BytesIO()
        np.save(buffer, obj, allow_pickle=False)
        return b'\x03' + buffer.getvalue()
    return b'\x05' + pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def _legacy_deserialize(data: bytes) -> Any:
    data = bytes(data)
    identifier, payload = data[:1], data[1:]
    if identifier == b'\x01':
        return payload
    if identifier == b'\x02':
        return payload.decode('utf-8')
    if identifier == b'\x03':
        return np.load(io.BytesIO(payload), allow_pickle=False)
    return pickle.loads(payload)


@dataclasses.dataclass
class SmallUpdate:
    """1 KB-regime task payload: a scalar header plus a tiny array."""

    round_id: int
    weights: np.ndarray
    name: str = 'gate'


def _payload(kind: str) -> Any:
    if kind == 'bytes':
        return bytes(1024)
    if kind == 'str':
        return 'a' * 1024
    if kind == 'dataclass':
        return SmallUpdate(round_id=1, weights=np.zeros(128))
    raise ValueError(kind)


def _best_of(ser, des, obj: Any, repeats: int = 3) -> float:
    best = float('inf')
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(ITERATIONS):
            des(ser(obj))
        best = min(best, (time.perf_counter() - start) / ITERATIONS)
    return best


@_skip_timing_gates
@pytest.mark.parametrize('kind', ['bytes', 'str', 'dataclass'])
def test_small_path_not_slower_than_legacy_at_1kb(kind: str) -> None:
    obj = _payload(kind)
    # Correctness first: both paths agree on the value.
    new_result = deserialize(serialize(obj))
    legacy_result = _legacy_deserialize(_legacy_serialize(obj))
    if kind == 'dataclass':
        assert new_result.round_id == legacy_result.round_id
        assert np.array_equal(new_result.weights, legacy_result.weights)
    else:
        assert new_result == legacy_result

    # Timed comparison, retried to ride out scheduler noise: the gate
    # passes if any attempt shows the new path at speed.
    ratios = []
    for _ in range(ATTEMPTS):
        new_s = _best_of(serialize, deserialize, obj)
        legacy_s = _best_of(_legacy_serialize, _legacy_deserialize, obj)
        ratio = legacy_s / new_s
        ratios.append(ratio)
        if ratio >= MIN_RELATIVE_SPEED:
            return
    pytest.fail(
        f'small-path regression at 1 KB for {kind}: best ratio '
        f'{max(ratios):.3f}x < {MIN_RELATIVE_SPEED}x across {ATTEMPTS} '
        f'attempts (ratios: {[f"{r:.3f}" for r in ratios]})',
    )


def test_small_frames_remain_compact() -> None:
    """The structural half of the gate: 1 KB payloads emit single frames.

    Wall-clock-free, so it runs even where the timing gate is skipped —
    if a change reroutes small payloads back through segment scaffolding,
    this fails regardless of machine noise.
    """
    for kind in ('bytes', 'str', 'dataclass'):
        frame = serialize(_payload(kind))
        assert isinstance(frame, bytes), (
            f'1 KB {kind} payload no longer serializes to a compact frame'
        )
