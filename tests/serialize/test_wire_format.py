"""Tests for the zero-copy wire format (SerializedObject, pickle-5, buffers)."""
from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.connectors.local import LocalConnector
from repro.exceptions import SerializationError
from repro.serialize import SerializedObject
from repro.serialize import deserialize
from repro.serialize import payload_nbytes
from repro.serialize import register_serializer
from repro.serialize import segments_of
from repro.serialize import serialize
from repro.serialize import to_bytes
from repro.serialize import unregister_serializer

IDENTIFIERS = {
    'bytes': 0x01,
    'str': 0x02,
    'numpy': 0x03,
    'custom': 0x04,
    'pickle': 0x05,
    'pickle5': 0x06,
}


# --------------------------------------------------------------------------- #
# Round trips per identifier x input container
# --------------------------------------------------------------------------- #
def _input_forms(serialized):
    """Every container deserialize must accept: structured (or small frame),
    bytes, bytearray, memoryview."""
    joined = bytes(serialized)
    return [serialized, joined, bytearray(joined), memoryview(joined)]


THRESHOLD = 16 * 1024  # the default small-frame threshold
LARGE = 8 * THRESHOLD  # comfortably on the segmented zero-copy path


@pytest.mark.parametrize(
    'obj,ident',
    [
        (b'\x00raw\xff', 'bytes'),
        ('text \N{GREEK SMALL LETTER ALPHA}', 'str'),
        (np.arange(24, dtype=np.int32).reshape(4, 6), 'numpy'),
        ({'k': [1, 2, 3]}, 'pickle'),
    ],
)
def test_roundtrip_every_input_container(obj, ident):
    serialized = serialize(obj)
    assert bytes(serialized)[0] == IDENTIFIERS[ident]
    for form in _input_forms(serialized):
        restored = deserialize(form)
        if isinstance(obj, np.ndarray):
            assert np.array_equal(restored, obj)
        else:
            assert restored == obj


def test_bytearray_and_memoryview_inputs_serialize_zero_copy():
    backing = bytearray(b'm' * LARGE)
    serialized = serialize(backing)
    # The segment aliases the caller's buffer (no copy at serialize time).
    assert serialized.pieces[1] is backing
    assert deserialize(serialized) == bytes(backing)

    view = memoryview(b'v' * LARGE)
    serialized = serialize(view)
    assert serialized.pieces[1] is view
    assert deserialize(serialized) == bytes(view)


def test_small_bytearray_and_memoryview_become_compact_frames():
    # Sub-threshold mutable buffers are copied into a compact frame, which
    # also detaches them from later caller mutations for free.
    backing = bytearray(b'mutable payload')
    serialized = serialize(backing)
    assert type(serialized) is bytes
    backing[:4] = b'XXXX'
    assert deserialize(serialized) == b'mutable payload'
    view = memoryview(b'view payload')
    serialized = serialize(view)
    assert type(serialized) is bytes
    assert deserialize(serialized) == bytes(view)


def test_non_contiguous_memoryview_is_materialized():
    view = memoryview(bytes(range(32)))[::2]
    serialized = serialize(view)
    assert deserialize(serialized) == bytes(view)


def test_fortran_contiguous_memoryview_roundtrip():
    # F-contiguous (but not C-contiguous) views cannot be cast to a flat
    # byte view, so serialize must materialize them up front.
    view = memoryview(np.asfortranarray(np.arange(6.0).reshape(2, 3)))
    assert view.contiguous and not view.c_contiguous
    serialized = serialize(view)
    for segment in segments_of(serialized):  # every segment must be castable
        assert segment.c_contiguous
    assert deserialize(serialized) == bytes(view)
    assert deserialize(bytes(serialized)) == bytes(view)
    big = memoryview(
        np.asfortranarray(np.arange(float(LARGE)).reshape(2, -1)),
    )
    assert not big.c_contiguous
    serialized = serialize(big)
    for segment in serialized.segments():
        assert segment.c_contiguous
    assert deserialize(serialized) == bytes(big)


# --------------------------------------------------------------------------- #
# Zero-copy properties
# --------------------------------------------------------------------------- #
def test_serialize_bytes_is_zero_copy():
    payload = b'z' * LARGE
    serialized = serialize(payload)
    assert serialized.pieces[1] is payload
    assert serialized.nbytes == len(payload) + 1


def test_small_payloads_serialize_to_compact_frames():
    # Below the threshold every kind collapses to one contiguous bytes frame
    # (header byte + payload) — no segment scaffolding.
    for obj, ident in (
        (b'z' * 1024, 0x01),
        ('y' * 1024, 0x02),
        (np.arange(128, dtype=np.float64), 0x03),
        ({'k': [1, 2, 3]}, 0x05),
    ):
        serialized = serialize(obj)
        assert type(serialized) is bytes
        assert serialized[0] == ident
        restored = deserialize(serialized)
        if isinstance(obj, np.ndarray):
            assert np.array_equal(restored, obj)
        else:
            assert restored == obj


def test_serialize_ndarray_aliases_array_buffer():
    arr = np.arange(LARGE // 8, dtype=np.float64)
    serialized = serialize(arr)
    raw = np.frombuffer(serialized.pieces[2], dtype=np.float64)
    assert np.shares_memory(raw, arr)


def test_deserialize_structured_ndarray_aliases_buffer():
    arr = np.arange(LARGE // 4, dtype=np.float32)
    restored = deserialize(serialize(arr))
    assert np.array_equal(restored, arr)
    assert np.shares_memory(restored, arr)


def test_deserialized_arrays_are_read_only():
    # Zero-copy arrays alias storage they do not own, so they surface
    # uniformly read-only across every input container and connector.
    arr = np.arange(LARGE // 8, dtype=np.float64)
    serialized = serialize(arr)
    for form in _input_forms(serialized) + [bytearray(bytes(serialized))]:
        restored = deserialize(form)
        assert not restored.flags.writeable
        with pytest.raises(ValueError):
            restored[0] = 1.0
    # ... including arrays reconstructed from pickle-5 out-of-band buffers.
    pair = TwoArrays(
        a=np.arange(LARGE // 8), b=np.arange(LARGE // 4, dtype=np.float32),
    )
    restored_pair = deserialize(serialize(pair))
    assert not restored_pair.a.flags.writeable
    # np.copy is the documented escape hatch.
    writable = np.copy(restored_pair.a)
    writable[0] = 99
    # Small frames copy the data, so those arrays own fresh memory and may
    # surface writable through pickle; correctness is the round trip.
    small = deserialize(serialize(np.arange(64, dtype=np.float64)))
    assert not small.flags.writeable  # npy frames still parse as views


def test_many_segment_payload_exceeding_iov_max():
    # 1200+ out-of-band buffers exceed IOV_MAX (typically 1024) per
    # writev/sendmsg call; the vectored-write loops must chunk.
    from repro.connectors.file import FileConnector
    from repro.connectors.redis import RedisConnector
    from repro.serialize import set_small_frame_threshold

    # Threshold 0 forces every pickle-5 buffer out-of-band so the payload
    # genuinely exceeds IOV_MAX segments.
    previous = set_small_frame_threshold(0)
    try:
        many = [np.full(4, i, dtype=np.int32) for i in range(1200)]
        serialized = serialize(many)
    finally:
        set_small_frame_threshold(previous)
    assert len(serialized.pieces) > 1100
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        conn = FileConnector(tmp)
        key = conn.put(serialized)
        restored = deserialize(conn.get(key))
        assert len(restored) == 1200 and np.array_equal(restored[7], many[7])
        conn.close(clear=True)
    conn = RedisConnector(launch=True)
    try:
        key = conn.put(serialize(many))
        restored = deserialize(conn.get(key))
        assert len(restored) == 1200 and np.array_equal(restored[1199], many[1199])
    finally:
        conn.close(clear=True)


def test_local_connector_put_of_bytes_is_copy_free():
    payload = b'p' * LARGE
    serialized = serialize(payload)
    with LocalConnector() as connector:
        key = connector.put(serialized)
        stored = connector._store[key]
        # The connector retained the SerializedObject itself and its payload
        # segment is still the producer's bytes object: zero copies.
        assert isinstance(stored, SerializedObject)
        assert stored.pieces[1] is payload
        assert deserialize(connector.get(key)) == payload


def test_local_connector_freezes_mutable_buffers():
    backing = bytearray(b'will be mutated')
    with LocalConnector() as connector:
        key = connector.put(serialize(backing))
        backing[:4] = b'XXXX'
        assert deserialize(connector.get(key)) == b'will be mutated'


def test_fortran_order_array_roundtrip():
    arr = np.asfortranarray(np.arange(35, dtype=np.float64).reshape(5, 7))
    for form in _input_forms(serialize(arr)):
        restored = deserialize(form)
        assert np.array_equal(restored, arr)


def test_non_contiguous_array_roundtrip():
    arr = np.arange(100).reshape(10, 10)[::2, ::3]
    restored = deserialize(serialize(arr))
    assert np.array_equal(restored, arr)


def test_datetime64_array_roundtrip():
    # datetime64/timedelta64 have no buffer protocol: serialize must fall
    # back to NumPy's own writer instead of crashing on the zero-copy cast.
    arr = np.array(['2024-01-01', '2026-07-29'], dtype='datetime64[D]')
    for form in _input_forms(serialize(arr)):
        restored = deserialize(form)
        assert np.array_equal(restored, arr)
        assert restored.dtype == arr.dtype


def test_object_dtype_array_raises():
    arr = np.array([object(), object()])
    with pytest.raises(SerializationError):
        serialize(arr)


# --------------------------------------------------------------------------- #
# Pickle protocol 5 out-of-band buffers
# --------------------------------------------------------------------------- #
@dataclasses.dataclass
class TwoArrays:
    a: np.ndarray
    b: np.ndarray
    label: str = 'pair'

    def __eq__(self, other):
        return (
            isinstance(other, TwoArrays)
            and np.array_equal(self.a, other.a)
            and np.array_equal(self.b, other.b)
            and self.label == other.label
        )


def test_pickle5_multi_buffer_roundtrip():
    obj = TwoArrays(
        a=np.arange(LARGE // 8, dtype=np.int64),
        b=np.random.rand(256, LARGE // 2048),
    )
    serialized = serialize(obj)
    assert bytes(serialized)[0] == IDENTIFIERS['pickle5']
    # Header + pickle + one out-of-band buffer per array.
    assert len(serialized.pieces) == 4
    for form in _input_forms(serialized):
        assert deserialize(form) == obj


def test_pickle5_buffers_are_out_of_band_views():
    obj = TwoArrays(
        a=np.arange(LARGE // 8),
        b=np.arange(LARGE // 4, dtype=np.float32),
    )
    serialized = serialize(obj)
    raw = np.frombuffer(serialized.pieces[2], dtype=np.int64)
    assert np.shares_memory(raw, obj.a)


def test_small_buffers_stay_in_band():
    # Sub-threshold pickle-5 buffers are kept inline by the buffer sieve, so
    # a container of tiny arrays yields one compact in-band pickle payload
    # instead of thousands of out-of-band segments.
    obj = TwoArrays(a=np.arange(32), b=np.arange(8, dtype=np.float32))
    serialized = serialize(obj)
    assert type(serialized) is bytes
    assert serialized[0] == IDENTIFIERS['pickle']
    assert deserialize(serialized) == obj


def test_small_objects_stay_in_band():
    serialized = serialize({'tiny': True})
    assert type(serialized) is bytes
    assert serialized[0] == IDENTIFIERS['pickle']


# --------------------------------------------------------------------------- #
# Size edge cases
# --------------------------------------------------------------------------- #
def test_empty_payloads_roundtrip():
    for obj in (b'', '', np.empty((0, 3))):
        for form in _input_forms(serialize(obj)):
            restored = deserialize(form)
            if isinstance(obj, np.ndarray):
                assert restored.shape == obj.shape
            else:
                assert restored == obj


def test_large_payload_roundtrip():
    payload = bytes(bytearray(range(256)) * (9 * 4096))  # > 8 MiB
    assert len(payload) > 8 * 1024 * 1024
    serialized = serialize(payload)
    assert deserialize(serialized) == payload
    assert deserialize(bytes(serialized)) == payload


def test_large_ndarray_roundtrip():
    arr = np.random.default_rng(1).random(9 * 1024 * 1024 // 8 + 1)  # > 8 MiB
    assert arr.nbytes > 8 * 1024 * 1024
    for form in (serialize(arr), memoryview(bytes(serialize(arr)))):
        assert np.array_equal(deserialize(form), arr)


# --------------------------------------------------------------------------- #
# Custom serializers through the buffer-aware format
# --------------------------------------------------------------------------- #
class Wrapped:
    def __init__(self, text):
        self.text = text

    def __eq__(self, other):
        return isinstance(other, Wrapped) and self.text == other.text


def test_custom_serializer_roundtrip_all_containers():
    register_serializer(
        'wrapped',
        Wrapped,
        lambda w: w.text.encode(),
        lambda data: Wrapped(data.decode()),
    )
    try:
        serialized = serialize(Wrapped('hello'))
        assert bytes(serialized)[0] == IDENTIFIERS['custom']
        for form in _input_forms(serialized):
            assert deserialize(form) == Wrapped('hello')
    finally:
        unregister_serializer('wrapped')


# --------------------------------------------------------------------------- #
# SerializedObject API
# --------------------------------------------------------------------------- #
def test_serialized_object_api():
    payload = b'a' * LARGE
    serialized = serialize(payload)
    assert len(serialized) == LARGE + 1
    assert serialized.nbytes == LARGE + 1
    assert serialized[0] == 0x01
    assert serialized[1:] == payload
    assert serialized.startswith(b'\x01aa')
    assert serialized == bytes(serialized)
    assert [len(s) for s in serialized.segments()] == [1, LARGE]


def test_small_frame_is_plain_bytes():
    frame = serialize(b'abcd')
    assert type(frame) is bytes
    assert frame == b'\x01abcd'


def test_serialized_object_pickles_as_joined_bytes():
    arr = np.arange(LARGE // 8)
    serialized = serialize(arr)
    clone = pickle.loads(pickle.dumps(serialized))
    assert isinstance(clone, SerializedObject)
    assert bytes(clone) == bytes(serialized)
    assert np.array_equal(deserialize(clone), arr)


def test_payload_helpers():
    serialized = serialize(b'xyz')
    assert payload_nbytes(serialized) == 4
    assert payload_nbytes(b'xyz') == 3
    assert payload_nbytes(memoryview(b'xyz')) == 3
    assert to_bytes(serialized) == bytes(serialized)
    data = b'already'
    assert to_bytes(data) is data
    assert sum(len(s) for s in segments_of(serialized)) == 4
    assert segments_of(b'') == []


def test_legacy_contiguous_format_still_parses():
    # Pre-buffer payloads (plain ident+payload concatenation) stay readable.
    import io

    arr = np.arange(10)
    legacy = io.BytesIO()
    np.save(legacy, arr, allow_pickle=False)
    assert np.array_equal(deserialize(b'\x03' + legacy.getvalue()), arr)
    assert deserialize(b'\x01raw') == b'raw'
    assert deserialize(b'\x05' + pickle.dumps([1, 2])) == [1, 2]
