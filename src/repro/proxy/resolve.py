"""Module-level helpers for working with :class:`~repro.proxy.Proxy` instances.

These functions mirror the utilities ProxyStore exposes: they let library and
application code inspect or control proxy resolution without touching the
proxy's (intentionally hidden) internals, and without accidentally resolving
a proxy that the caller only wants to inspect.
"""
from __future__ import annotations

from typing import Any
from typing import TypeVar

from repro.proxy.factory import Factory
from repro.proxy.proxy import Proxy
from repro.proxy.proxy import UNRESOLVED
from repro.proxy.proxy import get_factory

T = TypeVar('T')

__all__ = [
    'extract',
    'is_proxy',
    'is_resolved',
    'resolve',
    'resolve_async',
]


def is_proxy(obj: Any) -> bool:
    """Return ``True`` if ``obj`` is a :class:`Proxy` instance.

    Note that ``isinstance(obj, Proxy)`` also works (proxies do not lie about
    their concrete type, only about ``__class__``), but this helper documents
    intent and avoids accidentally resolving the proxy.
    """
    return type(obj) is Proxy or isinstance(type(obj), type) and issubclass(type(obj), Proxy)


def is_resolved(proxy: Proxy[T]) -> bool:
    """Return ``True`` if ``proxy`` has already resolved its target.

    This never triggers resolution.
    """
    if not is_proxy(proxy):
        raise TypeError(f'expected a Proxy, got {type(proxy).__name__}')
    return object.__getattribute__(proxy, '__target__') is not UNRESOLVED


def resolve(proxy: Proxy[T]) -> None:
    """Force ``proxy`` to resolve its target immediately (blocking)."""
    if not is_proxy(proxy):
        raise TypeError(f'expected a Proxy, got {type(proxy).__name__}')
    _ = proxy.__wrapped__


def resolve_async(proxy: Proxy[T]) -> None:
    """Begin resolving ``proxy`` in a background thread.

    If the proxy's factory derives from :class:`~repro.proxy.Factory` its
    ``resolve_async`` hook is used; otherwise this is a no-op (the proxy will
    simply resolve synchronously on first use).  Used to overlap
    communication with computation, e.g. the sleep-task experiments in
    Figure 5 of the paper.
    """
    if not is_proxy(proxy):
        raise TypeError(f'expected a Proxy, got {type(proxy).__name__}')
    if is_resolved(proxy):
        return
    factory = get_factory(proxy)
    if isinstance(factory, Factory):
        factory.resolve_async()


def extract(proxy: Proxy[T]) -> T:
    """Return the target object wrapped by ``proxy`` (resolving if needed).

    Unlike using the proxy directly, the returned object is the bare target
    with its true concrete type, which is occasionally needed by code that
    checks ``type(x) is SomeType`` rather than using ``isinstance``.
    """
    if not is_proxy(proxy):
        raise TypeError(f'expected a Proxy, got {type(proxy).__name__}')
    return proxy.__wrapped__
