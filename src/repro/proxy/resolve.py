"""Module-level helpers for working with :class:`~repro.proxy.Proxy` instances.

These functions mirror the utilities ProxyStore exposes: they let library and
application code inspect or control proxy resolution without touching the
proxy's (intentionally hidden) internals, and without accidentally resolving
a proxy that the caller only wants to inspect.
"""
from __future__ import annotations

from typing import Any
from typing import TypeVar

from repro.proxy.factory import Factory
from repro.proxy.proxy import Proxy
from repro.proxy.proxy import UNRESOLVED
from repro.proxy.proxy import get_factory

T = TypeVar('T')

__all__ = [
    'extract',
    'is_owned',
    'is_proxy',
    'is_resolved',
    'resolve',
    'resolve_async',
]


def is_proxy(obj: Any) -> bool:
    """Return ``True`` if ``obj`` is a :class:`Proxy` instance.

    Note that ``isinstance(obj, Proxy)`` also works (proxies do not lie about
    their concrete type, only about ``__class__``), but this helper documents
    intent and avoids accidentally resolving the proxy.
    """
    return type(obj) is Proxy or isinstance(type(obj), type) and issubclass(type(obj), Proxy)


def is_resolved(proxy: Proxy[T]) -> bool:
    """Return ``True`` if ``proxy`` has already resolved its target.

    This never triggers resolution.
    """
    if not is_proxy(proxy):
        raise TypeError(f'expected a Proxy, got {type(proxy).__name__}')
    return object.__getattribute__(proxy, '__target__') is not UNRESOLVED


def resolve(proxy: Proxy[T]) -> None:
    """Force ``proxy`` to resolve its target immediately (blocking)."""
    if not is_proxy(proxy):
        raise TypeError(f'expected a Proxy, got {type(proxy).__name__}')
    _ = proxy.__wrapped__


def resolve_async(proxy: Proxy[T]) -> None:
    """Begin resolving ``proxy`` in a background thread.

    If the proxy's factory derives from :class:`~repro.proxy.Factory` its
    ``resolve_async`` hook is used; otherwise this is a no-op (the proxy will
    simply resolve synchronously on first use).  Used to overlap
    communication with computation, e.g. the sleep-task experiments in
    Figure 5 of the paper.
    """
    if not is_proxy(proxy):
        raise TypeError(f'expected a Proxy, got {type(proxy).__name__}')
    if is_resolved(proxy):
        return
    factory = get_factory(proxy)
    if isinstance(factory, Factory):
        factory.resolve_async()


def is_owned(obj: Any) -> bool:
    """Return ``True`` if ``obj`` is an ownership-aware proxy.

    True for :class:`~repro.proxy.owned.OwnedProxy` and its borrow views
    (``RefProxy``/``RefMutProxy``); false for plain proxies and non-proxies.
    Never triggers resolution.
    """
    from repro.proxy.owned import _TrackedProxy

    # type()-based: isinstance() on a plain proxy would consult the
    # transparent __class__ property and resolve it as a side effect.
    return issubclass(type(obj), _TrackedProxy)


def extract(proxy: Proxy[T], *, evict: bool = False) -> T:
    """Return the target object wrapped by ``proxy`` (resolving if needed).

    Unlike using the proxy directly, the returned object is the bare target
    with its true concrete type, which is occasionally needed by code that
    checks ``type(x) is SomeType`` rather than using ``isinstance``.

    Args:
        proxy: the proxy to unwrap.
        evict: also evict the backing key after extraction — parity with
            ``Store.proxy(evict=...)`` for callers that decide at read time
            (rather than creation time) that a value is read-exactly-once.
            Requires a store-backed proxy; owned proxies manage their own
            lifetime, so evicting them here raises ``OwnershipError``.
    """
    if not is_proxy(proxy):
        raise TypeError(f'expected a Proxy, got {type(proxy).__name__}')
    if not evict:
        return proxy.__wrapped__
    if is_owned(proxy):
        from repro.exceptions import OwnershipError

        raise OwnershipError(
            'extract(evict=True) on an ownership-aware proxy would fight '
            'its owner over the key lifetime; drop the owner instead',
        )
    factory = get_factory(proxy)
    key = getattr(factory, 'key', None)
    get_store = getattr(factory, 'get_store', None)
    if key is None or get_store is None:
        raise TypeError(
            'extract(evict=True) requires a store-backed proxy; factory '
            f'{type(factory).__name__} carries no key/store',
        )
    target = proxy.__wrapped__
    if not factory.evict:  # evict-on-resolve factories already did it
        get_store().evict(key)
    return target
