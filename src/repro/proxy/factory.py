"""Factory abstractions used to initialize proxies.

A factory is *any* zero-argument callable returning the target object —
lambdas, functions, and callable class instances all work.  The classes here
add two conveniences on top of the bare-callable protocol:

* a common base class (:class:`Factory`) for factories that want to support
  asynchronous pre-resolution (``resolve_async``), and
* small concrete factories used throughout the library and its tests.

Factories must be picklable for proxies to be communicated across processes;
:class:`LambdaFactory` therefore only accepts picklable callables and
arguments (this is checked lazily, at pickle time, like ProxyStore does).
"""
from __future__ import annotations

import threading
from typing import Any
from typing import Callable
from typing import Generic
from typing import TypeVar

T = TypeVar('T')

__all__ = ['Factory', 'SimpleFactory', 'LambdaFactory']


class Factory(Generic[T]):
    """Base class for factories with optional asynchronous pre-resolution.

    Subclasses must implement :meth:`resolve`.  ``resolve_async`` starts the
    resolution in a background thread; a subsequent call to the factory will
    wait on and reuse that result so communication can be overlapped with
    computation (Section 3.5 of the paper).
    """

    def __init__(self) -> None:
        self._async_thread: threading.Thread | None = None
        self._async_result: Any = None
        self._async_error: BaseException | None = None

    # -- the factory protocol ------------------------------------------- #
    def __call__(self) -> T:
        thread = getattr(self, '_async_thread', None)
        if thread is not None:
            thread.join()
            self._async_thread = None
            if self._async_error is not None:
                error, self._async_error = self._async_error, None
                raise error
            result, self._async_result = self._async_result, None
            return result
        return self.resolve()

    def resolve(self) -> T:
        """Produce and return the target object."""
        raise NotImplementedError

    def resolve_async(self) -> None:
        """Begin resolving the target in a background thread.

        Calling the factory afterwards joins the background thread and
        returns its result, raising any exception the background resolution
        produced.
        """
        if getattr(self, '_async_thread', None) is not None:
            return

        def _run() -> None:
            try:
                self._async_result = self.resolve()
            except BaseException as e:  # noqa: BLE001 - re-raised on join
                # Strip the traceback before the exception outlives this
                # frame: a stored traceback pins the resolving frames and
                # any live pickle-5 buffer exports they hold (the PR 8
                # BufferError-on-GC crash class).
                self._async_error = e.with_traceback(None)

        self._async_thread = threading.Thread(target=_run, daemon=True)
        self._async_thread.start()

    # -- pickling -------------------------------------------------------- #
    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        # Background-resolution state is process-local and never pickled.
        state['_async_thread'] = None
        state['_async_result'] = None
        state['_async_error'] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)


class SimpleFactory(Factory[T]):
    """Factory that simply returns the object it was constructed with.

    Useful for testing and for building proxies of objects that are already
    present in the consumer process.
    """

    def __init__(self, obj: T) -> None:
        super().__init__()
        self.obj = obj

    def __repr__(self) -> str:
        return f'SimpleFactory({self.obj!r})'

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SimpleFactory) and self.obj == other.obj

    def __hash__(self) -> int:  # pragma: no cover - rarely hashed
        return hash(('SimpleFactory', id(self.obj)))

    def resolve(self) -> T:
        """Return the wrapped object (no I/O, never fails)."""
        return self.obj


class LambdaFactory(Factory[T]):
    """Factory wrapping an arbitrary callable plus positional/keyword arguments.

    The callable and its arguments must themselves be picklable for the proxy
    to be communicable; lambdas and nested functions will work in-process but
    fail at pickle time, exactly as with ProxyStore.
    """

    def __init__(
        self,
        target: Callable[..., T],
        *args: Any,
        **kwargs: Any,
    ) -> None:
        super().__init__()
        if not callable(target):
            raise TypeError('target of a LambdaFactory must be callable')
        self.target = target
        self.args = args
        self.kwargs = kwargs

    def __repr__(self) -> str:
        return (
            f'LambdaFactory({self.target!r}, args={self.args!r}, '
            f'kwargs={self.kwargs!r})'
        )

    def resolve(self) -> T:
        """Invoke the wrapped callable and return its result."""
        return self.target(*self.args, **self.kwargs)
