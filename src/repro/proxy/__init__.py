"""Lazy transparent object proxies (the paper's core abstraction).

Public API::

    from repro.proxy import Proxy, Factory, SimpleFactory, LambdaFactory
    from repro.proxy import extract, is_resolved, resolve, resolve_async
"""
from repro.proxy.factory import Factory
from repro.proxy.factory import LambdaFactory
from repro.proxy.factory import SimpleFactory
from repro.proxy.proxy import Proxy
from repro.proxy.proxy import UNRESOLVED
from repro.proxy.proxy import get_factory
from repro.proxy.resolve import extract
from repro.proxy.resolve import is_proxy
from repro.proxy.resolve import is_resolved
from repro.proxy.resolve import resolve
from repro.proxy.resolve import resolve_async

__all__ = [
    'Factory',
    'LambdaFactory',
    'Proxy',
    'SimpleFactory',
    'UNRESOLVED',
    'extract',
    'get_factory',
    'is_proxy',
    'is_resolved',
    'resolve',
    'resolve_async',
]
