"""Lazy transparent object proxies (the paper's core abstraction).

Public API::

    from repro.proxy import Proxy, Factory, SimpleFactory, LambdaFactory
    from repro.proxy import extract, is_resolved, resolve, resolve_async
    from repro.proxy import OwnedProxy, borrow, mut_borrow, clone, into_owned
"""
from repro.proxy.factory import Factory
from repro.proxy.factory import LambdaFactory
from repro.proxy.factory import SimpleFactory
from repro.proxy.owned import OwnedProxy
from repro.proxy.owned import RefMutProxy
from repro.proxy.owned import RefProxy
from repro.proxy.owned import borrow
from repro.proxy.owned import clone
from repro.proxy.owned import drop
from repro.proxy.owned import flush
from repro.proxy.owned import into_owned
from repro.proxy.owned import mut_borrow
from repro.proxy.proxy import Proxy
from repro.proxy.proxy import UNRESOLVED
from repro.proxy.proxy import get_factory
from repro.proxy.resolve import extract
from repro.proxy.resolve import is_owned
from repro.proxy.resolve import is_proxy
from repro.proxy.resolve import is_resolved
from repro.proxy.resolve import resolve
from repro.proxy.resolve import resolve_async

__all__ = [
    'Factory',
    'LambdaFactory',
    'OwnedProxy',
    'Proxy',
    'RefMutProxy',
    'RefProxy',
    'SimpleFactory',
    'UNRESOLVED',
    'borrow',
    'clone',
    'drop',
    'extract',
    'flush',
    'get_factory',
    'into_owned',
    'is_owned',
    'is_proxy',
    'is_resolved',
    'mut_borrow',
    'resolve',
    'resolve_async',
]
