"""Ownership and borrowing for store-backed proxies.

A plain :class:`~repro.proxy.Proxy` created by ``Store.proxy()`` leaves the
lifetime of the proxied key to the application: the key either outlives every
consumer (leaking storage under sustained traffic) or is destroyed on first
resolve (``evict=True``, which breaks as soon as two consumers share the
proxy).  This module closes that gap with borrow-checker-style ownership:

* :class:`OwnedProxy` — there is exactly one owner of the backing key.  When
  the owner is dropped (garbage collected, :func:`drop`-ped, or its context
  manager exits) the key is evicted from the store.  Accessing any view of
  the data afterwards raises :class:`~repro.exceptions.UseAfterFreeError`.
* :func:`borrow` / :func:`mut_borrow` — create :class:`RefProxy` /
  :class:`RefMutProxy` views.  Many shared (read-only) borrows XOR one
  exclusive mutable borrow may exist at a time; violations raise
  :class:`~repro.exceptions.BorrowError`.
* :func:`clone` — copy the target into a new key with its own owner.
* :func:`into_owned` — upgrade a legacy, unowned proxy to an ``OwnedProxy``.

Pickling an ``OwnedProxy`` (or any borrow) ships a *non-owning*
:class:`RefProxy`, so communicating a proxy to another process never
duplicates ownership: the producing process remains responsible for the
key's lifetime.
"""
from __future__ import annotations

import copy as copy_module
import threading
from typing import Any
from typing import TypeVar

from repro.exceptions import BorrowError
from repro.exceptions import OwnershipError
from repro.exceptions import UseAfterFreeError
from repro.proxy.proxy import Proxy
from repro.proxy.proxy import UNRESOLVED
from repro.proxy.proxy import _do_resolve
from repro.proxy.proxy import get_factory

T = TypeVar('T')

__all__ = [
    'OwnedProxy',
    'RefMutProxy',
    'RefProxy',
    'borrow',
    'clone',
    'drop',
    'flush',
    'into_owned',
]


# One lock guards all ownership transitions.  The critical sections are a
# few instructions, so sharing a module-level lock is contention-free in
# practice and keeps per-proxy construction (the <5% overhead budget of
# benchmarks/bench_proxy_ops.py) from paying a lock allocation each time.
# Reentrant on purpose: RefProxy.__del__ releases a borrow, and a GC pass
# can run it on the very thread that currently holds the lock.
_TRANSITIONS = threading.RLock()


class _Ownership:
    """Mutable bookkeeping shared by one owner and all of its borrows.

    Tracks the borrow state (shared reader count XOR one exclusive writer)
    and whether the backing key has been freed.  All transitions are guarded
    by the module lock: proxies routinely cross thread boundaries in this
    codebase (task servers, prefetching factories).
    """

    __slots__ = ('key', 'store_config', 'shared', 'mut', 'freed')

    def __init__(self, key: Any, store_config: Any) -> None:
        self.key = key
        self.store_config = store_config
        self.shared = 0
        self.mut = False
        self.freed = False

    def check_valid(self) -> None:
        if self.freed:
            where = (
                f'key {self.key!r} in store {self.store_config.name!r}'
                if self.store_config is not None
                else 'the proxied key'
            )
            raise UseAfterFreeError(
                f'{where} was freed when its owner was dropped; this proxy '
                'is no longer usable',
            )

    def add_shared(self) -> None:
        with _TRANSITIONS:
            self.check_valid()
            if self.mut:
                raise BorrowError(
                    f'key {self.key!r} is exclusively (mutably) borrowed; '
                    'shared borrows must wait for the mutable borrow to be '
                    'dropped',
                )
            self.shared += 1

    def add_mut(self) -> None:
        with _TRANSITIONS:
            self.check_valid()
            if self.mut:
                raise BorrowError(
                    f'key {self.key!r} is already mutably borrowed',
                )
            if self.shared:
                raise BorrowError(
                    f'key {self.key!r} has {self.shared} outstanding shared '
                    'borrow(s); a mutable borrow requires exclusive access',
                )
            self.mut = True

    def release_shared(self) -> None:
        with _TRANSITIONS:
            if self.shared > 0:
                self.shared -= 1

    def release_mut(self) -> None:
        with _TRANSITIONS:
            self.mut = False

    def free(self) -> None:
        """Evict the backing key and invalidate every outstanding view.

        Idempotent, and deliberately swallows store errors: the finalizer may
        run at interpreter shutdown or after the connector was closed, when
        there is nothing useful left to do with a failure.
        """
        with _TRANSITIONS:
            if self.freed:
                return
            self.freed = True
        _evict_key(self)  # records carry .key/.store_config like a factory


def _evict_key(factory: Any) -> None:
    """Best-effort eviction of a factory's key (drop/GC cleanup path)."""
    try:
        from repro.store.registry import get_or_create_store

        get_or_create_store(factory.store_config).evict(factory.key)
    except Exception:  # noqa: BLE001 - interpreter teardown, closed store
        pass


# Shared terminal record installed on explicitly drop()-ped owners whose
# borrow record was never materialized: any later access must still raise
# UseAfterFreeError, but there is no per-key state left worth allocating.
_FREED = _Ownership(None, None)
_FREED.freed = True


def _unowned_factory(factory: Any) -> Any:
    """Return a copy of ``factory`` with the ownership flag cleared."""
    duplicate = copy_module.copy(factory)
    if getattr(duplicate, 'owned', False):
        duplicate.owned = False
    return duplicate


class _TrackedProxy(Proxy[T]):
    """Base for proxies whose access is gated by an :class:`_Ownership` record.

    Subclasses attach the record with ``object.__setattr__`` (the transparent
    proxy machinery forwards normal attribute writes to the target) and every
    resolution re-validates it, so a freed key fails fast with
    :class:`UseAfterFreeError` instead of a stale store fetch.
    """

    __slots__ = ('__ownership__', '__weakref__')

    def __init__(self, factory: Any, record: _Ownership | None) -> None:
        super().__init__(factory)
        object.__setattr__(self, '__ownership__', record)

    # The base Proxy resolves through this property from every forwarded
    # special method, so checking here covers all access paths at once.
    # The freed flag is read inline (check_valid only on failure) to keep
    # the per-access overhead of ownership tracking in the noise.
    @property
    def __wrapped__(self) -> T:
        record = object.__getattribute__(self, '__ownership__')
        if record is not None and record.freed:
            record.check_valid()
        return _do_resolve(self)

    @__wrapped__.setter
    def __wrapped__(self, value: T) -> None:
        object.__setattr__(self, '__target__', value)

    @__wrapped__.deleter
    def __wrapped__(self) -> None:
        object.__setattr__(self, '__target__', UNRESOLVED)

    # Duplicating a tracked proxy with copy.copy would bypass the borrow
    # bookkeeping (an untracked second owner or borrow), so reject it and
    # point at the explicit alternatives.
    def __copy__(self):
        raise OwnershipError(
            f'{type(self).__name__} cannot be copied; use borrow()/'
            'mut_borrow() for views or clone() for an independent copy',
        )

    def __deepcopy__(self, memo):
        raise OwnershipError(
            f'{type(self).__name__} cannot be deep-copied; use clone() for '
            'an independent copy of the target',
        )

    # Pickling any ownership-aware proxy ships a plain non-owning RefProxy:
    # ownership and borrow counts are process-local and must never silently
    # duplicate across processes.
    def __reduce__(self):
        factory = _unowned_factory(object.__getattribute__(self, '__factory__'))
        return (RefProxy, (factory,))

    def __reduce_ex__(self, protocol: int):
        return self.__reduce__()


class OwnedProxy(_TrackedProxy[T]):
    """A proxy that owns its backing key.

    Created by ``Store.owned_proxy()`` (or :func:`into_owned`).  The key is
    evicted from the store when the owner is dropped: explicitly with
    :func:`drop`, at context-manager exit, or implicitly when the proxy is
    garbage collected.  Live borrows are invalidated by the drop and raise
    :class:`UseAfterFreeError` on their next access.

    Entering the proxy as a context manager returns the proxy itself and
    drops ownership on exit (this intentionally shadows forwarding
    ``__enter__``/``__exit__`` to the target).
    """

    __slots__ = ()

    def __init__(self, factory: Any, *, _record: _Ownership | None = None) -> None:
        key = getattr(factory, 'key', None)
        store_config = getattr(factory, 'store_config', None)
        if key is None or store_config is None:
            raise OwnershipError(
                'an OwnedProxy requires a store-backed factory carrying '
                f'.key and .store_config, got {type(factory).__name__}',
            )
        if getattr(factory, 'evict', False):
            raise OwnershipError(
                'an OwnedProxy cannot wrap an evict-on-resolve factory; the '
                'owner manages the key lifetime itself',
            )
        if hasattr(factory, 'owned') and not factory.owned:
            # Copy before flipping the flag: the caller may share this
            # factory with other proxies that must stay unowned.
            factory = copy_module.copy(factory)
            factory.owned = True
        super().__init__(factory, _record)

    @classmethod
    def _from_store(cls, factory: Any) -> 'OwnedProxy[T]':
        """Fast-path construction for ``Store.owned_proxy``.

        The store built ``factory`` itself (``owned=True``, no evict), so
        the defensive validation in ``__init__`` is skipped.  The ownership
        record stays ``None`` until the first borrow materializes it: an
        owner that is never borrowed — the common case — pays nothing
        beyond one extra slot write, which is what keeps the create path
        inside the <5% overhead budget of benchmarks/bench_proxy_ops.py.
        """
        self = cls.__new__(cls)
        object.__setattr__(self, '__factory__', factory)
        object.__setattr__(self, '__target__', UNRESOLVED)
        object.__setattr__(self, '__ownership__', None)
        return self

    # Cleanup rides on __del__ rather than weakref.finalize: a finalize
    # registration costs more than the whole rest of construction.  free()
    # is idempotent and swallows teardown-time errors.
    def __del__(self) -> None:
        try:
            record = object.__getattribute__(self, '__ownership__')
            if record is not None:
                record.free()
                return
            factory = object.__getattribute__(self, '__factory__')
        except Exception:  # noqa: BLE001 - partially-constructed proxy
            return
        _evict_key(factory)

    def __enter__(self) -> 'OwnedProxy[T]':
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        drop(self)


class RefProxy(_TrackedProxy[T]):
    """A shared (read-only by convention) borrow of an owned key.

    A ``RefProxy`` unpickled in another process carries no ownership record:
    it is a plain reference whose validity is only known to the store.
    """

    __slots__ = ()

    def __init__(self, factory: Any, *, _record: _Ownership | None = None) -> None:
        super().__init__(factory, _record)

    def __del__(self) -> None:
        try:
            record = object.__getattribute__(self, '__ownership__')
        except Exception:  # noqa: BLE001 - partially-constructed proxy
            return
        if record is not None:
            record.release_shared()


class RefMutProxy(_TrackedProxy[T]):
    """The single exclusive (mutable) borrow of an owned key.

    While a ``RefMutProxy`` is live no other borrow may be taken.  Mutations
    happen on the in-process target; :func:`flush` writes them back to the
    store under the same key.
    """

    __slots__ = ()

    def __init__(self, factory: Any, *, _record: _Ownership | None = None) -> None:
        super().__init__(factory, _record)

    def __del__(self) -> None:
        try:
            record = object.__getattribute__(self, '__ownership__')
        except Exception:  # noqa: BLE001 - partially-constructed proxy
            return
        if record is not None:
            record.release_mut()


def _record_of(proxy: Any, operation: str) -> _Ownership:
    """Return ``proxy``'s ownership record, materializing it if lazy."""
    # type()-based check: isinstance() on a non-matching proxy falls back
    # to the transparent __class__ property, resolving it as a side effect.
    if not issubclass(type(proxy), OwnedProxy):
        raise OwnershipError(
            f'{operation} requires an OwnedProxy, got {type(proxy).__name__}',
        )
    with _TRANSITIONS:
        record = object.__getattribute__(proxy, '__ownership__')
        if record is None:
            factory = object.__getattribute__(proxy, '__factory__')
            record = _Ownership(factory.key, factory.store_config)
            object.__setattr__(proxy, '__ownership__', record)
        return record


def borrow(proxy: 'OwnedProxy[T]') -> 'RefProxy[T]':
    """Take a shared borrow of ``proxy``.

    Any number of shared borrows may coexist, but not alongside a mutable
    borrow.  The borrow resolves lazily through the same store factory and
    becomes invalid (raising :class:`UseAfterFreeError`) once the owner is
    dropped.
    """
    record = _record_of(proxy, 'borrow()')
    record.add_shared()
    factory = _unowned_factory(get_factory(proxy))
    return RefProxy(factory, _record=record)


def mut_borrow(proxy: 'OwnedProxy[T]') -> 'RefMutProxy[T]':
    """Take the exclusive mutable borrow of ``proxy``.

    Fails with :class:`BorrowError` while any other borrow is outstanding.
    """
    record = _record_of(proxy, 'mut_borrow()')
    record.add_mut()
    factory = _unowned_factory(get_factory(proxy))
    return RefMutProxy(factory, _record=record)


def clone(proxy: 'OwnedProxy[T]') -> 'OwnedProxy[T]':
    """Copy the target into a new key and return its new owner.

    The clone is fully independent: dropping either owner does not affect
    the other's key.
    """
    record = _record_of(proxy, 'clone()')
    # Hold a shared borrow for the duration of the copy: it both rejects
    # cloning while a mutable borrow is live (BorrowError) and blocks a
    # concurrent mut_borrow from mutating the target mid-serialization.
    try:
        record.add_shared()
    except BorrowError:
        raise BorrowError(
            f'key {record.key!r} is mutably borrowed; clone() needs '
            'read access to the target',
        ) from None
    try:
        factory = get_factory(proxy)
        store = factory.get_store()
        target = _do_resolve(proxy)
        # cache_local=False: the original's caching choice is unknowable
        # here, and silently pinning a possibly huge clone in the local
        # cache is the worse surprise — callers can cache explicitly.
        return store.owned_proxy(
            target,
            cache_local=False,
            **getattr(factory, 'connector_kwargs', {}),
        )
    finally:
        record.release_shared()


def into_owned(proxy: 'Proxy[T]') -> 'OwnedProxy[T]':
    """Upgrade a legacy, unowned proxy into an :class:`OwnedProxy`.

    The caller asserts that ``proxy`` is the only reference to the key; the
    original proxy should be discarded afterwards (it still resolves, but it
    does not observe the new owner's lifetime).  Proxies that are already
    ownership-aware, or that were created with ``evict=True``, cannot be
    upgraded.
    """
    if issubclass(type(proxy), _TrackedProxy):
        raise OwnershipError(
            f'{type(proxy).__name__} already participates in ownership '
            'tracking and cannot be upgraded with into_owned()',
        )
    if not issubclass(type(proxy), Proxy):
        raise OwnershipError(
            f'into_owned() requires a Proxy, got {type(proxy).__name__}',
        )
    factory = get_factory(proxy)
    if getattr(factory, 'evict', False):
        raise OwnershipError(
            'cannot take ownership of an evict-on-resolve proxy: its key '
            'is destroyed by the first resolution',
        )
    return OwnedProxy(copy_module.copy(factory))


def drop(proxy: 'OwnedProxy[Any]') -> None:
    """Drop ``proxy``'s ownership now, evicting the backing key.

    Idempotent.  Outstanding borrows are invalidated and raise
    :class:`UseAfterFreeError` on their next access.
    """
    if not issubclass(type(proxy), OwnedProxy):
        raise OwnershipError(
            f'drop() requires an OwnedProxy, got {type(proxy).__name__}',
        )
    with _TRANSITIONS:
        record = object.__getattribute__(proxy, '__ownership__')
        if record is None:
            # Never borrowed: leave a terminal marker so later access (or a
            # second drop) sees the freed state, then evict directly.
            object.__setattr__(proxy, '__ownership__', _FREED)
    if record is None:
        _evict_key(object.__getattribute__(proxy, '__factory__'))
    else:
        record.free()


def flush(proxy: 'RefMutProxy[Any]') -> None:
    """Write a mutable borrow's (resolved, possibly mutated) target back.

    The target is re-serialized and stored under the *same* key via the
    connector's deferred-write ``set``, so the owner and later borrows see
    the update.  Raises :class:`OwnershipError` if the connector does not
    support in-place writes or the borrow was never resolved.
    """
    if not issubclass(type(proxy), RefMutProxy):
        raise OwnershipError(
            f'flush() requires a RefMutProxy, got {type(proxy).__name__}',
        )
    record = object.__getattribute__(proxy, '__ownership__')
    if record is not None:
        record.check_valid()
    target = object.__getattribute__(proxy, '__target__')
    if target is UNRESOLVED:
        raise OwnershipError(
            'flush() on an unresolved mutable borrow: nothing was mutated',
        )
    from repro.serialize.buffers import payload_nbytes
    from repro.store.metrics import Timer

    factory = get_factory(proxy)
    store = factory.get_store()
    with Timer() as t_ser:
        data = store.serializer(target)
    nbytes = payload_nbytes(data)
    store._record('serialize', t_ser.elapsed, nbytes)
    try:
        with Timer() as t_set:
            store.connector.set(factory.key, store._outbound(data))
    except NotImplementedError as e:
        raise OwnershipError(
            f'connector {type(store.connector).__name__} does not support '
            'in-place writes; flush() is unavailable on this store',
        ) from e
    store._record('set', t_set.elapsed, nbytes)
    # Refresh an existing cache entry so no reader sees the stale value,
    # but never introduce one: the owner may have opted out of local
    # caching for a reason (e.g. a model larger than the cache budget).
    if store.is_cached(factory.key):
        store.cache.set(factory.key, target)
