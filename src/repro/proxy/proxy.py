"""Transparent, lazy object proxies.

A :class:`Proxy` wraps a *factory* — any callable returning the target object —
and defers calling it until the proxy is first used.  Once resolved, every
operation performed on the proxy is forwarded to the cached target, so the
proxy behaves identically to the object it references:

>>> from repro.proxy import Proxy
>>> p = Proxy(lambda: [1, 2, 3])
>>> isinstance(p, list)
True
>>> p + [4]
[1, 2, 3, 4]

Two properties make proxies suitable as wide-area object references:

* **Transparency** — all special methods are forwarded to the target, and the
  apparent ``__class__`` of the proxy is the class of the target, so
  ``isinstance`` checks behave as if the caller held the target itself.
* **Lazy resolution** — the factory is only invoked on first use.  A proxy of
  an object that is never touched never pays the communication cost of
  fetching it.

Pickling a proxy serializes *only the factory* (never the target), so proxies
stay small on the wire and remain resolvable after being communicated to
another process — the core mechanism of the ProxyStore programming model.
"""
from __future__ import annotations

import operator
from typing import Any
from typing import Callable
from typing import Generic
from typing import Iterator
from typing import TypeVar

from repro.exceptions import ProxyResolveError

T = TypeVar('T')

__all__ = ['Proxy', 'ProxyResolveError', 'get_factory', 'UNRESOLVED']


class _Unresolved:
    """Sentinel type marking a proxy whose target has not been produced yet."""

    _instance: '_Unresolved | None' = None

    def __new__(cls) -> '_Unresolved':
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return '<unresolved>'

    def __reduce__(self):  # keep the sentinel a singleton across pickling
        return (_Unresolved, ())


UNRESOLVED = _Unresolved()


def _do_resolve(proxy: 'Proxy[Any]') -> Any:
    """Resolve ``proxy`` by invoking its factory, caching and returning the target."""
    target = object.__getattribute__(proxy, '__target__')
    if target is not UNRESOLVED:
        return target
    factory = object.__getattribute__(proxy, '__factory__')
    try:
        target = factory()
    except Exception as e:  # noqa: BLE001 - deliberately wrap any factory failure
        raise ProxyResolveError(
            f'Failed to resolve proxy with factory {factory!r}: {e}',
        ) from e
    object.__setattr__(proxy, '__target__', target)
    return target


def get_factory(proxy: 'Proxy[T]') -> Callable[[], T]:
    """Return the factory associated with ``proxy`` without resolving it."""
    return object.__getattribute__(proxy, '__factory__')


class Proxy(Generic[T]):
    """Lazy, transparent proxy of an arbitrary Python object.

    Args:
        factory: any callable of zero arguments returning the target object.
            The factory must be picklable if the proxy is to be communicated
            to other processes.

    The target is produced by calling the factory the first time the proxy is
    accessed and cached thereafter.  The proxy customizes its own pickling to
    include only the factory, never the (potentially large) target.
    """

    __slots__ = ('__factory__', '__target__')

    def __init__(self, factory: Callable[[], T]) -> None:
        if not callable(factory):
            raise TypeError(
                f'factory must be callable, got {type(factory).__name__}',
            )
        object.__setattr__(self, '__factory__', factory)
        object.__setattr__(self, '__target__', UNRESOLVED)

    # ------------------------------------------------------------------ #
    # Resolution machinery
    # ------------------------------------------------------------------ #
    @property
    def __wrapped__(self) -> T:
        """The target object, resolving the proxy if necessary."""
        return _do_resolve(self)

    @__wrapped__.setter
    def __wrapped__(self, value: T) -> None:
        object.__setattr__(self, '__target__', value)

    @__wrapped__.deleter
    def __wrapped__(self) -> None:
        object.__setattr__(self, '__target__', UNRESOLVED)

    @property
    def __resolved__(self) -> bool:
        return object.__getattribute__(self, '__target__') is not UNRESOLVED

    # ------------------------------------------------------------------ #
    # Identity / introspection forwarding
    # ------------------------------------------------------------------ #
    @property
    def __class__(self):  # type: ignore[override]
        return type(self.__wrapped__)

    @__class__.setter
    def __class__(self, value) -> None:  # pragma: no cover - unusual but legal
        self.__wrapped__.__class__ = value

    def __dir__(self) -> list[str]:
        return dir(self.__wrapped__)

    # ------------------------------------------------------------------ #
    # Attribute access
    # ------------------------------------------------------------------ #
    def __getattr__(self, name: str) -> Any:
        # Only called when normal lookup fails (i.e. not for __factory__,
        # __target__, or anything defined on the Proxy class itself).
        if name in ('__factory__', '__target__'):
            raise AttributeError(name)
        return getattr(self.__wrapped__, name)

    def __setattr__(self, name: str, value: Any) -> None:
        if name in ('__factory__', '__target__', '__wrapped__'):
            if name == '__wrapped__':
                object.__setattr__(self, '__target__', value)
            else:
                object.__setattr__(self, name, value)
        else:
            setattr(self.__wrapped__, name, value)

    def __delattr__(self, name: str) -> None:
        if name == '__wrapped__':
            object.__setattr__(self, '__target__', UNRESOLVED)
        else:
            delattr(self.__wrapped__, name)

    # ------------------------------------------------------------------ #
    # Pickling: only the factory travels.
    # ------------------------------------------------------------------ #
    def __reduce__(self):
        factory = object.__getattribute__(self, '__factory__')
        return (type(self), (factory,))

    def __reduce_ex__(self, protocol: int):
        return self.__reduce__()

    # ------------------------------------------------------------------ #
    # Copying: duplicate the factory, never the (possibly huge) target.
    # Without these, copy.deepcopy's getattr(x, '__deepcopy__') probe is
    # forwarded to the target by __getattr__, resolving the proxy as a
    # side effect and copying the bare target instead of a fresh proxy.
    # ------------------------------------------------------------------ #
    def __copy__(self) -> 'Proxy[T]':
        factory = object.__getattribute__(self, '__factory__')
        return type(self)(factory)

    def __deepcopy__(self, memo: dict) -> 'Proxy[T]':
        import copy

        factory = object.__getattribute__(self, '__factory__')
        return type(self)(copy.deepcopy(factory, memo))

    # ------------------------------------------------------------------ #
    # String conversions
    # ------------------------------------------------------------------ #
    def __str__(self) -> str:
        return str(self.__wrapped__)

    def __repr__(self) -> str:
        return repr(self.__wrapped__)

    def __format__(self, format_spec: str) -> str:
        return format(self.__wrapped__, format_spec)

    def __bytes__(self) -> bytes:
        return bytes(self.__wrapped__)

    # ------------------------------------------------------------------ #
    # Comparison and hashing
    # ------------------------------------------------------------------ #
    def __hash__(self) -> int:
        return hash(self.__wrapped__)

    def __eq__(self, other: Any) -> Any:
        return self.__wrapped__ == other

    def __ne__(self, other: Any) -> Any:
        return self.__wrapped__ != other

    def __lt__(self, other: Any) -> Any:
        return self.__wrapped__ < other

    def __le__(self, other: Any) -> Any:
        return self.__wrapped__ <= other

    def __gt__(self, other: Any) -> Any:
        return self.__wrapped__ > other

    def __ge__(self, other: Any) -> Any:
        return self.__wrapped__ >= other

    # ------------------------------------------------------------------ #
    # Truthiness and numeric conversions
    # ------------------------------------------------------------------ #
    def __bool__(self) -> bool:
        return bool(self.__wrapped__)

    def __int__(self) -> int:
        return int(self.__wrapped__)

    def __float__(self) -> float:
        return float(self.__wrapped__)

    def __complex__(self) -> complex:
        return complex(self.__wrapped__)

    def __index__(self) -> int:
        return operator.index(self.__wrapped__)

    def __round__(self, ndigits: int | None = None):
        if ndigits is None:
            return round(self.__wrapped__)
        return round(self.__wrapped__, ndigits)

    def __trunc__(self):
        import math

        return math.trunc(self.__wrapped__)

    def __floor__(self):
        import math

        return math.floor(self.__wrapped__)

    def __ceil__(self):
        import math

        return math.ceil(self.__wrapped__)

    # ------------------------------------------------------------------ #
    # Unary arithmetic
    # ------------------------------------------------------------------ #
    def __neg__(self):
        return -self.__wrapped__

    def __pos__(self):
        return +self.__wrapped__

    def __abs__(self):
        return abs(self.__wrapped__)

    def __invert__(self):
        return ~self.__wrapped__

    # ------------------------------------------------------------------ #
    # Binary arithmetic (left, right, and in-place variants)
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        return self.__wrapped__ + other

    def __radd__(self, other):
        return other + self.__wrapped__

    def __iadd__(self, other):
        self.__wrapped__ = self.__wrapped__ + other
        return self

    def __sub__(self, other):
        return self.__wrapped__ - other

    def __rsub__(self, other):
        return other - self.__wrapped__

    def __isub__(self, other):
        self.__wrapped__ = self.__wrapped__ - other
        return self

    def __mul__(self, other):
        return self.__wrapped__ * other

    def __rmul__(self, other):
        return other * self.__wrapped__

    def __imul__(self, other):
        self.__wrapped__ = self.__wrapped__ * other
        return self

    def __matmul__(self, other):
        return self.__wrapped__ @ other

    def __rmatmul__(self, other):
        return other @ self.__wrapped__

    def __imatmul__(self, other):
        self.__wrapped__ = self.__wrapped__ @ other
        return self

    def __truediv__(self, other):
        return self.__wrapped__ / other

    def __rtruediv__(self, other):
        return other / self.__wrapped__

    def __itruediv__(self, other):
        self.__wrapped__ = self.__wrapped__ / other
        return self

    def __floordiv__(self, other):
        return self.__wrapped__ // other

    def __rfloordiv__(self, other):
        return other // self.__wrapped__

    def __ifloordiv__(self, other):
        self.__wrapped__ = self.__wrapped__ // other
        return self

    def __mod__(self, other):
        return self.__wrapped__ % other

    def __rmod__(self, other):
        return other % self.__wrapped__

    def __imod__(self, other):
        self.__wrapped__ = self.__wrapped__ % other
        return self

    def __divmod__(self, other):
        return divmod(self.__wrapped__, other)

    def __rdivmod__(self, other):
        return divmod(other, self.__wrapped__)

    def __pow__(self, other, modulo=None):
        if modulo is None:
            return self.__wrapped__ ** other
        return pow(self.__wrapped__, other, modulo)

    def __rpow__(self, other):
        return other ** self.__wrapped__

    def __ipow__(self, other):
        self.__wrapped__ = self.__wrapped__ ** other
        return self

    def __lshift__(self, other):
        return self.__wrapped__ << other

    def __rlshift__(self, other):
        return other << self.__wrapped__

    def __ilshift__(self, other):
        self.__wrapped__ = self.__wrapped__ << other
        return self

    def __rshift__(self, other):
        return self.__wrapped__ >> other

    def __rrshift__(self, other):
        return other >> self.__wrapped__

    def __irshift__(self, other):
        self.__wrapped__ = self.__wrapped__ >> other
        return self

    def __and__(self, other):
        return self.__wrapped__ & other

    def __rand__(self, other):
        return other & self.__wrapped__

    def __iand__(self, other):
        self.__wrapped__ = self.__wrapped__ & other
        return self

    def __xor__(self, other):
        return self.__wrapped__ ^ other

    def __rxor__(self, other):
        return other ^ self.__wrapped__

    def __ixor__(self, other):
        self.__wrapped__ = self.__wrapped__ ^ other
        return self

    def __or__(self, other):
        return self.__wrapped__ | other

    def __ror__(self, other):
        return other | self.__wrapped__

    def __ior__(self, other):
        self.__wrapped__ = self.__wrapped__ | other
        return self

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.__wrapped__)

    def __length_hint__(self) -> int:
        return operator.length_hint(self.__wrapped__)

    def __getitem__(self, key):
        return self.__wrapped__[key]

    def __setitem__(self, key, value) -> None:
        self.__wrapped__[key] = value

    def __delitem__(self, key) -> None:
        del self.__wrapped__[key]

    def __contains__(self, item) -> bool:
        return item in self.__wrapped__

    def __iter__(self) -> Iterator:
        return iter(self.__wrapped__)

    def __next__(self):
        return next(self.__wrapped__)

    def __reversed__(self):
        return reversed(self.__wrapped__)

    # ------------------------------------------------------------------ #
    # Callables and context managers
    # ------------------------------------------------------------------ #
    def __call__(self, *args, **kwargs):
        return self.__wrapped__(*args, **kwargs)

    def __enter__(self):
        return self.__wrapped__.__enter__()

    def __exit__(self, exc_type, exc_value, traceback):
        return self.__wrapped__.__exit__(exc_type, exc_value, traceback)

    # ------------------------------------------------------------------ #
    # Async protocol
    # ------------------------------------------------------------------ #
    def __await__(self):
        return self.__wrapped__.__await__()

    def __aiter__(self):
        return self.__wrapped__.__aiter__()

    def __anext__(self):
        return self.__wrapped__.__anext__()

    async def __aenter__(self):
        return await self.__wrapped__.__aenter__()

    async def __aexit__(self, exc_type, exc_value, traceback):
        return await self.__wrapped__.__aexit__(exc_type, exc_value, traceback)
