"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated exceptions.
"""
from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ProxyResolveError(ReproError):
    """Raised when a proxy's factory fails to resolve its target object."""


class SerializationError(ReproError):
    """Raised when an object cannot be serialized or deserialized."""


class ConnectorError(ReproError):
    """Base class for connector-level failures."""


class ConnectorKeyError(ConnectorError, KeyError):
    """Raised when a key is missing from a connector and the operation requires it."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable.
        return Exception.__str__(self)


class ConnectorClosedError(ConnectorError):
    """Raised when an operation is attempted on a closed connector."""


class NodeUnavailableError(ConnectorError):
    """Raised when a storage node cannot be reached at all.

    This is deliberately distinct from other :class:`ConnectorError`
    failures: the request itself was fine but the node is gone (crashed,
    stopped, or unreachable), so callers holding replicas elsewhere should
    *retry on another node* rather than treat the operation as corrupt.
    The cluster layer uses it as the replication failover and crash
    detection trigger.
    """


class UnknownConnectorSchemeError(ConnectorError):
    """Raised when a URL scheme does not name a registered connector."""


class ConnectorSchemeExistsError(ConnectorError):
    """Raised when registering a scheme already claimed by a different connector."""


class DeferredWriteError(ConnectorError):
    """Raised when a connector cannot pre-allocate keys for deferred writes."""


class StoreError(ReproError):
    """Base class for store-level failures."""


class StoreExistsError(StoreError):
    """Raised when registering a store under a name that is already registered."""


class StoreKeyError(StoreError, KeyError):
    """Raised when an object referenced by a proxy no longer exists in the store."""

    def __str__(self) -> str:
        return Exception.__str__(self)


class NoPolicyMatchError(StoreError):
    """Raised by the MultiConnector when no managed connector's policy matches."""


class OwnershipError(StoreError):
    """Base class for proxy ownership and borrow-rule violations."""


class BorrowError(OwnershipError):
    """Raised when a borrow would violate the sharing rules.

    The rules mirror a borrow checker: a proxied object may have many shared
    (read-only) borrows XOR one exclusive mutable borrow at any time, and an
    owner cannot be consumed (e.g. by :func:`~repro.proxy.owned.clone`) while
    a mutable borrow is outstanding.
    """


class UseAfterFreeError(OwnershipError):
    """Raised when a proxy whose backing object was freed is accessed.

    This is deliberately distinct from :class:`StoreKeyError`: the access is
    rejected *before* any store lookup, so callers see an ownership violation
    rather than a confusing stale-fetch failure.
    """


class LifetimeError(StoreError):
    """Raised when a closed :class:`~repro.store.lifetimes.Lifetime` is used."""


class ProxyFutureError(StoreError):
    """Raised for invalid :class:`~repro.store.future.ProxyFuture` usage."""


class ProxyFutureTimeoutError(ProxyFutureError):
    """Raised when a future-backed proxy times out waiting for its producer."""


class StreamGroupError(StoreError):
    """Base class for consumer-group failures on a streaming topic."""


class GroupMembershipError(StreamGroupError, ConnectorError):
    """Raised when a group member's lease expired at the coordinator.

    The broker expired the member after missed heartbeats (e.g. a long GC
    pause or network partition), so its partitions may already be claimed
    by survivors.  The member must rejoin and resync its assignment before
    consuming further; the :class:`~repro.stream.groups.GroupConsumer`
    does this automatically.

    The class derives from **both** :class:`StreamGroupError` and
    :class:`ConnectorError`: lease expiry surfaces at the connector seam
    (the broker rejected the request), but unlike other connector failures
    it is *recoverable by rejoining* rather than by retrying the same call.
    Callers distinguishing "rejoin" from "fatal" should catch this class
    **before** the broader :class:`ConnectorError`.
    """


class TransferError(ReproError):
    """Raised when a simulated or real bulk transfer task fails."""


class EndpointError(ReproError):
    """Base class for PS-endpoint failures."""


class PeeringError(EndpointError):
    """Raised when a peer connection cannot be established or is lost."""


class RelayError(EndpointError):
    """Raised for relay (signaling) server protocol violations."""


class FaaSError(ReproError):
    """Base class for the simulated FaaS substrate."""


class PayloadTooLargeError(FaaSError):
    """Raised when a task payload exceeds the cloud service payload limit."""


class TaskExecutionError(FaaSError):
    """Raised when a task submitted to the FaaS substrate raises an exception."""


class WorkflowError(ReproError):
    """Base class for the workflow (Parsl/Colmena-like) substrate."""


class SimulationError(ReproError):
    """Base class for errors in the network/time simulation substrate."""


class UnknownSiteError(SimulationError):
    """Raised when a fabric lookup references a site that does not exist."""
