"""The SimKV server: a threaded TCP key-value store.

One server instance holds an in-memory ``dict`` guarded by a lock and serves
any number of concurrent client connections, each handled by its own thread
(the workload is I/O bound so Python threads are adequate, as the HPC Python
guidance recommends for network-bound servers).
"""
from __future__ import annotations

import socket
import threading
from typing import Any

from repro.kvserver.protocol import recv_message
from repro.kvserver.protocol import send_message

__all__ = ['KVServer', 'launch_server']


class KVServer:
    """In-memory key-value store reachable over TCP.

    Args:
        host: interface to bind (default loopback).
        port: TCP port; ``0`` picks a free ephemeral port.
    """

    def __init__(self, host: str = '127.0.0.1', port: int = 0) -> None:
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        # Values are whatever buffer the protocol layer received into
        # (bytes, bytearray, or a view thereof) — stored without copying.
        self._data: dict[str, Any] = {}
        self._lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._client_threads: list[threading.Thread] = []
        self._running = threading.Event()

    # -- lifecycle -------------------------------------------------------- #
    def start(self) -> tuple[str, int]:
        """Bind, listen and start accepting connections; returns (host, port)."""
        if self._running.is_set():
            return (self.host, self.port or 0)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._running.set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name='simkv-accept', daemon=True,
        )
        self._accept_thread.start()
        return (self.host, self.port)

    def stop(self) -> None:
        """Stop accepting connections and close the listener."""
        if not self._running.is_set():
            return
        self._running.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - platform dependent
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2)
        with self._lock:
            self._data.clear()

    @property
    def running(self) -> bool:
        return self._running.is_set()

    def __enter__(self) -> 'KVServer':
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    # -- networking -------------------------------------------------------- #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed during shutdown
            thread = threading.Thread(
                target=self._serve_client, args=(conn,), daemon=True,
            )
            thread.start()
            self._client_threads.append(thread)

    def _serve_client(self, conn: socket.socket) -> None:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    request = recv_message(conn)
                except (OSError, EOFError):  # pragma: no cover - abrupt close
                    return
                if request is None:
                    return
                response = self._handle(request)
                try:
                    send_message(conn, response)
                except OSError:  # pragma: no cover - client vanished
                    return

    # -- command handling --------------------------------------------------- #
    @staticmethod
    def _own_value(value: Any) -> 'bytes | bytearray | memoryview | None':
        """Normalize a SET payload into a buffer the server can own.

        Clients send payloads as a list of out-of-band buffer segments
        (views over the bytearrays the protocol layer received into — fresh
        memory this server exclusively owns, so single segments are stored
        without a copy).  Plain ``bytes``/``bytearray`` values are accepted
        for backward compatibility.
        """
        if isinstance(value, (bytes, bytearray)):
            return value
        if isinstance(value, list):
            segments = [v for v in value if len(v)]
            if not segments:
                return b''
            if len(segments) == 1:
                return segments[0]
            return b''.join(segments)
        return None

    def _handle(self, request: Any) -> tuple[str, Any]:
        import pickle

        try:
            command, key, value = request
        except (TypeError, ValueError):
            return ('error', f'malformed request: {request!r}')
        command = str(command).upper()
        if command == 'PING':
            return ('ok', 'PONG')
        if command == 'SET':
            data = self._own_value(value)
            if data is None:
                return ('error', 'SET value must be bytes')
            with self._lock:
                self._data[key] = data
            return ('ok', True)
        if command == 'GET':
            with self._lock:
                data = self._data.get(key)
            # Out-of-band response: the payload bytes bypass the pickle
            # stream and go straight from storage to the socket.
            return ('ok', pickle.PickleBuffer(data) if data else data)
        if command == 'MSET':
            if not isinstance(value, list):
                return ('error', 'MSET value must be a list of (key, value) pairs')
            owned = []
            for entry in value:
                try:
                    entry_key, entry_value = entry
                except (TypeError, ValueError):
                    return ('error', f'malformed MSET entry: {entry!r}')
                data = self._own_value(entry_value)
                if data is None:
                    return ('error', 'MSET values must be bytes')
                owned.append((entry_key, data))
            with self._lock:
                for entry_key, data in owned:
                    self._data[entry_key] = data
            return ('ok', True)
        if command == 'MGET':
            if not isinstance(value, list):
                return ('error', 'MGET value must be a list of keys')
            with self._lock:
                datas = [self._data.get(k) for k in value]
            return (
                'ok',
                [pickle.PickleBuffer(d) if d else d for d in datas],
            )
        if command == 'MDEL':
            if not isinstance(value, list):
                return ('error', 'MDEL value must be a list of keys')
            with self._lock:
                removed = sum(
                    1 for k in value if self._data.pop(k, None) is not None
                )
            return ('ok', removed)
        if command == 'EXISTS':
            with self._lock:
                return ('ok', key in self._data)
        if command == 'DEL':
            with self._lock:
                return ('ok', self._data.pop(key, None) is not None)
        if command == 'FLUSH':
            with self._lock:
                count = len(self._data)
                self._data.clear()
            return ('ok', count)
        if command == 'SIZE':
            with self._lock:
                return ('ok', len(self._data))
        return ('error', f'unknown command {command!r}')


# Process-local registry of servers started implicitly by connectors so that
# repeated RedisConnector(...) construction with the same address reuses one
# server rather than racing to bind the port.
_LAUNCHED: dict[tuple[str, int], KVServer] = {}
_LAUNCH_LOCK = threading.Lock()


def launch_server(host: str = '127.0.0.1', port: int = 0) -> KVServer:
    """Start (or return an already-started) SimKV server on ``host:port``.

    With ``port=0`` a new server on an ephemeral port is always created.
    """
    with _LAUNCH_LOCK:
        if port != 0:
            existing = _LAUNCHED.get((host, port))
            if existing is not None and existing.running:
                return existing
        server = KVServer(host, port)
        server.start()
        assert server.port is not None
        _LAUNCHED[(host, server.port)] = server
        return server
