"""The SimKV server: a non-blocking, event-loop TCP key-value store.

One server instance holds an in-memory ``dict`` and serves any number of
concurrent client connections from a single ``selectors`` event loop —
no thread is spawned per connection, so thousands of pipelined clients
cost one file descriptor each instead of a Python thread each.  The loop
keeps the scatter/gather zero-copy framing of the wire protocol: requests
are decoded incrementally with ``recv_into`` into pre-sized buffers
(:class:`~repro.kvserver.protocol.StreamDecoder`) and responses are queued
as wire-order segments flushed with non-blocking ``sendmsg``, so payload
bytes go straight between storage and the socket without intermediate
joins.

Shutdown drains: :meth:`KVServer.stop` closes the listener, keeps the loop
running until every already-received request has been answered and every
queued response byte flushed (bounded by ``drain_timeout``), and only then
closes the client connections.

Beyond plain key-value storage the server is also a **pub/sub event
broker** (the transport behind :class:`repro.stream.KVEventBus`):
``PUBLISH`` appends an opaque payload to a per-topic ring buffer (bounded
by a configurable retention) and fans it out to every connection that
``SUBSCRIBE``-d to the topic as an unsolicited ``EVENT`` frame.  A slow
subscriber whose outgoing queue exceeds ``push_highwater`` bytes stops
receiving pushes (the events stay in the ring; the client notices the
sequence gap and issues a ``FETCH`` to catch up), so neither the ring nor
any per-connection queue grows without bound.
"""
from __future__ import annotations

import pickle
import selectors
import socket
import threading
import time
from collections import deque
from itertools import islice
from typing import Any

from repro.kvserver.protocol import EVENT_STATUS
from repro.kvserver.protocol import GROUP_COMMANDS
from repro.kvserver.protocol import REPL_COMMANDS
from repro.kvserver.protocol import STREAM_COMMANDS
from repro.kvserver.protocol import StreamDecoder
from repro.kvserver.protocol import encode_message
from repro.serialize.buffers import IOV_MAX

__all__ = ['DEFAULT_RETENTION', 'KVServer', 'launch_server']

#: Default per-topic ring-buffer retention (events kept for catch-up).
DEFAULT_RETENTION = 256

#: Queued-but-unsent bytes on a subscriber connection above which event
#: pushes are skipped (the subscriber catches up from the ring instead).
DEFAULT_PUSH_HIGHWATER = 8 * 1024 * 1024

#: Events per pushed ``EVENT`` frame when replaying a backlog.
_PUSH_BATCH = 64

#: Seconds a subscriber connection may sit with queued push bytes and make
#: no read/write progress before the server reaps it (frees its buffers).
DEFAULT_SUBSCRIBER_TIMEOUT = 30.0

#: Default seconds without a heartbeat before a group member is expired.
DEFAULT_SESSION_TIMEOUT = 10.0


class _ClientConn:
    """Per-connection state tracked by the event loop."""

    __slots__ = (
        'sock', 'decoder', 'out', 'events', 'queued_bytes', 'topics',
        'last_progress',
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.decoder = StreamDecoder()
        #: Outgoing wire segments not yet accepted by the kernel.
        self.out: deque[memoryview] = deque()
        #: Currently registered selector interest mask.
        self.events = selectors.EVENT_READ
        #: Bytes in ``out`` not yet accepted by the kernel (push backpressure).
        self.queued_bytes = 0
        #: Topics this connection has subscribed to.
        self.topics: set[str] = set()
        #: Monotonic timestamp of the last read or write progress — the
        #: dead-subscriber reaper's liveness signal.
        self.last_progress = time.monotonic()


class _Topic:
    """Per-topic broker state: sequence counter, ring buffer, subscribers."""

    __slots__ = (
        'name', 'next_seq', 'ring', 'ring_bytes', 'retention',
        'subscribers', 'dropped_events', 'dropped_pushes',
        'reaped_subscribers',
    )

    def __init__(self, name: str, retention: int) -> None:
        self.name = name
        #: Sequence number the next published event will receive.
        self.next_seq = 0
        #: Retained ``(seq, payload, nbytes)`` triples, oldest first.
        self.ring: deque[tuple[int, Any, int]] = deque()
        self.ring_bytes = 0
        self.retention = retention
        self.subscribers: set[_ClientConn] = set()
        #: Events that aged out of the ring before every consumer saw them.
        self.dropped_events = 0
        #: Pushes skipped because a subscriber was over the highwater mark.
        self.dropped_pushes = 0
        #: Subscriber connections reaped by the no-progress sweep.
        self.reaped_subscribers = 0

    def append(self, payload: Any, nbytes: int) -> int:
        """Retain one event payload; returns its sequence number."""
        seq = self.next_seq
        self.next_seq += 1
        self.ring.append((seq, payload, nbytes))
        self.ring_bytes += nbytes
        while len(self.ring) > self.retention:
            _, _, old_nbytes = self.ring.popleft()
            self.ring_bytes -= old_nbytes
            self.dropped_events += 1
        return seq

    def append_at(self, seq: int, payload: Any, nbytes: int) -> bool:
        """Retain a *replicated* event at an explicit sequence number.

        Used by ``REPL_PUBLISH`` to mirror a primary broker's ring onto
        this replica with identical numbering.  Idempotent and tolerant of
        reordering: duplicates and events older than the ring's trim point
        are dropped (returns ``False``), out-of-order arrivals are inserted
        in sequence order, and ``next_seq`` only moves forward — so a
        replica promoted to primary continues the primary's numbering.
        """
        if self.ring:
            first = self.ring[0][0]
            last = self.ring[-1][0]
            if seq < first:
                self.next_seq = max(self.next_seq, seq + 1)
                return False
            if seq <= last:
                # Out-of-order arrival: scan from the right (arrivals are
                # nearly ordered) for the insert point; drop duplicates.
                index = len(self.ring)
                while index > 0 and self.ring[index - 1][0] > seq:
                    index -= 1
                if index > 0 and self.ring[index - 1][0] == seq:
                    return False
                self.ring.insert(index, (seq, payload, nbytes))
            else:
                self.ring.append((seq, payload, nbytes))
        else:
            if seq < self.next_seq:
                return False  # aged out of an empty ring
            self.ring.append((seq, payload, nbytes))
        self.ring_bytes += nbytes
        self.next_seq = max(self.next_seq, seq + 1)
        while len(self.ring) > self.retention:
            _, _, old_nbytes = self.ring.popleft()
            self.ring_bytes -= old_nbytes
            self.dropped_events += 1
        return True

    def events_since(self, since: int, limit: int) -> tuple[list, int]:
        """Retained ``(seq, payload)`` pairs with ``seq >= since``.

        Returns ``(events, lost)`` where ``lost`` counts events that aged
        out of the ring before ``since`` could observe them.
        """
        lost = 0
        if self.ring and self.ring[0][0] > since:
            lost = self.ring[0][0] - since
        elif not self.ring and self.next_seq > since:
            lost = self.next_seq - since
        events = [
            (seq, pickle.PickleBuffer(payload) if len(payload) else payload)
            for seq, payload, _ in self.ring
            if seq >= since
        ]
        return events[:limit], lost


class _Group:
    """Consumer-group state held by the group's designated broker.

    Membership is leased: each member carries its own ``session_timeout``
    and a deadline refreshed by ``GROUP_HEARTBEAT``.  Any group command
    first sweeps expired members; every membership change bumps the
    ``generation`` so clients detect that the partition assignment must be
    recomputed.  Offsets are per partition topic: ``committed`` is the
    at-least-once replay point (advanced only by ``OFFSET_COMMIT``, i.e.
    after the consumer acked), ``watermark`` the furthest delivered
    position any member reported — the gap between them is exactly the
    un-acked window a successor must redeliver.
    """

    __slots__ = ('name', 'generation', 'members', 'committed', 'watermarks',
                 'ends', 'expired_members')

    def __init__(self, name: str) -> None:
        self.name = name
        self.generation = 0
        #: member id -> (heartbeat deadline, session timeout seconds).
        self.members: dict[str, tuple[float, float]] = {}
        #: partition topic -> first un-acked sequence number.
        self.committed: dict[str, int] = {}
        #: partition topic -> furthest delivered position reported.
        self.watermarks: dict[str, int] = {}
        #: partition topic -> (end-marker seq, reporting member).  A
        #: partition is *finished* once its end is recorded and either
        #: committed reached it or the reporter is still a live member
        #: (it will ack; if it dies first, expiry re-opens the partition).
        self.ends: dict[str, tuple[int, str]] = {}
        #: Members removed by heartbeat expiry (not voluntary leaves).
        self.expired_members = 0

    def sweep(self, now: float) -> bool:
        """Expire members whose heartbeat deadline passed; True if any did."""
        dead = [m for m, (deadline, _) in self.members.items() if now > deadline]
        for member in dead:
            del self.members[member]
            self.expired_members += 1
        if dead:
            self.generation += 1
        return bool(dead)

    def touch(self, member: str, now: float, session_timeout: float | None = None) -> bool:
        """Refresh (or create) ``member``'s lease; True if membership changed."""
        known = member in self.members
        timeout = (
            session_timeout if session_timeout is not None
            else self.members[member][1] if known
            else DEFAULT_SESSION_TIMEOUT
        )
        self.members[member] = (now + timeout, timeout)
        if not known:
            self.generation += 1
        return not known

    def advance_watermarks(self, positions: Any) -> None:
        """Fold member-reported delivered positions into the watermarks."""
        if not isinstance(positions, dict):
            return
        for topic, position in positions.items():
            position = int(position)
            if position > self.watermarks.get(topic, 0):
                self.watermarks[topic] = position

    def record_ends(self, member: str, ends: Any) -> None:
        """Record end-of-stream markers a member delivered on its partitions."""
        if not isinstance(ends, dict):
            return
        for topic, end_seq in ends.items():
            self.ends[topic] = (int(end_seq), member)

    def view(self) -> dict[str, Any]:
        """The membership snapshot returned by every group command."""
        return {
            'generation': self.generation,
            'members': sorted(self.members),
        }


class KVServer:
    """In-memory key-value store and pub/sub event broker reachable over TCP.

    Args:
        host: interface to bind (default loopback).
        port: TCP port; ``0`` picks a free ephemeral port.
        drain_timeout: maximum seconds :meth:`stop` keeps serving to drain
            in-flight requests and flush queued responses.
        stream_retention: default per-topic ring-buffer size (events kept
            for subscriber catch-up); ``TCONFIG`` overrides it per topic.
        push_highwater: queued outgoing bytes on a subscriber connection
            above which event pushes are skipped (backpressure bound).
        subscriber_timeout: seconds a subscriber connection may hold queued
            push bytes without any read/write progress before the server
            reaps it — a dead push connection must not pin
            ``push_highwater`` bytes per topic forever.
    """

    def __init__(
        self,
        host: str = '127.0.0.1',
        port: int = 0,
        *,
        drain_timeout: float = 5.0,
        stream_retention: int = DEFAULT_RETENTION,
        push_highwater: int = DEFAULT_PUSH_HIGHWATER,
        subscriber_timeout: float = DEFAULT_SUBSCRIBER_TIMEOUT,
    ) -> None:
        if stream_retention < 1:
            raise ValueError('stream_retention must be at least 1')
        if subscriber_timeout <= 0:
            raise ValueError('subscriber_timeout must be positive')
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.drain_timeout = drain_timeout
        self.stream_retention = stream_retention
        self.push_highwater = push_highwater
        self.subscriber_timeout = subscriber_timeout
        #: Subscriber connections closed by the no-progress reaper.
        self.reaped_subscribers = 0
        #: Connections closed because servicing them raised (fault
        #: isolation events — the per-connection failures the event loop
        #: deliberately survives).
        self.faulted_connections = 0
        # Values are whatever buffer the protocol layer received into
        # (bytes, bytearray, or a view thereof) — stored without copying.
        self._data: dict[str, Any] = {}
        # Topics and groups are touched exclusively from the event-loop
        # thread.
        self._topics: dict[str, _Topic] = {}
        self._groups: dict[str, _Group] = {}
        self._lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._loop_thread: threading.Thread | None = None
        self._wake_recv: socket.socket | None = None
        self._wake_send: socket.socket | None = None
        self._conns: dict[socket.socket, _ClientConn] = {}
        self._running = threading.Event()

    # -- lifecycle -------------------------------------------------------- #
    def start(self) -> tuple[str, int]:
        """Bind, listen and start the event loop; returns (host, port)."""
        if self._running.is_set():
            return (self.host, self.port or 0)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(128)
        listener.setblocking(False)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, 'listener')
        self._selector.register(self._wake_recv, selectors.EVENT_READ, 'wake')
        self._running.set()
        self._loop_thread = threading.Thread(
            target=self._serve_loop, name='simkv-loop', daemon=True,
        )
        self._loop_thread.start()
        return (self.host, self.port)

    def stop(self) -> None:
        """Drain in-flight requests, then close every connection.

        New connections are refused immediately; requests whose bytes have
        already reached the server are still answered and queued response
        bytes are flushed, bounded by ``drain_timeout``.
        """
        if not self._running.is_set():
            return
        self._running.clear()
        if self._wake_send is not None:
            try:
                self._wake_send.send(b'\x00')
            except OSError:  # pragma: no cover - loop already gone
                pass
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=self.drain_timeout + 2)
        with self._lock:
            self._data.clear()

    @property
    def running(self) -> bool:
        return self._running.is_set()

    def __enter__(self) -> 'KVServer':
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    # -- event loop -------------------------------------------------------- #
    def _serve_loop(self) -> None:
        selector = self._selector
        assert selector is not None
        draining = False
        drain_deadline = 0.0
        # Bounded select so the dead-subscriber reaper runs even when no
        # socket is active; fine-grained enough for short test timeouts.
        tick = min(1.0, self.subscriber_timeout / 4)
        try:
            while True:
                if draining:
                    if time.monotonic() >= drain_deadline:
                        break
                    events = selector.select(timeout=0.02)
                    if not events and not any(c.out for c in self._conns.values()):
                        break  # quiet pass with nothing left to flush: drained
                else:
                    events = selector.select(timeout=tick)
                    self._reap_stalled_subscribers()
                for key, _mask in events:
                    if key.data == 'listener':
                        self._accept_ready()
                    elif key.data == 'wake':
                        self._drain_wake_pipe()
                        if not self._running.is_set() and not draining:
                            draining = True
                            drain_deadline = time.monotonic() + self.drain_timeout
                            self._close_listener()
                    else:
                        # Fault isolation: a malformed frame or per-request
                        # failure kills only the offending connection — the
                        # threaded server confined such errors to one client
                        # thread and the event loop must do no worse.
                        try:
                            self._service_conn(key.data, _mask)
                        except Exception:  # noqa: BLE001
                            self.faulted_connections += 1
                            self._close_conn(key.data)
        finally:
            self._running.clear()
            self._teardown()

    def _accept_ready(self) -> None:
        assert self._listener is not None and self._selector is not None
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed during shutdown
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _ClientConn(sock)
            self._conns[sock] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _drain_wake_pipe(self) -> None:
        assert self._wake_recv is not None
        while True:
            try:
                if not self._wake_recv.recv(4096):
                    return
            except (BlockingIOError, InterruptedError):
                return
            except OSError:  # pragma: no cover - torn down concurrently
                return

    def _close_listener(self) -> None:
        if self._listener is None:
            return
        try:
            assert self._selector is not None
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - platform dependent
            pass

    def _enqueue(self, conn: _ClientConn, segments: list[memoryview]) -> None:
        """Queue wire segments on ``conn``, tracking queued byte counts."""
        conn.out.extend(segments)
        conn.queued_bytes += sum(len(segment) for segment in segments)

    def _reap_stalled_subscribers(self) -> None:
        """Close subscriber connections holding push bytes with no progress.

        A subscriber that stops reading (a crashed-but-connected consumer,
        a host that vanished without a TCP reset) keeps its queued ``EVENT``
        frames pinned in ``out`` forever — up to ``push_highwater`` bytes
        per topic.  Any connection that is subscribed, has queued bytes,
        and has made no read/write progress for ``subscriber_timeout``
        seconds is reaped: the close frees its buffers and unsubscribes it
        from every topic (counted per topic in ``reaped_subscribers``).
        """
        cutoff = time.monotonic() - self.subscriber_timeout
        stalled = [
            conn
            for conn in self._conns.values()
            if conn.topics and conn.queued_bytes and conn.last_progress < cutoff
        ]
        for conn in stalled:
            self.reaped_subscribers += 1
            for topic_name in conn.topics:
                topic = self._topics.get(topic_name)
                if topic is not None:
                    topic.reaped_subscribers += 1
            self._close_conn(conn)

    def _service_conn(self, conn: _ClientConn, mask: int) -> None:
        closed = False
        if mask & selectors.EVENT_READ:
            messages, closed = conn.decoder.read_from(conn.sock)
            if messages:
                conn.last_progress = time.monotonic()
            for request in messages:
                self._enqueue(conn, encode_message(self._handle(request, conn)))
        if conn.out:
            # Optimistic flush: most responses fit the socket buffer, so
            # this usually completes without a round through the selector.
            if not self._flush(conn):
                closed = True
        if closed:
            self._close_conn(conn)
        else:
            self._update_interest(conn)

    def _flush(self, conn: _ClientConn) -> bool:
        """Write queued segments until empty or the socket would block.

        Returns False when the connection failed and must be closed.
        """
        out = conn.out
        while out:
            batch = list(islice(out, 0, IOV_MAX))
            try:
                sent = conn.sock.sendmsg(batch)
            except (BlockingIOError, InterruptedError):
                return True
            except OSError:
                return False
            conn.queued_bytes -= sent
            if sent:
                conn.last_progress = time.monotonic()
            while sent:
                head = out[0]
                if sent >= len(head):
                    sent -= len(head)
                    out.popleft()
                else:
                    out[0] = head[sent:]
                    sent = 0
        return True

    def _update_interest(self, conn: _ClientConn) -> None:
        wanted = selectors.EVENT_READ
        if conn.out:
            wanted |= selectors.EVENT_WRITE
        if wanted != conn.events:
            conn.events = wanted
            assert self._selector is not None
            self._selector.modify(conn.sock, wanted, conn)

    def _close_conn(self, conn: _ClientConn) -> None:
        assert self._selector is not None
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        for topic_name in conn.topics:
            topic = self._topics.get(topic_name)
            if topic is not None:
                topic.subscribers.discard(conn)
        conn.topics.clear()
        self._conns.pop(conn.sock, None)
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - platform dependent
            pass

    def _teardown(self) -> None:
        self._close_listener()
        for conn in list(self._conns.values()):
            self._close_conn(conn)
        self._topics.clear()
        self._groups.clear()
        if self._selector is not None:
            self._selector.close()
        for wake in (self._wake_recv, self._wake_send):
            if wake is not None:
                try:
                    wake.close()
                except OSError:  # pragma: no cover - platform dependent
                    pass
        self._wake_recv = self._wake_send = None
        self._selector = None
        self._listener = None

    # -- command handling --------------------------------------------------- #
    @staticmethod
    def _own_value(value: Any) -> 'bytes | bytearray | memoryview | None':
        """Normalize a SET payload into a buffer the server can own.

        Clients send payloads as a list of out-of-band buffer segments
        (views over the bytearrays the protocol layer received into — fresh
        memory this server exclusively owns, so single segments are stored
        without a copy).  Plain ``bytes``/``bytearray`` values are accepted
        for backward compatibility.
        """
        if isinstance(value, (bytes, bytearray)):
            return value
        if isinstance(value, list):
            segments = [v for v in value if len(v)]
            if not segments:
                return b''
            if len(segments) == 1:
                return segments[0]
            return b''.join(segments)
        return None

    def _handle(self, request: Any, conn: _ClientConn) -> tuple[Any, str, Any]:
        """Execute one request; returns the ``(request_id, status, payload)``.

        Requests are ``(request_id, command, key, value)``; bare legacy
        ``(command, key, value)`` triples are still accepted and answered
        with a ``None`` request id.  ``conn`` is the issuing connection —
        pub/sub commands bind subscriptions to it and fan pushes out from
        it.
        """
        request_id: Any = None
        try:
            if isinstance(request, tuple) and len(request) == 4:
                request_id, command, key, value = request
            else:
                command, key, value = request
        except (TypeError, ValueError):
            return (request_id, 'error', f'malformed request: {request!r}')
        try:
            status, payload = self._execute(str(command).upper(), key, value, conn)
        # repro: ignore[RP004] - not swallowed: the failure is returned
        # to the client as an error response
        except Exception as e:  # noqa: BLE001 - one bad request must not
            # take down the connection (let alone the event loop).
            status, payload = 'error', f'internal error: {e!r}'
        return (request_id, status, payload)

    # -- pub/sub ------------------------------------------------------------ #
    def _topic(self, name: Any) -> _Topic:
        """Return (creating on first use) the broker state for ``name``."""
        topic = self._topics.get(name)
        if topic is None:
            topic = self._topics[name] = _Topic(
                str(name), self.stream_retention,
            )
        return topic

    def _push_events(self, topic: _Topic, events: list) -> None:
        """Fan ``(seq, payload)`` pairs out to the topic's subscribers.

        A subscriber whose queued outgoing bytes exceed ``push_highwater``
        is skipped (counted in ``dropped_pushes``): the events remain in the
        ring buffer and the client catches up with a ``FETCH`` when it
        notices the sequence gap.  Pushes go through the same non-blocking
        flush as responses, so a slow socket never stalls the loop.
        """
        if not events or not topic.subscribers:
            return
        # Encode the frame once and share its segments across subscribers:
        # the segments are read-only views and _flush never mutates them
        # (partial sends reslice into fresh views), so fan-out costs one
        # pickle regardless of the subscriber count.
        wired = [
            (seq, pickle.PickleBuffer(payload) if len(payload) else payload)
            for seq, payload in events
        ]
        segments = encode_message((None, EVENT_STATUS, (topic.name, wired)))
        for conn in list(topic.subscribers):
            if conn.queued_bytes > self.push_highwater:
                topic.dropped_pushes += len(events)
                continue
            self._enqueue(conn, segments)
            if not self._flush(conn):
                self._close_conn(conn)
            else:
                self._update_interest(conn)

    def _execute_stream(
        self,
        command: str,
        key: Any,
        value: Any,
        conn: _ClientConn,
    ) -> tuple[str, Any]:
        """Handle one pub/sub command (topics live on the loop thread only)."""
        if command == 'PUBLISH':
            payload = self._own_value(value)
            if payload is None:
                return ('error', 'PUBLISH payload must be bytes')
            topic = self._topic(key)
            seq = topic.append(payload, len(payload))
            self._push_events(topic, [(seq, payload)])
            return ('ok', seq)
        if command == 'MPUBLISH':
            if not isinstance(value, list):
                return ('error', 'MPUBLISH value must be a list of payloads')
            payloads = []
            for entry in value:
                payload = self._own_value(entry)
                if payload is None:
                    return ('error', 'MPUBLISH payloads must be bytes')
                payloads.append(payload)
            topic = self._topic(key)
            seqs = [topic.append(p, len(p)) for p in payloads]
            self._push_events(topic, list(zip(seqs, payloads)))
            return ('ok', seqs)
        if command == 'SUBSCRIBE':
            options = value if isinstance(value, dict) else {}
            topic = self._topic(key)
            topic.subscribers.add(conn)
            conn.topics.add(topic.name)
            from_seq = options.get('from_seq')
            lost = 0
            if from_seq is not None:
                # Replay the retained backlog in bounded frames.  These are
                # enqueued before the SUBSCRIBE reply (responses are queued
                # by _service_conn after _handle returns), so clients must
                # accept EVENT frames ahead of the subscribe confirmation.
                backlog, lost = topic.events_since(int(from_seq), len(topic.ring))
                for start in range(0, len(backlog), _PUSH_BATCH):
                    chunk = backlog[start:start + _PUSH_BATCH]
                    self._enqueue(
                        conn,
                        encode_message((None, EVENT_STATUS, (topic.name, chunk))),
                    )
            return ('ok', {'next_seq': topic.next_seq, 'lost': lost})
        if command == 'UNSUBSCRIBE':
            topic = self._topics.get(key)
            if topic is not None:
                topic.subscribers.discard(conn)
            conn.topics.discard(str(key))
            return ('ok', True)
        if command == 'FETCH':
            options = value if isinstance(value, dict) else {}
            topic = self._topic(key)
            since = int(options.get('since', 0))
            limit = int(options.get('max_events', 0)) or len(topic.ring) or 1
            events, lost = topic.events_since(since, limit)
            return ('ok', {
                'events': events,
                'next_seq': topic.next_seq,
                'lost': lost,
            })
        if command == 'TCONFIG':
            options = value if isinstance(value, dict) else {}
            topic = self._topic(key)
            retention = options.get('retention')
            if retention is not None:
                retention = int(retention)
                if retention < 1:
                    return ('error', 'retention must be at least 1')
                topic.retention = retention
                while len(topic.ring) > topic.retention:
                    _, _, old_nbytes = topic.ring.popleft()
                    topic.ring_bytes -= old_nbytes
                    topic.dropped_events += 1
            return ('ok', {'retention': topic.retention})
        if command == 'TSTATS':
            topic = self._topics.get(key)
            if topic is None:
                return ('ok', None)
            return ('ok', {
                'next_seq': topic.next_seq,
                'ring_events': len(topic.ring),
                'ring_bytes': topic.ring_bytes,
                'retention': topic.retention,
                'subscribers': len(topic.subscribers),
                'dropped_events': topic.dropped_events,
                'dropped_pushes': topic.dropped_pushes,
                'reaped_subscribers': topic.reaped_subscribers,
            })
        return ('error', f'unknown command {command!r}')  # pragma: no cover

    # -- consumer groups ----------------------------------------------------- #
    def _group(self, name: Any) -> _Group:
        """Return (creating on first use) the group state for ``name``."""
        group = self._groups.get(name)
        if group is None:
            group = self._groups[name] = _Group(str(name))
        return group

    def _execute_group(
        self,
        command: str,
        key: Any,
        value: Any,
    ) -> tuple[str, Any]:
        """Handle one consumer-group command (state lives on the loop thread).

        Every command sweeps expired members first, so death detection
        needs no dedicated timer: survivors heartbeat at a fraction of the
        session timeout, and each heartbeat doubles as the expiry check
        that bumps the generation when a member died.
        """
        options = value if isinstance(value, dict) else {}
        group = self._group(key)
        now = time.monotonic()
        group.sweep(now)
        if command == 'GROUP_JOIN':
            member = str(options.get('member', ''))
            if not member:
                return ('error', 'GROUP_JOIN requires a member id')
            timeout = float(
                options.get('session_timeout') or DEFAULT_SESSION_TIMEOUT,
            )
            if timeout <= 0:
                return ('error', 'session_timeout must be positive')
            group.touch(member, now, timeout)
            return ('ok', group.view())
        if command == 'GROUP_HEARTBEAT':
            member = str(options.get('member', ''))
            if member not in group.members:
                # The member was expired (or never joined): it must rejoin
                # and resync its assignment before consuming further.
                return ('error', f'unknown member {member!r}')
            group.touch(member, now)
            group.advance_watermarks(options.get('positions'))
            group.record_ends(member, options.get('ends'))
            return ('ok', group.view())
        if command == 'GROUP_LEAVE':
            member = str(options.get('member', ''))
            if group.members.pop(member, None) is not None:
                group.generation += 1
            group.advance_watermarks(options.get('positions'))
            return ('ok', group.view())
        if command == 'OFFSET_COMMIT':
            offsets = options.get('offsets')
            if not isinstance(offsets, dict):
                return ('error', 'OFFSET_COMMIT requires an offsets dict')
            for topic, offset in offsets.items():
                offset = int(offset)
                if offset > group.committed.get(topic, 0):
                    group.committed[topic] = offset
            group.advance_watermarks(options.get('positions'))
            member = str(options.get('member', ''))
            group.record_ends(member, options.get('ends'))
            if member in group.members:  # a commit doubles as a heartbeat
                group.touch(member, now)
            return ('ok', group.view())
        if command == 'OFFSET_FETCH':
            topics = options.get('topics')
            if not isinstance(topics, (list, tuple)):
                return ('error', 'OFFSET_FETCH requires a topics list')
            payload = {}
            for topic in topics:
                end = group.ends.get(topic)
                payload[topic] = {
                    'committed': group.committed.get(topic, 0),
                    'watermark': group.watermarks.get(topic, 0),
                    'end': None if end is None else end[0],
                    'end_member': None if end is None else end[1],
                }
            return ('ok', payload)
        if command == 'GROUP_STATS':
            return ('ok', {
                **group.view(),
                'committed': dict(group.committed),
                'watermarks': dict(group.watermarks),
                'ends': {t: e[0] for t, e in group.ends.items()},
                'expired_members': group.expired_members,
            })
        return ('error', f'unknown command {command!r}')  # pragma: no cover

    # -- replication (broker failover) --------------------------------------- #
    def _execute_repl(
        self,
        command: str,
        key: Any,
        value: Any,
    ) -> tuple[str, Any]:
        """Handle one replication command from a mirroring client.

        ``REPL_PUBLISH`` inserts events *with explicit sequence numbers*
        into ``key``'s ring (idempotent, reorder-tolerant) and fans the
        newly retained ones out to any subscribers already attached here —
        so a subscriber that failed over to this replica keeps receiving
        live pushes even while producers still publish via the primary.

        ``REPL_GROUP`` applies a coordinator-state delta *leniently*: the
        member lease is created if missing (no error), committed offsets
        merge monotonically, and the generation only moves forward — so
        mirrored deltas may arrive late, duplicated, or out of order
        without corrupting the replica's view.
        """
        if command == 'REPL_PUBLISH':
            if not isinstance(value, list):
                return ('error', 'REPL_PUBLISH value must be [(seq, payload), ...]')
            topic = self._topic(key)
            accepted = []
            for entry in value:
                try:
                    seq, raw = entry
                except (TypeError, ValueError):
                    return ('error', f'malformed REPL_PUBLISH entry: {entry!r}')
                payload = self._own_value(raw)
                if payload is None:
                    return ('error', 'REPL_PUBLISH payloads must be bytes')
                if topic.append_at(int(seq), payload, len(payload)):
                    accepted.append((int(seq), payload))
            self._push_events(topic, accepted)
            return ('ok', {'accepted': len(accepted), 'next_seq': topic.next_seq})
        if command == 'REPL_GROUP':
            options = value if isinstance(value, dict) else {}
            group = self._group(key)
            now = time.monotonic()
            group.sweep(now)
            generation = int(options.get('generation', 0))
            if generation > group.generation:
                group.generation = generation
            member = str(options.get('member', ''))
            op = str(options.get('op', 'heartbeat'))
            if member and op in ('join', 'heartbeat', 'commit'):
                # Quiet lease refresh: create-if-missing without bumping the
                # generation (the primary's bump arrives via ``generation``).
                known = member in group.members
                timeout = float(
                    options.get('session_timeout')
                    or (group.members[member][1] if known else DEFAULT_SESSION_TIMEOUT),
                )
                group.members[member] = (now + timeout, timeout)
            elif member and op == 'leave':
                group.members.pop(member, None)
            offsets = options.get('offsets')
            if isinstance(offsets, dict):
                for topic_name, offset in offsets.items():
                    offset = int(offset)
                    if offset > group.committed.get(topic_name, 0):
                        group.committed[topic_name] = offset
            group.advance_watermarks(options.get('positions'))
            group.record_ends(member, options.get('ends'))
            return ('ok', group.view())
        return ('error', f'unknown command {command!r}')  # pragma: no cover

    def _execute(
        self,
        command: str,
        key: Any,
        value: Any,
        conn: _ClientConn,
    ) -> tuple[str, Any]:
        """Execute one parsed command; returns ``(status, payload)``."""
        if command in STREAM_COMMANDS:
            return self._execute_stream(command, key, value, conn)
        if command in GROUP_COMMANDS:
            return self._execute_group(command, key, value)
        if command in REPL_COMMANDS:
            return self._execute_repl(command, key, value)
        if command == 'PING':
            return ('ok', 'PONG')
        if command == 'SET':
            data = self._own_value(value)
            if data is None:
                return ('error', 'SET value must be bytes')
            with self._lock:
                self._data[key] = data
            return ('ok', True)
        if command == 'GET':
            with self._lock:
                data = self._data.get(key)
            # Out-of-band response: the payload bytes bypass the pickle
            # stream and go straight from storage to the socket.
            return ('ok', pickle.PickleBuffer(data) if data else data)
        if command == 'MSET':
            if not isinstance(value, list):
                return ('error', 'MSET value must be a list of (key, value) pairs')
            owned = []
            for entry in value:
                try:
                    entry_key, entry_value = entry
                except (TypeError, ValueError):
                    return ('error', f'malformed MSET entry: {entry!r}')
                data = self._own_value(entry_value)
                if data is None:
                    return ('error', 'MSET values must be bytes')
                owned.append((entry_key, data))
            with self._lock:
                for entry_key, data in owned:
                    self._data[entry_key] = data
            return ('ok', True)
        if command == 'MGET':
            if not isinstance(value, list):
                return ('error', 'MGET value must be a list of keys')
            with self._lock:
                datas = [self._data.get(k) for k in value]
            return (
                'ok',
                [pickle.PickleBuffer(d) if d else d for d in datas],
            )
        if command == 'MDEL':
            if not isinstance(value, list):
                return ('error', 'MDEL value must be a list of keys')
            with self._lock:
                removed = sum(
                    1 for k in value if self._data.pop(k, None) is not None
                )
            return ('ok', removed)
        if command == 'EXISTS':
            with self._lock:
                return ('ok', key in self._data)
        if command == 'KEYS':
            # Key enumeration for the cluster rebalancer: names only (no
            # payload bytes), so even a full node answers in one small frame.
            with self._lock:
                return ('ok', list(self._data))
        if command == 'DEL':
            with self._lock:
                return ('ok', self._data.pop(key, None) is not None)
        if command == 'FLUSH':
            with self._lock:
                count = len(self._data)
                self._data.clear()
            return ('ok', count)
        if command == 'SIZE':
            with self._lock:
                return ('ok', len(self._data))
        return ('error', f'unknown command {command!r}')


# Process-local registry of servers started implicitly by connectors so that
# repeated RedisConnector(...) construction with the same address reuses one
# server rather than racing to bind the port.
_LAUNCHED: dict[tuple[str, int], KVServer] = {}
_LAUNCH_LOCK = threading.Lock()


def launch_server(host: str = '127.0.0.1', port: int = 0) -> KVServer:
    """Start (or return an already-started) SimKV server on ``host:port``.

    With ``port=0`` a new server on an ephemeral port is always created.
    """
    with _LAUNCH_LOCK:
        if port != 0:
            existing = _LAUNCHED.get((host, port))
            if existing is not None and existing.running:
                return existing
        server = KVServer(host, port)
        server.start()
        assert server.port is not None
        _LAUNCHED[(host, server.port)] = server
        return server
