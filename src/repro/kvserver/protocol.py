"""Wire protocol shared by the SimKV server and client.

Messages are length-prefixed: a 4-byte big-endian unsigned length followed by
a pickled payload.  Requests are ``(command, key, value)`` tuples; responses
are ``(status, payload)`` tuples where ``status`` is ``'ok'`` or ``'error'``.
Pickle is acceptable here because both ends are this library (SimKV is an
internal substrate, not an internet-facing service).
"""
from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

__all__ = [
    'COMMANDS',
    'recv_message',
    'send_message',
]

#: Commands understood by the server.
COMMANDS = frozenset({'SET', 'GET', 'EXISTS', 'DEL', 'FLUSH', 'PING', 'SIZE', 'SHUTDOWN'})

_HEADER = struct.Struct('>I')


def send_message(sock: socket.socket, message: Any) -> None:
    """Pickle ``message`` and send it with a length prefix."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes | None:
    chunks: list[bytes] = []
    remaining = nbytes
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b''.join(chunks)


def recv_message(sock: socket.socket) -> Any | None:
    """Receive one length-prefixed message; ``None`` on a cleanly closed socket."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    payload = _recv_exact(sock, length)
    if payload is None:
        return None
    return pickle.loads(payload)
