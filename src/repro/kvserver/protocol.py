"""Wire protocol shared by the SimKV server and client.

Messages are framed as::

    uint32 pickle_len | uint32 n_buffers | n_buffers x uint64 buffer_len
    pickle bytes | buffer 0 | ... | buffer n-1

The pickle section is produced with protocol 5 and a ``buffer_callback``:
any :class:`pickle.PickleBuffer` inside the message (payload segments of a
``SET``/``MSET``, response values of a ``GET``/``MGET``) travels *out of
band* — its bytes are never copied into the pickle stream.  The sender
pushes header, pickle and raw buffers through one scatter/gather
(``sendmsg``) loop; the receiver reads each buffer straight into a fresh
``bytearray`` via ``recv_into`` and hands the views to ``pickle.loads``.

Requests are ``(request_id, command, key, value)`` tuples; responses are
``(request_id, status, payload)`` tuples where ``status`` is ``'ok'`` or
``'error'``.  Request ids let many requests share one connection: a
pipelined client tags each request and a reader thread matches responses
back to waiters, so the transport no longer serializes round trips.
Pickle is acceptable here because both ends are this library (SimKV is an
internal substrate, not an internet-facing service).

Two consumption styles are provided on the receive side:

* :func:`recv_message` — blocking, used by the client reader thread.
* :class:`StreamDecoder` — an incremental state machine fed from a
  non-blocking socket, used by the event-loop server.  Both read
  out-of-band buffers straight into pre-sized ``bytearray`` objects.
"""
from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

from repro.serialize.buffers import vectored_write

__all__ = [
    'COMMANDS',
    'EVENT_STATUS',
    'GROUP_COMMANDS',
    'MAX_FRAME_BYTES',
    'REPL_COMMANDS',
    'STREAM_COMMANDS',
    'StreamDecoder',
    'encode_message',
    'recv_message',
    'send_message',
]

#: Pub/sub commands (stream event transport): see repro.stream.kv.  The
#: server dispatches these to its broker handler, so they live here, next
#: to COMMANDS, as the single source of truth.
STREAM_COMMANDS = frozenset({
    'PUBLISH', 'MPUBLISH', 'SUBSCRIBE', 'UNSUBSCRIBE', 'FETCH',
    'TSTATS', 'TCONFIG',
})

#: Consumer-group commands (see repro.stream.groups): membership with
#: heartbeat-timeout expiry plus per-partition committed offsets and
#: delivered watermarks, all held by the group's designated broker.
GROUP_COMMANDS = frozenset({
    'GROUP_JOIN', 'GROUP_LEAVE', 'GROUP_HEARTBEAT',
    'OFFSET_COMMIT', 'OFFSET_FETCH', 'GROUP_STATS',
})

#: Replication commands (broker failover, see repro.stream.failover):
#: clients mirror a partition topic's retention ring (REPL_PUBLISH carries
#: events *with explicit sequence numbers*) and the group coordinator's
#: state (REPL_GROUP carries a lenient, monotonic state delta) onto the
#: hash-ring successor brokers, so a replica can take over with the same
#: sequence numbering and committed offsets when the primary dies.
REPL_COMMANDS = frozenset({'REPL_PUBLISH', 'REPL_GROUP'})

#: Commands understood by the server.
COMMANDS = frozenset({
    'SET', 'GET', 'EXISTS', 'DEL', 'FLUSH', 'PING', 'SIZE', 'SHUTDOWN',
    'MSET', 'MGET', 'MDEL',
}) | STREAM_COMMANDS | GROUP_COMMANDS | REPL_COMMANDS

#: ``status`` value of a server-initiated push frame (not a response to any
#: request): ``(None, EVENT_STATUS, (topic, [(seq, payload), ...]))``.
#: Only connections that issued a SUBSCRIBE ever receive these.
EVENT_STATUS = 'EVENT'

_HEADER = struct.Struct('>II')
_U64 = struct.Struct('>Q')

#: Defensive bound on one frame (pickle stream + out-of-band buffers).
#: Real payloads are far smaller; without it a corrupt or desynchronized
#: stream could drive multi-GB allocations straight from wire headers.
MAX_FRAME_BYTES = 1 << 34  # 16 GiB
_MAX_BUFFERS = 1 << 20


def _check_frame(pickle_len: int, n_buffers: int, buffer_bytes: int = 0) -> None:
    """Reject frame dimensions no legitimate sender produces."""
    if n_buffers > _MAX_BUFFERS or pickle_len + buffer_bytes > MAX_FRAME_BYTES:
        raise ValueError(
            f'corrupt or oversized SimKV frame: pickle_len={pickle_len}, '
            f'n_buffers={n_buffers}, buffer_bytes={buffer_bytes}',
        )


def _sendmsg_all(sock: socket.socket, buffers: list[memoryview]) -> None:
    """Send every buffer with scatter/gather writes, handling partial sends."""
    vectored_write(sock.sendmsg, buffers)


def encode_message(message: Any) -> list[memoryview]:
    """Pickle ``message`` (buffers out-of-band) into wire-order segments.

    ``PickleBuffer``-wrapped segments inside ``message`` are *aliased*, not
    copied: the returned list holds views over the caller's memory, ready
    for one scatter/gather send (or an event loop's outgoing queue).
    """
    pickle_buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(
        message, protocol=5, buffer_callback=pickle_buffers.append,
    )
    # Out-of-band buffers come from segments_of()/PickleBuffer wrapping of
    # flat byte views, so raw() cannot fail with BufferError here (pickle
    # itself rejects non-contiguous PickleBuffers even in-band).
    raws = [b.raw() for b in pickle_buffers]
    header = b''.join(
        [
            _HEADER.pack(len(payload), len(raws)),
            *(_U64.pack(r.nbytes) for r in raws),
        ],
    )
    return [memoryview(header), memoryview(payload), *raws]


def send_message(sock: socket.socket, message: Any) -> None:
    """Pickle ``message`` (buffers out-of-band) and send it with one frame."""
    _sendmsg_all(sock, encode_message(message))


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes | None:
    chunks: list[bytes] = []
    remaining = nbytes
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b''.join(chunks)


def _recv_into_exact(sock: socket.socket, buffer: bytearray) -> bool:
    """Fill ``buffer`` completely from the socket; False on a closed peer."""
    view = memoryview(buffer)
    while len(view) > 0:
        received = sock.recv_into(view, len(view))
        if received == 0:
            return False
        view = view[received:]
    return True


def recv_message(sock: socket.socket) -> Any | None:
    """Receive one framed message; ``None`` on a cleanly closed socket.

    Out-of-band buffers are received straight into fresh ``bytearray``
    objects (one allocation, no join) and surface inside the unpickled
    message as writable buffer views.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    pickle_len, n_buffers = _HEADER.unpack(header)
    _check_frame(pickle_len, n_buffers)
    buffers: list[bytearray] = []
    if n_buffers:
        lengths_raw = _recv_exact(sock, _U64.size * n_buffers)
        if lengths_raw is None:
            return None
        lengths = [
            _U64.unpack_from(lengths_raw, i * _U64.size)[0]
            for i in range(n_buffers)
        ]
        _check_frame(pickle_len, n_buffers, sum(lengths))
        buffers = [bytearray(length) for length in lengths]
    payload = _recv_exact(sock, pickle_len)
    if payload is None:
        return None
    for buffer in buffers:
        if not _recv_into_exact(sock, buffer):
            return None
    return pickle.loads(payload, buffers=buffers)


# --------------------------------------------------------------------------- #
# Incremental decoding for the non-blocking event-loop server
# --------------------------------------------------------------------------- #
_STAGE_HEADER = 0
_STAGE_LENGTHS = 1
_STAGE_PICKLE = 2
_STAGE_BUFFERS = 3

_NO_MESSAGE = object()


class StreamDecoder:
    """Incremental frame decoder fed from a non-blocking socket.

    The decoder keeps exactly one fill target at a time (frame header,
    buffer-length table, pickle bytes, or the current out-of-band buffer)
    and reads into it with ``recv_into`` — the same one-allocation,
    no-join receive path as :func:`recv_message`, restartable at any byte
    boundary so a single event-loop thread can interleave many
    connections.
    """

    __slots__ = (
        '_stage', '_target', '_filled',
        '_pickle', '_buffers', '_buffer_index',
    )

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self._stage = _STAGE_HEADER
        self._target = memoryview(bytearray(_HEADER.size))
        self._filled = 0
        self._pickle: bytearray | None = None
        self._buffers: list[bytearray] = []
        self._buffer_index = 0

    def _begin(self, stage: int, size: int) -> None:
        self._stage = stage
        self._target = memoryview(bytearray(size))
        self._filled = 0

    def _next_buffer_stage(self) -> Any:
        """Advance to the next non-empty out-of-band buffer (or finish)."""
        while self._buffer_index < len(self._buffers):
            buffer = self._buffers[self._buffer_index]
            if len(buffer):
                self._stage = _STAGE_BUFFERS
                self._target = memoryview(buffer)
                self._filled = 0
                return _NO_MESSAGE
            self._buffer_index += 1
        return self._finish()

    def _finish(self) -> Any:
        assert self._pickle is not None
        message = pickle.loads(bytes(self._pickle), buffers=self._buffers)
        self._reset()
        return message

    def _advance(self) -> Any:
        """Handle a completely filled target; returns a message when done."""
        if self._stage == _STAGE_HEADER:
            pickle_len, n_buffers = _HEADER.unpack(self._target)
            _check_frame(pickle_len, n_buffers)
            self._pickle = bytearray(pickle_len)
            if n_buffers:
                self._begin(_STAGE_LENGTHS, _U64.size * n_buffers)
            else:
                self._stage = _STAGE_PICKLE
                self._target = memoryview(self._pickle)
                self._filled = 0
            return _NO_MESSAGE
        if self._stage == _STAGE_LENGTHS:
            raw = self._target
            lengths = [
                _U64.unpack_from(raw, i * _U64.size)[0]
                for i in range(len(raw) // _U64.size)
            ]
            assert self._pickle is not None
            _check_frame(len(self._pickle), len(lengths), sum(lengths))
            self._buffers = [bytearray(length) for length in lengths]
            self._stage = _STAGE_PICKLE
            self._target = memoryview(self._pickle)
            self._filled = 0
            return _NO_MESSAGE
        if self._stage == _STAGE_PICKLE:
            if self._buffers:
                self._buffer_index = 0
                return self._next_buffer_stage()
            return self._finish()
        # _STAGE_BUFFERS: current buffer filled, move to the next one.
        self._buffer_index += 1
        return self._next_buffer_stage()

    def read_message(
        self,
        sock: socket.socket,
        on_bytes: Any = None,
    ) -> Any | None:
        """Blocking receive of one message; ``None`` on a closed peer.

        ``on_bytes(n)`` is invoked after every successful ``recv_into`` so a
        caller can observe byte-level progress (e.g. to distinguish a large
        transfer that is still streaming from a dead connection).
        """
        while True:
            received = sock.recv_into(self._target[self._filled:])
            if received == 0:
                return None
            if on_bytes is not None:
                on_bytes(received)
            self._filled += received
            if self._filled == len(self._target):
                message = self._advance()
                if message is not _NO_MESSAGE:
                    return message

    def read_from(self, sock: socket.socket) -> tuple[list[Any], bool]:
        """Drain readable bytes from ``sock``; returns ``(messages, closed)``.

        Reads until the socket would block (``messages`` holds every frame
        completed by the drained bytes) or the peer closes/errors
        (``closed`` is True; partially received frames are discarded).
        """
        messages: list[Any] = []
        while True:
            try:
                received = sock.recv_into(self._target[self._filled:])
            except (BlockingIOError, InterruptedError):
                return messages, False
            except OSError:
                return messages, True
            if received == 0:
                return messages, True
            self._filled += received
            if self._filled == len(self._target):
                message = self._advance()
                if message is not _NO_MESSAGE:
                    messages.append(message)
