"""Wire protocol shared by the SimKV server and client.

Messages are framed as::

    uint32 pickle_len | uint32 n_buffers | n_buffers x uint64 buffer_len
    pickle bytes | buffer 0 | ... | buffer n-1

The pickle section is produced with protocol 5 and a ``buffer_callback``:
any :class:`pickle.PickleBuffer` inside the message (payload segments of a
``SET``/``MSET``, response values of a ``GET``/``MGET``) travels *out of
band* — its bytes are never copied into the pickle stream.  The sender
pushes header, pickle and raw buffers through one scatter/gather
(``sendmsg``) loop; the receiver reads each buffer straight into a fresh
``bytearray`` via ``recv_into`` and hands the views to ``pickle.loads``.

Requests are ``(command, key, value)`` tuples; responses are
``(status, payload)`` tuples where ``status`` is ``'ok'`` or ``'error'``.
Pickle is acceptable here because both ends are this library (SimKV is an
internal substrate, not an internet-facing service).
"""
from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

from repro.serialize.buffers import vectored_write

__all__ = [
    'COMMANDS',
    'recv_message',
    'send_message',
]

#: Commands understood by the server.
COMMANDS = frozenset({
    'SET', 'GET', 'EXISTS', 'DEL', 'FLUSH', 'PING', 'SIZE', 'SHUTDOWN',
    'MSET', 'MGET', 'MDEL',
})

_HEADER = struct.Struct('>II')
_U64 = struct.Struct('>Q')


def _sendmsg_all(sock: socket.socket, buffers: list[memoryview]) -> None:
    """Send every buffer with scatter/gather writes, handling partial sends."""
    vectored_write(sock.sendmsg, buffers)


def send_message(sock: socket.socket, message: Any) -> None:
    """Pickle ``message`` (buffers out-of-band) and send it with one frame.

    ``PickleBuffer``-wrapped segments inside ``message`` are transmitted
    without ever being copied into the pickle stream.
    """
    pickle_buffers: list[pickle.PickleBuffer] = []
    payload = pickle.dumps(
        message, protocol=5, buffer_callback=pickle_buffers.append,
    )
    # Out-of-band buffers come from segments_of()/PickleBuffer wrapping of
    # flat byte views, so raw() cannot fail with BufferError here (pickle
    # itself rejects non-contiguous PickleBuffers even in-band).
    raws = [b.raw() for b in pickle_buffers]
    header = b''.join(
        [
            _HEADER.pack(len(payload), len(raws)),
            *(_U64.pack(r.nbytes) for r in raws),
        ],
    )
    _sendmsg_all(sock, [memoryview(header), memoryview(payload), *raws])


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes | None:
    chunks: list[bytes] = []
    remaining = nbytes
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b''.join(chunks)


def _recv_into_exact(sock: socket.socket, buffer: bytearray) -> bool:
    """Fill ``buffer`` completely from the socket; False on a closed peer."""
    view = memoryview(buffer)
    while len(view) > 0:
        received = sock.recv_into(view, len(view))
        if received == 0:
            return False
        view = view[received:]
    return True


def recv_message(sock: socket.socket) -> Any | None:
    """Receive one framed message; ``None`` on a cleanly closed socket.

    Out-of-band buffers are received straight into fresh ``bytearray``
    objects (one allocation, no join) and surface inside the unpickled
    message as writable buffer views.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    pickle_len, n_buffers = _HEADER.unpack(header)
    buffers: list[bytearray] = []
    if n_buffers:
        lengths_raw = _recv_exact(sock, _U64.size * n_buffers)
        if lengths_raw is None:
            return None
        for i in range(n_buffers):
            (length,) = _U64.unpack_from(lengths_raw, i * _U64.size)
            buffers.append(bytearray(length))
    payload = _recv_exact(sock, pickle_len)
    if payload is None:
        return None
    for buffer in buffers:
        if not _recv_into_exact(sock, buffer):
            return None
    return pickle.loads(payload, buffers=buffers)
