"""Pipelined, multiplexing client for the SimKV server.

Earlier revisions held one socket behind a lock, so every request paid a
full round trip before the next could start and N threads sharing a client
(the normal situation: one connector instance per Store) ran at 1/N of the
wire's capability.  This client removes that serialization:

* Every request carries a **request id**; a reader thread per connection
  receives response frames and hands each to the waiter registered under
  its id.  Many requests from many threads are therefore *in flight on one
  connection at once* — the send path only locks long enough to write the
  frame (the pickling happens outside the lock).
* A small **connection pool** (``pool_size``) spreads requests round-robin
  across sockets, so a large transfer streaming down one connection does
  not head-of-line block small operations, and sharded transfers to one
  node get true parallel streams.
* A request that fails because a pooled connection went stale (the server
  restarted, an idle socket was torn down) is transparently **retried
  once** on a fresh connection — SimKV commands are idempotent, so a
  reconnectable failure no longer surfaces as a ``ConnectorError``.

Payload values are transmitted zero-copy: :meth:`KVClient.set` wraps the
payload's segments in :class:`pickle.PickleBuffer`, so the wire protocol
scatter/gathers them straight from the caller's memory without building an
intermediate copy.  ``get`` returns the buffer received by the reader
thread (a ``bytes``-like view over freshly received data), again without a
defensive copy.
"""
from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
from typing import Any
from typing import Iterable
from typing import Sequence

from repro.exceptions import ConnectorError
from repro.exceptions import NodeUnavailableError
from repro.faults import injection
from repro.faults.retry import RetryPolicy
from repro.kvserver.protocol import StreamDecoder
from repro.kvserver.protocol import encode_message
from repro.serialize.buffers import SerializedObject
from repro.serialize.buffers import segments_of
from repro.serialize.buffers import vectored_write

__all__ = ['DEFAULT_POOL_SIZE', 'DEFAULT_TIMEOUT', 'KVClient']

#: Default number of pooled connections per client.  Two keeps small
#: operations flowing while a bulk transfer occupies the other socket;
#: sharded DIM transfers raise it per node for parallel streams.
DEFAULT_POOL_SIZE = 2

#: Default per-request inactivity bound (seconds), shared by every
#: connector that builds a :class:`KVClient`.
DEFAULT_TIMEOUT = 10.0


def _wrap_value(data: 'bytes | bytearray | memoryview | SerializedObject') -> list:
    """Payload segments wrapped for out-of-band transmission."""
    return [pickle.PickleBuffer(segment) for segment in segments_of(data)]


class _StaleConnectionError(Exception):
    """A pooled connection died under a request (candidate for one retry)."""


class _Pending:
    """A waiter for one in-flight request."""

    __slots__ = ('event', 'result', 'error')

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: tuple[Any, Any] | None = None
        self.error: Exception | None = None


class _Connection:
    """One pooled socket: a send lock, a reader thread, and in-flight waiters.

    The reader thread is the only consumer of the socket; it dispatches
    each ``(request_id, status, payload)`` response to the matching waiter.
    Sends are serialized by ``_send_lock`` but *responses are not awaited
    under it*, which is what allows pipelining.
    """

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self._addr = (host, port)
        injection.on_connect(host, port)  # fault seam: refuse/latency
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # The reader thread owns all receives and blocks until frames
        # arrive; request waits are bounded client-side by *inactivity*
        # (see request()), so recv never times out.  Sends are bounded in
        # the kernel instead (SO_SNDTIMEO does not affect recv): a server
        # that stops reading makes sendmsg fail after ~timeout rather than
        # blocking the sender (and _send_lock) forever.
        self.sock.settimeout(None)
        try:
            self.sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_SNDTIMEO,
                struct.pack('ll', int(timeout), int((timeout % 1.0) * 1e6)),
            )
        except (OSError, ValueError):  # pragma: no cover - niche platforms
            pass
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._next_id = 0
        self.dead = False
        self.dead_error: Exception | None = None
        #: Monotonic timestamp of the last bytes received — a large response
        #: that is still streaming keeps refreshing this, so waiters do not
        #: time out on transfers that are making progress.
        self.last_activity = time.monotonic()
        self._reader = threading.Thread(
            target=self._read_loop, name='simkv-client-reader', daemon=True,
        )
        self._reader.start()

    # -- receive side ------------------------------------------------------ #
    def _touch(self, _nbytes: int) -> None:
        self.last_activity = time.monotonic()

    def _read_loop(self) -> None:
        decoder = StreamDecoder()
        while True:
            try:
                message = decoder.read_message(self.sock, on_bytes=self._touch)
            # repro: ignore[RP004] - not swallowed: _fail() delivers the
            # error to every waiter and poisons the connection
            except Exception as e:  # noqa: BLE001 - any failure kills the conn
                self._fail(e)
                return
            if message is None:
                self._fail(ConnectionError('SimKV server closed the connection'))
                return
            try:
                request_id, status, payload = message
            except (TypeError, ValueError):
                self._fail(ConnectorError(f'malformed SimKV response: {message!r}'))
                return
            with self._state_lock:
                pending = self._pending.pop(request_id, None)
            if pending is not None:
                pending.result = (status, payload)
                pending.event.set()

    def _fail(self, error: Exception) -> None:
        """Mark the connection dead and wake every in-flight waiter."""
        # Strip the traceback before storing: a kept traceback pins the
        # failing frame — including wire segments whose memoryviews still
        # hold pickle buffer exports.  A reference cycle through such a
        # view makes the GC's tp_clear raise BufferError and can abort
        # the whole process.
        error = error.with_traceback(None)
        with self._state_lock:
            if self.dead:
                return
            self.dead = True
            self.dead_error = error
            pending, self._pending = self._pending, {}
        for waiter in pending.values():
            waiter.error = error
            waiter.event.set()
        # shutdown() (unlike a bare close()) reliably wakes a reader thread
        # blocked in recv so join_reader() returns promptly.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - platform dependent
            pass

    def join_reader(self, timeout: float = 2.0) -> None:
        """Wait for the reader thread to exit (after :meth:`_fail`).

        Leaving the daemon reader alive at interpreter shutdown can crash
        teardown (it may hold buffer exports over memory being finalized),
        so :meth:`KVClient.close` joins it.  A reader joining itself (a
        failure detected *on* the reader thread) is skipped.
        """
        if self._reader is not threading.current_thread():
            try:
                self._reader.join(timeout=timeout)
            except RuntimeError:  # pragma: no cover - interpreter shutdown
                # join() can refuse during interpreter teardown (daemon
                # threads are being finalized); close() must stay safe to
                # call from __del__ at that point.
                pass

    # -- send side --------------------------------------------------------- #
    def request(self, message_tail: tuple, timeout: float | None) -> tuple[Any, Any]:
        """Issue one request and wait for its response.

        ``timeout`` bounds *inactivity*, not total duration: as long as the
        connection keeps receiving bytes (a large response streaming in, or
        other pipelined responses), the wait continues — matching the
        per-``recv`` socket timeout of the pre-pipelining client.

        Raises ``_StaleConnectionError`` when the connection died (before,
        during, or after the send) — the caller may retry on a fresh one.
        """
        waiter = _Pending()
        with self._state_lock:
            if self.dead:
                raise _StaleConnectionError(self.dead_error)
            request_id = self._next_id
            self._next_id += 1
            self._pending[request_id] = waiter
        # Pickle outside the send lock so concurrent senders only serialize
        # on the actual socket write.
        segments = encode_message((request_id, *message_tail))
        try:
            fault = injection.on_send(*self._addr)  # fault seam
            if fault == 'reset':
                raise ConnectionResetError('injected connection reset')
            with self._send_lock:
                if fault == 'truncate':
                    # A strict prefix of the frame, then death — exactly
                    # what a peer crashing mid-write produces on the wire.
                    head = bytes(segments[0])
                    self.sock.sendall(head[: max(1, len(head) // 2)])
                    raise ConnectionResetError('injected payload truncation')
                vectored_write(self.sock.sendmsg, segments)
        except OSError as e:
            # Drop the frame's reference to the wire segments before the
            # exception (whose traceback pins this frame) escapes: their
            # memoryviews hold pickle buffer exports, and an exported view
            # caught in a GC cycle crashes the collector's tp_clear.
            del segments
            with self._state_lock:
                self._pending.pop(request_id, None)
            self._fail(e)
            raise _StaleConnectionError(e) from e
        sent_at = time.monotonic()
        if timeout is None:
            waiter.event.wait()
        else:
            while not waiter.event.is_set():
                idle_for = time.monotonic() - max(self.last_activity, sent_at)
                remaining = timeout - idle_for
                if remaining <= 0:
                    with self._state_lock:
                        self._pending.pop(request_id, None)
                    raise ConnectorError(
                        f'SimKV request timed out after {timeout}s of '
                        'connection inactivity',
                    )
                waiter.event.wait(remaining)
        if waiter.error is not None:
            raise _StaleConnectionError(waiter.error)
        assert waiter.result is not None
        return waiter.result

    def close(self) -> None:
        """Fail the connection and reap its reader (idempotent)."""
        self._fail(ConnectionError('client closed the connection'))
        self.join_reader()


class KVClient:
    """Pipelined client for a :class:`~repro.kvserver.server.KVServer`.

    Args:
        host: server host name.
        port: server port.
        timeout: seconds to wait for a connect, and the per-request
            *inactivity* bound — a request only times out once its
            connection has received no bytes for this long, so large
            transfers that are still streaming never trip it.
        pool_size: number of pooled connections requests round-robin over.
        retry_policy: backoff schedule for stale-connection retries.  The
            default retries immediately (zero delay) ``pool_size + 1``
            times — cycling to a fresh pooled socket costs nothing — but
            failover-aware callers may install a jittered schedule from
            :mod:`repro.faults.retry` to ride out broker restarts.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        pool_size: int = DEFAULT_POOL_SIZE,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if pool_size < 1:
            raise ValueError('pool_size must be at least 1')
        self.host = host
        self.port = port
        self.timeout = timeout
        self.pool_size = pool_size
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=pool_size + 1, base_delay=0.0, jitter=0.0,
        )
        self._pool: list[_Connection | None] = [None] * pool_size
        self._pool_lock = threading.Lock()
        # Per-slot locks so a blocking (re)connect of one slot never stalls
        # requests using the other, healthy pooled connections.
        self._slot_locks = [threading.Lock() for _ in range(pool_size)]
        self._round_robin = 0

    # -- connection management -------------------------------------------- #
    def _connection(self) -> _Connection:
        """Return the next pooled connection, (re)connecting a dead slot."""
        with self._pool_lock:
            index = self._round_robin % self.pool_size
            self._round_robin += 1
        with self._slot_locks[index]:
            connection = self._pool[index]
            if connection is None or connection.dead:
                try:
                    connection = _Connection(self.host, self.port, self.timeout)
                except OSError as e:
                    # Typed so replicated callers know this node is down
                    # (retry elsewhere) rather than the request being bad.
                    raise NodeUnavailableError(
                        f'cannot connect to SimKV server at '
                        f'{self.host}:{self.port}: {e}',
                    ) from e
                self._pool[index] = connection
            return connection

    def _request(self, command: str, key: str | None = None, value: Any = None) -> Any:
        """Issue ``command`` and return its payload.

        A request that fails because its pooled connection went stale is
        retried on a fresh connection (every SimKV command is idempotent).
        Up to ``pool_size`` stale connections may be encountered before a
        fresh one (e.g. after a server restart every pooled socket is
        dead), so stale failures do not consume the retry — by default the
        request only fails after ``pool_size + 1`` immediate attempts;
        ``retry_policy`` governs the attempt count and any backoff.
        """
        last_error: Exception | None = None
        for _attempt in self.retry_policy.attempts():
            connection = self._connection()
            try:
                status, payload = connection.request((command, key, value), self.timeout)
            except _StaleConnectionError as e:
                last_error = e.__cause__ or (e.args[0] if e.args else e)
                continue
            if status != 'ok':
                raise ConnectorError(f'SimKV error: {payload}')
            return payload
        # Every attempt died at the connection level: the node itself is
        # unreachable (crashed or restarting), not the request malformed.
        raise NodeUnavailableError(
            f'SimKV server at {self.host}:{self.port} is unavailable: '
            f'{last_error}',
        )

    def close(self) -> None:
        """Close every pooled connection (a later request reconnects).

        Idempotent and safe from ``__del__``: a second close sees an empty
        pool and does nothing, and connection teardown tolerates reader
        threads that already exited (or cannot be joined at interpreter
        shutdown).
        """
        with self._pool_lock:
            connections = [c for c in self._pool if c is not None]
            self._pool = [None] * self.pool_size
        for connection in connections:
            connection.close()

    def __del__(self) -> None:
        """Best-effort close so dropped clients never leak reader threads."""
        try:
            self.close()
        # repro: ignore[RP004] - __del__ during interpreter teardown;
        # nothing is left to report to
        except Exception:  # noqa: BLE001 - interpreter teardown
            pass

    def __enter__(self) -> 'KVClient':
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- commands ----------------------------------------------------------- #
    def ping(self) -> bool:
        """Return True if the server responds to a PING."""
        return self._request('PING') == 'PONG'

    def set(self, key: str, value: 'bytes | bytearray | memoryview | SerializedObject') -> None:
        self._request('SET', key, _wrap_value(value))

    def get(self, key: str) -> 'bytes | bytearray | memoryview | None':
        """Return the stored value (a bytes-like view of the received data)."""
        return self._request('GET', key)

    def mset(
        self,
        items: Sequence[tuple[str, 'bytes | bytearray | memoryview | SerializedObject']],
    ) -> None:
        """Store several key/value pairs in one round trip."""
        self._request('MSET', None, [(k, _wrap_value(v)) for k, v in items])

    def mget(self, keys: Iterable[str]) -> 'list[bytes | bytearray | memoryview | None]':
        """Fetch several keys in one round trip (``None`` for missing keys)."""
        return self._request('MGET', None, list(keys))

    def mdel(self, keys: Iterable[str]) -> int:
        """Delete several keys in one round trip; returns how many existed."""
        return int(self._request('MDEL', None, list(keys)))

    def exists(self, key: str) -> bool:
        """Return whether ``key`` currently exists on the server."""
        return bool(self._request('EXISTS', key))

    def keys(self) -> list[str]:
        """Return every key currently stored on the server.

        Used by the cluster rebalancer to enumerate a node's holdings when
        computing the ring-delta migration set.
        """
        return list(self._request('KEYS'))

    # -- pub/sub commands (stream event transport) -------------------------- #
    def publish(self, topic: str, payload: 'bytes | bytearray | memoryview | SerializedObject') -> int:
        """Publish one event payload on ``topic``; returns its sequence number.

        The payload's segments travel out-of-band (scatter/gather, no copy);
        the server retains the event in the topic's ring buffer and fans it
        out to current subscribers.
        """
        return int(self._request('PUBLISH', topic, _wrap_value(payload)))

    def publish_batch(
        self,
        topic: str,
        payloads: Sequence['bytes | bytearray | memoryview | SerializedObject'],
    ) -> list[int]:
        """Publish several event payloads on ``topic`` in one round trip."""
        return list(
            self._request('MPUBLISH', topic, [_wrap_value(p) for p in payloads]),
        )

    def fetch_events(
        self,
        topic: str,
        since: int,
        max_events: int = 0,
    ) -> dict[str, Any]:
        """Fetch retained events with ``seq >= since`` from ``topic``'s ring.

        Returns ``{'events': [(seq, payload), ...], 'next_seq': int,
        'lost': int}`` where ``lost`` counts events that aged out of the
        ring before ``since`` — the consumer catch-up path after a gap.
        ``max_events`` bounds the reply (0 = everything retained).
        """
        return self._request(
            'FETCH', topic, {'since': since, 'max_events': max_events},
        )

    def topic_stats(self, topic: str) -> dict[str, Any] | None:
        """Return broker statistics for ``topic`` (``None`` if it never existed)."""
        return self._request('TSTATS', topic)

    # -- consumer-group commands -------------------------------------------- #
    def group_join(
        self,
        group: str,
        member: str,
        *,
        session_timeout: float | None = None,
    ) -> dict[str, Any]:
        """Join ``group`` as ``member``; returns ``{'generation', 'members'}``.

        ``session_timeout`` is the member's heartbeat lease: miss it and
        the broker expires the member, bumping the group generation so
        survivors rebalance its partitions.
        """
        return self._request('GROUP_JOIN', group, {
            'member': member, 'session_timeout': session_timeout,
        })

    def group_heartbeat(
        self,
        group: str,
        member: str,
        positions: dict[str, int] | None = None,
        ends: dict[str, int] | None = None,
    ) -> dict[str, Any]:
        """Refresh ``member``'s lease, reporting delivered ``positions``.

        ``ends`` reports partitions whose end-of-stream marker this member
        delivered (topic -> marker seq) — the group-completion signal.
        Returns the current ``{'generation', 'members'}`` view; raises
        :class:`~repro.exceptions.ConnectorError` if the member was already
        expired (it must rejoin and resync before consuming further).
        """
        return self._request('GROUP_HEARTBEAT', group, {
            'member': member, 'positions': positions or {},
            'ends': ends or {},
        })

    def group_leave(
        self,
        group: str,
        member: str,
        positions: dict[str, int] | None = None,
    ) -> dict[str, Any]:
        """Leave ``group`` voluntarily (bumps the generation immediately)."""
        return self._request('GROUP_LEAVE', group, {
            'member': member, 'positions': positions or {},
        })

    def offset_commit(
        self,
        group: str,
        offsets: dict[str, int],
        *,
        member: str | None = None,
        positions: dict[str, int] | None = None,
        ends: dict[str, int] | None = None,
    ) -> dict[str, Any]:
        """Commit per-partition offsets (monotonic: stale commits are kept).

        ``offsets`` maps partition topic to the first *un-acked* sequence
        number; a successor claiming the partition resumes there.  ``ends``
        reports delivered end-of-stream markers.  A commit from a live
        ``member`` doubles as a heartbeat.
        """
        return self._request('OFFSET_COMMIT', group, {
            'offsets': offsets,
            'member': member or '',
            'positions': positions or {},
            'ends': ends or {},
        })

    def offset_fetch(self, group: str, topics: Sequence[str]) -> dict[str, Any]:
        """Fetch per-partition offset state for ``topics``.

        Each entry carries ``committed`` (replay point), ``watermark``
        (furthest delivered), ``end`` (end-marker seq or ``None``) and
        ``end_member`` (who reported it).
        """
        return self._request('OFFSET_FETCH', group, {'topics': list(topics)})

    def group_stats(self, group: str) -> dict[str, Any]:
        """Return the group's full broker-side state (members, offsets)."""
        return self._request('GROUP_STATS', group)

    def topic_config(self, topic: str, *, retention: int) -> dict[str, Any]:
        """Set ``topic``'s ring-buffer retention (trimming immediately)."""
        return self._request('TCONFIG', topic, {'retention': retention})

    # -- replication commands (broker failover) ------------------------------ #
    def repl_publish(
        self,
        topic: str,
        entries: Sequence[tuple[int, 'bytes | bytearray | memoryview | SerializedObject']],
    ) -> dict[str, Any]:
        """Mirror ``(seq, payload)`` events into ``topic``'s ring on a replica.

        Unlike ``publish``, the sequence numbers are *explicit* — they were
        assigned by the primary broker — so the replica's ring ends up with
        identical numbering and a failed-over subscriber resumes from its
        cursor without renumbering.  Idempotent: duplicates and already
        trimmed events are dropped server-side.  Returns ``{'accepted',
        'next_seq'}``.
        """
        return self._request(
            'REPL_PUBLISH', topic,
            [(int(seq), _wrap_value(payload)) for seq, payload in entries],
        )

    def repl_group(self, group: str, state: dict[str, Any]) -> dict[str, Any]:
        """Mirror a coordinator-state delta for ``group`` onto a replica.

        ``state`` carries ``op`` ('join'/'heartbeat'/'commit'/'leave'),
        ``member``, ``generation``, and optionally ``session_timeout``,
        ``offsets``, ``positions``, and ``ends``.  Applied leniently and
        monotonically server-side, so deltas may arrive late, duplicated,
        or out of order.  Returns the replica's ``{'generation', 'members'}``
        view.
        """
        return self._request('REPL_GROUP', group, dict(state))

    def delete(self, key: str) -> bool:
        return bool(self._request('DEL', key))

    def flush(self) -> int:
        """Remove every key on the server; returns how many were removed."""
        return int(self._request('FLUSH'))

    def size(self) -> int:
        return int(self._request('SIZE'))
