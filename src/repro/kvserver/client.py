"""Client for the SimKV server.

The client keeps one persistent TCP connection (created lazily and re-created
on failure) and serializes requests over it behind a lock, matching how a
Redis client connection is typically used by a single connector instance.

Payload values are transmitted zero-copy: :meth:`KVClient.set` wraps the
payload's segments in :class:`pickle.PickleBuffer`, so the wire protocol
scatter/gathers them straight from the caller's memory (a ``bytes`` object,
a NumPy array buffer, ...) without building an intermediate copy.  ``get``
returns the buffer received from the server (a ``bytes``-like view over the
freshly received data), again without a defensive copy.
"""
from __future__ import annotations

import pickle
import socket
import threading
from typing import Any
from typing import Iterable
from typing import Sequence

from repro.exceptions import ConnectorError
from repro.kvserver.protocol import recv_message
from repro.kvserver.protocol import send_message
from repro.serialize.buffers import SerializedObject
from repro.serialize.buffers import segments_of

__all__ = ['KVClient']


def _wrap_value(data: 'bytes | bytearray | memoryview | SerializedObject') -> list:
    """Payload segments wrapped for out-of-band transmission."""
    return [pickle.PickleBuffer(segment) for segment in segments_of(data)]


class KVClient:
    """Blocking client for a :class:`~repro.kvserver.server.KVServer`."""

    def __init__(self, host: str, port: int, *, timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()

    # -- connection management -------------------------------------------- #
    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _request(self, command: str, key: str | None = None, value: Any = None) -> Any:
        with self._lock:
            if self._sock is None:
                try:
                    self._sock = self._connect()
                except OSError as e:
                    raise ConnectorError(
                        f'cannot connect to SimKV server at {self.host}:{self.port}: {e}',
                    ) from e
            try:
                send_message(self._sock, (command, key, value))
                response = recv_message(self._sock)
            except OSError as e:
                self.close()
                raise ConnectorError(f'SimKV request failed: {e}') from e
            if response is None:
                self.close()
                raise ConnectorError('SimKV server closed the connection')
            status, payload = response
            if status != 'ok':
                raise ConnectorError(f'SimKV error: {payload}')
            return payload

    def close(self) -> None:
        """Close the underlying socket (a later request reconnects)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def __enter__(self) -> 'KVClient':
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- commands ----------------------------------------------------------- #
    def ping(self) -> bool:
        """Return True if the server responds to a PING."""
        return self._request('PING') == 'PONG'

    def set(self, key: str, value: 'bytes | bytearray | memoryview | SerializedObject') -> None:
        self._request('SET', key, _wrap_value(value))

    def get(self, key: str) -> 'bytes | bytearray | memoryview | None':
        """Return the stored value (a bytes-like view of the received data)."""
        return self._request('GET', key)

    def mset(
        self,
        items: Sequence[tuple[str, 'bytes | bytearray | memoryview | SerializedObject']],
    ) -> None:
        """Store several key/value pairs in one round trip."""
        self._request('MSET', None, [(k, _wrap_value(v)) for k, v in items])

    def mget(self, keys: Iterable[str]) -> 'list[bytes | bytearray | memoryview | None]':
        """Fetch several keys in one round trip (``None`` for missing keys)."""
        return self._request('MGET', None, list(keys))

    def mdel(self, keys: Iterable[str]) -> int:
        """Delete several keys in one round trip; returns how many existed."""
        return int(self._request('MDEL', None, list(keys)))

    def exists(self, key: str) -> bool:
        return bool(self._request('EXISTS', key))

    def delete(self, key: str) -> bool:
        return bool(self._request('DEL', key))

    def flush(self) -> int:
        """Remove every key on the server; returns how many were removed."""
        return int(self._request('FLUSH'))

    def size(self) -> int:
        return int(self._request('SIZE'))
