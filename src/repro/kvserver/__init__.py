"""SimKV: a small TCP key-value store server and client.

The paper's ``RedisConnector`` talks to a Redis (or KeyDB) server.  A real
Redis server is not available in this offline reproduction, so SimKV plays
its role: a network-reachable, in-memory key-value store spoken to over TCP
with a simple length-prefixed request/response protocol.  It exercises the
same code path as a Redis-backed connector — serialization, a socket round
trip per operation, and a central store shared by many clients.
"""
from repro.kvserver.client import KVClient
from repro.kvserver.server import KVServer
from repro.kvserver.server import launch_server

__all__ = ['KVClient', 'KVServer', 'launch_server']
