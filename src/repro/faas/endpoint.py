"""Compute endpoints of the federated FaaS substrate.

A compute endpoint executes tasks on a particular host of the simulated
testbed (e.g. a Theta compute node).  While a task runs, the simulation
context reports the endpoint's host as the current location, so any proxy the
task resolves is charged the correct wide-area cost; task functions that
declare a ``ctx`` keyword argument additionally receive a
:class:`~repro.faas.context.TaskContext` for virtual sleeps and
communication/compute overlap.
"""
from __future__ import annotations

import inspect
from typing import Any
from typing import Callable

from repro.faas.context import TaskContext
from repro.simulation.clock import VirtualClock
from repro.simulation.context import on_host
from repro.simulation.network import Fabric

__all__ = ['ComputeEndpoint']


class ComputeEndpoint:
    """A named task-execution endpoint bound to a fabric host.

    Args:
        name: endpoint name clients submit to.
        host: fabric host the endpoint's workers run on.
        clock: the shared virtual clock.
        fabric: the simulated fabric (handed to task contexts).
        task_overhead_s: per-task scheduling/deserialization overhead at the
            endpoint (worker dispatch, result pickling, etc.).
    """

    def __init__(
        self,
        name: str,
        host: str,
        clock: VirtualClock,
        fabric: Fabric | None = None,
        *,
        task_overhead_s: float = 0.005,
    ) -> None:
        self.name = name
        self.host = host
        self.clock = clock
        self.fabric = fabric
        self.task_overhead_s = task_overhead_s
        self.tasks_executed = 0

    def __repr__(self) -> str:
        return f'ComputeEndpoint(name={self.name!r}, host={self.host!r})'

    def execute(self, func: Callable[..., Any], args: tuple, kwargs: dict) -> Any:
        """Run ``func`` on this endpoint, charging its overhead to the clock."""
        self.clock.advance(self.task_overhead_s)
        self.tasks_executed += 1
        with on_host(self.host):
            if _accepts_ctx(func):
                ctx = TaskContext(clock=self.clock, host=self.host, fabric=self.fabric)
                return func(*args, ctx=ctx, **kwargs)
            return func(*args, **kwargs)


def _accepts_ctx(func: Callable[..., Any]) -> bool:
    """Return whether ``func`` declares a ``ctx`` keyword parameter."""
    try:
        signature = inspect.signature(func)
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        return False
    if 'ctx' in signature.parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in signature.parameters.values()
    )
