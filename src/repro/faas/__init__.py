"""A federated FaaS substrate modelled on Globus Compute (funcX).

Globus Compute routes every task through its cloud service: the client
serializes the function inputs with the request, the cloud stores them and
forwards the task to the target endpoint, the endpoint executes it and sends
the result back through the cloud, and the client finally retrieves it.  The
service enforces a 5 MB task payload limit to manage storage and egress
costs (Section 2 of the paper).

This simulator preserves that architecture — client, cloud service, compute
endpoints, futures, payload serialization and the payload limit — while
executing task functions for real in-process and charging all communication
to a virtual clock over the simulated testbed fabric.  Passing ProxyStore
proxies as task inputs therefore has exactly the effect the paper describes:
the payload through the cloud shrinks to the size of the pickled proxy and
the data moves via whichever connector the proxy's store uses.
"""
from repro.faas.context import TaskContext
from repro.faas.cloud import CloudFaaSService
from repro.faas.endpoint import ComputeEndpoint
from repro.faas.executor import Executor
from repro.faas.executor import FaaSFuture

__all__ = [
    'CloudFaaSService',
    'ComputeEndpoint',
    'Executor',
    'FaaSFuture',
    'TaskContext',
]
