"""The cloud service at the centre of the federated FaaS substrate.

Every task and every result passes through this service: task inputs are
uploaded from the client, stored, and downloaded by the target endpoint;
results travel the reverse path.  Payloads above the service's limit are
rejected — the behaviour that motivates proxying large inputs in the paper.
All communication is charged to the virtual clock using the fabric.
"""
from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass
from dataclasses import field
from typing import Any
from typing import Callable

from repro.exceptions import FaaSError
from repro.exceptions import PayloadTooLargeError
from repro.serialize import deserialize
from repro.serialize import serialize
from repro.simulation.clock import VirtualClock
from repro.simulation.fabric import CLOUD_REQUEST_OVERHEAD_S
from repro.simulation.fabric import CLOUD_SERVICE_HOST
from repro.simulation.network import Fabric

__all__ = ['CloudFaaSService', 'TaskRecord', 'DEFAULT_PAYLOAD_LIMIT_BYTES']

#: Globus Compute's task payload limit (Section 2 of the paper).
DEFAULT_PAYLOAD_LIMIT_BYTES = 5 * 1024 * 1024


@dataclass
class TaskRecord:
    """Bookkeeping for one task routed through the cloud."""

    task_id: str
    endpoint_name: str
    client_host: str
    input_bytes: int = 0
    result_bytes: int = 0
    submitted_at: float = 0.0
    completed_at: float = 0.0
    result: Any = None
    error: str | None = None
    done: bool = False
    timeline: dict[str, float] = field(default_factory=dict)

    @property
    def roundtrip_time(self) -> float:
        return self.completed_at - self.submitted_at


class CloudFaaSService:
    """Cloud-hosted task routing service (a Globus Compute stand-in).

    Args:
        fabric: simulated network fabric.
        clock: virtual clock all communication/compute time is charged to.
        payload_limit_bytes: maximum serialized size of task inputs or results.
        request_overhead_s: service-side processing time per API request.
        payload_processing_bps: rate at which the service ingests/serves
            payload bytes (stores them in its Redis/S3 backend, applies
            quotas, etc.); this is what makes large payloads expensive to
            route through the cloud even on fast networks.
        cloud_host: name of the host running the cloud service in the fabric.
    """

    def __init__(
        self,
        fabric: Fabric,
        clock: VirtualClock,
        *,
        payload_limit_bytes: int = DEFAULT_PAYLOAD_LIMIT_BYTES,
        request_overhead_s: float = CLOUD_REQUEST_OVERHEAD_S,
        payload_processing_bps: float = 2e6,
        cloud_host: str = CLOUD_SERVICE_HOST,
    ) -> None:
        self.fabric = fabric
        self.clock = clock
        self.payload_limit_bytes = payload_limit_bytes
        self.request_overhead_s = request_overhead_s
        self.payload_processing_bps = payload_processing_bps
        self.cloud_host = cloud_host
        self._endpoints: dict[str, Any] = {}
        self._tasks: dict[str, TaskRecord] = {}
        self._lock = threading.Lock()

    # -- endpoint registration ----------------------------------------------- #
    def register_endpoint(self, endpoint: Any) -> None:
        """Register a :class:`~repro.faas.endpoint.ComputeEndpoint` by name."""
        with self._lock:
            self._endpoints[endpoint.name] = endpoint

    def endpoints(self) -> list[str]:
        with self._lock:
            return sorted(self._endpoints)

    def _endpoint(self, name: str) -> Any:
        with self._lock:
            try:
                return self._endpoints[name]
            except KeyError:
                raise FaaSError(f'unknown compute endpoint {name!r}') from None

    # -- task lifecycle --------------------------------------------------------- #
    def submit(
        self,
        client_host: str,
        endpoint_name: str,
        func: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> str:
        """Submit a task; returns its task id after (synchronously) executing it.

        The synchronous execution keeps virtual-time accounting deterministic;
        the client-visible API (submit then ``result()``) is unchanged.
        """
        endpoint = self._endpoint(endpoint_name)
        payload = serialize((args, kwargs))
        if len(payload) > self.payload_limit_bytes:
            raise PayloadTooLargeError(
                f'task payload of {len(payload)} bytes exceeds the service '
                f'limit of {self.payload_limit_bytes} bytes; consider passing '
                'proxies instead of raw data',
            )
        record = TaskRecord(
            task_id=uuid.uuid4().hex,
            endpoint_name=endpoint_name,
            client_host=client_host,
            input_bytes=len(payload),
            submitted_at=self.clock.now(),
        )
        with self._lock:
            self._tasks[record.task_id] = record

        # Client -> cloud upload of the task request + payload (the service
        # also has to ingest the payload into its storage backend).
        upload = (
            self.fabric.transfer_time(client_host, self.cloud_host, len(payload))
            + len(payload) / self.payload_processing_bps
        )
        self.clock.advance(upload + self.request_overhead_s)
        record.timeline['upload'] = upload + self.request_overhead_s

        # Cloud -> endpoint dispatch (the endpoint fetches the task + payload).
        dispatch = (
            self.fabric.transfer_time(self.cloud_host, endpoint.host, len(payload))
            + len(payload) / self.payload_processing_bps
        )
        self.clock.advance(dispatch + self.request_overhead_s)
        record.timeline['dispatch'] = dispatch + self.request_overhead_s

        # Execute at the endpoint.  Inputs are deserialized there, mirroring
        # where the real framework deserializes them.
        exec_start = self.clock.now()
        args2, kwargs2 = deserialize(payload)
        try:
            result = endpoint.execute(func, args2, kwargs2)
            record.result = result
            result_payload = serialize(result)
        except PayloadTooLargeError:
            raise
        except Exception as e:  # noqa: BLE001 - surfaced via the future
            record.error = f'{type(e).__name__}: {e}'
            result_payload = serialize(record.error)
        record.timeline['execute'] = self.clock.now() - exec_start

        if len(result_payload) > self.payload_limit_bytes:
            raise PayloadTooLargeError(
                f'task result of {len(result_payload)} bytes exceeds the '
                f'service limit of {self.payload_limit_bytes} bytes',
            )
        record.result_bytes = len(result_payload)

        # Endpoint -> cloud upload of the result.
        upload_result = self.fabric.transfer_time(
            endpoint.host, self.cloud_host, len(result_payload),
        ) + len(result_payload) / self.payload_processing_bps
        self.clock.advance(upload_result + self.request_overhead_s)
        record.timeline['result_upload'] = upload_result + self.request_overhead_s
        record.done = True
        return record.task_id

    def fetch_result(self, client_host: str, task_id: str) -> Any:
        """Download a completed task's result to the client (charging the clock)."""
        record = self.task(task_id)
        if not record.done:
            raise FaaSError(f'task {task_id} has not completed')
        download = self.fabric.transfer_time(self.cloud_host, client_host, record.result_bytes)
        self.clock.advance(download + self.request_overhead_s)
        record.timeline['result_download'] = download + self.request_overhead_s
        record.completed_at = self.clock.now()
        if record.error is not None:
            from repro.exceptions import TaskExecutionError

            raise TaskExecutionError(record.error)
        return record.result

    def task(self, task_id: str) -> TaskRecord:
        with self._lock:
            try:
                return self._tasks[task_id]
            except KeyError:
                raise FaaSError(f'unknown task {task_id!r}') from None

    def task_records(self) -> list[TaskRecord]:
        with self._lock:
            return list(self._tasks.values())
