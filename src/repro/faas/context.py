"""Execution context handed to task functions by a compute endpoint.

Task functions that declare a ``ctx`` keyword argument receive a
:class:`TaskContext` giving them access to the virtual clock (for virtual
sleeps and for overlapping communication with compute), the host they are
running on, and the fabric — without any of those objects having to be
serialized into the task payload.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.proxy import Proxy
from repro.proxy import is_resolved
from repro.proxy import resolve
from repro.simulation.clock import VirtualClock
from repro.simulation.costed import CostedConnector
from repro.simulation.network import Fabric
from repro.store import get_store
from repro.proxy.proxy import get_factory

__all__ = ['TaskContext']


@dataclass
class TaskContext:
    """Everything a simulated task needs to interact with virtual time."""

    clock: VirtualClock
    host: str
    fabric: Fabric | None = None

    def sleep(self, seconds: float) -> None:
        """Advance virtual time by ``seconds`` (a compute phase of that length)."""
        self.clock.advance(seconds)

    # -- proxy-aware helpers -------------------------------------------------- #
    def _proxy_fetch_cost(self, proxy: Proxy) -> tuple[float, bool]:
        """Resolve ``proxy``; return its virtual fetch cost and whether it was
        already charged to the clock by the connector itself."""
        factory = get_factory(proxy)
        resolve(proxy)
        store_config = getattr(factory, 'store_config', None)
        if store_config is None:
            return 0.0, True
        store = get_store(store_config.name)
        if store is None or not isinstance(store.connector, CostedConnector):
            return 0.0, True
        connector = store.connector
        charged = connector.charge_clock and connector.clock is self.clock
        return connector.ledger.last_get_cost, charged

    def resolve_proxy(self, proxy: Any) -> float:
        """Resolve a (possible) proxy input, charging its fetch cost to the clock.

        Returns the virtual fetch cost (0 for non-proxy inputs or proxies
        resolved earlier).
        """
        if not isinstance(proxy, Proxy) or is_resolved(proxy):
            return 0.0
        cost, already_charged = self._proxy_fetch_cost(proxy)
        if not already_charged:
            self.clock.advance(cost)
        return cost

    def compute_with_async_resolve(self, proxy: Any, compute_seconds: float) -> float:
        """Model overlapping proxy resolution with ``compute_seconds`` of compute.

        The paper's sleep tasks start an asynchronous resolve, perform their
        compute (sleep), and then wait on the resolve; the elapsed time is the
        maximum of the two rather than their sum.  Returns the virtual time
        charged on top of what the connector may already have charged.
        """
        if not isinstance(proxy, Proxy) or is_resolved(proxy):
            self.clock.advance(compute_seconds)
            return compute_seconds
        fetch_cost, already_charged = self._proxy_fetch_cost(proxy)
        elapsed = max(compute_seconds, fetch_cost)
        if already_charged:
            # The connector already advanced the clock by fetch_cost; add only
            # the part of the compute that was not hidden by the fetch.
            self.clock.advance(max(0.0, compute_seconds - fetch_cost))
        else:
            self.clock.advance(elapsed)
        return elapsed
