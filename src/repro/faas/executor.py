"""Client-side executor and futures for the FaaS substrate.

The :class:`Executor` mirrors the ``globus_compute_sdk.Executor`` API used in
Listing 2 of the paper: ``submit`` returns a future whose ``result()`` blocks
until (and accounts for) the task's round trip through the cloud service.
"""
from __future__ import annotations

from typing import Any
from typing import Callable
from typing import Iterable

from repro.exceptions import FaaSError
from repro.faas.cloud import CloudFaaSService
from repro.faas.cloud import TaskRecord
from repro.simulation.context import current_host

__all__ = ['Executor', 'FaaSFuture']


class FaaSFuture:
    """Handle to a submitted task."""

    def __init__(self, cloud: CloudFaaSService, task_id: str, client_host: str) -> None:
        self._cloud = cloud
        self.task_id = task_id
        self._client_host = client_host
        self._result: Any = None
        self._fetched = False

    def done(self) -> bool:
        """Return whether the task has completed at the endpoint."""
        return self._cloud.task(self.task_id).done

    def result(self) -> Any:
        """Return the task result, charging the result download on first call."""
        if not self._fetched:
            self._result = self._cloud.fetch_result(self._client_host, self.task_id)
            self._fetched = True
        return self._result

    def record(self) -> TaskRecord:
        """Return the cloud's bookkeeping record for this task."""
        return self._cloud.task(self.task_id)

    def __repr__(self) -> str:
        return f'FaaSFuture(task_id={self.task_id[:8]!r}, done={self.done()})'


class Executor:
    """Submits tasks to one compute endpoint through the cloud service.

    Args:
        cloud: the cloud routing service.
        endpoint_name: target endpoint.
        client_host: fabric host the client runs on; defaults to the current
            simulated host at submit time.
    """

    def __init__(
        self,
        cloud: CloudFaaSService,
        endpoint_name: str,
        *,
        client_host: str | None = None,
    ) -> None:
        if endpoint_name not in cloud.endpoints():
            raise FaaSError(f'endpoint {endpoint_name!r} is not registered with the cloud')
        self.cloud = cloud
        self.endpoint_name = endpoint_name
        self.client_host = client_host

    def _client_host(self) -> str:
        return self.client_host if self.client_host is not None else current_host()

    def submit(self, func: Callable[..., Any], *args: Any, **kwargs: Any) -> FaaSFuture:
        """Submit ``func(*args, **kwargs)`` for execution on the endpoint."""
        client_host = self._client_host()
        task_id = self.cloud.submit(client_host, self.endpoint_name, func, args, kwargs)
        return FaaSFuture(self.cloud, task_id, client_host)

    def map(self, func: Callable[..., Any], items: Iterable[Any]) -> list[FaaSFuture]:
        """Submit one task per item; returns the futures in order."""
        return [self.submit(func, item) for item in items]

    def __enter__(self) -> 'Executor':
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        return None

    def __repr__(self) -> str:
        return f'Executor(endpoint={self.endpoint_name!r})'
