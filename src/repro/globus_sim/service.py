"""The simulated Globus transfer service implementation."""
from __future__ import annotations

import enum
import os
import shutil
import threading
import time
import uuid
from dataclasses import dataclass
from dataclasses import field
from typing import Sequence

from repro.exceptions import TransferError

__all__ = [
    'GlobusEndpointSpec',
    'GlobusTransferService',
    'TransferStatus',
    'TransferTask',
    'get_transfer_service',
    'reset_transfer_service',
]


class TransferStatus(enum.Enum):
    """Lifecycle of a transfer task (mirrors the Globus task states we use)."""

    ACTIVE = 'ACTIVE'
    SUCCEEDED = 'SUCCEEDED'
    FAILED = 'FAILED'


@dataclass(frozen=True)
class GlobusEndpointSpec:
    """A registered endpoint: a UUID plus the directory it serves."""

    endpoint_uuid: str
    endpoint_path: str

    @classmethod
    def create(cls, endpoint_path: str) -> 'GlobusEndpointSpec':
        """Create a spec with a fresh UUID, creating the directory."""
        os.makedirs(endpoint_path, exist_ok=True)
        return cls(endpoint_uuid=uuid.uuid4().hex, endpoint_path=os.path.abspath(endpoint_path))


@dataclass
class TransferTask:
    """A transfer of one or more files between two endpoints."""

    task_id: str
    src_endpoint: str
    dst_endpoint: str
    items: list[tuple[str, str]]
    status: TransferStatus = TransferStatus.ACTIVE
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    completed_at: float | None = None

    @property
    def done(self) -> bool:
        return self.status is not TransferStatus.ACTIVE


class GlobusTransferService:
    """Executes transfer tasks between registered endpoint directories.

    Args:
        task_delay_s: artificial wall-clock delay before a task completes,
            modelling the SaaS submission/polling overhead (kept tiny by
            default so tests are fast; the benchmarks account for the real
            overhead on the virtual clock instead).
        failure_rate: probability in [0, 1] that a submitted task fails, for
            failure-injection tests (default never fails).
    """

    def __init__(self, *, task_delay_s: float = 0.0, failure_rate: float = 0.0) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError('failure_rate must be within [0, 1]')
        self.task_delay_s = task_delay_s
        self.failure_rate = failure_rate
        self._endpoints: dict[str, GlobusEndpointSpec] = {}
        self._tasks: dict[str, TransferTask] = {}
        self._lock = threading.Lock()
        self._fail_next = False
        self._rng_state = 12345
        #: Live transfer worker threads, joined by :meth:`close` so the
        #: service never leaks workers past its owner's teardown.
        self._workers: list[threading.Thread] = []

    # -- endpoint management ----------------------------------------------- #
    def register_endpoint(self, spec: GlobusEndpointSpec) -> str:
        """Register an endpoint; returns its UUID."""
        os.makedirs(spec.endpoint_path, exist_ok=True)
        with self._lock:
            self._endpoints[spec.endpoint_uuid] = spec
        return spec.endpoint_uuid

    def endpoint(self, endpoint_uuid: str) -> GlobusEndpointSpec:
        with self._lock:
            try:
                return self._endpoints[endpoint_uuid]
            except KeyError:
                raise TransferError(f'unknown endpoint {endpoint_uuid!r}') from None

    def endpoints(self) -> list[str]:
        with self._lock:
            return sorted(self._endpoints)

    # -- failure injection --------------------------------------------------- #
    def fail_next_transfer(self) -> None:
        """Force the next submitted transfer task to fail (for tests)."""
        self._fail_next = True

    def _should_fail(self) -> bool:
        if self._fail_next:
            self._fail_next = False
            return True
        if self.failure_rate <= 0.0:
            return False
        # Small deterministic LCG so failure injection is reproducible.
        self._rng_state = (1103515245 * self._rng_state + 12345) % (2**31)
        return (self._rng_state / 2**31) < self.failure_rate

    # -- transfers ------------------------------------------------------------ #
    def submit_transfer(
        self,
        src_endpoint: str,
        dst_endpoint: str,
        items: Sequence[tuple[str, str]],
    ) -> str:
        """Submit an asynchronous transfer of ``items`` (src relative path, dst relative path).

        Returns the task id immediately; completion is observed by polling
        :meth:`get_task` or blocking in :meth:`wait`.
        """
        src = self.endpoint(src_endpoint)
        dst = self.endpoint(dst_endpoint)
        task = TransferTask(
            task_id=uuid.uuid4().hex,
            src_endpoint=src_endpoint,
            dst_endpoint=dst_endpoint,
            items=list(items),
        )
        with self._lock:
            self._tasks[task.task_id] = task
        fail = self._should_fail()
        worker = threading.Thread(
            target=self._execute, args=(task, src, dst, fail), daemon=True,
        )
        with self._lock:
            # Opportunistically prune finished workers so a long-lived
            # service doesn't accumulate dead Thread objects.
            self._workers = [w for w in self._workers if w.is_alive()]
            self._workers.append(worker)
        worker.start()
        return task.task_id

    def _execute(
        self,
        task: TransferTask,
        src: GlobusEndpointSpec,
        dst: GlobusEndpointSpec,
        fail: bool,
    ) -> None:
        if self.task_delay_s > 0:
            time.sleep(self.task_delay_s)
        if fail:
            task.status = TransferStatus.FAILED
            task.error = 'injected transfer failure'
            task.completed_at = time.time()
            return
        try:
            for src_rel, dst_rel in task.items:
                src_path = os.path.join(src.endpoint_path, src_rel)
                dst_path = os.path.join(dst.endpoint_path, dst_rel)
                os.makedirs(os.path.dirname(dst_path) or '.', exist_ok=True)
                shutil.copyfile(src_path, dst_path)
            task.status = TransferStatus.SUCCEEDED
        except OSError as e:
            task.status = TransferStatus.FAILED
            task.error = str(e)
        task.completed_at = time.time()

    def close(self, *, timeout: float = 5.0) -> None:
        """Join outstanding transfer workers (bounded per thread).

        Idempotent; after it returns, no worker started by this service
        is still mutating task state.
        """
        with self._lock:
            workers, self._workers = self._workers, []
        for worker in workers:
            worker.join(timeout=timeout)

    def get_task(self, task_id: str) -> TransferTask:
        with self._lock:
            try:
                return self._tasks[task_id]
            except KeyError:
                raise TransferError(f'unknown transfer task {task_id!r}') from None

    def wait(self, task_id: str, *, timeout: float = 30.0, poll_interval: float = 0.005) -> TransferTask:
        """Block until the task completes; raises :class:`TransferError` on failure/timeout."""
        deadline = time.time() + timeout
        while True:
            task = self.get_task(task_id)
            if task.done:
                if task.status is TransferStatus.FAILED:
                    raise TransferError(
                        f'Globus transfer task {task_id} failed: {task.error}',
                    )
                return task
            if time.time() > deadline:
                raise TransferError(f'Globus transfer task {task_id} timed out')
            time.sleep(poll_interval)


# Process-global service instance used by default so that producer and
# consumer connectors in one process (the common test/benchmark situation)
# share endpoints and tasks, as they would share the real Globus cloud.
_SERVICE: GlobusTransferService | None = None
_SERVICE_LOCK = threading.Lock()


def get_transfer_service() -> GlobusTransferService:
    """Return the process-global transfer service, creating it if needed."""
    global _SERVICE
    with _SERVICE_LOCK:
        if _SERVICE is None:
            _SERVICE = GlobusTransferService()
        return _SERVICE


def reset_transfer_service() -> None:
    """Discard the process-global service (test isolation).

    Joins the outgoing service's transfer workers first, so a test that
    resets the service cannot leak workers into the next test.
    """
    global _SERVICE
    with _SERVICE_LOCK:
        service, _SERVICE = _SERVICE, None
    if service is not None:
        service.close()
