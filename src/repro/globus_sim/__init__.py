"""Simulated Globus transfer service.

Globus Transfer is a cloud-hosted software-as-a-service for reliable bulk
file movement between registered endpoints.  It is not reachable offline, so
this package provides a functional stand-in: endpoints are directories on the
local file system, transfers are asynchronous tasks executed by a background
worker (with configurable per-task overhead and failure injection), and
clients poll task status by task id — the same interaction pattern the real
``GlobusConnector`` uses (submit, poll, read file from the destination
endpoint's directory).
"""
from repro.globus_sim.service import GlobusEndpointSpec
from repro.globus_sim.service import GlobusTransferService
from repro.globus_sim.service import TransferStatus
from repro.globus_sim.service import TransferTask
from repro.globus_sim.service import get_transfer_service
from repro.globus_sim.service import reset_transfer_service

__all__ = [
    'GlobusEndpointSpec',
    'GlobusTransferService',
    'TransferStatus',
    'TransferTask',
    'get_transfer_service',
    'reset_transfer_service',
]
