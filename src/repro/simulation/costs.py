"""Virtual-time cost models for the communication methods in the evaluation.

Each model answers two questions in virtual seconds: what it costs a producer
on ``host`` to make an object available (``put_cost``), and what it costs a
consumer on ``consumer_host`` to obtain an object produced on ``origin_host``
(``get_cost``).  The benchmark harness wires these models to *real* connector
traffic through :class:`~repro.simulation.costed.CostedConnector`, so the
virtual times reported for each figure correspond to actual put/get calls the
library executed.

The models encode the qualitative behaviours the paper measures:

* cloud-mediated transfer pays two WAN hops plus per-request service overhead;
* a shared file system is fast but intra-site only;
* a central Redis-like server pays one round trip to the server's host;
* PS-endpoints are cheap to put to (local endpoint) and pay a throttled WAN
  data-channel plus a one-time peering setup on first remote fetch;
* Globus has a large fixed per-task overhead but near-line-rate bulk bandwidth;
* IPFS adds content hashing and disk I/O around a peer-to-peer WAN fetch;
* DataSpaces behaves like an RDMA-backed staging store with a startup cost;
* Redis over an SSH tunnel pays the WAN round trip plus tunnel encryption
  overhead per message.
"""
from __future__ import annotations

from abc import ABC
from abc import abstractmethod
from dataclasses import dataclass
from dataclasses import field

from repro.simulation.fabric import CLOUD_REQUEST_OVERHEAD_S
from repro.simulation.fabric import CLOUD_SERVICE_HOST
from repro.simulation.fabric import GLOBUS_TASK_OVERHEAD_S
from repro.simulation.fabric import RTC_BANDWIDTH_FACTOR
from repro.simulation.fabric import RTC_SETUP_OVERHEAD_S
from repro.simulation.network import Fabric

__all__ = [
    'TransferCostModel',
    'CloudRelayCost',
    'SharedFilesystemCost',
    'CentralServerCost',
    'DistributedMemoryCost',
    'EndpointPeerCost',
    'GlobusTransferCost',
    'IPFSCost',
    'DataSpacesCost',
    'SSHTunnelRedisCost',
]

#: Software overhead of a local put/get in a well-tuned in-memory store.
_LOCAL_OP_OVERHEAD_S = 2e-4


class TransferCostModel(ABC):
    """Virtual cost of making an object available and of fetching it."""

    name = 'model'

    @abstractmethod
    def put_cost(self, nbytes: int, host: str) -> float:
        """Seconds for a producer on ``host`` to store an object of ``nbytes``."""

    @abstractmethod
    def get_cost(
        self,
        nbytes: int,
        origin_host: str,
        consumer_host: str,
        *,
        first_fetch: bool = True,
    ) -> float:
        """Seconds for ``consumer_host`` to obtain an object produced on ``origin_host``."""

    def roundtrip_cost(self, nbytes: int, origin_host: str, consumer_host: str) -> float:
        """Convenience: produce then consume once."""
        return self.put_cost(nbytes, origin_host) + self.get_cost(
            nbytes, origin_host, consumer_host,
        )


@dataclass
class CloudRelayCost(TransferCostModel):
    """Baseline: data rides with the task through the FaaS cloud service."""

    fabric: Fabric
    request_overhead_s: float = CLOUD_REQUEST_OVERHEAD_S
    #: Rate at which the cloud service ingests/serves payload bytes (storage
    #: backend writes, quota accounting); matches CloudFaaSService's default.
    payload_processing_bps: float = 2e6
    name: str = 'cloud-transfer'

    def put_cost(self, nbytes: int, host: str) -> float:
        # Upload alongside the task submission request.
        return (
            self.fabric.transfer_time(host, CLOUD_SERVICE_HOST, nbytes)
            + nbytes / self.payload_processing_bps
            + self.request_overhead_s
        )

    def get_cost(self, nbytes, origin_host, consumer_host, *, first_fetch=True):
        # Download from the cloud to wherever the task runs.
        return (
            self.fabric.transfer_time(CLOUD_SERVICE_HOST, consumer_host, nbytes)
            + nbytes / self.payload_processing_bps
            + self.request_overhead_s
        )


@dataclass
class SharedFilesystemCost(TransferCostModel):
    """FileConnector on a site-shared parallel file system."""

    fabric: Fabric
    name: str = 'file'

    def put_cost(self, nbytes: int, host: str) -> float:
        h = self.fabric.host(host)
        return _LOCAL_OP_OVERHEAD_S + nbytes / h.disk_write_bps

    def get_cost(self, nbytes, origin_host, consumer_host, *, first_fetch=True):
        h = self.fabric.host(consumer_host)
        # Metadata + data over the site interconnect, then a disk read.
        network = self.fabric.transfer_time(origin_host, consumer_host, nbytes)
        return _LOCAL_OP_OVERHEAD_S + network + nbytes / h.disk_read_bps


@dataclass
class CentralServerCost(TransferCostModel):
    """RedisConnector-style central in-memory server on ``server_host``."""

    fabric: Fabric
    server_host: str
    name: str = 'redis'

    def put_cost(self, nbytes: int, host: str) -> float:
        return _LOCAL_OP_OVERHEAD_S + self.fabric.transfer_time(host, self.server_host, nbytes)

    def get_cost(self, nbytes, origin_host, consumer_host, *, first_fetch=True):
        return _LOCAL_OP_OVERHEAD_S + self.fabric.transfer_time(
            self.server_host, consumer_host, nbytes,
        )


@dataclass
class DistributedMemoryCost(TransferCostModel):
    """Margo/UCX/ZMQ distributed in-memory stores.

    ``software_efficiency`` models the transport stack: RDMA (Margo) ~1.0,
    UCX slightly lower on commodity NICs, TCP/ZMQ lower still.
    """

    fabric: Fabric
    software_efficiency: float = 1.0
    startup_overhead_s: float = 0.0
    name: str = 'dim'

    _started_hosts: set = field(default_factory=set)

    def put_cost(self, nbytes: int, host: str) -> float:
        cost = _LOCAL_OP_OVERHEAD_S + nbytes / (20e9 * self.software_efficiency)
        if host not in self._started_hosts:
            # First use on a node spawns the local storage server.
            self._started_hosts.add(host)
            cost += self.startup_overhead_s
        return cost

    def get_cost(self, nbytes, origin_host, consumer_host, *, first_fetch=True):
        return _LOCAL_OP_OVERHEAD_S + self.fabric.transfer_time(
            origin_host, consumer_host, nbytes,
            bandwidth_factor=self.software_efficiency,
        )


@dataclass
class EndpointPeerCost(TransferCostModel):
    """PS-endpoints: local put, peer-to-peer WAN fetch over a throttled channel.

    Peer connections are persistent: the relay-mediated setup cost is paid
    once per (origin site, consumer site) pair and reused for every
    subsequent object, exactly as the endpoints keep their WebRTC connections
    open until stopped.
    """

    fabric: Fabric
    rtc_bandwidth_factor: float = RTC_BANDWIDTH_FACTOR
    peering_setup_s: float = RTC_SETUP_OVERHEAD_S
    name: str = 'endpoint'

    _peered_sites: set = field(default_factory=set)

    def put_cost(self, nbytes: int, host: str) -> float:
        # Client to its local (same-site) endpoint.
        site = self.fabric.host(host).site
        link = self.fabric.site(site).internal_link
        return _LOCAL_OP_OVERHEAD_S + link.transfer_time(nbytes)

    def get_cost(self, nbytes, origin_host, consumer_host, *, first_fetch=True):
        consumer_site = self.fabric.host(consumer_host).site
        origin_site = self.fabric.host(origin_host).site
        # Hop 1: consumer to its local endpoint.
        local_link = self.fabric.site(consumer_site).internal_link
        cost = _LOCAL_OP_OVERHEAD_S + local_link.transfer_time(nbytes)
        if origin_site == consumer_site:
            # Same site, but the object may live on a different node's
            # endpoint: the local endpoint forwards over the site network,
            # which is the "extra hop" the paper identifies for the
            # Theta-to-Theta case.
            if origin_host != consumer_host:
                cost += local_link.transfer_time(nbytes)
            return cost
        # Hop 2: local endpoint to the remote endpoint over the data channel.
        # Connections are bidirectional, so the pair is order-insensitive.
        site_pair = tuple(sorted((origin_site, consumer_site)))
        if site_pair not in self._peered_sites:
            self._peered_sites.add(site_pair)
            cost += self.peering_setup_s
        cost += self.fabric.transfer_time(
            origin_host, consumer_host, nbytes,
            bandwidth_factor=self.rtc_bandwidth_factor,
        )
        return cost


@dataclass
class GlobusTransferCost(TransferCostModel):
    """GlobusConnector: disk-to-disk bulk transfer managed by a cloud service."""

    fabric: Fabric
    task_overhead_s: float = GLOBUS_TASK_OVERHEAD_S
    name: str = 'globus'

    def put_cost(self, nbytes: int, host: str) -> float:
        h = self.fabric.host(host)
        # Write the object file locally and submit the transfer task.
        return nbytes / h.disk_write_bps + 0.05

    def get_cost(self, nbytes, origin_host, consumer_host, *, first_fetch=True):
        src = self.fabric.host(origin_host)
        dst = self.fabric.host(consumer_host)
        cost = 0.0
        if first_fetch:
            # Wait for the transfer task: fixed SaaS overhead plus the WAN copy
            # (Globus drives the network efficiently: no bandwidth penalty).
            cost += self.task_overhead_s
            cost += self.fabric.transfer_time(origin_host, consumer_host, nbytes)
            cost += nbytes / src.disk_read_bps + nbytes / dst.disk_write_bps
        # Read the transferred file from the local file system.
        cost += nbytes / dst.disk_read_bps + _LOCAL_OP_OVERHEAD_S
        return cost


@dataclass
class IPFSCost(TransferCostModel):
    """IPFS baseline: content-addressed add, peer fetch, local read."""

    fabric: Fabric
    hashing_bps: float = 0.5e9
    name: str = 'ipfs'

    def put_cost(self, nbytes: int, host: str) -> float:
        h = self.fabric.host(host)
        # Write the file, then `ipfs add` chunks and hashes it.
        return nbytes / h.disk_write_bps + nbytes / self.hashing_bps + 0.02

    def get_cost(self, nbytes, origin_host, consumer_host, *, first_fetch=True):
        dst = self.fabric.host(consumer_host)
        cost = 0.05  # DHT/content resolution
        if first_fetch:
            cost += self.fabric.transfer_time(
                origin_host, consumer_host, nbytes, bandwidth_factor=0.5,
            )
            cost += nbytes / dst.disk_write_bps
        cost += nbytes / dst.disk_read_bps
        return cost


@dataclass
class DataSpacesCost(TransferCostModel):
    """DataSpaces baseline: staging servers with RDMA transport and startup cost."""

    fabric: Fabric
    software_efficiency: float = 0.9
    startup_overhead_s: float = 0.35
    name: str = 'dataspaces'

    _started_hosts: set = field(default_factory=set)

    def put_cost(self, nbytes: int, host: str) -> float:
        cost = 5e-4 + nbytes / (20e9 * self.software_efficiency)
        if host not in self._started_hosts:
            self._started_hosts.add(host)
            cost += self.startup_overhead_s
        return cost

    def get_cost(self, nbytes, origin_host, consumer_host, *, first_fetch=True):
        return 5e-4 + self.fabric.transfer_time(
            origin_host, consumer_host, nbytes,
            bandwidth_factor=self.software_efficiency,
        )


@dataclass
class SSHTunnelRedisCost(TransferCostModel):
    """Redis on the target site reached through a manually created SSH tunnel."""

    fabric: Fabric
    server_host: str
    encryption_bps: float = 2.0e9
    name: str = 'redis+ssh'

    def put_cost(self, nbytes: int, host: str) -> float:
        return (
            _LOCAL_OP_OVERHEAD_S
            + self.fabric.transfer_time(host, self.server_host, nbytes)
            + nbytes / self.encryption_bps
        )

    def get_cost(self, nbytes, origin_host, consumer_host, *, first_fetch=True):
        return (
            _LOCAL_OP_OVERHEAD_S
            + self.fabric.transfer_time(self.server_host, consumer_host, nbytes)
            + nbytes / self.encryption_bps
        )
