"""Sites, hosts and links: the simulated communication fabric.

A :class:`Fabric` is a graph of named sites.  Each site has an internal link
(modelling its LAN / HPC interconnect and shared file system) and optional
NAT (which matters for which connectors are usable between sites, mirroring
Section 2 of the paper).  Inter-site links carry wide-area latency and
bandwidth.  The single primitive everything else builds on is
:meth:`Fabric.transfer_time`: the virtual seconds needed to move ``nbytes``
between two hosts.
"""
from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field
from typing import Iterable

from repro.exceptions import SimulationError
from repro.exceptions import UnknownSiteError

__all__ = ['Link', 'Host', 'Site', 'Fabric']


@dataclass(frozen=True)
class Link:
    """A directed or symmetric network link.

    Attributes:
        latency_s: one-way latency in seconds added per message.
        bandwidth_bps: usable bandwidth in bytes per second.
        per_message_overhead_s: fixed software overhead per message (protocol
            processing, framing) added on top of latency.
    """

    latency_s: float
    bandwidth_bps: float
    per_message_overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.per_message_overhead_s < 0:
            raise ValueError('latencies must be non-negative')
        if self.bandwidth_bps <= 0:
            raise ValueError('bandwidth must be positive')

    def transfer_time(self, nbytes: int, *, messages: int = 1) -> float:
        """Virtual seconds to move ``nbytes`` in ``messages`` messages over this link."""
        if nbytes < 0:
            raise ValueError('nbytes must be non-negative')
        if messages < 1:
            raise ValueError('messages must be at least 1')
        fixed = messages * (self.latency_s + self.per_message_overhead_s)
        return fixed + nbytes / self.bandwidth_bps

    def scaled(self, bandwidth_factor: float = 1.0, latency_factor: float = 1.0) -> 'Link':
        """Return a copy with scaled bandwidth/latency (used to model slow protocols)."""
        return Link(
            latency_s=self.latency_s * latency_factor,
            bandwidth_bps=self.bandwidth_bps * bandwidth_factor,
            per_message_overhead_s=self.per_message_overhead_s * latency_factor,
        )


@dataclass(frozen=True)
class Host:
    """A named host located at a site.

    Attributes:
        name: unique host name within the fabric (e.g. ``'theta-login'``).
        site: name of the site the host belongs to.
        kind: free-form role tag (``'login'``, ``'compute'``, ``'edge'``...).
        disk_write_bps / disk_read_bps: local or shared file system speeds,
            used by the file- and disk-based connectors' cost models.
    """

    name: str
    site: str
    kind: str = 'compute'
    disk_write_bps: float = 1.0e9
    disk_read_bps: float = 2.0e9


@dataclass
class Site:
    """A site: a set of hosts sharing a LAN and (optionally) a NAT."""

    name: str
    internal_link: Link
    behind_nat: bool = True
    hosts: dict[str, Host] = field(default_factory=dict)

    def add_host(self, host: Host) -> Host:
        if host.site != self.name:
            raise SimulationError(
                f'host {host.name!r} declares site {host.site!r}, expected {self.name!r}',
            )
        self.hosts[host.name] = host
        return host


class Fabric:
    """A collection of sites and the links between them."""

    def __init__(self) -> None:
        self._sites: dict[str, Site] = {}
        self._hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], Link] = {}

    # -- construction ----------------------------------------------------- #
    def add_site(
        self,
        name: str,
        *,
        internal_link: Link,
        behind_nat: bool = True,
    ) -> Site:
        """Create and register a site."""
        if name in self._sites:
            raise SimulationError(f'site {name!r} already exists')
        site = Site(name=name, internal_link=internal_link, behind_nat=behind_nat)
        self._sites[name] = site
        return site

    def add_host(self, host: Host) -> Host:
        """Register a host with its (already created) site."""
        site = self.site(host.site)
        site.add_host(host)
        self._hosts[host.name] = host
        return host

    def connect(self, site_a: str, site_b: str, link: Link) -> None:
        """Create a symmetric wide-area link between two sites."""
        self.site(site_a)
        self.site(site_b)
        self._links[(site_a, site_b)] = link
        self._links[(site_b, site_a)] = link

    # -- lookups ----------------------------------------------------------- #
    def site(self, name: str) -> Site:
        try:
            return self._sites[name]
        except KeyError:
            raise UnknownSiteError(f'unknown site {name!r}') from None

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise UnknownSiteError(f'unknown host {name!r}') from None

    def sites(self) -> list[str]:
        return sorted(self._sites)

    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def link_between(self, site_a: str, site_b: str) -> Link:
        """Return the link between two sites (a site's internal link if equal)."""
        if site_a == site_b:
            return self.site(site_a).internal_link
        try:
            return self._links[(site_a, site_b)]
        except KeyError:
            raise SimulationError(
                f'no link between sites {site_a!r} and {site_b!r}',
            ) from None

    def same_site(self, host_a: str, host_b: str) -> bool:
        return self.host(host_a).site == self.host(host_b).site

    def can_connect_directly(self, site_a: str, site_b: str) -> bool:
        """Whether hosts at the two sites can open direct TCP connections.

        Two hosts behind different NATs cannot connect directly (they need a
        relay/hole-punching mechanism such as PS-endpoints, or a mediating
        cloud service), which is the central networking constraint motivating
        the paper's endpoint design.
        """
        if site_a == site_b:
            return True
        return not (self.site(site_a).behind_nat and self.site(site_b).behind_nat)

    # -- costs ------------------------------------------------------------- #
    def transfer_time(
        self,
        src_host: str,
        dst_host: str,
        nbytes: int,
        *,
        messages: int = 1,
        bandwidth_factor: float = 1.0,
        latency_factor: float = 1.0,
    ) -> float:
        """Virtual seconds to move ``nbytes`` from ``src_host`` to ``dst_host``.

        ``bandwidth_factor``/``latency_factor`` scale the underlying link and
        are used to model protocol inefficiencies (e.g. the paper's
        observation that aiortc data channels only achieve a fraction of the
        available WAN bandwidth) or accelerations (RDMA bypassing the kernel).
        """
        if src_host == dst_host:
            # Same-host communication is modelled as memory-speed copying.
            return nbytes / 20e9
        src = self.host(src_host)
        dst = self.host(dst_host)
        link = self.link_between(src.site, dst.site)
        link = link.scaled(bandwidth_factor=bandwidth_factor, latency_factor=latency_factor)
        return link.transfer_time(nbytes, messages=messages)

    def rtt(self, host_a: str, host_b: str) -> float:
        """Round-trip latency (seconds) of a zero-byte message exchange."""
        return 2 * self.transfer_time(host_a, host_b, 0)

    def multi_hop_time(
        self,
        hops: Iterable[tuple[str, str]],
        nbytes: int,
        **kwargs,
    ) -> float:
        """Sum transfer times over a sequence of (src, dst) host hops."""
        return sum(self.transfer_time(a, b, nbytes, **kwargs) for a, b in hops)
