"""Execution-location context for the simulated testbed.

On the real testbed, where a piece of code runs determines which network paths
its communication takes.  In this single-machine reproduction the benchmarks
"act out" the different locations: before running producer code they set the
current host to (say) ``'midway2-login'`` and before running task code to
``'theta-compute'``.  Cost models consult :func:`current_host` to decide which
links a transfer crosses.
"""
from __future__ import annotations

import contextlib
import contextvars
from typing import Iterator

__all__ = ['current_host', 'set_current_host', 'on_host']

_CURRENT_HOST: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    'repro_sim_current_host', default=None,
)

#: Host assumed when none has been set (an arbitrary but stable default).
DEFAULT_HOST = 'theta-login'


def current_host() -> str:
    """Return the host the current code is pretending to run on."""
    host = _CURRENT_HOST.get()
    return host if host is not None else DEFAULT_HOST


def set_current_host(host: str | None) -> contextvars.Token:
    """Set the simulated current host (``None`` restores the default)."""
    return _CURRENT_HOST.set(host)


@contextlib.contextmanager
def on_host(host: str) -> Iterator[None]:
    """Context manager running the enclosed block 'on' ``host``."""
    token = _CURRENT_HOST.set(host)
    try:
        yield
    finally:
        _CURRENT_HOST.reset(token)
