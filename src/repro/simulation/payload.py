"""Synthetic payload generation for benchmarks.

The paper's component benchmarks sweep payload sizes from 10 bytes to 100 MB
(and to 1 GB for the distributed in-memory stores).  These helpers create
payloads of exact serialized sizes and the logarithmic size sweeps used by
every benchmark harness.
"""
from __future__ import annotations

import numpy as np

__all__ = ['payload_of_size', 'size_sweep', 'human_size']


def payload_of_size(nbytes: int, *, seed: int = 0) -> bytes:
    """Return a ``bytes`` payload of exactly ``nbytes`` pseudo-random bytes.

    Pseudo-random (rather than constant) content avoids accidentally
    benefitting from compression anywhere in a transport stack.
    """
    if nbytes < 0:
        raise ValueError('nbytes must be non-negative')
    if nbytes == 0:
        return b''
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()


def size_sweep(start_bytes: int = 10, stop_bytes: int = 100_000_000, *, per_decade: int = 1) -> list[int]:
    """Return a logarithmic sweep of payload sizes from ``start`` to ``stop`` inclusive.

    Args:
        start_bytes: smallest payload size.
        stop_bytes: largest payload size.
        per_decade: number of points per factor-of-ten (1 gives decade steps).
    """
    if start_bytes <= 0 or stop_bytes < start_bytes:
        raise ValueError('invalid sweep bounds')
    sizes: list[int] = []
    exponent = np.log10(start_bytes)
    stop_exp = np.log10(stop_bytes)
    step = 1.0 / per_decade
    while exponent <= stop_exp + 1e-9:
        sizes.append(int(round(10 ** exponent)))
        exponent += step
    if sizes[-1] != stop_bytes:
        sizes.append(stop_bytes)
    # Deduplicate while preserving order (rounding can collide for tiny sizes).
    seen: set[int] = set()
    unique = []
    for s in sizes:
        if s not in seen:
            seen.add(s)
            unique.append(s)
    return unique


def human_size(nbytes: int) -> str:
    """Format ``nbytes`` using the units the paper's figures use (B, KB, MB, GB)."""
    units = ['B', 'KB', 'MB', 'GB', 'TB']
    value = float(nbytes)
    for unit in units:
        if value < 1000 or unit == units[-1]:
            if value == int(value):
                return f'{int(value)} {unit}'
            return f'{value:.1f} {unit}'
        value /= 1000
    raise AssertionError('unreachable')
