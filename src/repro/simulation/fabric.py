"""The simulated testbed used by the benchmark harness.

:func:`paper_testbed` builds a :class:`~repro.simulation.network.Fabric`
whose sites and links correspond to the machines used in the paper's
evaluation (Section 5): Theta and Polaris at ALCF, Perlmutter at NERSC,
Frontera at TACC, Midway2 at UChicago, Chameleon Cloud bare-metal nodes, a
set of edge devices (for the federated-learning application), and the public
cloud hosting the FaaS service.

The latency/bandwidth figures are order-of-magnitude estimates of the real
testbed, chosen so that the *relative* behaviours the paper reports (cloud
round-trips dominated by two WAN hops, Globus's high fixed overhead but high
bulk bandwidth, aiortc's constrained WAN throughput, RDMA beating TCP
intra-site) are preserved.  Absolute values are not expected to match the
paper.
"""
from __future__ import annotations

from repro.simulation.network import Fabric
from repro.simulation.network import Host
from repro.simulation.network import Link

__all__ = [
    'paper_testbed',
    'CLOUD_SERVICE_HOST',
    'CLOUD_REQUEST_OVERHEAD_S',
    'GLOBUS_TASK_OVERHEAD_S',
    'RTC_BANDWIDTH_FACTOR',
    'RTC_SETUP_OVERHEAD_S',
]

#: Host name of the cloud service (Globus Compute / relay server hosting).
CLOUD_SERVICE_HOST = 'cloud-service'

#: Fixed service-side processing time per cloud API request (task submit,
#: result fetch, ...).  Globus Compute round trips for tiny payloads are on
#: the order of a second in the paper; two WAN hops plus two service
#: overheads of this size reproduce that magnitude.
CLOUD_REQUEST_OVERHEAD_S = 0.35

#: Fixed overhead of a Globus transfer task (submission, polling granularity,
#: SaaS scheduling).  The paper observes that Globus is not competitive for
#: small transfers because of exactly this overhead.
GLOBUS_TASK_OVERHEAD_S = 3.0

#: Fraction of the nominal WAN bandwidth achievable by an aiortc
#: RTCDataChannel (the paper measured ~80 Mbps where far more was available;
#: computing centres throttle UDP and aiortc congestion control is slow).
RTC_BANDWIDTH_FACTOR = 0.08

#: One-time overhead of establishing a WebRTC peer connection via the relay
#: server (SDP + ICE exchange and hole punching).
RTC_SETUP_OVERHEAD_S = 0.5


def _hpc_interconnect(bandwidth_gbps: float, latency_us: float) -> Link:
    return Link(
        latency_s=latency_us * 1e-6,
        bandwidth_bps=bandwidth_gbps * 1e9 / 8,
        per_message_overhead_s=5e-6,
    )


def _wan(latency_ms: float, bandwidth_gbps: float) -> Link:
    return Link(
        latency_s=latency_ms * 1e-3,
        bandwidth_bps=bandwidth_gbps * 1e9 / 8,
        per_message_overhead_s=2e-4,
    )


def paper_testbed() -> Fabric:
    """Return a fabric modelling the paper's evaluation testbed."""
    fabric = Fabric()

    # --- sites --------------------------------------------------------- #
    # ALCF hosts both Theta (Aries dragonfly) and Polaris (Slingshot 11).
    fabric.add_site('alcf-theta', internal_link=_hpc_interconnect(100, 2.0))
    fabric.add_site('alcf-polaris', internal_link=_hpc_interconnect(200, 2.0))
    fabric.add_site('nersc', internal_link=_hpc_interconnect(200, 2.0))
    fabric.add_site('uchicago', internal_link=_hpc_interconnect(40, 10.0))
    fabric.add_site('tacc', internal_link=_hpc_interconnect(100, 2.0))
    fabric.add_site('chameleon', internal_link=_hpc_interconnect(40, 5.0))
    fabric.add_site('edge', internal_link=_wan(5.0, 0.3))
    fabric.add_site('cloud', internal_link=_hpc_interconnect(25, 50.0), behind_nat=False)

    # --- hosts --------------------------------------------------------- #
    fabric.add_host(Host('theta-login', 'alcf-theta', kind='login',
                         disk_write_bps=0.8e9, disk_read_bps=1.5e9))
    fabric.add_host(Host('theta-compute', 'alcf-theta', kind='compute',
                         disk_write_bps=0.8e9, disk_read_bps=1.5e9))
    fabric.add_host(Host('theta-compute-2', 'alcf-theta', kind='compute',
                         disk_write_bps=0.8e9, disk_read_bps=1.5e9))
    fabric.add_host(Host('polaris-login', 'alcf-polaris', kind='login',
                         disk_write_bps=1.5e9, disk_read_bps=3.0e9))
    fabric.add_host(Host('polaris-compute', 'alcf-polaris', kind='compute',
                         disk_write_bps=1.5e9, disk_read_bps=3.0e9))
    fabric.add_host(Host('perlmutter-login', 'nersc', kind='login',
                         disk_write_bps=2.0e9, disk_read_bps=4.0e9))
    fabric.add_host(Host('perlmutter-compute', 'nersc', kind='compute',
                         disk_write_bps=2.0e9, disk_read_bps=4.0e9))
    fabric.add_host(Host('midway2-login', 'uchicago', kind='login',
                         disk_write_bps=0.5e9, disk_read_bps=1.0e9))
    fabric.add_host(Host('frontera-login', 'tacc', kind='login',
                         # The paper notes Frontera's slower client file system.
                         disk_write_bps=0.2e9, disk_read_bps=0.4e9))
    fabric.add_host(Host('chameleon-node-a', 'chameleon', kind='compute',
                         disk_write_bps=0.5e9, disk_read_bps=1.0e9))
    fabric.add_host(Host('chameleon-node-b', 'chameleon', kind='compute',
                         disk_write_bps=0.5e9, disk_read_bps=1.0e9))
    fabric.add_host(Host(CLOUD_SERVICE_HOST, 'cloud', kind='service',
                         disk_write_bps=2.0e9, disk_read_bps=4.0e9))
    fabric.add_host(Host('gpu-server', 'uchicago', kind='gpu',
                         disk_write_bps=1.0e9, disk_read_bps=2.0e9))
    for i in range(4):
        fabric.add_host(Host(f'edge-device-{i}', 'edge', kind='edge',
                             disk_write_bps=0.05e9, disk_read_bps=0.1e9))

    # --- wide-area links ------------------------------------------------ #
    # ALCF <-> UChicago: both in the Chicago area; low latency, ESnet-grade.
    fabric.connect('alcf-theta', 'uchicago', _wan(2.0, 10))
    fabric.connect('alcf-polaris', 'uchicago', _wan(2.0, 10))
    fabric.connect('alcf-theta', 'alcf-polaris', _wan(0.5, 40))
    # ALCF <-> TACC: ~1500 km (the paper's Frontera -> Theta case).
    fabric.connect('alcf-theta', 'tacc', _wan(26.0, 5))
    fabric.connect('alcf-polaris', 'tacc', _wan(26.0, 5))
    fabric.connect('uchicago', 'tacc', _wan(27.0, 5))
    # ALCF <-> NERSC.
    fabric.connect('alcf-theta', 'nersc', _wan(45.0, 8))
    fabric.connect('alcf-polaris', 'nersc', _wan(45.0, 8))
    # Chameleon (UChicago/TACC-hosted testbed).
    fabric.connect('chameleon', 'uchicago', _wan(3.0, 4))
    fabric.connect('chameleon', 'alcf-theta', _wan(4.0, 4))
    fabric.connect('chameleon', 'cloud', _wan(25.0, 2))
    # Everything can reach the public cloud service.
    for site in ('alcf-theta', 'alcf-polaris', 'nersc', 'uchicago', 'tacc', 'edge'):
        latency = {'alcf-theta': 20.0, 'alcf-polaris': 20.0, 'nersc': 35.0,
                   'uchicago': 18.0, 'tacc': 30.0, 'edge': 40.0}[site]
        bandwidth = {'edge': 0.2}.get(site, 2.0)
        fabric.connect(site, 'cloud', _wan(latency, bandwidth))
    # Edge devices reach other sites only via the cloud in practice, but a
    # (slow, NAT-traversing) peer path exists for the endpoint experiments.
    fabric.connect('edge', 'uchicago', _wan(30.0, 0.3))
    fabric.connect('edge', 'alcf-theta', _wan(35.0, 0.3))
    fabric.connect('edge', 'alcf-polaris', _wan(35.0, 0.3))
    fabric.connect('nersc', 'uchicago', _wan(48.0, 5))
    fabric.connect('nersc', 'tacc', _wan(40.0, 5))

    return fabric
