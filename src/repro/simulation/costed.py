"""Connector wrapper that charges virtual time for real connector traffic.

``CostedConnector`` delegates every operation to a real connector (so objects
really are stored and fetched through the library's code paths) and, for each
operation, computes the virtual cost the operation would have had on the
simulated testbed — based on the payload size, where the object was produced,
and where the current code pretends to run (:mod:`repro.simulation.context`).
Costs are charged to a shared :class:`~repro.simulation.clock.VirtualClock`
and recorded in a ledger the benchmark harness reads.
"""
from __future__ import annotations

import threading
from dataclasses import dataclass
from dataclasses import field
from typing import Any
from typing import Sequence

from repro.connectors.protocol import Connector
from repro.serialize.buffers import payload_nbytes
from repro.simulation.clock import VirtualClock
from repro.simulation.context import current_host
from repro.simulation.costs import TransferCostModel

__all__ = ['CostLedger', 'CostedConnector']


@dataclass
class CostLedger:
    """Accumulated virtual costs charged by a CostedConnector."""

    put_cost: float = 0.0
    get_cost: float = 0.0
    put_count: int = 0
    get_count: int = 0
    put_bytes: int = 0
    get_bytes: int = 0
    last_put_cost: float = 0.0
    last_get_cost: float = 0.0
    per_operation: list = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        return self.put_cost + self.get_cost

    def record_put(self, cost: float, nbytes: int) -> None:
        self.put_cost += cost
        self.put_count += 1
        self.put_bytes += nbytes
        self.last_put_cost = cost
        self.per_operation.append(('put', nbytes, cost))

    def record_get(self, cost: float, nbytes: int) -> None:
        self.get_cost += cost
        self.get_count += 1
        self.get_bytes += nbytes
        self.last_get_cost = cost
        self.per_operation.append(('get', nbytes, cost))


class CostedConnector(Connector):
    """Wrap ``inner`` with virtual-time accounting under ``model``.

    Args:
        inner: the real connector doing the work.
        model: cost model describing this communication method.
        clock: virtual clock charged for every operation (optional: when
            omitted only the ledger is updated).
        charge_clock: whether to advance the clock (disable when a higher
            layer, e.g. the FaaS simulator, wants to account for overlap).
    """

    connector_name = 'costed'

    def __init__(
        self,
        inner: Connector,
        model: TransferCostModel,
        clock: VirtualClock | None = None,
        *,
        charge_clock: bool = True,
    ) -> None:
        self.inner = inner
        self.model = model
        self.clock = clock
        self.charge_clock = charge_clock
        self.ledger = CostLedger()
        self.capabilities = inner.capabilities
        # Buffer support is inherited: the wrapper forwards payloads as-is.
        self.supports_buffers = getattr(inner, 'supports_buffers', False)
        # A costed wrapper's config() describes the *inner* connector, so a
        # scheme-carrying StoreConfig must name the inner connector's scheme
        # for proxies to be resolvable in other processes.
        self.scheme = getattr(inner, 'scheme', None)
        self._origins: dict[Any, str] = {}
        self._sizes: dict[Any, int] = {}
        self._fetched_at: dict[tuple[Any, str], bool] = {}
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return f'CostedConnector({self.inner!r}, model={self.model.name!r})'

    # -- cost helpers ------------------------------------------------------- #
    def _charge(self, cost: float) -> None:
        if self.charge_clock and self.clock is not None:
            self.clock.advance(cost)

    def _charge_put(self, key: Any, nbytes: int) -> None:
        host = current_host()
        cost = self.model.put_cost(nbytes, host)
        with self._lock:
            self._origins[key] = host
            self._sizes[key] = nbytes
        self.ledger.record_put(cost, nbytes)
        self._charge(cost)

    def _charge_get(self, key: Any, nbytes: int) -> None:
        consumer = current_host()
        with self._lock:
            origin = self._origins.get(key, consumer)
            site_pair = (key, consumer)
            first = not self._fetched_at.get(site_pair, False)
            self._fetched_at[site_pair] = True
        cost = self.model.get_cost(nbytes, origin, consumer, first_fetch=first)
        self.ledger.record_get(cost, nbytes)
        self._charge(cost)

    # -- connector protocol --------------------------------------------------- #
    def put(self, data: Any, **kwargs: Any) -> Any:
        nbytes = payload_nbytes(data)
        key = self.inner.put(data, **kwargs) if kwargs else self.inner.put(data)
        self._charge_put(key, nbytes)
        return key

    def put_batch(self, datas: Sequence[Any], **kwargs: Any) -> list[Any]:
        nbytes = [payload_nbytes(data) for data in datas]
        keys = (
            self.inner.put_batch(datas, **kwargs)
            if kwargs
            else self.inner.put_batch(datas)
        )
        for key, n in zip(keys, nbytes):
            self._charge_put(key, n)
        return keys

    def get(self, key: Any) -> Any | None:
        data = self.inner.get(key)
        if data is not None:
            self._charge_get(key, payload_nbytes(data))
        return data

    def get_batch(self, keys: Sequence[Any]) -> list[Any]:
        datas = self.inner.get_batch(keys)
        for key, data in zip(keys, datas):
            if data is not None:
                self._charge_get(key, payload_nbytes(data))
        return datas

    def new_key(self, **kwargs: Any) -> Any:
        return self.inner.new_key(**kwargs) if kwargs else self.inner.new_key()

    def set(self, key: Any, data: Any) -> None:
        self.inner.set(key, data)
        self._charge_put(key, payload_nbytes(data))

    def exists(self, key: Any) -> bool:
        return self.inner.exists(key)

    def evict(self, key: Any) -> None:
        self.inner.evict(key)
        with self._lock:
            self._origins.pop(key, None)
            self._sizes.pop(key, None)

    def evict_batch(self, keys: Sequence[Any]) -> None:
        """Evict several keys with one inner batch eviction.

        Without this override the base-class fallback called
        :meth:`evict` once per key — the lifetime-close and
        ``Store.close(clear=True)`` teardown paths through a costed
        (harness-wrapped) store degraded a single batched round trip into
        per-key round trips on the real connector.
        """
        keys = list(keys)
        self.inner.evict_batch(keys)
        with self._lock:
            for key in keys:
                self._origins.pop(key, None)
                self._sizes.pop(key, None)

    def config(self) -> dict[str, Any]:
        # Costed wrappers are a benchmarking construct: their configs refer to
        # the inner connector so proxies resolve through the real channel.
        return self.inner.config()

    @classmethod
    def from_config(cls, config: dict[str, Any]) -> Connector:  # pragma: no cover
        raise NotImplementedError(
            'CostedConnector cannot be reconstructed from a config; '
            'rebuild it around the inner connector instead',
        )

    def close(self, clear: bool = False) -> None:
        self.inner.close(clear=clear)
