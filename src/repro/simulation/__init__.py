"""Virtual-time network simulation substrate.

The paper's evaluation spans six real machines connected by LAN, HPC
interconnect and wide-area networks.  None of that hardware is available to
this reproduction, so the benchmarks run the *real* library code paths while
charging communication time to a virtual clock according to a fabric of
sites, hosts and links whose latency/bandwidth parameters are calibrated to
the paper's testbed.  See ``DESIGN.md`` (Section 3) for the substitution
rationale.
"""
from repro.simulation.clock import VirtualClock
from repro.simulation.network import Fabric
from repro.simulation.network import Host
from repro.simulation.network import Link
from repro.simulation.network import Site
from repro.simulation.fabric import paper_testbed
from repro.simulation.payload import payload_of_size
from repro.simulation.payload import size_sweep

__all__ = [
    'Fabric',
    'Host',
    'Link',
    'Site',
    'VirtualClock',
    'paper_testbed',
    'payload_of_size',
    'size_sweep',
]
