"""A virtual clock for charging simulated communication and compute time.

Benchmarks drive real library code but account for wide-area transfer and
service latencies in *virtual seconds* on a :class:`VirtualClock`.  The clock
only ever moves forward.  Scoped accounting (:meth:`VirtualClock.region`)
makes it easy to measure the virtual duration of a sub-operation, which is
what the benchmark harness reports as the paper's round-trip times.
"""
from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ['VirtualClock']


class VirtualClock:
    """Monotonic virtual clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError('start time must be non-negative')
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        """Return the current virtual time in seconds."""
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative); returns the new time."""
        if seconds < 0:
            raise ValueError(f'cannot advance the clock by {seconds} (< 0) seconds')
        with self._lock:
            self._now += seconds
            return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` if it is in the future; returns current time."""
        with self._lock:
            if timestamp > self._now:
                self._now = timestamp
            return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock (used between benchmark repetitions)."""
        if start < 0:
            raise ValueError('start time must be non-negative')
        with self._lock:
            self._now = float(start)

    @contextmanager
    def region(self) -> Iterator['_Region']:
        """Context manager measuring virtual time elapsed inside the block."""
        region = _Region(self)
        region.start = self.now()
        try:
            yield region
        finally:
            region.elapsed = self.now() - region.start

    def __repr__(self) -> str:
        return f'VirtualClock(now={self.now():.6f}s)'


class _Region:
    """Result object produced by :meth:`VirtualClock.region`."""

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self.start = 0.0
        self.elapsed = 0.0
