"""Federated learning over edge devices (Section 5.5 / Figure 10 of the paper).

A FLoX-style application: an aggregator initializes a model, shares it with
edge devices which train on their private data, and averages the returned
models (FedAvg).  Only models cross the network.  The paper grows the model
(number of hidden blocks) to show that ProxyStore both reduces transfer time
and lifts the 5 MB FaaS payload ceiling that otherwise caps the model size.

The paper's CNN is replaced by a NumPy multi-layer perceptron for
Fashion-MNIST-shaped data; what matters for the experiment is that the
serialized model size grows linearly with the number of hidden blocks and
that training/aggregation are real computations over those weights.
"""
from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field
from typing import Any
from typing import Sequence

import numpy as np

from repro.proxy import Proxy
from repro.serialize import serialize

__all__ = [
    'MLPModel',
    'create_model',
    'generate_client_data',
    'local_training_task',
    'federated_average',
    'model_nbytes',
]

INPUT_DIM = 28 * 28       # Fashion-MNIST images
N_CLASSES = 10
HIDDEN_WIDTH = 180


@dataclass
class MLPModel:
    """A multi-layer perceptron expressed as a list of (weight, bias) layers."""

    layers: list[tuple[np.ndarray, np.ndarray]] = field(default_factory=list)

    @property
    def hidden_blocks(self) -> int:
        return max(0, len(self.layers) - 2)

    def num_parameters(self) -> int:
        return int(sum(w.size + b.size for w, b in self.layers))

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute class logits for a batch of flattened images."""
        h = np.asarray(x, dtype=np.float32)
        for i, (w, b) in enumerate(self.layers):
            h = h @ w + b
            if i < len(self.layers) - 1:
                h = np.maximum(h, 0.0)  # ReLU
        return h

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(x), axis=1)

    def copy(self) -> 'MLPModel':
        return MLPModel(layers=[(w.copy(), b.copy()) for w, b in self.layers])


def create_model(hidden_blocks: int, *, seed: int = 0, hidden_width: int = HIDDEN_WIDTH) -> MLPModel:
    """Create a model with ``hidden_blocks`` hidden layers (Figure 10's x-axis)."""
    if hidden_blocks < 0:
        raise ValueError('hidden_blocks must be non-negative')
    rng = np.random.default_rng(seed)
    dims = [INPUT_DIM] + [hidden_width] * (hidden_blocks + 1) + [N_CLASSES]
    layers = []
    for d_in, d_out in zip(dims[:-1], dims[1:]):
        scale = np.sqrt(2.0 / d_in)
        layers.append((
            (rng.normal(0, scale, size=(d_in, d_out))).astype(np.float32),
            np.zeros(d_out, dtype=np.float32),
        ))
    return MLPModel(layers=layers)


def model_nbytes(model: MLPModel) -> int:
    """Serialized size of the model (what actually crosses the network)."""
    return len(serialize(model))


def generate_client_data(
    n_samples: int = 256,
    *,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic Fashion-MNIST-like data private to one edge device."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, N_CLASSES, size=n_samples)
    # Class-dependent mean images so that training signal exists.
    images = rng.normal(0.0, 0.5, size=(n_samples, INPUT_DIM)).astype(np.float32)
    images += (labels[:, None] / N_CLASSES).astype(np.float32)
    return images, labels


def _softmax_cross_entropy_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    logits = logits - logits.max(axis=1, keepdims=True)
    probs = np.exp(logits)
    probs /= probs.sum(axis=1, keepdims=True)
    grad = probs
    grad[np.arange(len(labels)), labels] -= 1.0
    return grad / len(labels)


def train_local(
    model: MLPModel,
    images: np.ndarray,
    labels: np.ndarray,
    *,
    epochs: int = 1,
    lr: float = 0.05,
) -> MLPModel:
    """One device's local training: plain SGD on the cross-entropy loss."""
    trained = model.copy()
    for _ in range(epochs):
        # Forward pass, keeping activations for the backward pass.
        activations = [np.asarray(images, dtype=np.float32)]
        h = activations[0]
        for i, (w, b) in enumerate(trained.layers):
            h = h @ w + b
            if i < len(trained.layers) - 1:
                h = np.maximum(h, 0.0)
            activations.append(h)
        grad = _softmax_cross_entropy_grad(activations[-1], labels)
        # Backward pass.
        for i in reversed(range(len(trained.layers))):
            w, b = trained.layers[i]
            a_prev = activations[i]
            grad_w = a_prev.T @ grad
            grad_b = grad.sum(axis=0)
            if i > 0:
                grad = grad @ w.T
                grad = grad * (activations[i] > 0)
            trained.layers[i] = (w - lr * grad_w, b - lr * grad_b)
    return trained


def federated_average(models: Sequence[MLPModel]) -> MLPModel:
    """FedAvg: average corresponding weights of the locally-trained models."""
    if not models:
        raise ValueError('cannot average zero models')
    n_layers = len(models[0].layers)
    if any(len(m.layers) != n_layers for m in models):
        raise ValueError('all models must have the same architecture')
    averaged = []
    for i in range(n_layers):
        w = np.mean([m.layers[i][0] for m in models], axis=0)
        b = np.mean([m.layers[i][1] for m in models], axis=0)
        averaged.append((w, b))
    return MLPModel(layers=averaged)


def local_training_task(model: Any, *, seed: int = 0, epochs: int = 1, ctx=None) -> MLPModel:
    """The FaaS task run on an edge device: train the (possibly proxied) model.

    The device's private data never leaves it — only the updated model is
    returned (or proxied back, when the application passes models by proxy).
    """
    if ctx is not None and isinstance(model, Proxy):
        ctx.resolve_proxy(model)
    images, labels = generate_client_data(seed=seed)
    if ctx is not None:
        # Edge-device training time grows with the model size.
        n_layers = len(model.layers) if hasattr(model, 'layers') else 1
        ctx.sleep(0.2 + 0.01 * n_layers)
    return train_local(MLPModel(layers=[(w.copy(), b.copy()) for w, b in model.layers]),
                       images, labels, epochs=epochs)
