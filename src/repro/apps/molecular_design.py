"""Molecular design with surrogate models (Section 5.6 / Figure 11 of the paper).

The workflow interleaves three task types: quantum-chemistry *simulations*
(CPU nodes) that compute ionization potentials (IPs), surrogate-model
*training* and *inference* (a remote GPU node) that guide which candidates to
simulate next.  A Colmena Thinker orchestrates everything and — without
ProxyStore — every simulation result and model flows through the workflow
system, whose serial result handling becomes the bottleneck at scale.

This module provides (a) the domain pieces — synthetic candidate molecules, a
cheap "quantum chemistry" ground truth and a ridge-regression surrogate — and
(b) a virtual-time campaign simulator that measures average CPU-node and GPU
utilization with and without proxying, which is exactly what Figure 11 plots.
"""
from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field

import numpy as np

__all__ = [
    'CampaignConfig',
    'CampaignResult',
    'MoleculeDataset',
    'SurrogateModel',
    'simulate_ionization_potential',
    'run_campaign',
]

_FEATURES = 32


@dataclass
class MoleculeDataset:
    """A candidate set of molecules described by fixed-length feature vectors."""

    features: np.ndarray
    true_ip: np.ndarray

    @classmethod
    def generate(cls, n_molecules: int = 512, *, seed: int = 0) -> 'MoleculeDataset':
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(n_molecules, _FEATURES)).astype(np.float64)
        weights = rng.normal(size=_FEATURES)
        true_ip = features @ weights + 0.25 * rng.normal(size=n_molecules)
        return cls(features=features, true_ip=true_ip)

    def __len__(self) -> int:
        return len(self.true_ip)


def simulate_ionization_potential(dataset: MoleculeDataset, index: int) -> float:
    """The "quantum chemistry" simulation: returns the molecule's true IP."""
    return float(dataset.true_ip[index])


class SurrogateModel:
    """Ridge-regression surrogate predicting IPs from molecular features."""

    def __init__(self, regularization: float = 1e-3) -> None:
        self.regularization = regularization
        self.coefficients: np.ndarray | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> 'SurrogateModel':
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        gram = x.T @ x + self.regularization * np.eye(x.shape[1])
        self.coefficients = np.linalg.solve(gram, x.T @ y)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.coefficients is None:
            raise ValueError('the surrogate has not been trained yet')
        return np.asarray(features, dtype=np.float64) @ self.coefficients

    def rank_candidates(self, features: np.ndarray, *, top_k: int = 10) -> np.ndarray:
        """Indices of the ``top_k`` candidates with the highest predicted IP."""
        predictions = self.predict(features)
        return np.argsort(predictions)[::-1][:top_k]


# --------------------------------------------------------------------------- #
# Campaign-level utilization model (Figure 11)
# --------------------------------------------------------------------------- #
@dataclass
class CampaignConfig:
    """Parameters of one utilization measurement.

    The defaults are scaled-down but proportionate stand-ins for the paper's
    deployment (Theta KNL nodes for simulation, one remote GPU node for
    training/inference, ~1 MB simulation results, 10 MB model weights).
    """

    n_cpu_nodes: int = 128
    n_gpus: int = 16
    n_tasks: int = 2000
    simulation_time_s: float = 30.0
    result_nbytes: int = 1_000_000
    model_nbytes: int = 10_000_000
    #: Serial per-result handling time in the Thinker/task server, per byte,
    #: when results travel through the workflow system (baseline).
    workflow_per_byte_s: float = 5.5e-8
    #: Fixed per-result handling time (scheduling, bookkeeping).
    workflow_fixed_s: float = 0.02
    #: Per-result handling time when only proxies flow through the system.
    proxy_fixed_s: float = 0.02
    #: Rounds of surrogate training per campaign and GPU transfer behaviour.
    training_rounds: int = 8
    gpu_task_time_s: float = 20.0
    wan_bandwidth_bps: float = 2.0e9 / 8
    rtc_bandwidth_bps: float = 2.0e9 / 8 * 0.08
    cloud_overhead_s: float = 0.7


@dataclass
class CampaignResult:
    """Utilization measurements for one configuration."""

    n_cpu_nodes: int
    use_proxystore: bool
    cpu_utilization: float
    gpu_utilization: float
    avg_result_processing_s: float
    makespan_s: float
    extras: dict = field(default_factory=dict)


def _result_processing_time(config: CampaignConfig, use_proxystore: bool) -> float:
    """Serial time the Thinker/task server spends per simulation result."""
    if use_proxystore:
        return config.proxy_fixed_s
    return config.workflow_fixed_s + config.result_nbytes * config.workflow_per_byte_s


def run_campaign(config: CampaignConfig, *, use_proxystore: bool) -> CampaignResult:
    """Run the utilization model for one node count / configuration.

    The model captures the paper's bottleneck: simulation results must be
    processed serially by the steering process before a new simulation can be
    dispatched to the idle node.  When per-result processing (dominated by
    data movement through the workflow system in the baseline) cannot keep up
    with the aggregate completion rate of the CPU nodes, nodes sit idle and
    utilization falls; proxying the results shrinks the serial work and
    restores scaling.  GPU utilization additionally depends on how quickly
    model weights and inference inputs reach the remote GPU node.
    """
    per_result = _result_processing_time(config, use_proxystore)
    sim_time = config.simulation_time_s
    n_nodes = config.n_cpu_nodes

    # Steady-state CPU utilization of a closed queueing loop: each node cycles
    # through (simulate -> wait for serial result processing + redispatch).
    # The serial server can sustain 1/per_result results per second; the nodes
    # would like to complete n_nodes/sim_time results per second.
    offered_rate = n_nodes / sim_time
    service_rate = 1.0 / per_result
    if offered_rate <= service_rate:
        cpu_utilization = sim_time / (sim_time + per_result)
    else:
        # Saturated: each cycle effectively takes n_nodes * per_result.
        cpu_utilization = (sim_time / (n_nodes * per_result))
    cpu_utilization = min(1.0, cpu_utilization)

    # GPU utilization: each training/inference round moves model weights and
    # an inference batch to the remote GPU node, then computes.
    if use_proxystore:
        transfer = config.model_nbytes / config.rtc_bandwidth_bps + 0.5
        # The inference dataset is static: later rounds hit the endpoint cache.
        repeat_transfer = 0.5
    else:
        transfer = (
            2 * config.model_nbytes / config.wan_bandwidth_bps
            + 2 * config.cloud_overhead_s
        )
        repeat_transfer = transfer
    first_round = config.gpu_task_time_s / (config.gpu_task_time_s + transfer)
    later_rounds = config.gpu_task_time_s / (config.gpu_task_time_s + repeat_transfer)
    gpu_utilization = (
        first_round + (config.training_rounds - 1) * later_rounds
    ) / config.training_rounds
    # The GPU is also starved when the CPU side cannot produce results fast
    # enough to keep the training pipeline fed.
    gpu_utilization *= 0.5 + 0.5 * cpu_utilization
    gpu_utilization = min(1.0, gpu_utilization)

    makespan = config.n_tasks * max(per_result, sim_time / n_nodes)
    return CampaignResult(
        n_cpu_nodes=n_nodes,
        use_proxystore=use_proxystore,
        cpu_utilization=cpu_utilization,
        gpu_utilization=gpu_utilization,
        avg_result_processing_s=per_result,
        makespan_s=makespan,
        extras={'offered_rate': offered_rate, 'service_rate': service_rate},
    )
