"""Real-world application reproductions used in the paper's evaluation.

Three applications exercise ProxyStore end-to-end (Sections 5.4-5.6):

* :mod:`repro.apps.defect_analysis` — real-time defect analysis of microscopy
  images dispatched from an instrument to an HPC GPU node (Table 2).
* :mod:`repro.apps.federated_learning` — FLoX-style federated learning over
  edge devices, where only models cross the network (Figure 10).
* :mod:`repro.apps.molecular_design` — Colmena-based molecular design with
  simulation, training and inference task types spread over CPU and GPU
  resources (Figure 11).
"""
from repro.apps import defect_analysis
from repro.apps import federated_learning
from repro.apps import molecular_design

__all__ = ['defect_analysis', 'federated_learning', 'molecular_design']
