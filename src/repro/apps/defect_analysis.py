"""Real-time defect analysis (Section 5.4 / Table 2 of the paper).

A transmission electron microscope produces images that are dispatched,
through the federated FaaS substrate, to an HPC node where a segmentation
model quantifies radiation-induced defects.  The paper's model is a
machine-learned segmenter; communication behaviour — which is what ProxyStore
changes — only depends on the ~1 MB images and the (small) segmentation
outputs, so this reproduction uses a classical blob-detection pipeline
(thresholding, smoothing, connected components) implemented with NumPy/SciPy.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import ndimage

from repro.proxy import Proxy

__all__ = [
    'DefectAnalysisResult',
    'generate_micrograph',
    'segment_defects',
    'defect_inference_task',
]


@dataclass
class DefectAnalysisResult:
    """Summary statistics produced by the segmentation model."""

    n_defects: int
    defect_area_fraction: float
    mean_defect_area_px: float
    centroids: list[tuple[float, float]]

    def summary(self) -> dict[str, Any]:
        return {
            'n_defects': self.n_defects,
            'defect_area_fraction': self.defect_area_fraction,
            'mean_defect_area_px': self.mean_defect_area_px,
        }


def generate_micrograph(
    *,
    side: int = 1024,
    n_defects: int = 25,
    noise_level: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Create a synthetic micrograph with bright, blob-shaped defects.

    A ``1024 x 1024`` float32 image is ~4 MB raw and ~1 MB of information
    content, matching the 1 MB images used in the paper's test deployment
    (the benchmark uses a side of 512 to hit ~1 MB serialized).
    """
    rng = np.random.default_rng(seed)
    image = rng.normal(0.2, noise_level, size=(side, side)).astype(np.float32)
    ys = rng.integers(0, side, size=n_defects)
    xs = rng.integers(0, side, size=n_defects)
    radii = rng.integers(max(3, side // 120), max(7, side // 50), size=n_defects)
    yy, xx = np.mgrid[0:side, 0:side]
    for y, x, r in zip(ys, xs, radii):
        mask = (yy - int(y)) ** 2 + (xx - int(x)) ** 2 <= int(r) ** 2
        image[mask] += 0.8
    return np.clip(image, 0.0, 1.5)


def segment_defects(image: np.ndarray, *, threshold: float = 0.6) -> DefectAnalysisResult:
    """Identify defects: smooth, threshold, and label connected components."""
    if image.ndim != 2:
        raise ValueError('expected a 2-D micrograph')
    smoothed = ndimage.gaussian_filter(np.asarray(image, dtype=np.float32), sigma=2.0)
    binary = smoothed > threshold
    labels, n_defects = ndimage.label(binary)
    if n_defects == 0:
        return DefectAnalysisResult(0, 0.0, 0.0, [])
    areas = ndimage.sum_labels(binary, labels, index=range(1, n_defects + 1))
    centroids = ndimage.center_of_mass(binary, labels, index=range(1, n_defects + 1))
    return DefectAnalysisResult(
        n_defects=int(n_defects),
        defect_area_fraction=float(binary.mean()),
        mean_defect_area_px=float(np.mean(areas)),
        centroids=[(float(y), float(x)) for y, x in centroids],
    )


def defect_inference_task(image: Any, *, proxy_output_store: str | None = None, ctx=None) -> Any:
    """The FaaS task executed on the HPC node.

    Args:
        image: the micrograph, or a proxy of it (the whole point of Table 2).
        proxy_output_store: name of a registered store; when provided, the
            result is returned as a proxy from that store (the
            "Inputs/Outputs" rows of Table 2).  A name rather than a Store
            instance is used because task payloads are serialized and Store
            instances hold live connections.
        ctx: task context injected by the compute endpoint; used to charge the
            proxy's transfer cost to virtual time.
    """
    if ctx is not None and isinstance(image, Proxy):
        ctx.resolve_proxy(image)
    result = segment_defects(np.asarray(image))
    if ctx is not None:
        # GPU inference time for a ~1 MB micrograph (order of what the paper's
        # segmentation model takes on an A100).
        ctx.sleep(0.15)
    if proxy_output_store is not None:
        from repro.store import get_store

        store = get_store(proxy_output_store)
        if store is None:
            raise ValueError(
                f'no store named {proxy_output_store!r} is registered in the '
                'task execution process',
            )
        return store.proxy(result, cache_local=False)
    return result
