"""Workflow substrates: a Parsl-like local engine and a Colmena-like layer.

The paper integrates ProxyStore with Colmena (a steering library for
ensembles of simulations) whose tasks are executed by Parsl.  Neither is
available here, so this package provides functional stand-ins that preserve
the property ProxyStore exploits: every task's inputs and results flow
through several workflow components (thinker, task server, engine hub,
worker), each of which serializes/deserializes and copies the data — unless
the data is replaced by a proxy, in which case only the tiny proxy makes
those hops.
"""
from repro.workflow.engine import WorkflowEngine
from repro.workflow.engine import WorkflowFuture
from repro.workflow.colmena import ColmenaQueues
from repro.workflow.colmena import Result
from repro.workflow.colmena import TaskServer
from repro.workflow.colmena import Thinker

__all__ = [
    'ColmenaQueues',
    'Result',
    'TaskServer',
    'Thinker',
    'WorkflowEngine',
    'WorkflowFuture',
]
