"""A Parsl-like local workflow engine.

Parsl moves Python objects between the main process and its workers over
ZeroMQ sockets in a hub-spoke architecture: every task's inputs are
serialized by the submitting process, shipped through the hub, deserialized
by a worker, and the result makes the same journey back (Section 2 of the
paper).  This engine reproduces that data path with a thread pool: inputs and
results really are serialized, moved through an in-memory "hub", and
deserialized on the other side, so the per-byte overheads that ProxyStore
eliminates are physically present and measurable.

:meth:`WorkflowEngine.run_stream` adds a *stream-driven dispatch mode*:
the engine consumes a :class:`~repro.stream.StreamConsumer` and submits
one task per published event — when the stream carries proxies, only the
tiny proxy crosses the hub while workers resolve the bulk data directly
from the store, the streaming version of the paper's core experiment.
"""
from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from dataclasses import field
from typing import Any
from typing import Callable
from typing import Iterable
from typing import TYPE_CHECKING

from repro.exceptions import NodeUnavailableError
from repro.exceptions import WorkflowError
from repro.faults.retry import RetryPolicy
from repro.serialize import deserialize
from repro.serialize import freeze_payload
from repro.serialize import serialize

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.stream.channels import StreamProducer

__all__ = ['WorkflowEngine', 'WorkflowFuture', 'EngineStats']


@dataclass
class EngineStats:
    """Bytes and task counts that crossed the engine's hub."""

    tasks_submitted: int = 0
    tasks_completed: int = 0
    input_bytes: int = 0
    result_bytes: int = 0
    serialization_passes: int = 0
    task_retries: int = 0


class WorkflowFuture:
    """Future returned by :meth:`WorkflowEngine.submit`."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._payload: bytes | None = None
        self._error: BaseException | None = None

    def _set_result_payload(self, payload: bytes) -> None:
        self._payload = payload
        self._event.set()

    def _set_error(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = 60.0) -> Any:
        """Block for the task result; deserializes it on the caller's side."""
        if not self._event.wait(timeout):
            raise WorkflowError('timed out waiting for a workflow task result')
        if self._error is not None:
            raise self._error
        assert self._payload is not None
        return deserialize(self._payload)


@dataclass
class _Task:
    func: Callable[..., Any]
    payload: bytes
    future: WorkflowFuture = field(default_factory=WorkflowFuture)


class WorkflowEngine:
    """Thread-pool engine whose data path mimics Parsl's hub-spoke design.

    Args:
        n_workers: number of worker threads.
        extra_hops: number of additional encode/decode passes each payload
            makes (modelling the intermediate components a Colmena+Parsl
            deployment routes data through: JSON/base64 encoding of task
            messages, the Redis task queue, and Parsl's interchange).  The
            default of 3 approximates that pipeline; set 0 for a bare
            executor.
    """

    def __init__(self, n_workers: int = 4, *, extra_hops: int = 3) -> None:
        if n_workers < 1:
            raise ValueError('n_workers must be at least 1')
        if extra_hops < 0:
            raise ValueError('extra_hops must be non-negative')
        self.n_workers = n_workers
        self.extra_hops = extra_hops
        self.stats = EngineStats()
        self._queue: queue.Queue[_Task | None] = queue.Queue()
        self._running = threading.Event()
        self._running.set()
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f'wf-worker-{i}', daemon=True)
            for i in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- lifecycle -------------------------------------------------------- #
    def shutdown(self) -> None:
        """Stop accepting tasks and join the worker threads."""
        if not self._running.is_set():
            return
        self._running.clear()
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=2)

    def __enter__(self) -> 'WorkflowEngine':
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()

    # -- submission --------------------------------------------------------- #
    def submit(self, func: Callable[..., Any], *args: Any, **kwargs: Any) -> WorkflowFuture:
        """Serialize the inputs, ship them through the hub, and run the task.

        NumPy arrays among the arguments arrive at the task **read-only**
        (the zero-copy deserializer's uniform rule — they alias the queued
        payload); tasks that mutate an array input must ``np.copy`` it.
        """
        if not self._running.is_set():
            raise WorkflowError('engine has been shut down')
        # freeze_payload: the queued payload outlives this call, so its
        # segments must not alias argument buffers the caller may mutate
        # before a worker dequeues the task (snapshot semantics).
        payload = freeze_payload(serialize((args, kwargs)))
        payload = self._extra_hop_copies(payload)
        self.stats.tasks_submitted += 1
        self.stats.input_bytes += len(payload)
        task = _Task(func=func, payload=payload)
        self._queue.put(task)
        return task.future

    def _extra_hop_copies(self, payload):
        """Model the intermediate components each payload passes through.

        Each hop re-serializes the payload and base64-encodes/decodes it, as
        Colmena does when embedding task data in its JSON messages; these are
        real CPU and memory-bandwidth costs proportional to the payload size.
        """
        import base64

        from repro.serialize import to_bytes

        for _ in range(self.extra_hops):
            encoded = base64.b64encode(to_bytes(payload))
            payload = base64.b64decode(encoded)
            payload = serialize(deserialize(payload))
            self.stats.serialization_passes += 1
        return payload

    # -- stream-driven dispatch ------------------------------------------- #
    def run_stream(
        self,
        func: Callable[[Any], Any],
        items: 'Iterable[Any]',
        *,
        output: 'StreamProducer | None' = None,
        max_outstanding: int | None = None,
        close_output: bool = True,
        max_retries: int = 3,
        retry_backoff: float = 0.05,
    ) -> dict[str, int]:
        """Dispatch one task per stream item, optionally publishing results.

        Args:
            func: task body, called as ``func(item)`` on a worker.  Items
                that are proxies stay proxies across the hub — only the
                factory is serialized; the worker resolves the data from
                the store on first touch.
            items: anything iterable — canonically a
                :class:`~repro.stream.StreamConsumer`, so tasks start as
                events arrive rather than after a batch barrier.
            output: optional :class:`~repro.stream.StreamProducer` each
                task's result is published to, in input order (the output
                topic preserves the input topic's ordering).
            max_outstanding: in-flight task bound before the dispatcher
                blocks on the oldest result (default ``2 * n_workers``) —
                the engine-side backpressure that keeps an unbounded
                stream from ballooning the hub queue.
            close_output: publish end-of-stream on ``output`` once the
                input ends (set ``False`` when more runs will append).
            max_retries: resubmissions per task after a
                :class:`~repro.exceptions.NodeUnavailableError` — the
                typed crash signal raised when a task's proxy resolves
                against a dead storage node.  Retries back off via a
                :class:`~repro.faults.retry.RetryPolicy` built from
                ``retry_backoff`` (jittered exponential, capped at 1s),
                giving failover or a restart time to land.  Any other
                exception, or exhausting the budget, propagates — and a
                failed run still publishes no clean end marker.
            retry_backoff: initial retry delay in seconds.

        Returns:
            Counts: ``{'tasks': submitted, 'published': results sent,
            'retries': resubmissions}``.
        """
        if max_outstanding is None:
            max_outstanding = 2 * self.n_workers
        if max_outstanding < 1:
            raise ValueError('max_outstanding must be at least 1')
        if max_retries < 0:
            raise ValueError('max_retries must be non-negative')
        in_flight: deque[tuple[WorkflowFuture, Any, int]] = deque()
        tasks = published = retries = 0
        retry_metrics = getattr(output, 'store', None) or getattr(items, 'store', None)
        retry_metrics = getattr(retry_metrics, 'metrics', None)
        retry_policy = RetryPolicy(
            max_attempts=max_retries + 1,
            base_delay=retry_backoff,
            max_delay=1.0,
        )

        def drain_one() -> None:
            nonlocal published, retries
            future, item, attempts = in_flight.popleft()
            try:
                result = future.result()
            except NodeUnavailableError:
                if attempts >= max_retries:
                    raise
                # Jittered backoff from the shared policy: transient node
                # loss (restart, failover, rebalance) usually resolves
                # within a few beats.
                time.sleep(retry_policy.delay(attempts))
                retries += 1
                self.stats.task_retries += 1
                if retry_metrics is not None:
                    retry_metrics.record('stream.task_retries', 0.0)
                # Resubmit at the head so output order is preserved.
                in_flight.appendleft((self.submit(func, item), item, attempts + 1))
                return
            if output is not None:
                output.send(result)
                published += 1

        completed = False
        try:
            for item in items:
                in_flight.append((self.submit(func, item), item, 0))
                tasks += 1
                while len(in_flight) >= max_outstanding:
                    drain_one()
            while in_flight:
                drain_one()
            completed = True
        finally:
            # A failed run must not publish a clean end-of-stream marker:
            # downstream consumers would mistake the truncated output for a
            # complete stream (mirrors StreamProducer.__exit__).
            if output is not None and close_output:
                output.close(end=completed)
        return {'tasks': tasks, 'published': published, 'retries': retries}

    # -- workers ---------------------------------------------------------------- #
    def _worker_loop(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:
                return
            try:
                args, kwargs = deserialize(task.payload)
                result = task.func(*args, **kwargs)
                # Same snapshot rule: the future's payload may be read after
                # the worker (or caller) mutates arrays the result aliases.
                result_payload = freeze_payload(serialize(result))
                result_payload = self._extra_hop_copies(result_payload)
                self.stats.result_bytes += len(result_payload)
                self.stats.tasks_completed += 1
                task.future._set_result_payload(result_payload)
            except BaseException as e:  # noqa: BLE001 - delivered via the future
                task.future._set_error(e)
