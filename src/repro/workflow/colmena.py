"""Colmena-like steering layer: Thinker, Task Server and result records.

Colmena applications have a Thinker (agents that create tasks and consume
results), a Task Server that forwards tasks to a workflow engine, and workers
that execute them (Section 5.2 of the paper).  ProxyStore integrates at the
library level: a store and size threshold can be registered per task *topic*
(task type); any input or result larger than the threshold is replaced by a
proxy before it is handed to the workflow machinery, relieving the task
server and engine of the data movement burden.
"""
from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from dataclasses import field
from typing import Any
from typing import Callable

from repro.exceptions import LifetimeError
from repro.exceptions import WorkflowError
from repro.proxy import Proxy
from repro.serialize import serialize
from repro.store import Lifetime
from repro.store import ProxyFuture
from repro.store import Store
from repro.workflow.engine import WorkflowEngine

__all__ = ['ColmenaQueues', 'Result', 'TaskServer', 'Thinker']


@dataclass
class Result:
    """Record of one task's journey through the Colmena pipeline."""

    topic: str
    inputs: tuple
    value: Any = None
    success: bool = True
    error: str | None = None
    # Timestamps (wall-clock seconds) for overhead attribution.
    time_created: float = field(default_factory=time.perf_counter)
    time_dispatched: float = 0.0
    time_returned: float = 0.0
    # Sizes observed by the task server (after any proxying).
    input_bytes: int = 0
    result_bytes: int = 0
    proxied_inputs: bool = False
    proxied_result: bool = False

    @property
    def roundtrip_time(self) -> float:
        return self.time_returned - self.time_created


class ColmenaQueues:
    """The pair of queues connecting a Thinker and a Task Server."""

    def __init__(self) -> None:
        self.tasks: queue.Queue = queue.Queue()
        self.results: queue.Queue = queue.Queue()

    def send_task(
        self,
        topic: str,
        *inputs: Any,
        result_future: ProxyFuture | None = None,
    ) -> None:
        """Enqueue a task; ``result_future`` receives the task's value.

        When a :class:`~repro.store.ProxyFuture` is supplied, the task
        server writes the task's result into it as soon as the task
        completes, so downstream consumers holding ``result_future.proxy()``
        pipeline with the Thinker instead of waiting at the results queue.
        """
        self.tasks.put((topic, inputs, result_future))

    def get_result(self, timeout: float | None = 60.0) -> Result:
        try:
            return self.results.get(timeout=timeout)
        except queue.Empty:
            raise WorkflowError('timed out waiting for a Colmena result') from None


@dataclass
class _TopicConfig:
    func: Callable[..., Any]
    store: Store | None = None
    threshold_bytes: int | None = None
    proxy_results: bool = True
    lifetime: Lifetime | None = None


class TaskServer:
    """Receives task requests, optionally proxies large data, and runs tasks.

    Args:
        queues: the Thinker-facing queues.
        engine: the workflow engine executing tasks.
        fixed_overhead_s: per-task scheduling/bookkeeping time in the task
            server (queue handling, result records, policy checks); Colmena
            deployments measure this in the tens of milliseconds.
        lifetime: a per-run :class:`~repro.store.Lifetime` every proxied
            input, result, and result future created by this server is bound
            to.  Closing it after the run batch-evicts every key the run
            produced, so sustained workloads stop leaking backing storage.
            Topics may override it via :meth:`register_topic`.
    """

    def __init__(
        self,
        queues: ColmenaQueues,
        engine: WorkflowEngine,
        *,
        fixed_overhead_s: float = 0.02,
        lifetime: Lifetime | None = None,
    ) -> None:
        if fixed_overhead_s < 0:
            raise ValueError('fixed_overhead_s must be non-negative')
        self.queues = queues
        self.engine = engine
        self.fixed_overhead_s = fixed_overhead_s
        self.lifetime = lifetime
        self._topics: dict[str, _TopicConfig] = {}
        self._thread: threading.Thread | None = None
        self._running = threading.Event()
        self.tasks_processed = 0

    # -- configuration ------------------------------------------------------- #
    def register_topic(
        self,
        topic: str,
        func: Callable[..., Any],
        *,
        store: Store | str | None = None,
        threshold_bytes: int | None = None,
        proxy_results: bool = True,
        lifetime: Lifetime | None = None,
    ) -> None:
        """Register the function for ``topic`` and (optionally) its proxy policy.

        When ``store`` is provided, any input or result whose serialized size
        is at least ``threshold_bytes`` is replaced with a proxy from that
        store before being passed onward — the library-level integration the
        paper describes.  A store URL string (``'redis://host:6379/ns'``)
        is accepted in place of a Store instance and resolved through
        ``Store.from_url``.  ``lifetime`` overrides the server's per-run
        lifetime for this topic's proxied data.
        """
        if threshold_bytes is not None and threshold_bytes < 0:
            raise ValueError('threshold_bytes must be non-negative')
        if isinstance(store, str):
            store = Store.from_url(store)
        self._topics[topic] = _TopicConfig(
            func=func,
            store=store,
            threshold_bytes=threshold_bytes,
            proxy_results=proxy_results,
            lifetime=lifetime,
        )

    def _lifetime_for(self, config: _TopicConfig) -> Lifetime | None:
        lifetime = config.lifetime if config.lifetime is not None else self.lifetime
        if lifetime is not None and lifetime.done():
            return None  # a closed run lifetime must not reject late tasks
        return lifetime

    def result_future(self, topic: str, **future_kwargs: Any) -> ProxyFuture:
        """Create a :class:`~repro.store.ProxyFuture` in ``topic``'s store.

        Pass the returned future to :meth:`ColmenaQueues.send_task` (or
        ``Thinker.submit``) and hand ``future.proxy()`` to downstream
        consumers: they start immediately and block only when they first
        touch the not-yet-computed result — producer/consumer pipelining
        without a barrier at the results queue.
        """
        config = self._topics.get(topic)
        if config is None:
            raise WorkflowError(f'no function registered for topic {topic!r}')
        if config.store is None:
            raise WorkflowError(
                f'topic {topic!r} has no store; result futures need a '
                'mediated channel to flow through',
            )
        injected = False
        lifetime = self._lifetime_for(config)
        if (
            lifetime is not None
            and not future_kwargs.get('evict')
            and 'lifetime' not in future_kwargs
        ):
            future_kwargs['lifetime'] = lifetime
            injected = True
        try:
            return config.store.future(**future_kwargs)
        except LifetimeError:
            if not injected:
                raise  # a caller-supplied closed lifetime is the caller's bug
            # The run lifetime closed between the done() check and the
            # bind; allocate the future unbound rather than failing it.
            future_kwargs.pop('lifetime', None)
            return config.store.future(**future_kwargs)

    def topics(self) -> list[str]:
        return sorted(self._topics)

    # -- lifecycle --------------------------------------------------------------- #
    def start(self) -> None:
        if self._running.is_set():
            return
        self._running.set()
        self._thread = threading.Thread(
            target=self._serve_loop, name='colmena-task-server', daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if not self._running.is_set():
            return
        self._running.clear()
        self.queues.tasks.put(None)
        if self._thread is not None:
            self._thread.join(timeout=2)

    def __enter__(self) -> 'TaskServer':
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    # -- serving ------------------------------------------------------------------ #
    def _maybe_proxy(self, config: _TopicConfig, value: Any) -> tuple[Any, int, bool]:
        """Replace ``value`` with a proxy if the topic's policy says to.

        Returns ``(possibly proxied value, serialized size seen downstream,
        whether it was proxied)``.
        """
        if isinstance(value, Proxy):
            return value, len(serialize(value)), True
        size = len(serialize(value))
        if (
            config.store is not None
            and config.threshold_bytes is not None
            and size >= config.threshold_bytes
        ):
            try:
                proxy = config.store.proxy(
                    value,
                    cache_local=False,
                    lifetime=self._lifetime_for(config),
                )
            except LifetimeError:
                # Lost the race with the run lifetime closing (the store
                # evicted the bound-too-late key): re-store the straggler's
                # data unbound so the task still completes.
                proxy = config.store.proxy(value, cache_local=False)
            return proxy, len(serialize(proxy)), True
        return value, size, False

    def _serve_loop(self) -> None:
        while self._running.is_set():
            try:
                item = self.queues.tasks.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is None:
                break
            topic, inputs, result_future = item
            self._handle(topic, inputs, result_future)

    def _handle(
        self,
        topic: str,
        inputs: tuple,
        result_future: ProxyFuture | None = None,
    ) -> None:
        record = Result(topic=topic, inputs=inputs)
        if self.fixed_overhead_s > 0:
            time.sleep(self.fixed_overhead_s)
        config = self._topics.get(topic)
        if config is None:
            record.success = False
            record.error = f'no function registered for topic {topic!r}'
            record.time_returned = time.perf_counter()
            if result_future is not None:
                result_future.set_exception(WorkflowError(record.error))
            self.queues.results.put(record)
            return
        processed_inputs = []
        total_input_bytes = 0
        any_proxied = False
        try:
            for value in inputs:
                value, size, proxied = self._maybe_proxy(config, value)
                processed_inputs.append(value)
                total_input_bytes += size
                any_proxied = any_proxied or proxied
        except Exception as e:  # noqa: BLE001 - must not kill the serve loop
            record.success = False
            record.error = f'input proxying failed: {type(e).__name__}: {e}'
            record.time_returned = time.perf_counter()
            if result_future is not None and not result_future.done():
                try:
                    result_future.set_exception(e)
                except Exception:  # noqa: BLE001 - channel itself is broken
                    pass
            self.queues.results.put(record)
            return
        record.input_bytes = total_input_bytes
        record.proxied_inputs = any_proxied
        record.time_dispatched = time.perf_counter()
        future = self.engine.submit(config.func, *processed_inputs)
        try:
            value = future.result()
            if result_future is not None:
                # Stream the value into the future *before* queue
                # bookkeeping: consumers holding the future's proxy wake up
                # as early as possible.  The write through the future IS the
                # proxying — the record reuses the future's proxy instead of
                # storing a second copy of the result.
                result_future.set_result(value)
                streamed = result_future.proxy()
                record.value = streamed
                record.result_bytes = len(serialize(streamed))
                record.proxied_result = True
            else:
                value, result_size, result_proxied = (
                    self._maybe_proxy(config, value)
                    if config.proxy_results
                    else (value, len(serialize(value)), False)
                )
                record.value = value
                record.result_bytes = result_size
                record.proxied_result = result_proxied
        except Exception as e:  # noqa: BLE001 - reported in the result record
            record.success = False
            record.error = f'{type(e).__name__}: {e}'
            if result_future is not None and not result_future.done():
                try:
                    result_future.set_exception(e)
                except Exception:  # noqa: BLE001 - channel itself is broken
                    pass
        record.time_returned = time.perf_counter()
        self.tasks_processed += 1
        self.queues.results.put(record)


class Thinker:
    """Minimal Thinker: submits tasks and collects results synchronously."""

    def __init__(self, queues: ColmenaQueues) -> None:
        self.queues = queues
        self.results: list[Result] = []

    def submit(
        self,
        topic: str,
        *inputs: Any,
        result_future: ProxyFuture | None = None,
    ) -> None:
        self.queues.send_task(topic, *inputs, result_future=result_future)

    def wait_for_result(self, timeout: float | None = 60.0) -> Result:
        result = self.queues.get_result(timeout=timeout)
        self.results.append(result)
        return result

    def run_task(self, topic: str, *inputs: Any, timeout: float | None = 60.0) -> Result:
        """Submit one task and block for its result (round-trip helper)."""
        self.submit(topic, *inputs)
        return self.wait_for_result(timeout=timeout)
