"""A small content-addressed, peer-to-peer file store (IPFS stand-in).

The paper compares PS-endpoints against IPFS for inter-site transfers: task
data is written to disk, added to IPFS (producing a content id), the content
id is passed with the task, and the consumer retrieves the file by content id
from whichever peer has it.  This module reproduces that flow: nodes store
blocks on disk keyed by the SHA-256 of their content and fetch missing blocks
from the other nodes of their network (a bitswap-like exchange), caching them
locally afterwards.
"""
from __future__ import annotations

import hashlib
import os
import threading

from repro.exceptions import ConnectorError

__all__ = ['IPFSNetwork', 'IPFSNode']


class IPFSNetwork:
    """The set of peers that can exchange blocks with each other."""

    def __init__(self) -> None:
        self._nodes: list['IPFSNode'] = []
        self._lock = threading.Lock()

    def join(self, node: 'IPFSNode') -> None:
        with self._lock:
            if node not in self._nodes:
                self._nodes.append(node)

    def peers_of(self, node: 'IPFSNode') -> list['IPFSNode']:
        with self._lock:
            return [n for n in self._nodes if n is not node]


class IPFSNode:
    """One peer of the content-addressed file system.

    Args:
        data_dir: directory holding this node's blocks.
        network: the peer network to join.
    """

    def __init__(self, data_dir: str, network: IPFSNetwork) -> None:
        self.data_dir = os.path.abspath(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.network = network
        self.blocks_fetched_from_peers = 0
        network.join(self)

    def _path(self, cid: str) -> str:
        return os.path.join(self.data_dir, cid)

    # -- local block store -------------------------------------------------- #
    def add(self, data: bytes) -> str:
        """Add content and return its content id (the hex SHA-256 digest)."""
        cid = hashlib.sha256(data).hexdigest()
        path = self._path(cid)
        if not os.path.exists(path):
            with open(path, 'wb') as f:
                f.write(data)
        return cid

    def has_local(self, cid: str) -> bool:
        return os.path.isfile(self._path(cid))

    def _read_local(self, cid: str) -> bytes:
        with open(self._path(cid), 'rb') as f:
            return f.read()

    # -- retrieval --------------------------------------------------------------- #
    def get(self, cid: str) -> bytes:
        """Return the content for ``cid``, fetching it from peers if needed.

        Raises:
            ConnectorError: if no peer in the network has the content.
        """
        if self.has_local(cid):
            return self._read_local(cid)
        for peer in self.network.peers_of(self):
            if peer.has_local(cid):
                data = peer._read_local(cid)
                if hashlib.sha256(data).hexdigest() != cid:
                    raise ConnectorError(f'content of block {cid[:12]} failed verification')
                # Fetched blocks are cached locally, as IPFS does.
                with open(self._path(cid), 'wb') as f:
                    f.write(data)
                self.blocks_fetched_from_peers += 1
                return data
        raise ConnectorError(f'content {cid[:12]}... not found on any peer')

    def remove(self, cid: str) -> None:
        try:
            os.unlink(self._path(cid))
        except FileNotFoundError:
            pass

    def __len__(self) -> int:
        return len(os.listdir(self.data_dir))
