"""Baseline systems the paper compares ProxyStore against.

Each baseline is a functional, from-scratch stand-in exercising the same
interaction pattern as the real system (see DESIGN.md for the substitution
table): IPFS (content-addressed peer-to-peer file sharing), DataSpaces (a
tuple-space staging abstraction) and Redis reached through an SSH tunnel.
Their wide-area timing behaviour is modelled by the corresponding cost models
in :mod:`repro.simulation.costs`.
"""
from repro.baselines.ipfs import IPFSNetwork
from repro.baselines.ipfs import IPFSNode
from repro.baselines.dataspaces import DataSpacesClient
from repro.baselines.dataspaces import DataSpacesServer
from repro.baselines.ssh_redis import SSHTunnelRedis

__all__ = [
    'DataSpacesClient',
    'DataSpacesServer',
    'IPFSNetwork',
    'IPFSNode',
    'SSHTunnelRedis',
]
