"""Redis on the target site reached through a (modelled) SSH tunnel.

The paper's Figure 9 baseline hosts a Redis server at the target site and
opens a manually-created SSH tunnel to it from the client site.  Functionally
this is just a key-value client whose connection happens to traverse the
tunnel; the fragility the paper mentions (tunnels must be created and
re-authenticated by hand) is represented by the explicit ``open_tunnel`` step
that must precede any operation.
"""
from __future__ import annotations

from repro.exceptions import ConnectorError
from repro.kvserver.client import KVClient
from repro.kvserver.server import KVServer

__all__ = ['SSHTunnelRedis']


class SSHTunnelRedis:
    """A SimKV (Redis stand-in) client used through an SSH tunnel.

    Args:
        server: the key-value server hosted at the target site.
        local_port_label: purely descriptive label of the local tunnel port,
            to mirror how users configure ``ssh -L`` forwarding.
    """

    def __init__(self, server: KVServer, *, local_port_label: int = 6379) -> None:
        self.server = server
        self.local_port_label = local_port_label
        self._client: KVClient | None = None
        self.tunnel_open = False

    # -- tunnel lifecycle ---------------------------------------------------- #
    def open_tunnel(self) -> None:
        """Manually open the SSH tunnel (must be done before any operation)."""
        if self.server.port is None:
            raise ConnectorError('target Redis server is not running')
        self._client = KVClient(self.server.host, self.server.port)
        self.tunnel_open = True

    def close_tunnel(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None
        self.tunnel_open = False

    def _require_tunnel(self) -> KVClient:
        if not self.tunnel_open or self._client is None:
            raise ConnectorError(
                'SSH tunnel is not open; call open_tunnel() first (tunnels '
                'must be created and maintained manually)',
            )
        return self._client

    # -- operations ----------------------------------------------------------- #
    def set(self, key: str, value: bytes) -> None:
        self._require_tunnel().set(key, value)

    def get(self, key: str) -> bytes | None:
        return self._require_tunnel().get(key)

    def exists(self, key: str) -> bool:
        return self._require_tunnel().exists(key)

    def delete(self, key: str) -> bool:
        return self._require_tunnel().delete(key)
