"""A DataSpaces-like tuple-space staging abstraction.

DataSpaces provides a virtual shared object space for coupled workflows:
producers ``put`` named, versioned regions of data into staging servers and
consumers ``get`` them by name/version, possibly blocking until the data
appears.  The real system is built on RDMA RPC (Margo/Mercury); this
reproduction keeps the interaction pattern — staging servers, versioned named
objects, blocking gets — on an in-process server with locks and conditions.
"""
from __future__ import annotations

import threading
from typing import NamedTuple

from repro.exceptions import ConnectorError

__all__ = ['DataSpacesServer', 'DataSpacesClient', 'DSKey']


class DSKey(NamedTuple):
    """A named, versioned object in the shared space."""

    name: str
    version: int


class DataSpacesServer:
    """A staging server holding the shared object space."""

    def __init__(self) -> None:
        self._data: dict[DSKey, bytes] = {}
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        #: Whether the (simulated) staging servers have been bootstrapped; the
        #: first client interaction pays a startup cost in the cost model.
        self.started = False

    def start(self) -> None:
        self.started = True

    def put(self, name: str, version: int, data: bytes) -> DSKey:
        key = DSKey(name, version)
        with self._condition:
            self._data[key] = bytes(data)
            self._condition.notify_all()
        return key

    def get(self, name: str, version: int, *, timeout: float | None = 0.0) -> bytes | None:
        """Return the object, optionally blocking up to ``timeout`` for it to appear."""
        key = DSKey(name, version)
        with self._condition:
            if timeout and key not in self._data:
                self._condition.wait_for(lambda: key in self._data, timeout=timeout)
            return self._data.get(key)

    def exists(self, name: str, version: int) -> bool:
        with self._lock:
            return DSKey(name, version) in self._data

    def remove(self, name: str, version: int) -> None:
        with self._lock:
            self._data.pop(DSKey(name, version), None)

    def latest_version(self, name: str) -> int | None:
        with self._lock:
            versions = [key.version for key in self._data if key.name == name]
            return max(versions) if versions else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class DataSpacesClient:
    """Client handle bound to one staging server."""

    def __init__(self, server: DataSpacesServer) -> None:
        self.server = server
        if not server.started:
            server.start()

    def put(self, name: str, version: int, data: bytes) -> DSKey:
        return self.server.put(name, version, data)

    def get(self, name: str, version: int, *, timeout: float | None = 5.0) -> bytes:
        data = self.server.get(name, version, timeout=timeout)
        if data is None:
            raise ConnectorError(
                f'DataSpaces object {name!r} version {version} not available',
            )
        return data

    def exists(self, name: str, version: int) -> bool:
        return self.server.exists(name, version)
