"""Per-operation metrics recorded by a Store.

When a Store is created with ``metrics=True`` every put/get/proxy/evict and
(de)serialization records its wall-clock duration and payload size.  The
component-level benchmarks use these to report the same quantities the paper
does (operation latency versus payload size) and the applications use them to
attribute time to communication versus compute.
"""
from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from dataclasses import field
from typing import Iterator

__all__ = ['OperationStats', 'StoreMetrics', 'Timer']


class Timer:
    """Context manager measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> 'Timer':
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.elapsed = time.perf_counter() - self.start


@dataclass
class OperationStats:
    """Aggregated statistics for one operation type (e.g. ``'put'``)."""

    count: int = 0
    total_time: float = 0.0
    min_time: float = float('inf')
    max_time: float = 0.0
    total_bytes: int = 0
    _times: list[float] = field(default_factory=list, repr=False)

    def record(self, elapsed: float, nbytes: int = 0) -> None:
        """Fold one call taking ``elapsed`` seconds into the aggregates."""
        self.count += 1
        self.total_time += elapsed
        self.min_time = min(self.min_time, elapsed)
        self.max_time = max(self.max_time, elapsed)
        self.total_bytes += nbytes
        self._times.append(elapsed)

    @property
    def avg_time(self) -> float:
        """Mean per-call duration in seconds (0.0 when never recorded)."""
        return self.total_time / self.count if self.count else 0.0

    @property
    def times(self) -> list[float]:
        """Raw per-call durations (seconds), in call order."""
        return list(self._times)


class StoreMetrics:
    """Thread-safe container of :class:`OperationStats` keyed by operation name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ops: dict[str, OperationStats] = {}

    def record(self, operation: str, elapsed: float, nbytes: int = 0) -> None:
        """Record one call of ``operation`` taking ``elapsed`` seconds."""
        with self._lock:
            stats = self._ops.setdefault(operation, OperationStats())
            stats.record(elapsed, nbytes)

    def get(self, operation: str) -> OperationStats | None:
        """Return the stats for ``operation`` or ``None`` if never recorded."""
        with self._lock:
            return self._ops.get(operation)

    def operations(self) -> list[str]:
        """Return the names of every operation recorded so far, sorted."""
        with self._lock:
            return sorted(self._ops)

    def __iter__(self) -> Iterator[tuple[str, OperationStats]]:
        with self._lock:
            return iter(list(self._ops.items()))

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Return a JSON-friendly summary used by the benchmark harness."""
        with self._lock:
            return {
                op: {
                    'count': s.count,
                    'total_time': s.total_time,
                    'avg_time': s.avg_time,
                    'min_time': s.min_time if s.count else 0.0,
                    'max_time': s.max_time,
                    'total_bytes': s.total_bytes,
                }
                for op, s in self._ops.items()
            }
