"""Opt-in write coalescing: batch many tiny puts into one wire operation.

Small-object traffic pays one connector round trip per ``Store.put`` even
though the payloads are tiny; a :class:`WriteCoalescer` buffers sub-batch
writes and flushes them with a single MSET-style ``set_batch`` call.  Keys
are still handed out immediately (via the connector's deferred-write
``new_key``), so callers keep the exact ``put -> key`` contract; only the
wire write is deferred, and it is bounded by three flush triggers:

* **size** — the buffer reaches ``max_bytes`` of pending payload,
* **count** — the buffer reaches ``max_ops`` pending writes,
* **deadline** — the *oldest* buffered write has waited ``deadline`` seconds
  (a background timer thread guarantees this bound even with no further
  traffic; the thread is joined on :meth:`close`).

Ordering is preserved per key: the buffer holds at most one pending value
per key (a re-put replaces it), so the flushed batch always writes each
key's latest value, and readers that consult :meth:`peek` before the
connector observe the same last-write-wins order.

The coalescer only applies to connectors that support deferred writes
(``new_key``/``set``); ``Store`` rejects the combination otherwise.
"""
from __future__ import annotations

import threading
import time
from typing import Any
from typing import Callable

from repro.connectors.protocol import Connector
from repro.serialize.buffers import freeze_payload
from repro.serialize.buffers import payload_nbytes

__all__ = ['WriteCoalescer']

DEFAULT_MAX_BYTES = 1024 * 1024
DEFAULT_MAX_OPS = 64
DEFAULT_DEADLINE_S = 0.01


class WriteCoalescer:
    """Buffers ``(key, payload)`` writes and flushes them in batches.

    Args:
        connector: the channel flushed into (must support deferred writes).
        max_bytes: flush when pending payload bytes reach this bound.
        max_ops: flush when this many writes are pending.
        deadline: seconds the oldest pending write may wait before a
            background flush (the visibility bound for remote readers).
        record: optional metrics hook with the ``Store._record`` signature;
            receives ``store.coalesced_puts`` per buffered write and
            ``store.coalesce_flushes`` per flushed batch.
    """

    def __init__(
        self,
        connector: Connector,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_ops: int = DEFAULT_MAX_OPS,
        deadline: float = DEFAULT_DEADLINE_S,
        record: 'Callable[[str, float, int], None] | None' = None,
    ) -> None:
        if max_bytes <= 0 or max_ops <= 0:
            raise ValueError('coalescing bounds must be positive')
        if deadline <= 0:
            raise ValueError('coalescing deadline must be positive')
        self._connector = connector
        self._max_bytes = max_bytes
        self._max_ops = max_ops
        self._deadline = deadline
        self._record = record
        # _cond guards every field below; connector calls happen outside it.
        self._cond = threading.Condition()
        self._pending: dict[Any, Any] = {}
        self._pending_bytes = 0
        self._oldest: float | None = None
        self._in_flight: dict[Any, Any] = {}
        self._thread: threading.Thread | None = None
        self._stopped = False
        self._flush_error: BaseException | None = None

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def put(self, data: Any) -> Any:
        """Buffer one write; returns its (immediately valid) key.

        The payload is frozen on entry so later caller-side mutations of a
        ``bytearray``/``memoryview`` segment cannot change what gets
        flushed — the same contract an immediate connector write gives.
        """
        self._raise_pending_error()
        key = self._connector.new_key()
        data = freeze_payload(data)
        nbytes = payload_nbytes(data)
        batch = None
        with self._cond:
            previous = self._pending.get(key)
            if previous is not None:
                self._pending_bytes -= payload_nbytes(previous)
            self._pending[key] = data
            self._pending_bytes += nbytes
            if self._oldest is None:
                self._oldest = time.monotonic()
            if self._thread is None and not self._stopped:
                self._thread = threading.Thread(
                    target=self._deadline_loop,
                    name='store-coalescer',
                    daemon=True,
                )
                self._thread.start()
            self._cond.notify_all()
            if (
                self._pending_bytes >= self._max_bytes
                or len(self._pending) >= self._max_ops
            ):
                batch = self._drain_locked()
        if self._record is not None:
            self._record('store.coalesced_puts', 0.0, nbytes)
        if batch:
            self._write(batch)
        return key

    def _drain_locked(self) -> list[tuple[Any, Any]]:
        """Move the pending buffer to in-flight; caller writes it unlocked."""
        batch = list(self._pending.items())
        self._in_flight.update(self._pending)
        self._pending.clear()
        self._pending_bytes = 0
        self._oldest = None
        return batch

    def _write(self, batch: list[tuple[Any, Any]]) -> None:
        total = sum(payload_nbytes(d) for _, d in batch)
        start = time.perf_counter()
        try:
            self._connector.set_batch(batch)
        finally:
            with self._cond:
                for key, _ in batch:
                    self._in_flight.pop(key, None)
        if self._record is not None:
            self._record(
                'store.coalesce_flushes', time.perf_counter() - start, total,
            )

    def _raise_pending_error(self) -> None:
        """Surface a background-flush failure on the next foreground call."""
        with self._cond:
            error, self._flush_error = self._flush_error, None
        if error is not None:
            raise error

    def flush(self) -> None:
        """Write out everything currently buffered."""
        self._raise_pending_error()
        with self._cond:
            batch = self._drain_locked()
        if batch:
            self._write(batch)

    # ------------------------------------------------------------------ #
    # Read-side visibility
    # ------------------------------------------------------------------ #
    def peek(self, key: Any) -> Any | None:
        """Return the pending (or in-flight) payload for ``key``, if any.

        Local readers see buffered writes immediately through this; remote
        readers are covered by the deadline bound instead.
        """
        with self._cond:
            data = self._pending.get(key)
            if data is None:
                data = self._in_flight.get(key)
            return data

    def discard(self, key: Any) -> None:
        """Drop a pending write (an evict of a key that never hit the wire)."""
        with self._cond:
            data = self._pending.pop(key, None)
            if data is not None:
                self._pending_bytes -= payload_nbytes(data)
                if not self._pending:
                    self._oldest = None

    @property
    def pending_ops(self) -> int:
        """Number of writes currently buffered (excluding in-flight)."""
        with self._cond:
            return len(self._pending)

    # ------------------------------------------------------------------ #
    # Deadline thread / lifecycle
    # ------------------------------------------------------------------ #
    def _deadline_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopped and self._oldest is None:
                    self._cond.wait()
                if self._stopped:
                    return
                assert self._oldest is not None
                remaining = self._oldest + self._deadline - time.monotonic()
                if remaining > 0:
                    self._cond.wait(timeout=remaining)
                    continue
                batch = self._drain_locked()
            if batch:
                try:
                    self._write(batch)
                except Exception as e:  # noqa: BLE001
                    # The deadline thread must survive a flaky connector;
                    # the failure is re-raised on the next foreground
                    # operation instead of silently vanishing with the
                    # thread.
                    with self._cond:
                        self._flush_error = e.with_traceback(None)

    def close(self) -> None:
        """Stop the deadline thread (joined) and flush remaining writes."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join()
        self.flush()
        self._raise_pending_error()
