"""Factories that resolve proxy targets from a Store.

A :class:`StoreFactory` is what ``Store.proxy()`` embeds inside the proxies
it creates.  It is fully self-contained: it carries the connector key, the
:class:`~repro.store.config.StoreConfig` needed to re-create the Store on any
process, and the evict flag.  Resolution goes through the (possibly freshly
registered) Store so that deserialization caching and metrics apply.
"""
from __future__ import annotations

from typing import Any
from typing import TypeVar

from repro.exceptions import StoreKeyError
from repro.proxy.factory import Factory
from repro.store.config import StoreConfig
from repro.store.registry import get_or_create_store

T = TypeVar('T')

__all__ = ['StoreFactory']

_MISSING = object()


class StoreFactory(Factory[T]):
    """Factory resolving an object from a Store by key.

    Args:
        key: connector key under which the serialized object is stored.
        store_config: configuration from which the Store can be re-created.
        evict: if true, the object is evicted from the store when the factory
            first resolves it (for ephemeral intermediate values).
        deserializer_name: reserved hook for custom deserializers registered
            through :mod:`repro.serialize.registry`; ``None`` uses the default.
        connector_kwargs: the connector ``put`` keyword arguments the object
            was originally stored with (e.g. MultiConnector routing
            constraints such as ``subset_tags``).  Carried so any layer that
            re-stores the object (after an evict-on-resolve, or when
            migrating it) can preserve the producer's placement constraints.
        owned: the key's lifetime is managed by exactly one
            :class:`~repro.proxy.owned.OwnedProxy` (which evicts it when the
            owner is dropped).  Mutually exclusive with ``evict`` — an owned
            key must survive resolution so it can be borrowed repeatedly.
    """

    def __init__(
        self,
        key: Any,
        store_config: StoreConfig,
        *,
        evict: bool = False,
        deserializer_name: str | None = None,
        connector_kwargs: dict[str, Any] | None = None,
        owned: bool = False,
    ) -> None:
        super().__init__()
        if owned and evict:
            raise ValueError(
                'a StoreFactory cannot be both owned and evict-on-resolve; '
                'ownership manages the key lifetime itself',
            )
        self.key = key
        self.store_config = store_config
        self.evict = evict
        self.deserializer_name = deserializer_name
        self.connector_kwargs = dict(connector_kwargs) if connector_kwargs else {}
        self.owned = owned

    def __repr__(self) -> str:
        return (
            f'StoreFactory(key={self.key!r}, store={self.store_config.name!r}, '
            f'evict={self.evict})'
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StoreFactory)
            and self.key == other.key
            and self.store_config.name == other.store_config.name
            and self.evict == other.evict
        )

    def __hash__(self) -> int:
        return hash((self.key, self.store_config.name, self.evict))

    def get_store(self):
        """Return (creating and registering if needed) the Store for this factory."""
        return get_or_create_store(self.store_config)

    def resolve(self) -> T:
        """Fetch and deserialize the object from the store (evicting if asked).

        Raises:
            StoreKeyError: if the key no longer exists in the store.
        """
        store = self.get_store()
        obj = store.get(self.key, default=_MISSING)
        if obj is _MISSING:
            raise StoreKeyError(
                f'Object with key {self.key!r} does not exist in store '
                f'{self.store_config.name!r} (it may have been evicted).',
            )
        if self.evict:
            store.evict(self.key)
        return obj  # type: ignore[return-value]

    def resolve_async(self) -> None:
        """Prefetch the object into the store's cache in a background thread.

        The actual object handed to the caller still goes through
        :meth:`resolve` (on the proxy's first use), which will then hit the
        cache, so evict semantics are preserved.
        """
        store = self.get_store()
        if store.is_cached(self.key):
            return
        super().resolve_async()
