"""Serializable description of a Store.

A :class:`StoreConfig` contains everything needed to re-create a Store in a
different process: the store's name, the connector's URI scheme (and, as a
legacy fallback, its import path) plus its ``config()`` dictionary, and the
store options (cache size, metrics).  It is what a
:class:`~repro.store.factory.StoreFactory` carries inside a proxy so that
consumers can transparently reconstruct the producer's Store
(Section 3.5 of the paper).

Connector resolution is **registry-first**: when ``scheme`` is set and names
a registered connector (see :mod:`repro.connectors.registry`), the connector
class comes from the registry; otherwise the legacy ``module:ClassName``
import path in ``connector`` is used.  The fallback keeps configs (and
pickled proxy factories) produced before the scheme registry existed — or by
third-party connectors that never registered a scheme — working unchanged.
"""
from __future__ import annotations

from dataclasses import asdict
from dataclasses import dataclass
from dataclasses import field
from typing import Any

from repro.connectors.protocol import Connector
from repro.connectors.protocol import connector_from_path
from repro.connectors.protocol import connector_path
from repro.connectors.registry import get_connector_class
from repro.exceptions import StoreError
from repro.exceptions import UnknownConnectorSchemeError

__all__ = ['StoreConfig']


def _scheme_of(connector: Any) -> str | None:
    """Return the connector's *own* scheme, never one inherited from a base.

    A subclass of a registered connector that does not declare its own
    ``scheme`` is deliberately not in the registry (see
    ``Connector.__init_subclass__``); recording the inherited scheme here
    would make registry-first resolution silently rebuild the *base* class.
    Instance attributes are honoured first so wrappers (CostedConnector)
    can expose their inner connector's scheme.
    """
    try:
        instance_attrs = vars(connector)
    except TypeError:  # pragma: no cover - __slots__ connectors
        instance_attrs = {}
    if 'scheme' in instance_attrs:
        return instance_attrs['scheme']
    return type(connector).__dict__.get('scheme')


@dataclass
class StoreConfig:
    """Picklable configuration from which a Store can be rebuilt.

    Attributes:
        name: globally-unique store name used for process-local registration.
        connector: import path of the connector class (``module:ClassName``);
            the legacy fallback used when ``scheme`` is unset or unknown.
        connector_config: the connector's ``config()`` dictionary.
        cache_size: number of deserialized objects the store caches.
        cache_max_bytes: optional resident-byte bound on that cache.
        metrics: whether operation metrics are recorded.
        scheme: URI scheme of the connector; resolved through the connector
            registry first, ahead of the import path.
        custom_serializer: the originating store used a caller-supplied
            serializer, which cannot travel inside a config.
        custom_deserializer: ditto for the deserializer.
        coalesce_writes: whether the store batches tiny puts into one
            MSET-style wire operation (see ``repro.store.coalesce``).
        coalesce_max_bytes: pending-payload-bytes flush bound.
        coalesce_max_ops: pending-write-count flush bound.
        coalesce_deadline: seconds the oldest buffered write may wait.
    """

    name: str
    connector: str | None = None
    connector_config: dict[str, Any] = field(default_factory=dict)
    cache_size: int = 16
    cache_max_bytes: int | None = None
    metrics: bool = False
    scheme: str | None = None
    custom_serializer: bool = False
    custom_deserializer: bool = False
    coalesce_writes: bool = False
    coalesce_max_bytes: int | None = None
    coalesce_max_ops: int | None = None
    coalesce_deadline: float | None = None

    @classmethod
    def from_store(cls, store: Any) -> 'StoreConfig':
        """Build a config describing an existing Store instance."""
        return cls(
            name=store.name,
            connector=connector_path(store.connector),
            connector_config=store.connector.config(),
            cache_size=store.cache.maxsize,
            cache_max_bytes=store.cache.max_bytes,
            metrics=store.metrics is not None,
            scheme=_scheme_of(store.connector),
            custom_serializer=getattr(store, '_custom_serializer', False),
            custom_deserializer=getattr(store, '_custom_deserializer', False),
            coalesce_writes=getattr(store, 'coalesce_writes', False),
            coalesce_max_bytes=getattr(store, 'coalesce_max_bytes', None),
            coalesce_max_ops=getattr(store, 'coalesce_max_ops', None),
            coalesce_deadline=getattr(store, 'coalesce_deadline', None),
        )

    def make_connector(self) -> Connector:
        """Instantiate the connector described by this config.

        Resolution is registry-first (by ``scheme``) with the legacy import
        path as fallback, so configs pickled before a connector registered a
        scheme — or configs from third-party connectors without one — keep
        working.
        """
        config = dict(self.connector_config)
        if self.scheme is not None:
            try:
                connector_cls = get_connector_class(self.scheme)
            except UnknownConnectorSchemeError:
                pass
            else:
                return connector_cls.from_config(config)
        if self.connector is None:
            raise StoreError(
                f'StoreConfig for {self.name!r} has neither a resolvable '
                'scheme nor a connector import path',
            )
        return connector_from_path(self.connector, config)

    def to_dict(self) -> dict[str, Any]:
        """Return a plain-dict representation (JSON-friendly apart from values)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> 'StoreConfig':
        """Inverse of :meth:`to_dict`."""
        return cls(**data)
