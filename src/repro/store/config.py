"""Serializable description of a Store.

A :class:`StoreConfig` contains everything needed to re-create a Store in a
different process: the store's name, the connector's import path and its
``config()`` dictionary, and the store options (cache size, metrics).  It is
what a :class:`~repro.store.factory.StoreFactory` carries inside a proxy so
that consumers can transparently reconstruct the producer's Store
(Section 3.5 of the paper).
"""
from __future__ import annotations

from dataclasses import asdict
from dataclasses import dataclass
from dataclasses import field
from typing import Any

from repro.connectors.protocol import Connector
from repro.connectors.protocol import connector_from_path
from repro.connectors.protocol import connector_path

__all__ = ['StoreConfig']


@dataclass
class StoreConfig:
    """Picklable configuration from which a Store can be rebuilt.

    Attributes:
        name: globally-unique store name used for process-local registration.
        connector: import path of the connector class (``module:ClassName``).
        connector_config: the connector's ``config()`` dictionary.
        cache_size: number of deserialized objects the store caches.
        metrics: whether operation metrics are recorded.
    """

    name: str
    connector: str
    connector_config: dict[str, Any] = field(default_factory=dict)
    cache_size: int = 16
    metrics: bool = False

    @classmethod
    def from_store(cls, store: Any) -> 'StoreConfig':
        """Build a config describing an existing Store instance."""
        return cls(
            name=store.name,
            connector=connector_path(store.connector),
            connector_config=store.connector.config(),
            cache_size=store.cache.maxsize,
            metrics=store.metrics is not None,
        )

    def make_connector(self) -> Connector:
        """Instantiate the connector described by this config."""
        return connector_from_path(self.connector, dict(self.connector_config))

    def to_dict(self) -> dict[str, Any]:
        """Return a plain-dict representation (JSON-friendly apart from values)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> 'StoreConfig':
        """Inverse of :meth:`to_dict`."""
        return cls(**data)
