"""High-level Store API (the primary entry point of the library).

Typical usage::

    from repro.connectors.file import FileConnector
    from repro.store import Store

    store = Store('my-store', FileConnector('/tmp/proxystore-data'))
    p = store.proxy(my_object)
    some_function(p)   # my_object is resolved from the store on first use
"""
from repro.exceptions import StoreError
from repro.exceptions import StoreExistsError
from repro.exceptions import StoreKeyError
from repro.store.config import StoreConfig
from repro.store.factory import StoreFactory
from repro.store.metrics import OperationStats
from repro.store.metrics import StoreMetrics
from repro.store.registry import get_or_create_store
from repro.store.registry import get_store
from repro.store.registry import list_stores
from repro.store.registry import register_store
from repro.store.registry import unregister_all
from repro.store.registry import unregister_store
from repro.store.store import Store

__all__ = [
    'OperationStats',
    'Store',
    'StoreConfig',
    'StoreError',
    'StoreExistsError',
    'StoreFactory',
    'StoreKeyError',
    'StoreMetrics',
    'get_or_create_store',
    'get_store',
    'list_stores',
    'register_store',
    'unregister_all',
    'unregister_store',
]
