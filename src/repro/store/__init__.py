"""High-level Store API (the primary entry point of the library).

Typical usage (v2 URL construction)::

    from repro.store import Store

    store = Store.from_url('file:///tmp/proxystore-data?name=my-store')
    p = store.proxy(my_object)
    some_function(p)   # my_object is resolved from the store on first use

    future = store.future()      # a value that does not exist yet
    consumer(future.proxy())     # blocks on first use until...
    future.set_result(obj)       # ...the producer writes it

Direct dependency-injection construction (``Store('my-store', connector)``)
remains available for connectors that are not URL-expressible.
"""
from repro.exceptions import LifetimeError
from repro.exceptions import ProxyFutureError
from repro.exceptions import ProxyFutureTimeoutError
from repro.exceptions import StoreError
from repro.exceptions import StoreExistsError
from repro.exceptions import StoreKeyError
from repro.store.config import StoreConfig
from repro.store.factory import StoreFactory
from repro.store.future import FutureFactory
from repro.store.future import ProxyFuture
from repro.store.lifetimes import ContextLifetime
from repro.store.lifetimes import LeaseLifetime
from repro.store.lifetimes import Lifetime
from repro.store.lifetimes import StaticLifetime
from repro.store.metrics import OperationStats
from repro.store.metrics import StoreMetrics
from repro.store.registry import get_or_create_store
from repro.store.registry import get_store
from repro.store.registry import list_stores
from repro.store.registry import register_store
from repro.store.registry import unregister_all
from repro.store.registry import unregister_store
from repro.store.store import Store

__all__ = [
    'ContextLifetime',
    'FutureFactory',
    'LeaseLifetime',
    'Lifetime',
    'LifetimeError',
    'OperationStats',
    'ProxyFuture',
    'ProxyFutureError',
    'ProxyFutureTimeoutError',
    'StaticLifetime',
    'Store',
    'StoreConfig',
    'StoreError',
    'StoreExistsError',
    'StoreFactory',
    'StoreKeyError',
    'StoreMetrics',
    'get_or_create_store',
    'get_store',
    'list_stores',
    'register_store',
    'unregister_all',
    'unregister_store',
]
