"""Future-valued proxies: hand out a proxy *before* the object exists.

``Store.future()`` pre-allocates a connector key (a *deferred write*, see
``Connector.new_key``/``Connector.set``) and returns a :class:`ProxyFuture`.
The producer later fills the key with :meth:`ProxyFuture.set_result`; any
consumer holding the future's :meth:`~ProxyFuture.proxy` blocks — a bounded
poll of the mediated channel — only when (and if) it first touches the
proxy.  This decouples producers from consumers in time as well as in space:
a workflow can wire task N+1's input to task N's not-yet-produced output and
start both immediately, with no barrier synchronization in between
(producer/consumer pipelining).
"""
from __future__ import annotations

import time
from typing import Any
from typing import Callable
from typing import Generic
from typing import TYPE_CHECKING
from typing import TypeVar

from repro.exceptions import ProxyFutureError
from repro.exceptions import ProxyFutureTimeoutError
from repro.proxy.proxy import Proxy
from repro.serialize.buffers import payload_nbytes
from repro.store.factory import StoreFactory
from repro.store.metrics import Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.store.store import Store

T = TypeVar('T')

__all__ = ['FutureFactory', 'ProxyFuture']

_MISSING = object()


class _ProducerFailure:
    """Picklable record of a producer-side error, written in place of a result."""

    def __init__(self, message: str) -> None:
        self.message = message

    def __repr__(self) -> str:
        return f'_ProducerFailure({self.message!r})'


class FutureFactory(StoreFactory[T]):
    """Factory that waits (bounded poll) for a deferred key to be written.

    Args:
        key: pre-allocated connector key the producer will fill.
        store_config: configuration from which the Store can be re-created.
        evict: evict the object once resolved (read-exactly-once values).
        polling_interval: seconds between existence checks while waiting.
        timeout: seconds to wait for the producer before giving up
            (``None`` waits forever).
    """

    def __init__(
        self,
        key: Any,
        store_config: Any,
        *,
        evict: bool = False,
        polling_interval: float = 0.05,
        timeout: float | None = 60.0,
    ) -> None:
        super().__init__(key, store_config, evict=evict)
        self.polling_interval = polling_interval
        self.timeout = timeout

    def __repr__(self) -> str:
        return (
            f'FutureFactory(key={self.key!r}, store={self.store_config.name!r}, '
            f'timeout={self.timeout})'
        )

    def _wait_for_producer(self) -> None:
        store = self.get_store()
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        while not store.exists(self.key):
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ProxyFutureTimeoutError(
                        f'no producer wrote key {self.key!r} to store '
                        f'{self.store_config.name!r} within {self.timeout}s',
                    )
                time.sleep(min(self.polling_interval, remaining))
            else:
                time.sleep(self.polling_interval)

    def resolve(self) -> T:
        """Block (bounded poll) until the producer writes, then resolve."""
        self._wait_for_producer()
        obj = super().resolve()
        if isinstance(obj, _ProducerFailure):
            raise ProxyFutureError(f'the producer of this proxy failed: {obj.message}')
        return obj


class ProxyFuture(Generic[T]):
    """Producer-side handle for a value that does not exist yet.

    Created by ``Store.future()``.  The producer calls :meth:`set_result`
    (or :meth:`set_exception`) exactly once; consumers obtained a lazy
    :meth:`proxy` — possibly long before — which resolves as soon as the
    write lands.  The future itself is process-local (it holds the store);
    only its proxies are meant to travel.
    """

    def __init__(
        self,
        store: 'Store',
        key: Any,
        *,
        evict: bool = False,
        polling_interval: float = 0.05,
        timeout: float | None = 60.0,
        serializer: Callable[[Any], bytes] | None = None,
        lifetime: Any = None,
    ) -> None:
        self._store = store
        self.key = key
        self.evict = evict
        self.polling_interval = polling_interval
        self.timeout = timeout
        self._serializer = serializer
        self._lifetime = lifetime
        self._done = False

    def __repr__(self) -> str:
        return (
            f'ProxyFuture(key={self.key!r}, store={self._store.name!r}, '
            f'done={self.done()})'
        )

    # -- producer side ----------------------------------------------------- #
    def set_result(self, obj: T) -> None:
        """Serialize ``obj`` and write it under the pre-allocated key."""
        self._write(obj)

    def set_exception(self, error: BaseException) -> None:
        """Record a producer failure; consumers raise ``ProxyFutureError``.

        The error is communicated through the same mediated channel as a
        result would be, so remote consumers see it too.
        """
        self._write(
            _ProducerFailure(f'{type(error).__name__}: {error}'),
            use_custom_serializer=False,
        )

    def _write(self, obj: Any, *, use_custom_serializer: bool = True) -> None:
        if self._done:
            raise ProxyFutureError(
                f'result for key {self.key!r} has already been set',
            )
        # Failure tombstones are exempt from the closed-lifetime guard: a
        # consumer blocked on the future must learn the producer failed
        # rather than poll the evicted key until timeout, and the orphaned
        # tombstone is ~100 bytes versus a lost error cause.
        is_failure = isinstance(obj, _ProducerFailure)
        if (
            not is_failure
            and self._lifetime is not None
            and self._lifetime.done()
        ):
            raise ProxyFutureError(
                f'the lifetime key {self.key!r} was bound to has closed; '
                'the late result was discarded',
            )
        serializer = (
            self._serializer
            if use_custom_serializer and self._serializer is not None
            else self._store.serializer
        )
        with Timer() as t_ser:
            data = serializer(obj)
        nbytes = payload_nbytes(data)
        self._store._record('serialize', t_ser.elapsed, nbytes)
        with Timer() as t_set:
            self._store.connector.set(self.key, self._store._outbound(data))
        self._store._record('set', t_set.elapsed, nbytes)
        if not self.evict and not is_failure:
            self._store.cache.set(self.key, obj)
        self._done = True
        if (
            not is_failure
            and self._lifetime is not None
            and self._lifetime.done()
        ):
            # Lost the race with the lifetime closing mid-write: its batch
            # eviction saw an empty key, so the write above resurrected it
            # with no owner.  Evict it ourselves and report the loss.
            self._store.evict(self.key)
            raise ProxyFutureError(
                f'the lifetime key {self.key!r} was bound to closed during '
                'the write; the late result was evicted',
            )

    # -- consumer side ------------------------------------------------------ #
    def done(self) -> bool:
        """Return whether the result has been produced (here or elsewhere)."""
        return self._done or self._store.exists(self.key)

    def proxy(self) -> Proxy[T]:
        """Return a lazy proxy of the future's (eventual) value.

        The proxy is picklable and resolvable anywhere the store's connector
        is reachable, exactly like proxies of existing objects — it merely
        also waits for the producer on first use.
        """
        factory: FutureFactory[T] = FutureFactory(
            self.key,
            self._store.config(),
            evict=self.evict,
            polling_interval=self.polling_interval,
            timeout=self.timeout,
        )
        return Proxy(factory)

    def result(self, timeout: float | None = None) -> T:
        """Block until the value is produced and return it (never evicts)."""
        effective = timeout if timeout is not None else self.timeout
        deadline = time.monotonic() + effective if effective is not None else None
        while not self._store.exists(self.key):
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ProxyFutureTimeoutError(
                        f'no producer wrote key {self.key!r} within {effective}s',
                    )
                time.sleep(min(self.polling_interval, remaining))
            else:
                time.sleep(self.polling_interval)
        obj = self._store.get(self.key, default=_MISSING)
        if obj is _MISSING:
            raise ProxyFutureError(
                f'key {self.key!r} disappeared before the result could be read '
                '(evicted by a consumer?)',
            )
        if isinstance(obj, _ProducerFailure):
            raise ProxyFutureError(f'the producer of this future failed: {obj.message}')
        return obj
