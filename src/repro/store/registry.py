"""Process-global registry of Store instances.

Stores are registered by name so that initialization is performed only once
per process, caches are shared, and stateful connector connections are
reused (Section 3.5).  When a proxy created elsewhere is resolved in a
process where no store of that name exists yet, the proxy's factory calls
:func:`get_or_create_store` with the embedded :class:`StoreConfig`, creating
and registering an equivalent Store.
"""
from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.exceptions import StoreExistsError
from repro.store.config import StoreConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.store.store import Store

__all__ = [
    'get_or_create_store',
    'get_store',
    'list_stores',
    'register_store',
    'unregister_all',
    'unregister_store',
]

_REGISTRY: dict[str, 'Store'] = {}
_LOCK = threading.RLock()


def register_store(store: 'Store', exist_ok: bool = False) -> None:
    """Register ``store`` under ``store.name``.

    Raises:
        StoreExistsError: if a different store of the same name exists and
            ``exist_ok`` is false.
    """
    with _LOCK:
        existing = _REGISTRY.get(store.name)
        if existing is not None and existing is not store and not exist_ok:
            raise StoreExistsError(
                f'A store named {store.name!r} is already registered. Pass '
                'exist_ok=True to replace it.',
            )
        _REGISTRY[store.name] = store


def get_store(name: str) -> 'Store | None':
    """Return the registered store named ``name`` or ``None``."""
    with _LOCK:
        return _REGISTRY.get(name)


def unregister_store(name: str) -> 'Store | None':
    """Remove and return the registered store named ``name`` (or ``None``)."""
    with _LOCK:
        return _REGISTRY.pop(name, None)


def unregister_all() -> None:
    """Clear the registry (primarily for test isolation)."""
    with _LOCK:
        _REGISTRY.clear()


def list_stores() -> list[str]:
    """Return the names of all registered stores."""
    with _LOCK:
        return sorted(_REGISTRY)


def get_or_create_store(config: StoreConfig, register: bool = True) -> 'Store':
    """Return the store named in ``config``, creating and registering it if needed.

    This is the mechanism by which proxies resolve on remote processes: the
    first proxy of a given store to arrive pays the (small) cost of creating
    the connector and store; subsequent proxies reuse them.
    """
    from repro.store.store import Store  # local import to avoid a cycle

    with _LOCK:
        store = _REGISTRY.get(config.name)
        if store is not None:
            return store
        store = Store(
            config.name,
            config.make_connector(),
            cache_size=config.cache_size,
            metrics=config.metrics,
            register=False,
        )
        if register:
            _REGISTRY[config.name] = store
        return store
