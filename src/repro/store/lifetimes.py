"""Store-managed object lifetimes.

A :class:`Lifetime` groups store keys whose lifetime is tied to some scope —
a ``with`` block, a lease that must be renewed, or the process itself — and
batch-evicts all of them when the scope ends.  Pass a lifetime to
``Store.proxy(..., lifetime=...)`` (and friends) instead of choosing between
leaking keys forever and destroying them on first resolve (``evict=True``).

Three implementations cover the common scopes:

* :class:`ContextLifetime` — explicit ``close()`` or context-manager exit.
* :class:`LeaseLifetime` — a TTL; the lease auto-closes at expiry unless
  :meth:`~LeaseLifetime.extend`-ed, mirroring distributed lease semantics.
* :class:`StaticLifetime` — a process-wide singleton closed via ``atexit``.

Keys are grouped per store so each close issues one ``evict_batch`` per
backing connector rather than one round trip per key.
"""
from __future__ import annotations

import atexit
import threading
import time
from typing import Any
from typing import Protocol
from typing import TYPE_CHECKING
from typing import runtime_checkable

from repro.exceptions import LifetimeError

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.proxy.proxy import Proxy
    from repro.store.store import Store

__all__ = [
    'ContextLifetime',
    'LeaseLifetime',
    'Lifetime',
    'StaticLifetime',
]


@runtime_checkable
class Lifetime(Protocol):
    """Protocol every lifetime implementation satisfies."""

    def add_key(self, *keys: Any, store: 'Store') -> None:
        """Bind ``keys`` (stored in ``store``) to this lifetime."""
        ...

    def add_proxy(self, *proxies: 'Proxy[Any]') -> None:
        """Bind the keys behind store-backed ``proxies`` to this lifetime."""
        ...

    def done(self) -> bool:
        """Return whether this lifetime has ended."""
        ...

    def close(self) -> None:
        """End the lifetime, evicting every bound key."""
        ...


class _LifetimeBase:
    """Shared bookkeeping: per-store key sets, thread safety, batch evict."""

    def __init__(self, store: 'Store | None' = None) -> None:
        self._lock = threading.RLock()
        self._default_store = store
        # id(store) -> (store, ordered key set); keys are grouped per store
        # instance so close() can use the connector's batched eviction.
        # Keyed by identity, not name: two stores may share a name (e.g.
        # unregistered stores) yet sit on different connectors, and binding
        # by name would evict one store's keys on the other's connector.
        self._bound: dict[int, tuple[Store, dict[Any, None]]] = {}
        self._closed = False
        self.keys_bound = 0
        self.keys_evicted = 0

    def __repr__(self) -> str:
        state = 'closed' if self._closed else f'{self.keys_bound} keys'
        return f'{type(self).__name__}({state})'

    def __enter__(self) -> '_LifetimeBase':
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise LifetimeError(
                f'{type(self).__name__} is closed; keys can no longer be '
                'bound to it',
            )

    def add_key(self, *keys: Any, store: 'Store | None' = None) -> None:
        store = store if store is not None else self._default_store
        if store is None:
            raise LifetimeError(
                'no store associated with these keys; pass store=... (or '
                'construct the lifetime with a default store)',
            )
        with self._lock:
            self._check_open()
            _, bound = self._bound.setdefault(id(store), (store, {}))
            for key in keys:
                if key not in bound:
                    bound[key] = None
                    self.keys_bound += 1

    def add_proxy(self, *proxies: 'Proxy[Any]') -> None:
        from repro.proxy.proxy import get_factory

        for proxy in proxies:
            factory = get_factory(proxy)
            key = getattr(factory, 'key', None)
            get_store = getattr(factory, 'get_store', None)
            if key is None or get_store is None:
                raise LifetimeError(
                    'only store-backed proxies can be bound to a lifetime '
                    f'(factory {type(factory).__name__} has no key/store)',
                )
            self.add_key(key, store=get_store())

    def done(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Evict all bound keys (one batch per store).  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            bound, self._bound = self._bound, {}
        for store, keys in bound.values():
            try:
                store.evict_batch(list(keys))
            except Exception:  # noqa: BLE001 - closing must not cascade
                continue
            self.keys_evicted += len(keys)


class ContextLifetime(_LifetimeBase):
    """Lifetime ending when :meth:`close` is called or its ``with`` exits.

    Args:
        store: optional default store for :meth:`add_key` calls that do not
            name one (``Store.proxy(lifetime=...)`` always names its store).
    """


class LeaseLifetime(_LifetimeBase):
    """Lifetime with a TTL: the lease auto-closes when it expires.

    Args:
        expiry: seconds until the lease expires.
        store: optional default store (see :class:`ContextLifetime`).

    Call :meth:`extend` to renew the lease before it expires.  An expired
    lease behaves exactly like a closed lifetime: bound keys are evicted
    and further binds raise :class:`~repro.exceptions.LifetimeError`.
    """

    def __init__(self, expiry: float, store: 'Store | None' = None) -> None:
        if expiry <= 0:
            raise ValueError('lease expiry must be positive')
        super().__init__(store)
        self._timer_lock = threading.Lock()
        self._deadline = time.monotonic() + expiry
        self._timer = self._start_timer(expiry)

    def _start_timer(self, interval: float) -> threading.Timer:
        timer = threading.Timer(interval, self._expire)
        timer.daemon = True
        timer.start()
        return timer

    def _expire(self) -> None:
        """Timer callback: close only if the deadline actually passed.

        A fired timer can lose the race with a concurrent :meth:`extend`
        (cancel() cannot stop a callback that already started); re-checking
        the deadline under the lock makes the renewal win — the extension
        scheduled its own successor timer, so this one just retires.
        """
        with self._timer_lock:
            if self._closed or self._deadline > time.monotonic():
                return
            super().close()

    def remaining(self) -> float:
        """Seconds until expiry (0.0 once closed or expired)."""
        if self._closed:
            return 0.0
        return max(0.0, self._deadline - time.monotonic())

    def extend(self, seconds: float) -> None:
        """Renew the lease, pushing expiry ``seconds`` past the current deadline."""
        if seconds <= 0:
            raise ValueError('lease extension must be positive')
        with self._timer_lock:
            self._check_open()
            self._timer.cancel()
            self._deadline += seconds
            self._timer = self._start_timer(self.remaining())

    def close(self) -> None:
        """Cancel the expiry timer and evict every bound key.  Idempotent."""
        # The closed-state transition happens under _timer_lock so a
        # concurrent extend() either wins (renewing before the close starts,
        # and the fired timer's close becomes a no-op rescheduled away) or
        # observes the lease closed and raises — it can never "succeed"
        # while the keys are being evicted anyway.
        with self._timer_lock:
            self._timer.cancel()
            super().close()


class StaticLifetime(_LifetimeBase):
    """Process-wide singleton lifetime closed at interpreter exit.

    ``StaticLifetime()`` always returns the same instance; its ``close`` is
    registered with :mod:`atexit` so keys bound to it are evicted when the
    process ends (the "never leak, even for process-long objects" default).
    Calling :meth:`close` earlier evicts and deregisters; the next
    ``StaticLifetime()`` call starts a fresh singleton.
    """

    _instance: 'StaticLifetime | None' = None
    _instance_lock = threading.Lock()

    def __new__(cls) -> 'StaticLifetime':
        # Fully construct the singleton here, under the class lock: doing
        # any part of it in __init__ would re-run on every StaticLifetime()
        # call (and racing first-constructors could reset _bound, dropping
        # keys already bound — the exact leak this class exists to prevent).
        with cls._instance_lock:
            instance = cls._instance
            if instance is None or instance.done():
                instance = super().__new__(cls)
                _LifetimeBase.__init__(instance)
                atexit.register(instance.close)
                cls._instance = instance
            return instance

    def __init__(self) -> None:
        pass  # initialized once in __new__ under the class lock

    def close(self) -> None:
        """Evict bound keys and retire this singleton (next call starts fresh)."""
        super().close()
        try:
            atexit.unregister(self.close)
        except Exception:  # noqa: BLE001 - interpreter teardown
            pass
