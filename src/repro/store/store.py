"""The ``Store``: the high-level application interface to ProxyStore.

A Store wraps a :class:`~repro.connectors.Connector` (dependency injection)
and adds object (de)serialization, caching of deserialized objects, optional
operation metrics, and — most importantly — the ``proxy()`` method which puts
an object into the mediated channel and returns a lazy transparent
:class:`~repro.proxy.Proxy` whose factory can resolve the object anywhere the
connector is reachable (Section 3.5 of the paper).
"""
from __future__ import annotations

import inspect
import warnings
from typing import Any
from typing import Callable
from typing import Iterable
from typing import Sequence
from typing import TYPE_CHECKING
from typing import TypeVar

from repro.cache.lru import LRUCache
from repro.connectors.protocol import Connector
from repro.connectors.protocol import new_object_id
from repro.connectors.registry import StoreURL
from repro.connectors.registry import get_connector_class
from repro.exceptions import LifetimeError
from repro.exceptions import ProxyFutureError
from repro.exceptions import StoreError
from repro.proxy.owned import OwnedProxy
from repro.proxy.proxy import Proxy
from repro.serialize.buffers import payload_nbytes
from repro.serialize.buffers import to_bytes
from repro.serialize.serializer import deserialize as default_deserializer
from repro.serialize.serializer import serialize as default_serializer
from repro.store.coalesce import DEFAULT_DEADLINE_S
from repro.store.coalesce import DEFAULT_MAX_BYTES
from repro.store.coalesce import DEFAULT_MAX_OPS
from repro.store.coalesce import WriteCoalescer
from repro.store.config import StoreConfig
from repro.store.factory import StoreFactory
from repro.store.future import ProxyFuture
from repro.store.metrics import StoreMetrics
from repro.store.metrics import Timer
from repro.store.registry import register_store
from repro.store.registry import unregister_store

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.store.lifetimes import Lifetime

T = TypeVar('T')

__all__ = ['Store']

_MISSING = object()


class Store:
    """High-level object store built on a low-level connector.

    Args:
        name: name used to register this store in the process-global registry
            and to share it with proxies resolved in other processes.
        connector: the mediated communication channel to use.
        serializer: optional callable ``obj -> bytes`` overriding the default.
        deserializer: optional callable ``bytes -> obj`` overriding the default.
        cache_size: number of deserialized objects cached per process (0
            disables caching).  Caching happens *after* deserialization so
            repeated proxy resolutions avoid duplicate deserializations.
        cache_max_bytes: optional bound on the estimated resident bytes of
            the deserialized-object cache; objects individually larger than
            the bound are not cached (rather than silently evicting the
            whole working set).
        metrics: record per-operation timing/byte metrics.
        register: automatically register the store globally by name (the
            common case); set to ``False`` for anonymous, short-lived stores.
        coalesce_writes: opt-in write coalescing — buffer ``put``/
            ``put_batch`` payloads and flush them as one MSET-style
            ``set_batch`` wire operation.  Keys stay immediately valid
            (allocated through the connector's deferred writes) and local
            reads see buffered values; remote visibility is bounded by
            ``coalesce_deadline``.  Requires a connector with
            ``new_key``/``set`` support.  Proxy creation always writes
            through (a proxy may be resolved remotely right away).
        coalesce_max_bytes: flush when this much payload is buffered.
        coalesce_max_ops: flush when this many writes are buffered.
        coalesce_deadline: seconds the oldest buffered write may wait
            before a background flush.
    """

    def __init__(
        self,
        name: str,
        connector: Connector,
        *,
        serializer: Callable[[Any], bytes] | None = None,
        deserializer: Callable[[bytes], Any] | None = None,
        cache_size: int = 16,
        cache_max_bytes: int | None = None,
        metrics: bool = False,
        register: bool = True,
        coalesce_writes: bool = False,
        coalesce_max_bytes: int = DEFAULT_MAX_BYTES,
        coalesce_max_ops: int = DEFAULT_MAX_OPS,
        coalesce_deadline: float = DEFAULT_DEADLINE_S,
    ) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError('store name must be a non-empty string')
        if cache_size < 0:
            raise ValueError('cache_size must be non-negative')
        self.name = name
        self.connector = connector
        self._custom_serializer = serializer is not None
        self._custom_deserializer = deserializer is not None
        self.serializer = serializer if serializer is not None else default_serializer
        self.deserializer = (
            deserializer if deserializer is not None else default_deserializer
        )
        self.cache = LRUCache(cache_size, max_bytes=cache_max_bytes)
        self.metrics: StoreMetrics | None = StoreMetrics() if metrics else None
        if self.metrics is not None and hasattr(connector, 'bind_metrics'):
            # Clustered connectors thread per-node health and self-healing
            # events into the same metrics the store's timings land in.
            connector.bind_metrics(self.metrics)
        self.coalesce_writes = coalesce_writes
        self.coalesce_max_bytes = coalesce_max_bytes
        self.coalesce_max_ops = coalesce_max_ops
        self.coalesce_deadline = coalesce_deadline
        self._coalescer: WriteCoalescer | None = None
        if coalesce_writes:
            supports_deferred = (
                type(connector).new_key is not Connector.new_key
                and type(connector).set is not Connector.set
            )
            if not supports_deferred:
                raise StoreError(
                    f'connector {type(connector).__name__} does not support '
                    'the deferred writes (new_key/set) write coalescing '
                    'requires',
                )
            self._coalescer = WriteCoalescer(
                connector,
                max_bytes=coalesce_max_bytes,
                max_ops=coalesce_max_ops,
                deadline=coalesce_deadline,
                record=self._record,
            )
        self._registered = False
        self._closed = False
        if register:
            register_store(self, exist_ok=False)
            self._registered = True

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return f'Store(name={self.name!r}, connector={self.connector!r})'

    def __enter__(self) -> 'Store':
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def config(self) -> StoreConfig:
        """Return a picklable config from which an equivalent store can be built."""
        return StoreConfig.from_store(self)

    @classmethod
    def from_config(cls, config: StoreConfig, *, register: bool = True) -> 'Store':
        """Create a store (and its connector) from a :class:`StoreConfig`.

        A custom serializer/deserializer on the originating store cannot be
        carried inside a config (callables do not round-trip through plain
        dicts); the re-created store silently falling back to the defaults
        can corrupt data, so that situation is loudly warned about.
        """
        if config.custom_serializer or config.custom_deserializer:
            warnings.warn(
                f'store {config.name!r} was created with a custom '
                'serializer/deserializer that cannot be reconstructed from '
                'its config; the new store uses the default implementations',
                UserWarning,
                stacklevel=2,
            )
        # getattr guards keep configs pickled before the coalescing fields
        # existed loading cleanly.
        return cls(
            config.name,
            config.make_connector(),
            cache_size=config.cache_size,
            cache_max_bytes=config.cache_max_bytes,
            metrics=config.metrics,
            register=register,
            coalesce_writes=getattr(config, 'coalesce_writes', False),
            coalesce_max_bytes=(
                getattr(config, 'coalesce_max_bytes', None) or DEFAULT_MAX_BYTES
            ),
            coalesce_max_ops=(
                getattr(config, 'coalesce_max_ops', None) or DEFAULT_MAX_OPS
            ),
            coalesce_deadline=(
                getattr(config, 'coalesce_deadline', None) or DEFAULT_DEADLINE_S
            ),
        )

    @classmethod
    def from_url(
        cls,
        url: str | StoreURL,
        *,
        name: str | None = None,
        register: bool = True,
        serializer: Callable[[Any], bytes] | None = None,
        deserializer: Callable[[bytes], Any] | None = None,
        wrap_connector: Callable[[Connector], Connector] | None = None,
    ) -> 'Store':
        """Create a store from a URL — the canonical v2 construction API.

        The URL scheme selects the connector through the connector registry
        (``repro.connectors.registry``); the netloc/path/query configure it.
        Store-level options ride along as reserved query parameters::

            Store.from_url('redis://localhost:6379/my-ns?cache_size=32&metrics=1')
            Store.from_url('file:///tmp/proxystore-data?name=bulk-store')
            Store.from_url('local://shared-id')

        Reserved query parameters: ``name``, ``cache_size``,
        ``cache_max_bytes``, ``metrics``, ``register``,
        ``coalesce_writes``, ``coalesce_max_bytes``, ``coalesce_max_ops``,
        ``coalesce_deadline``.  Everything else must be consumed by the
        connector's ``from_url`` — leftovers raise ``ValueError`` so typos
        fail loudly.

        Args:
            url: store URL (or an already-parsed :class:`StoreURL`).
            name: store name; overrides the ``name`` query parameter.  When
                neither is given, a non-empty URL path not consumed by the
                connector (e.g. the ``/ns`` of a redis URL) is used, and
                otherwise a unique name is generated.
            register: register the store globally (the ``register`` query
                parameter overrides this).
            serializer: optional serializer override (not URL-expressible).
            deserializer: optional deserializer override.
            wrap_connector: optional wrapper applied to the connector before
                the store is built — how benchmark harnesses interpose
                cost-accounting (``CostedConnector``) on a URL-built channel.
        """
        parsed = StoreURL.parse(url)
        connector_cls = get_connector_class(parsed.scheme)
        query_name = parsed.pop('name')
        if name is None:
            name = query_name
        cache_size = parsed.pop_int('cache_size', 16)
        assert cache_size is not None
        cache_max_bytes = parsed.pop_int('cache_max_bytes')
        metrics = parsed.pop_bool('metrics', False)
        register = parsed.pop_bool('register', register)
        coalesce_writes = parsed.pop_bool('coalesce_writes', False)
        coalesce_max_bytes = parsed.pop_int('coalesce_max_bytes', DEFAULT_MAX_BYTES)
        assert coalesce_max_bytes is not None
        coalesce_max_ops = parsed.pop_int('coalesce_max_ops', DEFAULT_MAX_OPS)
        assert coalesce_max_ops is not None
        coalesce_deadline = parsed.pop_float('coalesce_deadline', DEFAULT_DEADLINE_S)
        assert coalesce_deadline is not None
        connector: Connector = connector_cls.from_url(parsed)
        parsed.ensure_consumed()
        if name is None:
            remainder = '' if parsed.path_consumed else parsed.path.strip('/')
            name = remainder or f'{parsed.scheme}-store-{new_object_id()[:8]}'
        if wrap_connector is not None:
            connector = wrap_connector(connector)
        return cls(
            name,
            connector,
            serializer=serializer,
            deserializer=deserializer,
            cache_size=cache_size,
            cache_max_bytes=cache_max_bytes,
            metrics=metrics,
            register=register,
            coalesce_writes=coalesce_writes,
            coalesce_max_bytes=coalesce_max_bytes,
            coalesce_max_ops=coalesce_max_ops,
            coalesce_deadline=coalesce_deadline,
        )

    def close(self, clear: bool = False) -> None:
        """Unregister the store and close its connector.

        Idempotent: a second ``close()`` is a no-op unless it escalates a
        plain close to ``clear=True``, so double-close (e.g. an explicit
        close followed by ``__del__``, or fixture and test both closing)
        never re-tears-down the connector.

        Args:
            clear: also ask the connector to remove all stored objects and
                drop this store's local deserialized-object cache.
        """
        if self._registered:
            unregister_store(self.name)
            self._registered = False
        if clear:
            self.cache.clear()
        if self._coalescer is not None and not self._closed:
            # Joins the deadline thread and writes out any buffered puts so
            # handed-out keys stay resolvable after close.
            self._coalescer.close()
        if not self._closed or clear:
            self.connector.close(clear=clear)
        self._closed = True

    def flush(self) -> None:
        """Force any coalesced writes onto the wire (no-op otherwise)."""
        if self._coalescer is not None:
            self._coalescer.flush()

    def __del__(self) -> None:
        """Best-effort close so dropped stores release connector resources."""
        try:
            if not getattr(self, '_closed', True):
                self.close()
        except Exception:  # noqa: BLE001 - interpreter teardown
            pass

    def _record(self, operation: str, elapsed: float, nbytes: int = 0) -> None:
        if self.metrics is not None:
            self.metrics.record(operation, elapsed, nbytes)

    def _outbound(self, data: Any) -> Any:
        """Adapt a serialized payload to what the connector can consume.

        Buffer-aware connectors (``supports_buffers``) receive the
        ``SerializedObject`` and scatter/gather its segments; legacy
        connectors get one contiguous byte string (a single join — the only
        copy on that path).
        """
        if getattr(self.connector, 'supports_buffers', False):
            return data
        return to_bytes(data)

    def _inbound(self, data: Any, deserializer: Callable[[bytes], Any]) -> Any:
        """Adapt connector output for the deserializer.

        The default deserializer consumes every buffer form natively;
        custom deserializers are documented to take ``bytes`` and get a
        materialized payload.
        """
        if deserializer is default_deserializer:
            return data
        return to_bytes(data)

    # ------------------------------------------------------------------ #
    # Object-level operations
    # ------------------------------------------------------------------ #
    def put(self, obj: Any, *, serializer: Callable[[Any], bytes] | None = None) -> Any:
        """Serialize ``obj``, store it via the connector, and return its key.

        With write coalescing enabled the wire write may be deferred (see
        the ``coalesce_writes`` constructor argument); the returned key is
        valid immediately either way.
        """
        serializer = serializer if serializer is not None else self.serializer
        with Timer() as t_ser:
            data = serializer(obj)
        self._record('serialize', t_ser.elapsed, payload_nbytes(data))
        with Timer() as t_put:
            if self._coalescer is not None:
                key = self._coalescer.put(self._outbound(data))
            else:
                key = self.connector.put(self._outbound(data))
        self._record('put', t_put.elapsed, payload_nbytes(data))
        return key

    def put_batch(
        self,
        objs: Sequence[Any],
        *,
        serializer: Callable[[Any], bytes] | None = None,
    ) -> list[Any]:
        """Store several objects with a single connector batch operation."""
        serializer = serializer if serializer is not None else self.serializer
        with Timer() as t_ser:
            datas = [serializer(obj) for obj in objs]
        total = sum(payload_nbytes(d) for d in datas)
        self._record('serialize', t_ser.elapsed, total)
        with Timer() as t_put:
            if self._coalescer is not None:
                keys = [self._coalescer.put(self._outbound(d)) for d in datas]
            else:
                keys = self.connector.put_batch(
                    [self._outbound(d) for d in datas],
                )
        self._record('put_batch', t_put.elapsed, total)
        return keys

    def get(
        self,
        key: Any,
        *,
        default: Any = None,
        deserializer: Callable[[bytes], Any] | None = None,
    ) -> Any:
        """Return the object stored under ``key`` (or ``default`` if absent).

        Deserialized objects are cached per-process, so repeated gets of the
        same key avoid both communication and deserialization.
        """
        cached = self.cache.get(key, default=_MISSING)
        if cached is not _MISSING:
            self._record('get_cached', 0.0)
            return cached
        deserializer = deserializer if deserializer is not None else self.deserializer
        with Timer() as t_get:
            data = None
            if self._coalescer is not None:
                # A buffered write not yet flushed: serve it directly so a
                # put -> get in this process never races the flush.
                data = self._coalescer.peek(key)
            if data is None:
                data = self.connector.get(key)
        if data is None:
            self._record('get_miss', t_get.elapsed)
            return default
        nbytes = payload_nbytes(data)
        self._record('get', t_get.elapsed, nbytes)
        with Timer() as t_des:
            obj = deserializer(self._inbound(data, deserializer))
        self._record('deserialize', t_des.elapsed, nbytes)
        self.cache.set(key, obj)
        return obj

    def get_batch(
        self,
        keys: Iterable[Any],
        *,
        deserializer: Callable[[bytes], Any] | None = None,
    ) -> list[Any]:
        """Return the objects stored under ``keys`` (``None`` for missing keys)."""
        deserializer = deserializer if deserializer is not None else self.deserializer
        if self._coalescer is not None:
            # Push buffered writes out so one connector batch serves all.
            self._coalescer.flush()
        keys = list(keys)
        results: list[Any] = [_MISSING] * len(keys)
        to_fetch: list[tuple[int, Any]] = []
        for i, key in enumerate(keys):
            cached = self.cache.get(key, default=_MISSING)
            if cached is not _MISSING:
                results[i] = cached
                self._record('get_cached', 0.0)
            else:
                to_fetch.append((i, key))
        if to_fetch:
            with Timer() as t_get:
                datas = self.connector.get_batch([key for _, key in to_fetch])
            nbytes = sum(payload_nbytes(d) for d in datas if d is not None)
            self._record('get_batch', t_get.elapsed, nbytes)
            # Batch ops emit the same per-operation metrics as their scalar
            # counterparts: one aggregate deserialize record for the batch
            # (only when something was actually deserialized, matching the
            # scalar get) plus a get_miss per absent key.
            hits = 0
            with Timer() as t_des:
                for (i, key), data in zip(to_fetch, datas):
                    if data is None:
                        results[i] = None
                        self._record('get_miss', 0.0)
                    else:
                        obj = deserializer(self._inbound(data, deserializer))
                        self.cache.set(key, obj)
                        results[i] = obj
                        hits += 1
            if hits:
                self._record('deserialize', t_des.elapsed, nbytes)
        return [r if r is not _MISSING else None for r in results]

    def exists(self, key: Any) -> bool:
        """Return whether ``key`` is present in the store (or its cache)."""
        if self.cache.exists(key):
            return True
        if self._coalescer is not None and self._coalescer.peek(key) is not None:
            return True
        with Timer() as t:
            found = self.connector.exists(key)
        self._record('exists', t.elapsed)
        return found

    def is_cached(self, key: Any) -> bool:
        """Return whether ``key``'s object is in this process's cache."""
        return self.cache.exists(key)

    def evict(self, key: Any) -> None:
        """Remove ``key`` from both the connector and the local cache."""
        self.cache.evict(key)
        if self._coalescer is not None:
            # Drop any still-buffered write; the connector evict below also
            # covers a value that already flushed.
            self._coalescer.discard(key)
        with Timer() as t:
            self.connector.evict(key)
        self._record('evict', t.elapsed)

    def evict_batch(self, keys: Iterable[Any]) -> None:
        """Remove several keys with a single connector batch eviction.

        This is the teardown path lifetimes use: one ``evict_batch`` round
        trip per store, recorded under its own ``evict_batch`` metric so
        eviction traffic is attributable.
        """
        keys = list(keys)
        if not keys:
            return
        for key in keys:
            self.cache.evict(key)
            if self._coalescer is not None:
                self._coalescer.discard(key)
        with Timer() as t:
            self.connector.evict_batch(keys)
        self._record('evict_batch', t.elapsed)

    # ------------------------------------------------------------------ #
    # Proxy creation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_lifetime(lifetime: Any, evict: bool) -> None:
        """Reject the contradictory ``evict=True`` + ``lifetime=...`` combo.

        A lifetime promises the key stays alive until the lifetime closes;
        evict-on-resolve destroys it at first use.  Either alone is fine.
        """
        if lifetime is not None and evict:
            raise ValueError(
                'evict=True and lifetime=... are mutually exclusive: a '
                'lifetime-bound key must survive until the lifetime closes',
            )

    def _bind_lifetime(self, lifetime: 'Lifetime', *keys: Any) -> None:
        """Bind freshly stored ``keys`` to ``lifetime``, leak-free.

        The keys were put *before* the bind (their values are only known
        then), so a lifetime that closed in between would otherwise strand
        them in the backing store forever: evict them before re-raising.
        """
        try:
            lifetime.add_key(*keys, store=self)
        except LifetimeError:
            self.evict_batch(keys)
            raise

    def _store_object(
        self,
        obj: Any,
        *,
        serializer: Callable[[Any], bytes] | None,
        cache_local: bool,
        connector_kwargs: dict[str, Any],
    ) -> tuple[Any, int]:
        """Shared serialize/put/metrics pipeline behind every proxy creator.

        Returns ``(key, serialized nbytes)``.
        """
        serializer = serializer if serializer is not None else self.serializer
        with Timer() as t_ser:
            data = serializer(obj)
        nbytes = payload_nbytes(data)
        self._record('serialize', t_ser.elapsed, nbytes)
        with Timer() as t_put:
            if connector_kwargs:
                key = self.connector.put(self._outbound(data), **connector_kwargs)  # type: ignore[call-arg]
            else:
                key = self.connector.put(self._outbound(data))
        self._record('put', t_put.elapsed, nbytes)
        if cache_local:
            self.cache.set(key, obj)
        return key, nbytes

    def proxy(
        self,
        obj: Any,
        *,
        evict: bool = False,
        lifetime: 'Lifetime | None' = None,
        serializer: Callable[[Any], bytes] | None = None,
        cache_local: bool = True,
        **connector_kwargs: Any,
    ) -> Proxy:
        """Store ``obj`` and return a lazy, transparent proxy of it.

        Args:
            obj: the object to proxy.
            evict: evict the stored object when the proxy is first resolved
                (for ephemeral values read exactly once).
            lifetime: a :class:`~repro.store.lifetimes.Lifetime` the stored
                key is bound to; the key is evicted when the lifetime closes.
                Mutually exclusive with ``evict=True``.
            serializer: per-call serializer override.
            cache_local: also place the object in the local cache so that
                resolving the returned proxy in *this* process is free.
            connector_kwargs: forwarded to the connector's ``put`` when it
                supports extra keyword arguments (e.g. MultiConnector
                constraints such as ``subset_tags``); also embedded in the
                proxy's factory so re-stores elsewhere can honour them.
                Raises ``StoreError`` if the connector does not accept them.
        """
        self._validate_lifetime(lifetime, evict)
        if connector_kwargs:
            self._validate_put_kwargs(connector_kwargs)
        key, nbytes = self._store_object(
            obj,
            serializer=serializer,
            cache_local=cache_local and not evict,
            connector_kwargs=connector_kwargs,
        )
        if lifetime is not None:
            self._bind_lifetime(lifetime, key)
        factory: StoreFactory = StoreFactory(
            key, self.config(), evict=evict, connector_kwargs=connector_kwargs,
        )
        with Timer() as t_proxy:
            proxy = Proxy(factory)
        self._record('proxy', t_proxy.elapsed, nbytes)
        return proxy

    def owned_proxy(
        self,
        obj: Any,
        *,
        serializer: Callable[[Any], bytes] | None = None,
        cache_local: bool = True,
        **connector_kwargs: Any,
    ) -> 'OwnedProxy':
        """Store ``obj`` and return an :class:`~repro.proxy.owned.OwnedProxy`.

        The returned proxy owns the stored key: when it is dropped (garbage
        collected, :func:`repro.proxy.owned.drop`-ped, or its ``with`` block
        exits) the key is evicted from the connector.  Use
        :func:`repro.proxy.owned.borrow` / ``mut_borrow`` to share access
        and :func:`~repro.proxy.owned.clone` for an independent copy.
        """
        if connector_kwargs:
            self._validate_put_kwargs(connector_kwargs)
        key, nbytes = self._store_object(
            obj,
            serializer=serializer,
            cache_local=cache_local,
            connector_kwargs=connector_kwargs,
        )
        factory: StoreFactory = StoreFactory(
            key,
            self.config(),
            connector_kwargs=connector_kwargs,
            owned=True,
        )
        with Timer() as t_proxy:
            proxy = OwnedProxy._from_store(factory)
        self._record('proxy', t_proxy.elapsed, nbytes)
        return proxy

    def _validate_put_kwargs(
        self,
        connector_kwargs: dict[str, Any],
        method: str = 'put',
    ) -> None:
        """Reject ``put`` kwargs the connector would silently drop or choke on.

        Wrapper connectors (e.g. CostedConnector) forward ``**kwargs`` to an
        inner connector, so a ``**kwargs`` signature alone proves nothing —
        follow the ``inner`` chain until a connector with an explicit
        signature is found.  ``method`` selects which operation's signature
        is checked (``put`` for proxies, ``put_batch`` for batch proxies).
        """
        target: Connector = self.connector
        seen: set[int] = set()
        while id(target) not in seen:
            seen.add(id(target))
            try:
                parameters = inspect.signature(getattr(target, method)).parameters
            except (TypeError, ValueError):  # pragma: no cover - builtin puts
                return
            accepts_var_kw = any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in parameters.values()
            )
            if not accepts_var_kw:
                unsupported = sorted(
                    k for k in connector_kwargs if k not in parameters
                )
                if unsupported:
                    raise StoreError(
                        f'connector {type(target).__name__} does not support '
                        f'put keyword arguments {unsupported}; routing '
                        'constraints would be silently lost',
                    )
                return
            inner = getattr(target, 'inner', None)
            if not isinstance(inner, Connector):
                return  # genuinely accepts arbitrary kwargs
            target = inner

    def proxy_batch(
        self,
        objs: Sequence[Any],
        *,
        evict: bool = False,
        lifetime: 'Lifetime | None' = None,
        serializer: Callable[[Any], bytes] | None = None,
        cache_local: bool = True,
        **connector_kwargs: Any,
    ) -> list[Proxy]:
        """Proxy several objects with a single connector batch put.

        Connectors with expensive per-transfer setup (e.g. the Globus
        connector, which starts one transfer task per batch) benefit greatly
        from this over calling :meth:`proxy` in a loop.

        Args:
            objs: the objects to proxy.
            evict: evict each object when its proxy is first resolved.
            lifetime: a :class:`~repro.store.lifetimes.Lifetime` every
                stored key is bound to.  Mutually exclusive with ``evict``.
            serializer: per-call serializer override.
            cache_local: also place the objects in the local cache.
            connector_kwargs: forwarded to the connector's ``put_batch``
                (e.g. MultiConnector routing constraints such as
                ``subset_tags``) and embedded in every proxy's factory, the
                same contract as the scalar :meth:`proxy`.  Raises
                ``StoreError`` if the connector does not accept them.
        """
        self._validate_lifetime(lifetime, evict)
        if connector_kwargs:
            self._validate_put_kwargs(connector_kwargs, method='put_batch')
        serializer = serializer if serializer is not None else self.serializer
        with Timer() as t_ser:
            datas = [serializer(obj) for obj in objs]
        total = sum(payload_nbytes(d) for d in datas)
        self._record('serialize', t_ser.elapsed, total)
        outbound = [self._outbound(d) for d in datas]
        with Timer() as t_put:
            if connector_kwargs:
                keys = self.connector.put_batch(outbound, **connector_kwargs)  # type: ignore[call-arg]
            else:
                keys = self.connector.put_batch(outbound)
        self._record('put_batch', t_put.elapsed, total)
        if lifetime is not None:
            self._bind_lifetime(lifetime, *keys)
        config = self.config()
        proxies: list[Proxy] = []
        for key, obj, data in zip(keys, objs, datas):
            if cache_local and not evict:
                self.cache.set(key, obj)
            # Mirror the scalar proxy() metrics: one timed 'proxy' record
            # per proxy created.
            with Timer() as t_proxy:
                proxy = Proxy(
                    StoreFactory(
                        key,
                        config,
                        evict=evict,
                        connector_kwargs=connector_kwargs,
                    ),
                )
            self._record('proxy', t_proxy.elapsed, payload_nbytes(data))
            proxies.append(proxy)
        return proxies

    def future(
        self,
        *,
        evict: bool = False,
        lifetime: 'Lifetime | None' = None,
        polling_interval: float = 0.05,
        timeout: float | None = 60.0,
        serializer: Callable[[Any], bytes] | None = None,
        **connector_kwargs: Any,
    ) -> ProxyFuture:
        """Return a :class:`~repro.store.future.ProxyFuture` for a value that
        has not been produced yet.

        The future's :meth:`~repro.store.future.ProxyFuture.proxy` can be
        handed to consumers immediately; it blocks (bounded poll of the
        mediated channel) on first use until the producer calls
        :meth:`~repro.store.future.ProxyFuture.set_result`.  This enables
        producer/consumer pipelining without barrier synchronization.

        Args:
            evict: evict the value when a consumer first resolves it.
            lifetime: a :class:`~repro.store.lifetimes.Lifetime` the
                pre-allocated key is bound to (the eventual value is evicted
                when the lifetime closes).  Mutually exclusive with
                ``evict``.
            polling_interval: seconds between existence polls on the
                consumer side.
            timeout: seconds a consumer waits for the producer before
                raising ``ProxyFutureTimeoutError`` (``None`` = forever).
            serializer: per-future serializer override.
            connector_kwargs: forwarded to the connector's ``new_key`` —
                e.g. MultiConnector routing constraints (``subset_tags``,
                ``superset_tags``), applied without a size bound since the
                value's size is unknown at allocation time.

        Raises:
            ProxyFutureError: if the connector does not support deferred
                writes (``new_key``/``set``).
        """
        self._validate_lifetime(lifetime, evict)
        try:
            if connector_kwargs:
                key = self.connector.new_key(**connector_kwargs)  # type: ignore[call-arg]
            else:
                key = self.connector.new_key()
        except NotImplementedError as e:
            raise ProxyFutureError(
                f'connector {type(self.connector).__name__} does not support '
                'the deferred writes Store.future() requires',
            ) from e
        if lifetime is not None:
            self._bind_lifetime(lifetime, key)
        return ProxyFuture(
            self,
            key,
            evict=evict,
            polling_interval=polling_interval,
            timeout=timeout,
            serializer=serializer,
            lifetime=lifetime,
        )

    def proxy_from_key(
        self,
        key: Any,
        *,
        evict: bool = False,
        lifetime: 'Lifetime | None' = None,
    ) -> Proxy:
        """Return a proxy for an object that is already stored under ``key``.

        Useful when a producer stored the object directly (e.g. with
        :meth:`put` or :meth:`put_batch`) and wants to hand out references
        later without re-serializing the data.  ``lifetime`` binds the
        existing key to a :class:`~repro.store.lifetimes.Lifetime` (mutually
        exclusive with ``evict=True``).
        """
        self._validate_lifetime(lifetime, evict)
        if lifetime is not None:
            lifetime.add_key(key, store=self)
        return Proxy(StoreFactory(key, self.config(), evict=evict))

    def locked_proxy(self, obj: Any, **kwargs: Any) -> Proxy:
        """Return a proxy that is already resolved (never touches the connector).

        This mirrors ProxyStore's non-lazy proxies: the data still gets stored
        (so other consumers may resolve it), but the returned proxy carries
        the target, which is convenient for producers that both use the value
        locally and pass it downstream.
        """
        proxy = self.proxy(obj, **kwargs)
        proxy.__wrapped__ = obj
        return proxy

    # ------------------------------------------------------------------ #
    # Stats helpers
    # ------------------------------------------------------------------ #
    def metrics_summary(self) -> dict[str, dict[str, float]]:
        """Return accumulated metrics as a nested dict (empty if disabled)."""
        if self.metrics is None:
            return {}
        return self.metrics.as_dict()

    def cluster_health(self) -> dict[str, Any]:
        """Cluster membership and per-node health for clustered connectors.

        Returns ``{'clustered': False}`` when the connector has no cluster
        support (or runs in legacy single-copy mode); otherwise the
        connector's membership snapshot: ring nodes, per-node health, and
        the replication engine's self-healing counters.
        """
        health = getattr(self.connector, 'cluster_health', None)
        if health is None:
            return {'clustered': False}
        return health()

    def cache_stats(self) -> dict[str, Any]:
        """Return cache hit/miss and residency statistics for this store."""
        stats = self.cache.stats
        return {
            'hits': stats.hits,
            'misses': stats.misses,
            'evictions': stats.evictions,
            'hit_rate': stats.hit_rate,
            'entries': len(self.cache),
            'resident_bytes': self.cache.resident_bytes,
            'max_bytes': self.cache.max_bytes,
        }


def _ensure_store_error_exported() -> type[StoreError]:
    # Referenced so linters keep the import; StoreError is part of the public
    # surface re-exported by repro.store.__init__.
    return StoreError
