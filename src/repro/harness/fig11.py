"""Figure 11: molecular-design node utilization with and without ProxyStore.

Average CPU-node and GPU utilization of the molecular design campaign as the
number of allocated CPU (simulation) nodes grows, comparing the baseline —
where every simulation result and model flows through the workflow system —
against the ProxyStore configuration, where a MultiConnector routes
simulation results via a Redis-like store and models/inference inputs via
PS-endpoints and only proxies flow through the workflow system.
"""
from __future__ import annotations

from typing import Sequence

from repro.apps.molecular_design import CampaignConfig
from repro.apps.molecular_design import run_campaign
from repro.harness.reporting import ResultTable

__all__ = ['run_figure11']

DEFAULT_NODE_COUNTS = (128, 256, 512, 1024)


def run_figure11(
    *,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    base_config: CampaignConfig | None = None,
) -> ResultTable:
    """Run the utilization model for each node count and configuration."""
    table = ResultTable(
        title='Figure 11: molecular design average node utilization',
        columns=['cpu_nodes', 'configuration', 'cpu_utilization',
                 'gpu_utilization', 'result_processing_ms'],
    )
    base = base_config or CampaignConfig()
    for nodes in node_counts:
        for use_proxystore in (False, True):
            config = CampaignConfig(
                n_cpu_nodes=nodes,
                n_gpus=base.n_gpus,
                n_tasks=base.n_tasks,
                simulation_time_s=base.simulation_time_s,
                result_nbytes=base.result_nbytes,
                model_nbytes=base.model_nbytes,
                workflow_per_byte_s=base.workflow_per_byte_s,
                workflow_fixed_s=base.workflow_fixed_s,
                proxy_fixed_s=base.proxy_fixed_s,
                training_rounds=base.training_rounds,
                gpu_task_time_s=base.gpu_task_time_s,
            )
            result = run_campaign(config, use_proxystore=use_proxystore)
            table.add_row(
                cpu_nodes=nodes,
                configuration='proxystore' if use_proxystore else 'baseline',
                cpu_utilization=result.cpu_utilization,
                gpu_utilization=result.gpu_utilization,
                result_processing_ms=result.avg_result_processing_s * 1000.0,
            )
    return table
