"""Figure 9: endpoint-to-endpoint transfers versus Redis over an SSH tunnel.

Get and set request times between two PS-endpoints for three site pairs
(Theta-Theta, Midway2-Theta, Frontera-Theta), compared against a Redis server
hosted at the target site and reached through an SSH tunnel.  The real
endpoint/peering and SimKV code paths execute the requests; wide-area costs
are charged in virtual time using the fabric's links, with the PS-endpoint
data channel throttled to the fraction of WAN bandwidth the paper measured
for aiortc, and the PS-endpoint path paying its extra hop through the local
endpoint.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.ssh_redis import SSHTunnelRedis
from repro.endpoint import Endpoint
from repro.endpoint import RelayServer
from repro.harness.reporting import ResultTable
from repro.kvserver import KVServer
from repro.simulation import VirtualClock
from repro.simulation import paper_testbed
from repro.simulation import payload_of_size
from repro.simulation.costs import EndpointPeerCost
from repro.simulation.costs import SSHTunnelRedisCost

__all__ = ['SitePair', 'FIG9_SITE_PAIRS', 'run_figure9']


@dataclass(frozen=True)
class SitePair:
    """A (client site, target site) pair of Figure 9."""

    label: str
    client_host: str
    target_host: str


FIG9_SITE_PAIRS: tuple[SitePair, ...] = (
    SitePair('Theta -> Theta', 'theta-compute', 'theta-compute-2'),
    SitePair('Midway2 -> Theta', 'midway2-login', 'theta-compute'),
    SitePair('Frontera -> Theta', 'frontera-login', 'theta-compute'),
)

DEFAULT_SIZES = (1_000, 10_000, 100_000, 1_000_000, 10_000_000)


def run_figure9(
    *,
    site_pairs: Sequence[SitePair] = FIG9_SITE_PAIRS,
    payload_sizes: Sequence[int] = DEFAULT_SIZES,
    requests: int = 3,
) -> ResultTable:
    """Measure endpoint-peering and Redis+SSH request times for each site pair."""
    fabric = paper_testbed()
    table = ResultTable(
        title='Figure 9: PS-endpoint peering vs Redis over SSH',
        columns=['site_pair', 'system', 'operation', 'payload_bytes', 'avg_time_ms'],
    )
    table.add_note('virtual milliseconds; endpoint data channels are bandwidth-throttled like aiortc')
    relay = RelayServer()
    for pair in site_pairs:
        endpoint_cost = EndpointPeerCost(fabric)
        ssh_cost = SSHTunnelRedisCost(fabric, server_host=pair.target_host)
        # Real components: two endpoints peered through the relay, and a SimKV
        # server at the target site reached through the (modelled) tunnel.
        with Endpoint(f'{pair.label}-local', relay) as local_ep, \
                Endpoint(f'{pair.label}-remote', relay) as remote_ep:
            kv_server = KVServer()
            kv_server.start()
            tunnel = SSHTunnelRedis(kv_server)
            tunnel.open_tunnel()
            # Warm up the peer connection (and charge its one-time setup cost
            # outside the timed requests): the paper's endpoints keep their
            # peer connections open across the 1000 timed requests.
            remote_ep.set('warmup', b'x')
            local_ep.get('warmup', endpoint_id=remote_ep.uuid)
            endpoint_cost.get_cost(1, pair.target_host, pair.client_host)
            endpoint_cost.get_cost(1, pair.client_host, pair.target_host)
            try:
                for size in payload_sizes:
                    payload = payload_of_size(size)
                    for operation in ('get', 'set'):
                        # --- PS-endpoints --------------------------------- #
                        clock = VirtualClock()
                        for i in range(requests):
                            object_id = f'{operation}-{size}-{i}'
                            if operation == 'set':
                                # Client (at the client site) stores onto the
                                # remote endpoint: local endpoint forwards.
                                clock.advance(endpoint_cost.get_cost(
                                    size, pair.client_host, pair.target_host,
                                    first_fetch=(i == 0),
                                ))
                                local_ep.set(object_id, payload, endpoint_id=remote_ep.uuid)
                            else:
                                remote_ep.set(object_id, payload)
                                clock.advance(endpoint_cost.get_cost(
                                    size, pair.target_host, pair.client_host,
                                    first_fetch=(i == 0),
                                ))
                                local_ep.get(object_id, endpoint_id=remote_ep.uuid)
                        table.add_row(
                            site_pair=pair.label, system='ps-endpoints',
                            operation=operation, payload_bytes=size,
                            avg_time_ms=clock.now() / requests * 1000.0,
                        )
                        # --- Redis over SSH ------------------------------- #
                        clock = VirtualClock()
                        for i in range(requests):
                            object_id = f'ssh-{operation}-{size}-{i}'
                            if operation == 'set':
                                clock.advance(ssh_cost.put_cost(size, pair.client_host))
                                tunnel.set(object_id, payload)
                            else:
                                tunnel.set(object_id, payload)
                                clock.advance(ssh_cost.get_cost(
                                    size, pair.target_host, pair.client_host,
                                ))
                                tunnel.get(object_id)
                        table.add_row(
                            site_pair=pair.label, system='redis+ssh',
                            operation=operation, payload_bytes=size,
                            avg_time_ms=clock.now() / requests * 1000.0,
                        )
            finally:
                tunnel.close_tunnel()
                kv_server.stop()
    return table
