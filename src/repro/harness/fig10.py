"""Figure 10: federated-learning model transfer times vs model size.

The FLoX-style application grows the model's hidden-block count and measures
the time to move the model between the aggregator and an edge device when the
model rides through the FaaS cloud service (bounded by the 5 MB payload limit)
versus when it is proxied through PS-endpoints.  Real models are built and
serialized so the x-axis truly is model size; transfer times are virtual
seconds over the edge links of the simulated fabric.
"""
from __future__ import annotations

from typing import Sequence

from repro.apps.federated_learning import create_model
from repro.apps.federated_learning import model_nbytes
from repro.harness.reporting import ResultTable
from repro.simulation import paper_testbed
from repro.simulation.costs import CloudRelayCost
from repro.simulation.costs import EndpointPeerCost

__all__ = ['run_figure10']

DEFAULT_HIDDEN_BLOCKS = (1, 5, 10, 20, 30, 40, 50)
PAYLOAD_LIMIT_BYTES = 5 * 1024 * 1024
AGGREGATOR_HOST = 'gpu-server'
EDGE_HOST = 'edge-device-0'


def run_figure10(
    *,
    hidden_blocks: Sequence[int] = DEFAULT_HIDDEN_BLOCKS,
    hidden_width: int = 180,
) -> ResultTable:
    """Measure per-round model transfer time for cloud vs EndpointStore."""
    fabric = paper_testbed()
    cloud_cost = CloudRelayCost(fabric)
    endpoint_cost = EndpointPeerCost(fabric)
    table = ResultTable(
        title='Figure 10: federated learning model transfer time',
        columns=['hidden_blocks', 'model_bytes', 'method', 'transfer_s'],
    )
    table.add_note(f'cloud transfer unavailable above the {PAYLOAD_LIMIT_BYTES} byte payload limit')
    for blocks in hidden_blocks:
        model = create_model(blocks, hidden_width=hidden_width)
        nbytes = model_nbytes(model)
        # Cloud transfer: aggregator -> cloud -> edge device (one direction of
        # the round; the paper reports the per-round transfer time).
        if nbytes > PAYLOAD_LIMIT_BYTES:
            cloud_time = None
        else:
            cloud_time = cloud_cost.put_cost(nbytes, AGGREGATOR_HOST) + cloud_cost.get_cost(
                nbytes, AGGREGATOR_HOST, EDGE_HOST,
            )
        table.add_row(
            hidden_blocks=blocks, model_bytes=nbytes,
            method='cloud-transfer', transfer_s=cloud_time,
        )
        # EndpointStore: the model is proxied; the edge device's endpoint
        # pulls it directly from the aggregator's endpoint.
        endpoint_time = endpoint_cost.put_cost(nbytes, AGGREGATOR_HOST) + endpoint_cost.get_cost(
            nbytes, AGGREGATOR_HOST, EDGE_HOST,
        )
        table.add_row(
            hidden_blocks=blocks, model_bytes=nbytes,
            method='endpoint-store', transfer_s=endpoint_time,
        )
    return table
