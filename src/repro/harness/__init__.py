"""Benchmark harness: one module per table/figure of the paper's evaluation.

Each ``run_*`` function is pure library code (no pytest dependency) returning
a :class:`~repro.harness.reporting.ResultTable`; the ``benchmarks/`` scripts
call them under ``pytest-benchmark`` and print the same rows/series the paper
reports, and the test suite calls them with reduced parameters to check the
qualitative findings (who wins, where crossovers fall) hold.
"""
from repro.harness.reporting import ResultTable
from repro.harness.reporting import format_table

__all__ = ['ResultTable', 'format_table']
