"""Result recording and pretty-printing for the benchmark harness."""
from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field
from typing import Any
from typing import Iterable
from typing import Sequence

__all__ = ['ResultTable', 'format_table', 'mean', 'stdev']


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return (sum((v - mu) ** 2 for v in values) / len(values)) ** 0.5


@dataclass
class ResultTable:
    """A labelled collection of result rows (one per experimental cell).

    Attributes:
        title: which table/figure of the paper this reproduces.
        columns: ordered column names.
        rows: list of dicts keyed by column name (missing values allowed).
        notes: free-form annotations (parameters, substitutions, caveats).
    """

    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order (missing entries skipped)."""
        return [row[name] for row in self.rows if name in row]

    def filter(self, **criteria: Any) -> list[dict[str, Any]]:
        """Rows matching every ``column=value`` criterion."""
        return [
            row
            for row in self.rows
            if all(row.get(col) == val for col, val in criteria.items())
        ]

    def value(self, value_column: str, **criteria: Any) -> Any:
        """The single value of ``value_column`` in the row matching ``criteria``."""
        matches = self.filter(**criteria)
        if len(matches) != 1:
            raise KeyError(
                f'expected exactly one row matching {criteria!r}, found {len(matches)}',
            )
        return matches[0][value_column]

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:
        return format_table(self)


def _format_cell(value: Any) -> str:
    if value is None:
        return '--'
    if isinstance(value, float):
        if value == 0:
            return '0'
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f'{value:.3e}'
        return f'{value:.4g}'
    return str(value)


def format_table(table: ResultTable, *, max_rows: int | None = None) -> str:
    """Render ``table`` as a fixed-width text table (like the paper's tables)."""
    columns = table.columns
    rows = table.rows if max_rows is None else table.rows[:max_rows]
    cells = [[_format_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max([len(col)] + [len(row[i]) for row in cells]) for i, col in enumerate(columns)
    ]
    lines = [f'== {table.title} ==']
    header = ' | '.join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append('-+-'.join('-' * w for w in widths))
    for row in cells:
        lines.append(' | '.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if max_rows is not None and len(table.rows) > max_rows:
        lines.append(f'... ({len(table.rows) - max_rows} more rows)')
    for note in table.notes:
        lines.append(f'note: {note}')
    return '\n'.join(lines)
