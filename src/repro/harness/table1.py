"""Table 1: summary of provided Connector implementations."""
from __future__ import annotations

from repro.connectors import ALL_CONNECTOR_CLASSES
from repro.harness.reporting import ResultTable

__all__ = ['run_table1']


def run_table1() -> ResultTable:
    """Regenerate the connector capability matrix (Table 1 of the paper)."""
    table = ResultTable(
        title='Table 1: Summary of provided Connector implementations',
        columns=['connector', 'storage', 'intra_site', 'inter_site', 'persistence'],
    )
    for cls in ALL_CONNECTOR_CLASSES:
        capabilities = cls.capabilities
        table.add_row(
            connector=cls.__name__,
            storage=capabilities.storage,
            intra_site='yes' if capabilities.intra_site else '',
            inter_site='yes' if capabilities.inter_site else '',
            persistence='yes' if capabilities.persistence else '',
        )
    table.add_note(
        'LocalConnector and MultiConnector are additions of this reproduction; '
        'the remaining rows correspond to Table 1 of the paper.',
    )
    table.add_note(
        'RedisConnector and the DIM family (Margo/UCX/ZMQ) share the '
        'concurrent SimKV transport: pipelined multiplexing clients, '
        'MSET/MGET/MDEL batch wire commands, and optional striping of '
        'large objects across nodes (peers/shard_threshold).',
    )
    return table
