"""Figure 5: round-trip Globus Compute task times with and without ProxyStore.

The experiment sweeps task input sizes for no-op and 1-second-sleep tasks over
four client/endpoint placements, comparing data movement through the FaaS
cloud service against ProxyStore's FileStore, RedisStore, EndpointStore and
GlobusStore, plus an IPFS baseline for the inter-site cases.  Round-trip times
are virtual seconds accumulated on the simulated testbed while the real task
submission, proxy creation and proxy resolution code paths execute.
"""
from __future__ import annotations

import tempfile
from dataclasses import dataclass
from typing import Sequence

from repro.baselines.ipfs import IPFSNetwork
from repro.baselines.ipfs import IPFSNode
from repro.exceptions import PayloadTooLargeError
from repro.faas import CloudFaaSService
from repro.faas import ComputeEndpoint
from repro.faas import Executor
from repro.harness.reporting import ResultTable
from repro.proxy import Proxy
from repro.simulation import VirtualClock
from repro.simulation import paper_testbed
from repro.simulation import payload_of_size
from repro.simulation import size_sweep
from repro.simulation.context import on_host
from repro.simulation.costed import CostedConnector
from repro.simulation.costs import CentralServerCost
from repro.simulation.costs import EndpointPeerCost
from repro.simulation.costs import GlobusTransferCost
from repro.simulation.costs import IPFSCost
from repro.simulation.costs import SharedFilesystemCost
from repro.simulation.costs import TransferCostModel
from repro.store import Store

__all__ = ['SiteConfiguration', 'FIG5_CONFIGURATIONS', 'run_figure5']

#: Globus Compute's payload limit, shown as the dashed line in Figure 5.
PAYLOAD_LIMIT_BYTES = 5 * 1024 * 1024


@dataclass(frozen=True)
class SiteConfiguration:
    """One client/endpoint placement of Figure 5."""

    label: str
    client_host: str
    endpoint_host: str
    intra_site: bool


FIG5_CONFIGURATIONS: tuple[SiteConfiguration, ...] = (
    SiteConfiguration('Theta -> Theta', 'theta-login', 'theta-compute', True),
    SiteConfiguration('Perlmutter Login -> Perlmutter Compute',
                      'perlmutter-login', 'perlmutter-compute', True),
    SiteConfiguration('Midway2 -> Theta', 'midway2-login', 'theta-compute', False),
    SiteConfiguration('Frontera -> Theta', 'frontera-login', 'theta-compute', False),
)

_INTRA_METHODS = ('cloud', 'file-store', 'redis-store', 'endpoint-store')
_INTER_METHODS = ('cloud', 'ipfs', 'endpoint-store', 'globus-store')


def _noop_task(data, ctx=None):
    """No-op task: the input is resolved/used but no computation is performed."""
    if ctx is not None and isinstance(data, Proxy):
        ctx.resolve_proxy(data)
    return len(data)


def _sleep_task(data, ctx=None):
    """1 s sleep task overlapping the proxy resolution with the sleep."""
    if ctx is not None:
        if isinstance(data, Proxy):
            ctx.compute_with_async_resolve(data, 1.0)
        else:
            ctx.sleep(1.0)
    return len(data)


def _cost_model_for(method: str, fabric, config: SiteConfiguration) -> TransferCostModel:
    if method == 'file-store':
        return SharedFilesystemCost(fabric)
    if method == 'redis-store':
        return CentralServerCost(fabric, server_host=config.client_host)
    if method == 'endpoint-store':
        return EndpointPeerCost(fabric)
    if method == 'globus-store':
        return GlobusTransferCost(fabric)
    raise ValueError(f'no cost model for method {method!r}')


def _measure_cell(
    config: SiteConfiguration,
    method: str,
    size: int,
    task_type: str,
    workdir: str,
) -> float | None:
    """Virtual round-trip seconds for one (configuration, method, size) cell."""
    fabric = paper_testbed()
    clock = VirtualClock()
    cloud = CloudFaaSService(fabric, clock, payload_limit_bytes=PAYLOAD_LIMIT_BYTES)
    endpoint = ComputeEndpoint('fig5-endpoint', config.endpoint_host, clock, fabric)
    cloud.register_endpoint(endpoint)
    executor = Executor(cloud, 'fig5-endpoint', client_host=config.client_host)
    task = _noop_task if task_type == 'noop' else _sleep_task
    payload = payload_of_size(size)
    start = clock.now()

    if method == 'cloud':
        with on_host(config.client_host):
            try:
                future = executor.submit(task, payload)
            except PayloadTooLargeError:
                return None
            future.result()
        return clock.now() - start

    if method == 'ipfs':
        network = IPFSNetwork()
        client_node = IPFSNode(f'{workdir}/ipfs-client', network)
        endpoint_node = IPFSNode(f'{workdir}/ipfs-endpoint', network)
        cost = IPFSCost(fabric)

        def ipfs_task(cid, ctx=None):
            # Retrieve the file from the peer network, then read it back.
            ctx.clock.advance(
                cost.get_cost(size, config.client_host, config.endpoint_host),
            )
            data = endpoint_node.get(cid)
            if task_type == 'sleep':
                ctx.sleep(1.0)  # IPFS offers no asynchronous-resolution overlap
            return len(data)

        with on_host(config.client_host):
            cid = client_node.add(payload)
            clock.advance(cost.put_cost(size, config.client_host))
            future = executor.submit(ipfs_task, cid)
            future.result()
        return clock.now() - start

    # ProxyStore methods: a Store over a cost-accounted connector.  The
    # channel choice is a URL; the harness only interposes cost accounting.
    model = _cost_model_for(method, fabric, config)
    if method == 'file-store':
        store_url = f'file://{workdir}/file-store?cache_size=0'
    else:
        store_url = 'local://?cache_size=0'
    store = Store.from_url(
        store_url,
        name=f'fig5-{method}-{config.label}-{size}-{task_type}',
        wrap_connector=lambda inner: CostedConnector(inner, model, clock),
    )
    try:
        with on_host(config.client_host):
            proxy = store.proxy(payload, cache_local=False)
            future = executor.submit(task, proxy)
            future.result()
        return clock.now() - start
    finally:
        store.close(clear=True)


def run_figure5(
    *,
    task_type: str = 'noop',
    sizes: Sequence[int] | None = None,
    configurations: Sequence[SiteConfiguration] = FIG5_CONFIGURATIONS,
    workdir: str | None = None,
) -> ResultTable:
    """Run the Figure 5 sweep and return one row per (config, method, size)."""
    if task_type not in ('noop', 'sleep'):
        raise ValueError("task_type must be 'noop' or 'sleep'")
    sizes = list(sizes) if sizes is not None else size_sweep(10, 10_000_000)
    table = ResultTable(
        title=f'Figure 5: Globus Compute round-trip time ({task_type} tasks)',
        columns=['configuration', 'method', 'input_bytes', 'roundtrip_s'],
    )
    table.add_note(f'payload limit for cloud transfer: {PAYLOAD_LIMIT_BYTES} bytes')
    table.add_note('times are virtual seconds on the simulated testbed fabric')
    with tempfile.TemporaryDirectory() as tmp:
        base = workdir or tmp
        for config in configurations:
            methods = _INTRA_METHODS if config.intra_site else _INTER_METHODS
            for method in methods:
                for size in sizes:
                    cell_dir = f'{base}/{config.label.replace(" ", "")}-{method}-{size}'
                    roundtrip = _measure_cell(config, method, size, task_type, cell_dir)
                    table.add_row(
                        configuration=config.label,
                        method=method,
                        input_bytes=size,
                        roundtrip_s=roundtrip,
                    )
    return table
