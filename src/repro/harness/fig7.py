"""Figure 7: task round-trip improvement when Colmena passes data by proxy.

No-op tasks with varied input and output sizes run through the Colmena-like
Thinker / Task Server / Parsl-like engine pipeline, co-located in one process
(mirroring the paper's single-Theta-node setup which isolates workflow-system
overheads from the network).  The baseline ships the data through every
pipeline component; the ProxyStore variants register a FileStore or RedisStore
with a zero threshold so only proxies flow through the pipeline.  The reported
metric is the percent improvement in median round-trip time — the same
quantity as the heat maps in Figure 7 — measured in real wall-clock time.
"""
from __future__ import annotations

import tempfile
from typing import Sequence

import numpy as np

from repro.harness.reporting import ResultTable
from repro.simulation import payload_of_size
from repro.store import ContextLifetime
from repro.store import Store
from repro.workflow import ColmenaQueues
from repro.workflow import TaskServer
from repro.workflow import Thinker
from repro.workflow import WorkflowEngine

__all__ = ['run_figure7']

DEFAULT_SIZES = (100, 10_000, 1_000_000)


def _make_task(output_size: int):
    """A no-op task returning a payload of ``output_size`` bytes."""

    def task(data):
        # Touch the input (resolving it if it is a proxy) and produce output.
        _ = len(data)
        return payload_of_size(output_size)

    return task


def _median_roundtrip(
    store: Store | None,
    input_size: int,
    output_size: int,
    repeats: int,
) -> float:
    queues = ColmenaQueues()
    # Bind every key this measurement run proxies to one lifetime: closing
    # it below batch-evicts them, so repeated grid cells do not accumulate
    # stale objects in the backing store.
    with ContextLifetime() as run_lifetime, WorkflowEngine(n_workers=1) as engine:
        server = TaskServer(queues, engine, lifetime=run_lifetime)
        server.register_topic(
            'noop',
            _make_task(output_size),
            store=store,
            threshold_bytes=0 if store is not None else None,
        )
        thinker = Thinker(queues)
        with server:
            times = []
            payload = payload_of_size(input_size)
            for _ in range(repeats):
                result = thinker.run_task('noop', payload)
                if not result.success:
                    raise RuntimeError(f'task failed: {result.error}')
                times.append(result.roundtrip_time)
    return float(np.median(times))


def run_figure7(
    *,
    input_sizes: Sequence[int] = DEFAULT_SIZES,
    output_sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 5,
    stores: Sequence[str] = ('file-store', 'redis-store'),
    workdir: str | None = None,
) -> ResultTable:
    """Measure percent improvement grids for the requested stores."""
    table = ResultTable(
        title='Figure 7: Colmena round-trip improvement with ProxyStore',
        columns=['store', 'input_bytes', 'output_bytes',
                 'baseline_s', 'proxystore_s', 'improvement_pct'],
    )
    table.add_note('improvement = (baseline - proxystore) / baseline * 100, medians of real wall-clock round trips')
    with tempfile.TemporaryDirectory() as tmp:
        base = workdir or tmp
        for store_kind in stores:
            for input_size in input_sizes:
                for output_size in output_sizes:
                    baseline = _median_roundtrip(None, input_size, output_size, repeats)
                    if store_kind == 'file-store':
                        store_url = f'file://{base}/fig7-{input_size}-{output_size}'
                    else:
                        store_url = 'local://'
                    store = Store.from_url(
                        f'{store_url}?cache_size=0',
                        name=f'fig7-{store_kind}-{input_size}-{output_size}',
                    )
                    try:
                        with_proxy = _median_roundtrip(store, input_size, output_size, repeats)
                    finally:
                        store.close(clear=True)
                    improvement = (baseline - with_proxy) / baseline * 100.0
                    table.add_row(
                        store=store_kind,
                        input_bytes=input_size,
                        output_bytes=output_size,
                        baseline_s=baseline,
                        proxystore_s=with_proxy,
                        improvement_pct=improvement,
                    )
    return table
