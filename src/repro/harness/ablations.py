"""Ablation benchmarks for the design choices called out in DESIGN.md.

These do not correspond to a specific paper figure; they quantify the costs
and benefits of individual mechanisms in the implementation: raw proxy
overhead, deserialization caching, serialization fast paths, evict-on-resolve,
asynchronous resolution overlap, MultiConnector policy routing overhead, and
batched versus per-object puts.  All measurements are real wall-clock times
on the local machine.
"""
from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.connectors.local import LocalConnector
from repro.connectors.multi import MultiConnector
from repro.connectors.policy import Policy
from repro.harness.reporting import ResultTable
from repro.proxy import Proxy
from repro.proxy import SimpleFactory
from repro.serialize import deserialize
from repro.serialize import serialize
from repro.store import Store

__all__ = ['run_ablations']


def _time(fn: Callable[[], None], repeats: int = 5) -> float:
    """Best-of-``repeats`` wall-clock seconds for ``fn`` (small, stable numbers)."""
    best = float('inf')
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _ablation_proxy_overhead(table: ResultTable) -> None:
    """Attribute access through a resolved proxy vs. direct access."""
    target = {'value': 1}
    proxy = Proxy(SimpleFactory(target))
    _ = proxy['value']  # resolve once

    n = 50_000
    direct = _time(lambda: [target['value'] for _ in range(n)])
    proxied = _time(lambda: [proxy['value'] for _ in range(n)])
    table.add_row(ablation='proxy-overhead', variant='direct-access', seconds=direct)
    table.add_row(ablation='proxy-overhead', variant='via-proxy', seconds=proxied)


def _ablation_caching(table: ResultTable) -> None:
    """Repeated gets of one object with and without the deserialization cache."""
    payload = np.zeros(250_000)
    for cache_size, variant in ((0, 'cache-disabled'), (16, 'cache-enabled')):
        store = Store.from_url(
            f'local:///ablation-cache-{cache_size}'
            f'?cache_size={cache_size}&register=0',
        )
        key = store.put(payload)
        elapsed = _time(lambda: [store.get(key) for _ in range(50)])
        table.add_row(ablation='deserialization-cache', variant=variant, seconds=elapsed)
        store.close(clear=True)


def _ablation_serializer_fast_paths(table: ResultTable) -> None:
    """Numpy fast path vs. forcing pickle for array payloads."""
    import pickle

    array = np.random.default_rng(0).normal(size=(512, 512))
    fast = _time(lambda: deserialize(serialize(array)))
    pickled = _time(lambda: pickle.loads(pickle.dumps(array)))
    table.add_row(ablation='serializer', variant='numpy-fast-path', seconds=fast)
    table.add_row(ablation='serializer', variant='pickle', seconds=pickled)


def _ablation_evict_on_resolve(table: ResultTable) -> None:
    """Space cost of keeping vs. evicting ephemeral objects."""
    n = 200
    for evict, variant in ((False, 'keep'), (True, 'evict-on-resolve')):
        store = Store.from_url(f'local:///ablation-evict-{variant}')
        proxies = [store.proxy(b'x' * 1000, evict=evict, cache_local=False) for _ in range(n)]
        for proxy in proxies:
            _ = len(proxy)
        table.add_row(
            ablation='evict-flag', variant=variant,
            seconds=float(len(store.connector)),
        )
        store.close(clear=True)


def _ablation_multiconnector_routing(table: ResultTable) -> None:
    """Overhead of policy routing vs. using the underlying connector directly."""
    plain = LocalConnector()
    multi = MultiConnector({
        'a': (LocalConnector(), Policy(max_size_bytes=100, priority=1)),
        'b': (LocalConnector(), Policy(min_size_bytes=101, priority=1)),
        'c': (LocalConnector(), Policy(priority=0)),
    })
    data = b'y' * 512
    direct = _time(lambda: [plain.put(data) for _ in range(500)])
    routed = _time(lambda: [multi.put(data) for _ in range(500)])
    table.add_row(ablation='multiconnector-routing', variant='direct', seconds=direct)
    table.add_row(ablation='multiconnector-routing', variant='policy-routed', seconds=routed)
    plain.close(clear=True)
    multi.close(clear=True)


def _ablation_batching(table: ResultTable) -> None:
    """proxy_batch vs. one proxy call per object."""
    store = Store.from_url('local:///ablation-batch?register=0')
    objects = [b'z' * 2_000 for _ in range(200)]
    loop = _time(lambda: [store.proxy(obj, cache_local=False) for obj in objects])
    batch = _time(lambda: store.proxy_batch(objects, cache_local=False))
    table.add_row(ablation='batching', variant='per-object', seconds=loop)
    table.add_row(ablation='batching', variant='proxy_batch', seconds=batch)
    store.close(clear=True)


def run_ablations() -> ResultTable:
    """Run every ablation and return a single result table."""
    table = ResultTable(
        title='Ablations: component-level design choices',
        columns=['ablation', 'variant', 'seconds'],
    )
    table.add_note('evict-flag rows report objects left in the connector, not seconds')
    _ablation_proxy_overhead(table)
    _ablation_caching(table)
    _ablation_serializer_fast_paths(table)
    _ablation_evict_on_resolve(table)
    _ablation_multiconnector_routing(table)
    _ablation_batching(table)
    return table
