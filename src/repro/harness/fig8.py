"""Figure 8: client get/set latency to a single PS-endpoint.

Measures average per-request wall-clock time against a single (single-worker)
endpoint as the number of concurrent client threads and the payload size grow.
Because the endpoint processes requests serially — as the paper's
single-threaded asyncio implementation does — per-request latency is expected
to scale roughly linearly with the number of concurrent clients.
"""
from __future__ import annotations

import threading
import time
from typing import Sequence

from repro.endpoint import Endpoint
from repro.endpoint import RelayServer
from repro.harness.reporting import ResultTable
from repro.harness.reporting import mean
from repro.simulation import payload_of_size

__all__ = ['run_figure8']

DEFAULT_CLIENTS = (1, 2, 4, 8)
DEFAULT_SIZES = (1_000, 10_000, 100_000, 1_000_000)


def _client_worker(
    endpoint: Endpoint,
    operation: str,
    payload: bytes,
    requests: int,
    latencies: list[float],
    lock: threading.Lock,
    client_id: int,
) -> None:
    local: list[float] = []
    for i in range(requests):
        object_id = f'fig8-{client_id}-{i}'
        start = time.perf_counter()
        if operation == 'set':
            endpoint.set(object_id, payload)
        else:
            endpoint.get('fig8-shared')
        local.append(time.perf_counter() - start)
    with lock:
        latencies.extend(local)


def run_figure8(
    *,
    client_counts: Sequence[int] = DEFAULT_CLIENTS,
    payload_sizes: Sequence[int] = DEFAULT_SIZES,
    requests_per_client: int = 25,
) -> ResultTable:
    """Measure average request time vs. concurrency and payload size."""
    table = ResultTable(
        title='Figure 8: client request times to a single PS-endpoint',
        columns=['operation', 'payload_bytes', 'clients', 'avg_time_ms'],
    )
    table.add_note(f'{requests_per_client} requests per client, real wall-clock time')
    relay = RelayServer()
    for operation in ('get', 'set'):
        for size in payload_sizes:
            payload = payload_of_size(size)
            for n_clients in client_counts:
                with Endpoint(f'fig8-{operation}-{size}-{n_clients}', relay) as endpoint:
                    endpoint.set('fig8-shared', payload)
                    latencies: list[float] = []
                    lock = threading.Lock()
                    threads = [
                        threading.Thread(
                            target=_client_worker,
                            args=(endpoint, operation, payload, requests_per_client,
                                  latencies, lock, i),
                        )
                        for i in range(n_clients)
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join()
                table.add_row(
                    operation=operation,
                    payload_bytes=size,
                    clients=n_clients,
                    avg_time_ms=mean(latencies) * 1000.0,
                )
    return table
