"""Figure 6: distributed in-memory stores versus DataSpaces and cloud transfer.

No-op Globus Compute tasks on Polaris (HPE Slingshot) and on two Chameleon
Cloud nodes (Mellanox 40 GbE), moving inputs via the cloud baseline, a central
RedisStore, the distributed in-memory MargoStore/UCXStore/ZMQStore, and the
DataSpaces staging abstraction.  Transport efficiencies differ per system to
reflect the hardware: RDMA stacks drive the Slingshot network at full rate,
while UCX underperforms on the commodity NIC and ZMQ/TCP trails both — the
behaviours the paper reports.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.dataspaces import DataSpacesClient
from repro.baselines.dataspaces import DataSpacesServer
from repro.exceptions import PayloadTooLargeError
from repro.faas import CloudFaaSService
from repro.faas import ComputeEndpoint
from repro.faas import Executor
from repro.harness.reporting import ResultTable
from repro.proxy import Proxy
from repro.simulation import VirtualClock
from repro.simulation import paper_testbed
from repro.simulation import payload_of_size
from repro.simulation import size_sweep
from repro.simulation.context import on_host
from repro.simulation.costed import CostedConnector
from repro.simulation.costs import CentralServerCost
from repro.simulation.costs import DataSpacesCost
from repro.simulation.costs import DistributedMemoryCost
from repro.store import Store

__all__ = ['Fig6System', 'FIG6_SYSTEMS', 'run_figure6']

PAYLOAD_LIMIT_BYTES = 5 * 1024 * 1024


@dataclass(frozen=True)
class Fig6System:
    """One hardware platform of Figure 6."""

    label: str
    client_host: str
    endpoint_host: str
    #: Transport efficiency of each store on this platform's network.
    efficiencies: tuple[tuple[str, float], ...]


FIG6_SYSTEMS: tuple[Fig6System, ...] = (
    Fig6System(
        'Polaris Login -> Polaris Compute',
        'polaris-login', 'polaris-compute',
        efficiencies=(('margo-store', 1.0), ('ucx-store', 0.95), ('zmq-store', 0.45)),
    ),
    Fig6System(
        'Chameleon Node -> Chameleon Node',
        'chameleon-node-a', 'chameleon-node-b',
        efficiencies=(('margo-store', 0.95), ('ucx-store', 0.5), ('zmq-store', 0.4)),
    ),
)

_METHODS = ('cloud', 'redis-store', 'margo-store', 'ucx-store', 'zmq-store', 'dataspaces')


def _noop_task(data, ctx=None):
    if ctx is not None and isinstance(data, Proxy):
        ctx.resolve_proxy(data)
    return len(data)


def _measure_cell(system: Fig6System, method: str, size: int) -> float | None:
    fabric = paper_testbed()
    clock = VirtualClock()
    cloud = CloudFaaSService(fabric, clock, payload_limit_bytes=PAYLOAD_LIMIT_BYTES)
    endpoint = ComputeEndpoint('fig6-endpoint', system.endpoint_host, clock, fabric)
    cloud.register_endpoint(endpoint)
    executor = Executor(cloud, 'fig6-endpoint', client_host=system.client_host)
    payload = payload_of_size(size)
    start = clock.now()

    if method == 'cloud':
        with on_host(system.client_host):
            try:
                future = executor.submit(_noop_task, payload)
            except PayloadTooLargeError:
                return None
            future.result()
        return clock.now() - start

    if method == 'dataspaces':
        server = DataSpacesServer()
        client = DataSpacesClient(server)
        cost = DataSpacesCost(fabric)

        def dataspaces_task(name, version, ctx=None):
            ctx.clock.advance(cost.get_cost(size, system.client_host, system.endpoint_host))
            data = DataSpacesClient(server).get(name, version)
            return len(data)

        with on_host(system.client_host):
            client.put('task-input', 0, payload)
            clock.advance(cost.put_cost(size, system.client_host))
            future = executor.submit(dataspaces_task, 'task-input', 0)
            future.result()
        return clock.now() - start

    if method == 'redis-store':
        model = CentralServerCost(fabric, server_host=system.client_host)
    else:
        efficiency = dict(system.efficiencies)[method]
        model = DistributedMemoryCost(
            fabric, software_efficiency=efficiency, startup_overhead_s=0.1,
        )
    store = Store.from_url(
        'local://?cache_size=0',
        name=f'fig6-{method}-{system.label}-{size}',
        wrap_connector=lambda inner: CostedConnector(inner, model, clock),
    )
    try:
        with on_host(system.client_host):
            proxy = store.proxy(payload, cache_local=False)
            future = executor.submit(_noop_task, proxy)
            future.result()
        return clock.now() - start
    finally:
        store.close(clear=True)


def run_figure6(
    *,
    sizes: Sequence[int] | None = None,
    systems: Sequence[Fig6System] = FIG6_SYSTEMS,
) -> ResultTable:
    """Run the Figure 6 sweep and return one row per (system, method, size)."""
    sizes = list(sizes) if sizes is not None else size_sweep(1, 100_000_000)
    table = ResultTable(
        title='Figure 6: no-op round-trip with distributed in-memory stores',
        columns=['system', 'method', 'input_bytes', 'roundtrip_s'],
    )
    table.add_note('times are virtual seconds on the simulated testbed fabric')
    table.add_note(
        'real-wire transport concurrency (pipelining, batched commands, '
        'sharded transfers) is measured separately by '
        'benchmarks/bench_kv_transport.py -> BENCH_kv.json',
    )
    for system in systems:
        for method in _METHODS:
            for size in sizes:
                table.add_row(
                    system=system.label,
                    method=method,
                    input_bytes=size,
                    roundtrip_s=_measure_cell(system, method, size),
                )
    return table
