"""Table 2: round-trip task times for the real-time defect analysis application.

A client (standing in for the microscopy facility) submits segmentation tasks
on ~1 MB micrographs to a Globus Compute endpoint whose tasks run on a Polaris
compute node.  Rows compare the Globus Compute baseline against FileStore and
EndpointStore with either only the inputs, or both inputs and outputs,
proxied.  Real images are generated and really segmented; communication time
is virtual seconds on the simulated fabric.
"""
from __future__ import annotations

import tempfile
from dataclasses import dataclass

from repro.apps.defect_analysis import defect_inference_task
from repro.apps.defect_analysis import generate_micrograph
from repro.faas import CloudFaaSService
from repro.faas import ComputeEndpoint
from repro.faas import Executor
from repro.harness.reporting import ResultTable
from repro.harness.reporting import mean
from repro.harness.reporting import stdev
from repro.simulation import VirtualClock
from repro.simulation import paper_testbed
from repro.simulation.context import on_host
from repro.simulation.costed import CostedConnector
from repro.simulation.costs import EndpointPeerCost
from repro.simulation.costs import SharedFilesystemCost
from repro.store import Store

__all__ = ['run_table2']

POLARIS_COMPUTE = 'polaris-compute'


@dataclass(frozen=True)
class _Config:
    label: str
    store_kind: str | None    # None = Globus Compute baseline
    proxy_outputs: bool
    client_host: str


_CONFIGS = (
    _Config('Globus Compute baseline', None, False, 'theta-login'),
    _Config('FileStore (inputs)', 'file-store', False, 'theta-login'),
    _Config('FileStore (inputs/outputs)', 'file-store', True, 'theta-login'),
    _Config('EndpointStore (inputs)', 'endpoint-store', False, 'midway2-login'),
    _Config('EndpointStore (inputs/outputs)', 'endpoint-store', True, 'midway2-login'),
)


def _run_config(config: _Config, repeats: int, image_side: int, workdir: str) -> list[float]:
    fabric = paper_testbed()
    times: list[float] = []
    for repeat in range(repeats):
        clock = VirtualClock()
        cloud = CloudFaaSService(fabric, clock)
        endpoint = ComputeEndpoint('defect-endpoint', POLARIS_COMPUTE, clock, fabric)
        cloud.register_endpoint(endpoint)
        executor = Executor(cloud, 'defect-endpoint', client_host=config.client_host)
        image = generate_micrograph(side=image_side, seed=repeat)

        store = None
        if config.store_kind is not None:
            if config.store_kind == 'file-store':
                store_dir = f'{workdir}/{config.label}-{repeat}'.replace(' ', '_')
                store_url = f'file://{store_dir}?cache_size=0'
                model = SharedFilesystemCost(fabric)
            else:
                store_url = 'local://?cache_size=0'
                model = EndpointPeerCost(fabric)
            store = Store.from_url(
                store_url,
                name=f'table2-{config.label}-{repeat}',
                wrap_connector=lambda inner: CostedConnector(inner, model, clock),
            )
        start = clock.now()
        try:
            with on_host(config.client_host):
                if store is None:
                    future = executor.submit(defect_inference_task, image)
                else:
                    proxy = store.proxy(image, cache_local=False)
                    if config.proxy_outputs:
                        future = executor.submit(
                            defect_inference_task, proxy, proxy_output_store=store.name,
                        )
                    else:
                        future = executor.submit(defect_inference_task, proxy)
                result = future.result()
                # The client always consumes the analysis summary; if the
                # result came back as a proxy it is resolved here.
                _ = result.n_defects if hasattr(result, 'n_defects') else result
            times.append(clock.now() - start)
        finally:
            if store is not None:
                store.close(clear=True)
    return times


def run_table2(*, repeats: int = 3, image_side: int = 512, workdir: str | None = None) -> ResultTable:
    """Reproduce Table 2: mean +/- std round-trip times and improvements."""
    table = ResultTable(
        title='Table 2: real-time defect analysis round-trip times',
        columns=['configuration', 'proxied', 'mean_ms', 'std_ms', 'improvement_pct'],
    )
    table.add_note('virtual milliseconds; improvements are relative to the Globus Compute baseline')
    with tempfile.TemporaryDirectory() as tmp:
        base = workdir or tmp
        baseline_times = _run_config(_CONFIGS[0], repeats, image_side, base)
        baseline_mean = mean(baseline_times)
        table.add_row(
            configuration=_CONFIGS[0].label, proxied='--',
            mean_ms=baseline_mean * 1000.0, std_ms=stdev(baseline_times) * 1000.0,
            improvement_pct=None,
        )
        for config in _CONFIGS[1:]:
            times = _run_config(config, repeats, image_side, base)
            improvement = (baseline_mean - mean(times)) / baseline_mean * 100.0
            table.add_row(
                configuration=config.label,
                proxied='Inputs/Outputs' if config.proxy_outputs else 'Inputs',
                mean_ms=mean(times) * 1000.0,
                std_ms=stdev(times) * 1000.0,
                improvement_pct=improvement,
            )
    return table
