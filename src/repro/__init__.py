"""repro: a reproduction of ProxyStore (SC 2023).

ProxyStore decouples control flow from data flow in distributed and federated
Python applications via lazy transparent object proxies.  The top-level
package re-exports the most commonly used pieces of the public API; see
``README.md`` for a tour and ``DESIGN.md`` for the full system inventory.
"""
from repro.proxy import Factory
from repro.proxy import Proxy
from repro.proxy import extract
from repro.proxy import is_resolved
from repro.proxy import resolve
from repro.proxy import resolve_async
from repro.store import Store
from repro.store import StoreConfig
from repro.store import StoreFactory
from repro.store import get_store
from repro.store import register_store
from repro.store import unregister_store

__version__ = '1.0.0'

__all__ = [
    'Factory',
    'Proxy',
    'Store',
    'StoreConfig',
    'StoreFactory',
    'extract',
    'get_store',
    'is_resolved',
    'register_store',
    'resolve',
    'resolve_async',
    'unregister_store',
    '__version__',
]
