"""repro: a reproduction of ProxyStore (SC 2023).

ProxyStore decouples control flow from data flow in distributed and federated
Python applications via lazy transparent object proxies.  The top-level
package re-exports the most commonly used pieces of the public API; see
``README.md`` for a tour and ``DESIGN.md`` for the full system inventory.
"""
from typing import Any

from repro.exceptions import BorrowError
from repro.exceptions import LifetimeError
from repro.exceptions import OwnershipError
from repro.exceptions import UseAfterFreeError
from repro.proxy import Factory
from repro.proxy import OwnedProxy
from repro.proxy import Proxy
from repro.proxy import borrow
from repro.proxy import clone
from repro.proxy import drop
from repro.proxy import extract
from repro.proxy import flush
from repro.proxy import into_owned
from repro.proxy import is_owned
from repro.proxy import is_resolved
from repro.proxy import mut_borrow
from repro.proxy import resolve
from repro.proxy import resolve_async
from repro.store import ContextLifetime
from repro.store import LeaseLifetime
from repro.store import Lifetime
from repro.store import ProxyFuture
from repro.store import StaticLifetime
from repro.store import Store
from repro.store import StoreConfig
from repro.store import StoreFactory
from repro.store import get_store
from repro.store import register_store
from repro.store import unregister_store
from repro.stream import EventBus
from repro.stream import LocalEventBus
from repro.stream import StreamConsumer
from repro.stream import StreamEvent
from repro.stream import StreamProducer
from repro.stream import event_bus_from_url

__version__ = '2.2.0'


def __getattr__(name: str):
    # Lazy re-export: the KV event transport (and its kvserver/socket
    # machinery) loads only when actually used — `repro.KVEventBus` or a
    # kv:// bus URL — keeping bare `import repro` light.
    if name == 'KVEventBus':
        from repro.stream.kv import KVEventBus

        return KVEventBus
    raise AttributeError(f'module {__name__!r} has no attribute {name!r}')


def store_from_url(url: str, **kwargs: Any) -> Store:
    """Build a :class:`Store` from a URL — the one-liner v2 entry point.

    ``repro.store_from_url('redis://localhost:6379/ns?cache_size=32')`` is
    shorthand for :meth:`Store.from_url`; see that method for the URL
    grammar and keyword arguments.
    """
    return Store.from_url(url, **kwargs)


__all__ = [
    'BorrowError',
    'ContextLifetime',
    'EventBus',
    'Factory',
    'KVEventBus',
    'LeaseLifetime',
    'Lifetime',
    'LifetimeError',
    'LocalEventBus',
    'OwnedProxy',
    'OwnershipError',
    'Proxy',
    'ProxyFuture',
    'StaticLifetime',
    'Store',
    'StoreConfig',
    'StoreFactory',
    'StreamConsumer',
    'StreamEvent',
    'StreamProducer',
    'UseAfterFreeError',
    'borrow',
    'clone',
    'drop',
    'event_bus_from_url',
    'extract',
    'flush',
    'get_store',
    'into_owned',
    'is_owned',
    'is_resolved',
    'mut_borrow',
    'register_store',
    'resolve',
    'resolve_async',
    'store_from_url',
    'unregister_store',
    '__version__',
]
